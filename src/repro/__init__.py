"""repro — a reproduction of *Themis: Fair and Efficient GPU Cluster
Scheduling for Machine Learning Workloads* (Mahajan et al., NSDI 2020).

The package provides:

* the Themis scheduler itself — finish-time fairness, per-app AGENTs,
  a central ARBITER running partial-allocation auctions
  (:mod:`repro.core`, :mod:`repro.schedulers.themis`),
* every substrate the paper's evaluation needs, built from scratch: a
  deterministic event simulator (:mod:`repro.simulation`), a GPU
  cluster topology and placement model (:mod:`repro.cluster`), a
  synthetic enterprise workload generator (:mod:`repro.workload`),
  HyperBand/HyperDrive app schedulers (:mod:`repro.hyperparam`),
* the baselines the paper compares against — Gandiva, Tiresias, SLAQ —
  plus strawman/DRF/FIFO ablation anchors (:mod:`repro.schedulers`),
* metrics and a per-figure experiment harness regenerating every
  figure of the evaluation (:mod:`repro.metrics`,
  :mod:`repro.experiments`).

Quickstart::

    from repro import quick_run
    result = quick_run(scheduler="themis", num_apps=10, seed=1)
    print(max(result.rhos()))
"""

from repro.cluster import Cluster, testbed_cluster, themis_sim_cluster
from repro.schedulers import SCHEDULER_NAMES, make_scheduler
from repro.simulation import ClusterSimulator, SimulationConfig, SimulationResult
from repro.workload import GeneratorConfig, Trace, generate_trace

__version__ = "1.0.0"

__all__ = [
    "Cluster",
    "ClusterSimulator",
    "GeneratorConfig",
    "SCHEDULER_NAMES",
    "SimulationConfig",
    "SimulationResult",
    "Trace",
    "__version__",
    "generate_trace",
    "make_scheduler",
    "quick_run",
    "testbed_cluster",
    "themis_sim_cluster",
]


def quick_run(
    scheduler: str = "themis",
    num_apps: int = 10,
    seed: int = 0,
    cluster: Cluster | None = None,
    lease_minutes: float = 20.0,
    duration_scale: float = 0.25,
    **scheduler_kwargs,
) -> SimulationResult:
    """One-call end-to-end run: generate a trace, simulate, return results.

    Convenience wrapper used by the examples and docs; all the pieces
    are available individually for real experiments.
    """
    if cluster is None:
        cluster = testbed_cluster()
    trace = generate_trace(
        GeneratorConfig(num_apps=num_apps, seed=seed, duration_scale=duration_scale)
    )
    sim = ClusterSimulator(
        cluster=cluster,
        workload=trace,
        scheduler=make_scheduler(scheduler, **scheduler_kwargs),
        config=SimulationConfig(lease_minutes=lease_minutes),
    )
    return sim.run()
