"""Declarative parameter grids expanded into runnable sweep tasks.

The evaluation of the paper is a matrix of (scheduler x trace x cluster
x knob) cells: the macrobenchmark replays one trace under 6+ policies,
and the sensitivity figures multiply that by contention levels,
bid-error rates and lease lengths.  A :class:`SweepMatrix` names each
axis once and expands the cartesian product into :class:`SweepTask`
cells — hashable, picklable descriptions of exactly one simulation run
that the executor can farm out to workers and the cache can key by
content.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import itertools
import json
import re
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from repro.experiments.config import ScenarioConfig
from repro.obs import ObsConfig
from repro.workload.generator import GeneratorConfig


def jsonable(obj):
    """Recursively convert ``obj`` into plain JSON types.

    Dataclasses become dicts, enums their values, tuples lists.  Used
    for both task fingerprints and cache payloads, so the conversion
    must be total over everything a :class:`ScenarioConfig` contains.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: jsonable(getattr(obj, f.name)) for f in dataclasses.fields(obj)
        }
    if isinstance(obj, enum.Enum):
        return obj.value
    if isinstance(obj, (list, tuple)):
        return [jsonable(item) for item in obj]
    if isinstance(obj, Mapping):
        return {str(key): jsonable(value) for key, value in obj.items()}
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise TypeError(f"cannot serialise {type(obj).__name__!r} for a sweep spec")


def canonical_json(obj) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace)."""
    return json.dumps(jsonable(obj), sort_keys=True, separators=(",", ":"))


def _format_value(value) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


@dataclass(frozen=True)
class SweepTask:
    """One cell of a sweep: a scenario run under one scheduler config.

    Frozen and built from hashable parts (kwargs and tags are tuples of
    pairs, not dicts) so tasks can key sets/dicts, and picklable so the
    executor can ship them to worker processes.  ``tags`` carry the axis
    values that produced the cell; they feed the human-readable
    ``task_id`` and let report consumers regroup rows without parsing
    scenario configs.
    """

    scenario: ScenarioConfig
    scheduler: str = "themis"
    scheduler_kwargs: tuple[tuple[str, object], ...] = ()
    tags: tuple[tuple[str, object], ...] = ()
    #: Observability attached to this cell (picklable; materialised in
    #: the worker).  Excluded from :meth:`spec` — tracing and profiling
    #: never change results, so cache keys must not depend on them.
    obs: Optional[ObsConfig] = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "scheduler_kwargs", tuple(sorted(self.scheduler_kwargs))
        )
        object.__setattr__(self, "tags", tuple(self.tags))

    def kwargs_dict(self) -> dict:
        """Scheduler kwargs as the mapping ``make_scheduler`` expects."""
        return dict(self.scheduler_kwargs)

    @property
    def task_id(self) -> str:
        """Stable human-readable id: scenario/scheduler/axis values."""
        parts = [self.scenario.name, self.scheduler]
        parts += [f"{k}={_format_value(v)}" for k, v in self.tags]
        parts += [f"{k}={_format_value(v)}" for k, v in self.scheduler_kwargs]
        return "/".join(parts)

    def spec(self) -> dict:
        """Canonical JSON-safe description of everything the run depends on."""
        return {
            "scenario": jsonable(self.scenario),
            "scheduler": self.scheduler,
            "scheduler_kwargs": jsonable(dict(self.scheduler_kwargs)),
        }

    def fingerprint(self) -> str:
        """Content hash of :meth:`spec` — the cache key material.

        Tags are deliberately excluded: they are presentation metadata,
        and two tasks that run the same simulation must share a cache
        entry regardless of which axis produced them.
        """
        return hashlib.sha256(canonical_json(self.spec()).encode("utf-8")).hexdigest()


def _validate_axes(axes: Mapping[str, Sequence], cls, label: str) -> list[tuple]:
    known = {f.name for f in dataclasses.fields(cls)}
    items = sorted(axes.items())
    for name, values in items:
        if name not in known:
            raise ValueError(
                f"unknown {label} axis {name!r}; valid fields: {sorted(known)}"
            )
        if not values:
            raise ValueError(f"{label} axis {name!r} has no values")
    return items


@dataclass
class SweepMatrix:
    """A declarative grid of runs over schedulers, seeds and config axes.

    * ``schedulers`` — policy names (the macrobenchmark axis),
    * ``seeds`` — workload seeds (defaults to the base scenario's),
    * ``scenario_axes`` — :class:`ScenarioConfig` fields to sweep
      (e.g. ``lease_minutes`` for Figure 4c),
    * ``generator_axes`` — :class:`GeneratorConfig` fields to sweep
      (e.g. ``mean_interarrival_minutes`` for Figure 10,
      ``network_intensive_fraction`` for Figure 9),
    * ``scheduler_axes`` — scheduler kwargs to sweep
      (e.g. ``fairness_knob`` for Figure 4a/4b, ``noise_theta`` for
      Figure 11).

    :meth:`expand` returns tasks in deterministic (sorted-axis,
    insertion-order values) order, so a matrix is a stable, replayable
    description of a whole experiment.
    """

    base: ScenarioConfig
    schedulers: Sequence[str] = ("themis",)
    seeds: Sequence[int] = ()
    scenario_axes: Mapping[str, Sequence] = field(default_factory=dict)
    generator_axes: Mapping[str, Sequence] = field(default_factory=dict)
    scheduler_axes: Mapping[str, Sequence] = field(default_factory=dict)

    def size(self) -> int:
        """Number of cells :meth:`expand` will produce."""
        count = max(len(self.schedulers), 1) * max(len(tuple(self.seeds)) or 1, 1)
        for axes in (self.scenario_axes, self.generator_axes, self.scheduler_axes):
            for values in axes.values():
                count *= max(len(values), 1)
        return count

    def expand(self) -> list[SweepTask]:
        """Cartesian-product the axes into a deterministic task list."""
        if not self.schedulers:
            raise ValueError("matrix needs at least one scheduler")
        scen_items = _validate_axes(self.scenario_axes, ScenarioConfig, "scenario")
        gen_items = _validate_axes(self.generator_axes, GeneratorConfig, "generator")
        sched_items = sorted(self.scheduler_axes.items())
        for name, values in sched_items:
            if not values:
                raise ValueError(f"scheduler axis {name!r} has no values")

        seeds = tuple(self.seeds) or (self.base.generator.seed,)
        tag_seed = len(seeds) > 1 or tuple(self.seeds) != ()
        tasks: list[SweepTask] = []
        for seed in seeds:
            # Scenario presets embed their seed in the name
            # ("sim256-n8-s42"); keep the displayed name truthful when
            # the seed axis overrides it.  Unrecognised name formats
            # pass through — the seed tag still disambiguates.
            display_name = re.sub(
                rf"-s{self.base.generator.seed}(?![0-9])",
                f"-s{seed}",
                self.base.name,
                count=1,
            )
            for scen_values in itertools.product(*(v for _, v in scen_items)):
                for gen_values in itertools.product(*(v for _, v in gen_items)):
                    scenario = self.base.with_generator(
                        seed=seed,
                        **{name: value for (name, _), value in zip(gen_items, gen_values)},
                    ).replace(
                        name=display_name,
                        **{name: value for (name, _), value in zip(scen_items, scen_values)},
                    )
                    tags: list[tuple[str, object]] = []
                    if tag_seed:
                        tags.append(("seed", seed))
                    tags += [
                        (name, value)
                        for (name, _), value in zip(scen_items, scen_values)
                    ]
                    tags += [
                        (name, value)
                        for (name, _), value in zip(gen_items, gen_values)
                    ]
                    for scheduler in self.schedulers:
                        for kw_values in itertools.product(
                            *(v for _, v in sched_items)
                        ):
                            kwargs = tuple(
                                (name, value)
                                for (name, _), value in zip(sched_items, kw_values)
                            )
                            tasks.append(
                                SweepTask(
                                    scenario=scenario,
                                    scheduler=scheduler,
                                    scheduler_kwargs=kwargs,
                                    tags=tuple(tags),
                                )
                            )
        seen: set[str] = set()
        for task in tasks:
            if task.task_id in seen:
                raise ValueError(f"duplicate task id {task.task_id!r} in matrix")
            seen.add(task.task_id)
        return tasks
