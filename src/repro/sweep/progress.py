"""Per-task status/timing aggregation and the sweep summary report.

The executor emits one :class:`TaskRecord` per cell as it completes;
:class:`ProgressTracker` optionally narrates them live, and
:class:`SweepReport` is the terminal artifact — statuses, timings,
failure tracebacks and the reconstructed results, queryable by task id.
"""

from __future__ import annotations

import logging
import math
import statistics
from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional, Sequence

from repro.simulation.simulator import SimulationResult

logger = logging.getLogger("repro.sweep.progress")

#: z-value of the two-sided 95% normal interval used by
#: :meth:`SweepReport.aggregate`'s ``*_ci95`` columns.
_Z_95 = 1.96


def _default_metrics() -> dict[str, Callable[[SimulationResult], float]]:
    """Headline metrics for cross-seed aggregation (local import: the
    metrics package imports this module's SimulationResult dependency)."""
    from repro.metrics.fairness import jain_index, max_fairness
    from repro.metrics.jct import average_jct

    return {
        "max_rho": lambda result: max_fairness(result.rhos()),
        "jain": lambda result: jain_index(result.rhos()),
        "avg_jct": lambda result: average_jct(result.completion_times()),
    }

#: Task terminal states.
STATUS_OK = "ok"  # executed and produced a result
STATUS_CACHED = "cached"  # served from the result cache, no recompute
STATUS_FAILED = "failed"  # raised; traceback captured in ``error``


class SweepError(RuntimeError):
    """Raised by :meth:`SweepReport.raise_on_failure` when cells failed."""


@dataclass(frozen=True)
class TaskRecord:
    """Outcome of one sweep cell: status, wall time, error if any.

    ``attempts`` counts executions of the cell including the final one
    — it stays 1 unless the executor's retry policy re-ran a transient
    failure; ``duration_seconds`` sums all attempts.
    """

    task_id: str
    status: str
    duration_seconds: float = 0.0
    error: Optional[str] = None
    attempts: int = 1


class ProgressTracker:
    """Streams ``[done/total] task status (time)`` lines as cells finish.

    ``print_fn=None`` routes the lines to the ``repro.sweep.progress``
    logger at DEBUG instead — silent under the default WARNING level,
    visible with ``--log-level debug`` — so the executor can always
    drive a tracker and tests can assert on progress without capturing
    stdout.
    """

    def __init__(
        self,
        total: int,
        print_fn: Optional[Callable[[str], None]] = None,
        every: int = 1,
    ) -> None:
        self.total = total
        self.done = 0
        self.every = max(1, every)
        self._print = print_fn

    def update(self, record: TaskRecord) -> None:
        """Register one finished cell (and maybe narrate it)."""
        self.done += 1
        if self.done % self.every and self.done != self.total:
            return
        line = (
            f"[{self.done}/{self.total}] {record.task_id} "
            f"{record.status} ({record.duration_seconds:.2f}s)"
        )
        if self._print is None:
            logger.debug(line)
        else:
            self._print(line)


@dataclass
class SweepReport:
    """Everything a sweep produced, in original task order."""

    records: list[TaskRecord]
    results: dict[str, SimulationResult] = field(default_factory=dict)
    workers: int = 1
    wall_seconds: float = 0.0

    @property
    def num_ok(self) -> int:
        return sum(1 for r in self.records if r.status == STATUS_OK)

    @property
    def num_cached(self) -> int:
        return sum(1 for r in self.records if r.status == STATUS_CACHED)

    @property
    def num_failed(self) -> int:
        return sum(1 for r in self.records if r.status == STATUS_FAILED)

    @property
    def num_executed(self) -> int:
        """Cells that actually ran a simulation (ok + failed, not cached)."""
        return self.num_ok + self.num_failed

    @property
    def num_retried(self) -> int:
        """Cells that needed more than one execution attempt."""
        return sum(1 for r in self.records if r.attempts > 1)

    def failures(self) -> list[TaskRecord]:
        """Records of failed cells, with tracebacks."""
        return [r for r in self.records if r.status == STATUS_FAILED]

    def result_for(self, task_id: str) -> SimulationResult:
        """The result of one cell; raises ``KeyError`` for failed cells."""
        return self.results[task_id]

    def task_seconds(self) -> float:
        """Sum of per-cell wall times (the serial-equivalent cost)."""
        return sum(r.duration_seconds for r in self.records)

    def aggregate(
        self,
        tasks: Sequence,
        metrics: Optional[Mapping[str, Callable[[SimulationResult], float]]] = None,
        seed_tag: str = "seed",
    ) -> list[dict]:
        """Cross-seed mean/CI rows, one per (scheduler, non-seed axes) group.

        Tasks sharing everything but their ``seed`` tag collapse into
        one row whose ``<metric>_mean`` / ``<metric>_ci95`` columns are
        the sample mean and half-width of the normal-approximation 95%
        interval (``1.96 * s / sqrt(n)``; 0.0 when ``n < 2``) over the
        group's completed results, plus an ``n`` column.  Non-finite
        metric values (starved apps report ``inf`` rho) are excluded
        from the statistics.  Failed cells are skipped, so a partially
        failed sweep still aggregates.  ``metrics`` maps column-name
        prefixes to callables on :class:`SimulationResult`; the default
        covers max rho, Jain's index and average JCT.
        """
        metric_fns = dict(metrics) if metrics is not None else _default_metrics()
        groups: dict[tuple, tuple[dict, list[SimulationResult]]] = {}
        for task in tasks:
            result = self.results.get(task.task_id)
            if result is None:
                continue
            identity = {"scheduler": task.scheduler}
            identity.update(
                (key, value) for key, value in task.tags if key != seed_tag
            )
            identity.update(task.scheduler_kwargs)
            key = tuple(sorted((k, repr(v)) for k, v in identity.items()))
            groups.setdefault(key, (identity, []))[1].append(result)
        rows: list[dict] = []
        for _key, (identity, results) in sorted(groups.items()):
            row = dict(identity)
            row["n"] = len(results)
            for name, fn in metric_fns.items():
                values = []
                for result in results:
                    # Metrics raise on empty inputs (e.g. max_fairness on
                    # a run with no finished apps); such cells simply
                    # contribute no sample rather than killing the whole
                    # aggregation.
                    try:
                        values.append(fn(result))
                    except (ValueError, ZeroDivisionError):
                        continue
                values = [v for v in values if isinstance(v, (int, float)) and math.isfinite(v)]
                if not values:
                    row[f"{name}_mean"] = math.nan
                    row[f"{name}_ci95"] = math.nan
                    continue
                mean = statistics.fmean(values)
                if len(values) >= 2:
                    ci = _Z_95 * statistics.stdev(values) / math.sqrt(len(values))
                else:
                    ci = 0.0
                row[f"{name}_mean"] = mean
                row[f"{name}_ci95"] = ci
            rows.append(row)
        return rows

    def raise_on_failure(self) -> None:
        """Raise :class:`SweepError` summarising every failed cell."""
        failed = self.failures()
        if not failed:
            return
        details = "\n\n".join(
            f"--- {r.task_id} ---\n{r.error or '(no traceback captured)'}"
            for r in failed
        )
        raise SweepError(f"{len(failed)} sweep task(s) failed:\n{details}")

    def summary(self) -> str:
        """Multi-line human-readable wrap-up of the sweep."""
        retried = f", {self.num_retried} retried" if self.num_retried else ""
        lines = [
            f"sweep: {len(self.records)} tasks | {self.num_ok} ok, "
            f"{self.num_cached} cached, {self.num_failed} failed{retried} | "
            f"workers={self.workers}",
            f"wall {self.wall_seconds:.2f}s, task time {self.task_seconds():.2f}s"
            + (
                f", speedup {self.task_seconds() / self.wall_seconds:.2f}x"
                if self.wall_seconds > 0
                else ""
            ),
        ]
        executed = [r for r in self.records if r.status == STATUS_OK]
        if executed:
            slowest = max(executed, key=lambda r: r.duration_seconds)
            lines.append(
                f"slowest: {slowest.task_id} ({slowest.duration_seconds:.2f}s)"
            )
        for record in self.failures():
            last_line = (record.error or "").strip().splitlines()
            lines.append(
                f"FAILED {record.task_id}: {last_line[-1] if last_line else 'unknown'}"
            )
        return "\n".join(lines)
