"""Per-task status/timing aggregation and the sweep summary report.

The executor emits one :class:`TaskRecord` per cell as it completes;
:class:`ProgressTracker` optionally narrates them live, and
:class:`SweepReport` is the terminal artifact — statuses, timings,
failure tracebacks and the reconstructed results, queryable by task id.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.simulation.simulator import SimulationResult

#: Task terminal states.
STATUS_OK = "ok"  # executed and produced a result
STATUS_CACHED = "cached"  # served from the result cache, no recompute
STATUS_FAILED = "failed"  # raised; traceback captured in ``error``


class SweepError(RuntimeError):
    """Raised by :meth:`SweepReport.raise_on_failure` when cells failed."""


@dataclass(frozen=True)
class TaskRecord:
    """Outcome of one sweep cell: status, wall time, error if any."""

    task_id: str
    status: str
    duration_seconds: float = 0.0
    error: Optional[str] = None


class ProgressTracker:
    """Streams ``[done/total] task status (time)`` lines as cells finish.

    ``print_fn=None`` keeps it silent while still counting — the
    executor always drives a tracker, so tests can assert on progress
    without capturing stdout.
    """

    def __init__(
        self,
        total: int,
        print_fn: Optional[Callable[[str], None]] = None,
        every: int = 1,
    ) -> None:
        self.total = total
        self.done = 0
        self.every = max(1, every)
        self._print = print_fn

    def update(self, record: TaskRecord) -> None:
        """Register one finished cell (and maybe narrate it)."""
        self.done += 1
        if self._print is None:
            return
        if self.done % self.every and self.done != self.total:
            return
        line = (
            f"[{self.done}/{self.total}] {record.task_id} "
            f"{record.status} ({record.duration_seconds:.2f}s)"
        )
        self._print(line)


@dataclass
class SweepReport:
    """Everything a sweep produced, in original task order."""

    records: list[TaskRecord]
    results: dict[str, SimulationResult] = field(default_factory=dict)
    workers: int = 1
    wall_seconds: float = 0.0

    @property
    def num_ok(self) -> int:
        return sum(1 for r in self.records if r.status == STATUS_OK)

    @property
    def num_cached(self) -> int:
        return sum(1 for r in self.records if r.status == STATUS_CACHED)

    @property
    def num_failed(self) -> int:
        return sum(1 for r in self.records if r.status == STATUS_FAILED)

    @property
    def num_executed(self) -> int:
        """Cells that actually ran a simulation (ok + failed, not cached)."""
        return self.num_ok + self.num_failed

    def failures(self) -> list[TaskRecord]:
        """Records of failed cells, with tracebacks."""
        return [r for r in self.records if r.status == STATUS_FAILED]

    def result_for(self, task_id: str) -> SimulationResult:
        """The result of one cell; raises ``KeyError`` for failed cells."""
        return self.results[task_id]

    def task_seconds(self) -> float:
        """Sum of per-cell wall times (the serial-equivalent cost)."""
        return sum(r.duration_seconds for r in self.records)

    def raise_on_failure(self) -> None:
        """Raise :class:`SweepError` summarising every failed cell."""
        failed = self.failures()
        if not failed:
            return
        details = "\n\n".join(
            f"--- {r.task_id} ---\n{r.error or '(no traceback captured)'}"
            for r in failed
        )
        raise SweepError(f"{len(failed)} sweep task(s) failed:\n{details}")

    def summary(self) -> str:
        """Multi-line human-readable wrap-up of the sweep."""
        lines = [
            f"sweep: {len(self.records)} tasks | {self.num_ok} ok, "
            f"{self.num_cached} cached, {self.num_failed} failed | "
            f"workers={self.workers}",
            f"wall {self.wall_seconds:.2f}s, task time {self.task_seconds():.2f}s"
            + (
                f", speedup {self.task_seconds() / self.wall_seconds:.2f}x"
                if self.wall_seconds > 0
                else ""
            ),
        ]
        executed = [r for r in self.records if r.status == STATUS_OK]
        if executed:
            slowest = max(executed, key=lambda r: r.duration_seconds)
            lines.append(
                f"slowest: {slowest.task_id} ({slowest.duration_seconds:.2f}s)"
            )
        for record in self.failures():
            last_line = (record.error or "").strip().splitlines()
            lines.append(
                f"FAILED {record.task_id}: {last_line[-1] if last_line else 'unknown'}"
            )
        return "\n".join(lines)
