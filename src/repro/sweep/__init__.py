"""Parallel sweep orchestration with content-addressed result caching.

The paper's evaluation is a matrix of (scheduler x trace x cluster x
knob) simulation runs; this subsystem turns that matrix into data and
executes it efficiently:

* :mod:`repro.sweep.matrix` — declarative grids (:class:`SweepMatrix`)
  expanded into hashable :class:`SweepTask` cells,
* :mod:`repro.sweep.executor` — :func:`run_sweep`, a multiprocessing
  pool with deterministic per-task seeding, per-task failure capture
  and a serial in-process fallback,
* :mod:`repro.sweep.cache` — :class:`ResultCache`, a content-addressed
  on-disk store keyed by (scenario config, scheduler, kwargs, schema
  version) so warm re-runs recompute nothing,
* :mod:`repro.sweep.progress` — live progress lines and the
  :class:`SweepReport` summary.

Quickstart::

    from repro.experiments.config import sim_scenario
    from repro.sweep import SweepMatrix, run_sweep

    matrix = SweepMatrix(
        base=sim_scenario(num_apps=8, duration_scale=0.1),
        schedulers=("themis", "tiresias"),
        seeds=(1, 2, 3),
        scheduler_axes={"fairness_knob": [0.0, 0.8]},
    )
    report = run_sweep(matrix.expand(), workers=4, cache=".sweep-cache")
    report.raise_on_failure()
    print(report.summary())
"""

from repro.sweep.cache import SCHEMA_VERSION, CacheEntry, PruneStats, ResultCache
from repro.sweep.executor import classify_traceback, execute_task, run_sweep
from repro.sweep.matrix import SweepMatrix, SweepTask, canonical_json, jsonable
from repro.sweep.progress import (
    STATUS_CACHED,
    STATUS_FAILED,
    STATUS_OK,
    ProgressTracker,
    SweepError,
    SweepReport,
    TaskRecord,
)

__all__ = [
    "SCHEMA_VERSION",
    "STATUS_CACHED",
    "STATUS_FAILED",
    "STATUS_OK",
    "CacheEntry",
    "ProgressTracker",
    "PruneStats",
    "ResultCache",
    "SweepError",
    "SweepMatrix",
    "SweepReport",
    "SweepTask",
    "TaskRecord",
    "canonical_json",
    "classify_traceback",
    "execute_task",
    "jsonable",
    "run_sweep",
]
