"""Sweep execution: a process pool with caching and failure capture.

``run_sweep`` is the subsystem's single entry point:

* cached cells are served before any worker spawns, so a warm cache
  recomputes nothing,
* ``workers=1`` runs serially in-process (no multiprocessing at all —
  the debuggable fallback), ``workers>1`` fans out over a
  ``ProcessPoolExecutor``,
* results are deterministic in the task alone: every random draw in a
  run derives from the scenario seed via named streams, and the worker
  additionally pins the *global* RNGs per task so that even ambient
  ``random``/``numpy`` calls cannot make serial and parallel runs
  diverge,
* a raising cell is captured as a per-task failure record (traceback
  included) instead of poisoning the pool or the whole sweep.

Workers ship results back as ``to_json`` payloads rather than live
objects — smaller pickles, and exactly what the cache stores.
"""

from __future__ import annotations

import random
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from multiprocessing import get_context
from pathlib import Path
from typing import Callable, Optional, Sequence, Union

import numpy as np

from repro.simulation.rng import derive_seed
from repro.simulation.simulator import SimulationResult
from repro.sweep.cache import ResultCache
from repro.sweep.matrix import SweepTask
from repro.sweep.progress import (
    STATUS_CACHED,
    STATUS_FAILED,
    STATUS_OK,
    ProgressTracker,
    SweepReport,
    TaskRecord,
)

CacheLike = Union[ResultCache, str, Path, None]


def _seed_globals(task: SweepTask) -> None:
    """Pin process-global RNGs to a per-task derivation of the seed.

    The simulator only draws from named streams, but third-party code a
    scheduler might call could touch the global generators; pinning them
    per task makes results independent of execution order and worker
    placement.  Derived from the content fingerprint — the same basis
    as the cache key — so two tasks that share a cache entry also run
    under the same global RNG state.
    """
    seed = derive_seed(task.scenario.generator.seed, f"sweep:{task.fingerprint()}")
    random.seed(seed)
    np.random.seed(seed % 2**32)


def execute_task(task: SweepTask) -> tuple[Optional[SimulationResult], Optional[str], float]:
    """Run one cell in-process; returns (result, traceback, seconds)."""
    from repro.experiments.runner import run_scenario

    start = time.perf_counter()
    try:
        _seed_globals(task)
        result = run_scenario(
            task.scenario, task.scheduler, task.kwargs_dict(), obs=task.obs
        )
        return result, None, time.perf_counter() - start
    except Exception:
        return None, traceback.format_exc(), time.perf_counter() - start


def _execute_task_payload(task: SweepTask) -> tuple[str, Optional[dict], Optional[str], float]:
    """Worker-side wrapper: same as :func:`execute_task` but JSON-safe."""
    result, error, seconds = execute_task(task)
    payload = None if result is None else result.to_json()
    return task.task_id, payload, error, seconds


def _normalize_cache(cache: CacheLike) -> Optional[ResultCache]:
    if cache is None or isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)


def _pool_context():
    """Prefer fork (fast, inherits sys.path); fall back to spawn."""
    try:
        return get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return get_context("spawn")


def run_sweep(
    tasks: Sequence[SweepTask],
    workers: int = 1,
    cache: CacheLike = None,
    progress: Optional[Callable[[str], None]] = None,
    progress_every: int = 1,
) -> SweepReport:
    """Execute every task, through the cache and (optionally) a pool.

    ``cache`` accepts a :class:`ResultCache` or a directory path.
    ``progress`` is an optional ``print``-like callable that receives
    one status line per completed cell.
    """
    tasks = list(tasks)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    seen: set[str] = set()
    for task in tasks:
        if task.task_id in seen:
            raise ValueError(f"duplicate task id {task.task_id!r} in sweep")
        seen.add(task.task_id)

    store = _normalize_cache(cache)
    tracker = ProgressTracker(len(tasks), print_fn=progress, every=progress_every)
    started = time.perf_counter()
    records: dict[str, TaskRecord] = {}
    results: dict[str, SimulationResult] = {}

    pending: list[SweepTask] = []
    for task in tasks:
        cached = store.load(task) if store is not None else None
        if cached is not None:
            record = TaskRecord(task.task_id, STATUS_CACHED)
            records[task.task_id] = record
            results[task.task_id] = cached
            tracker.update(record)
        else:
            pending.append(task)

    def finish(task: SweepTask, result: Optional[SimulationResult],
               error: Optional[str], seconds: float) -> None:
        if result is not None:
            record = TaskRecord(task.task_id, STATUS_OK, seconds)
            results[task.task_id] = result
            if store is not None:
                store.store(task, result)
        else:
            record = TaskRecord(task.task_id, STATUS_FAILED, seconds, error=error)
        records[task.task_id] = record
        tracker.update(record)

    if workers == 1 or len(pending) <= 1:
        for task in pending:
            finish(task, *execute_task(task))
    else:
        by_id = {task.task_id: task for task in pending}
        with ProcessPoolExecutor(
            max_workers=min(workers, len(pending)), mp_context=_pool_context()
        ) as pool:
            futures = {
                pool.submit(_execute_task_payload, task): task for task in pending
            }
            remaining = set(futures)
            while remaining:
                done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in done:
                    task = futures[future]
                    error = future.exception()
                    if error is not None:
                        # Pool-level failure (e.g. a killed worker):
                        # surface it as a per-task record, not a crash.
                        finish(task, None, f"{type(error).__name__}: {error}", 0.0)
                        continue
                    task_id, payload, task_error, seconds = future.result()
                    result = (
                        None if payload is None else SimulationResult.from_json(payload)
                    )
                    finish(by_id[task_id], result, task_error, seconds)

    return SweepReport(
        records=[records[task.task_id] for task in tasks],
        results=results,
        workers=workers,
        wall_seconds=time.perf_counter() - started,
    )
