"""Sweep execution: a process pool with caching and failure capture.

``run_sweep`` is the subsystem's single entry point:

* cached cells are served before any worker spawns, so a warm cache
  recomputes nothing,
* ``workers=1`` runs serially in-process (no multiprocessing at all —
  the debuggable fallback), ``workers>1`` fans out over a
  ``ProcessPoolExecutor``,
* results are deterministic in the task alone: every random draw in a
  run derives from the scenario seed via named streams, and the worker
  additionally pins the *global* RNGs per task so that even ambient
  ``random``/``numpy`` calls cannot make serial and parallel runs
  diverge,
* a raising cell is captured as a per-task failure record (traceback
  included) instead of poisoning the pool or the whole sweep,
* an optional :class:`~repro.service.retry.RetryPolicy` re-runs
  *transient* failures (worker deaths, IO trouble) with capped
  exponential backoff; deterministic cells that raise keep failing
  fast because their errors classify as fatal.

Workers ship results back as ``to_json`` payloads rather than live
objects — smaller pickles, and exactly what the cache stores.
"""

from __future__ import annotations

import logging
import random
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import get_context
from pathlib import Path
from typing import Callable, Optional, Sequence, Union

import numpy as np

from repro.service.retry import FailureKind, RetryPolicy
from repro.simulation.rng import derive_seed
from repro.simulation.simulator import SimulationResult
from repro.sweep.cache import ResultCache
from repro.sweep.matrix import SweepTask
from repro.sweep.progress import (
    STATUS_CACHED,
    STATUS_FAILED,
    STATUS_OK,
    ProgressTracker,
    SweepReport,
    TaskRecord,
)

CacheLike = Union[ResultCache, str, Path, None]

logger = logging.getLogger("repro.sweep.executor")


def _seed_globals(task: SweepTask) -> None:
    """Pin process-global RNGs to a per-task derivation of the seed.

    The simulator only draws from named streams, but third-party code a
    scheduler might call could touch the global generators; pinning them
    per task makes results independent of execution order and worker
    placement.  Derived from the content fingerprint — the same basis
    as the cache key — so two tasks that share a cache entry also run
    under the same global RNG state.
    """
    seed = derive_seed(task.scenario.generator.seed, f"sweep:{task.fingerprint()}")
    random.seed(seed)
    np.random.seed(seed % 2**32)


def execute_task(task: SweepTask) -> tuple[Optional[SimulationResult], Optional[str], float]:
    """Run one cell in-process; returns (result, traceback, seconds)."""
    from repro.experiments.runner import run_scenario

    start = time.perf_counter()
    try:
        _seed_globals(task)
        result = run_scenario(
            task.scenario, task.scheduler, task.kwargs_dict(), obs=task.obs
        )
        return result, None, time.perf_counter() - start
    except Exception:
        return None, traceback.format_exc(), time.perf_counter() - start


def _execute_task_payload(task: SweepTask) -> tuple[str, Optional[dict], Optional[str], float]:
    """Worker-side wrapper: same as :func:`execute_task` but JSON-safe."""
    result, error, seconds = execute_task(task)
    payload = None if result is None else result.to_json()
    return task.task_id, payload, error, seconds


#: Exception names (a traceback's last line) classified as transient —
#: the same infra/IO family :func:`repro.service.retry.classify_exception`
#: treats as retryable, by name because worker tracebacks arrive as text.
_TRANSIENT_ERROR_NAMES = frozenset({
    "OSError",
    "IOError",
    "ConnectionError",
    "ConnectionResetError",
    "ConnectionAbortedError",
    "ConnectionRefusedError",
    "BrokenPipeError",
    "TimeoutError",
    "BrokenProcessPool",
    "EOFError",
})


def classify_traceback(error: Optional[str]) -> FailureKind:
    """Classify a captured traceback string for retry purposes.

    Looks at the exception name on the last non-empty line
    (``"Name: message"``); unknown or unparsable errors are fatal — a
    deterministic cell that raised will raise again, so retrying it
    only wastes workers.
    """
    if not error:
        return FailureKind.FATAL
    lines = [line for line in error.strip().splitlines() if line.strip()]
    if not lines:
        return FailureKind.FATAL
    name = lines[-1].split(":", 1)[0].strip()
    # "module.path.ExcName" from `raise module.Exc(...)` tracebacks.
    name = name.rsplit(".", 1)[-1]
    if name in _TRANSIENT_ERROR_NAMES:
        return FailureKind.TRANSIENT
    return FailureKind.FATAL


def _normalize_cache(cache: CacheLike) -> Optional[ResultCache]:
    if cache is None or isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)


def _pool_context():
    """Prefer fork (fast, inherits sys.path); fall back to spawn."""
    try:
        return get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return get_context("spawn")


def run_sweep(
    tasks: Sequence[SweepTask],
    workers: int = 1,
    cache: CacheLike = None,
    progress: Optional[Callable[[str], None]] = None,
    progress_every: int = 1,
    retry: Optional[RetryPolicy] = None,
) -> SweepReport:
    """Execute every task, through the cache and (optionally) a pool.

    ``cache`` accepts a :class:`ResultCache` or a directory path.
    ``progress`` is an optional ``print``-like callable that receives
    one status line per completed cell.  ``retry`` (a
    :class:`RetryPolicy`) re-runs cells whose failure classifies as
    transient — pool-level worker deaths always do, in-task tracebacks
    via :func:`classify_traceback` — after the policy's capped backoff;
    each record's ``attempts`` reports the executions it took.  In the
    parallel path backoffs are deadlines, not sleeps (other cells keep
    dispatching and collecting), and a worker death that breaks the
    process pool recreates the pool before resubmitting.
    """
    tasks = list(tasks)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    seen: set[str] = set()
    for task in tasks:
        if task.task_id in seen:
            raise ValueError(f"duplicate task id {task.task_id!r} in sweep")
        seen.add(task.task_id)

    store = _normalize_cache(cache)
    tracker = ProgressTracker(len(tasks), print_fn=progress, every=progress_every)
    started = time.perf_counter()
    records: dict[str, TaskRecord] = {}
    results: dict[str, SimulationResult] = {}

    pending: list[SweepTask] = []
    for task in tasks:
        cached = store.load(task) if store is not None else None
        if cached is not None:
            record = TaskRecord(task.task_id, STATUS_CACHED)
            records[task.task_id] = record
            results[task.task_id] = cached
            tracker.update(record)
        else:
            pending.append(task)

    attempts: dict[str, int] = {}
    elapsed: dict[str, float] = {}

    def finish(task: SweepTask, result: Optional[SimulationResult],
               error: Optional[str], seconds: float) -> None:
        total_seconds = elapsed.get(task.task_id, 0.0) + seconds
        tried = attempts.get(task.task_id, 1)
        if result is not None:
            record = TaskRecord(task.task_id, STATUS_OK, total_seconds,
                                attempts=tried)
            results[task.task_id] = result
            if store is not None:
                store.store(task, result)
        else:
            record = TaskRecord(task.task_id, STATUS_FAILED, total_seconds,
                                error=error, attempts=tried)
        records[task.task_id] = record
        tracker.update(record)

    def retry_delay(
        task: SweepTask, kind: FailureKind, seconds: float
    ) -> Optional[float]:
        """Consume one attempt; the backoff (seconds) or None (give up)."""
        if retry is None:
            return None
        tried = attempts.get(task.task_id, 1)
        if not retry.should_retry(kind, tried):
            return None
        delay = retry.delay(tried, key=task.task_id)
        attempts[task.task_id] = tried + 1
        elapsed[task.task_id] = elapsed.get(task.task_id, 0.0) + seconds
        logger.info(
            "retrying %s after %s failure (attempt %d, backoff %.2fs)",
            task.task_id, kind.value, tried, delay,
        )
        return delay

    if workers == 1 or len(pending) <= 1:
        for task in pending:
            while True:
                result, error, seconds = execute_task(task)
                delay = None
                if result is None:
                    delay = retry_delay(task, classify_traceback(error), seconds)
                if delay is None:
                    finish(task, result, error, seconds)
                    break
                if delay > 0:
                    time.sleep(delay)
    else:
        _run_parallel(pending, workers, finish, retry_delay)

    return SweepReport(
        records=[records[task.task_id] for task in tasks],
        results=results,
        workers=workers,
        wall_seconds=time.perf_counter() - started,
    )


def _run_parallel(
    pending: Sequence[SweepTask],
    workers: int,
    finish: Callable[[SweepTask, Optional[SimulationResult], Optional[str], float], None],
    retry_delay: Callable[[SweepTask, FailureKind, float], Optional[float]],
) -> None:
    """The pool path: dispatch, collect, and retry without blocking.

    Retries wait out their backoff as *deadlines* in ``waiting`` while
    other futures keep completing — one flaky cell never serializes the
    sweep.  A worker death marks every in-flight future failed and
    breaks the pool; resubmission goes through :func:`submit` below,
    which recreates the pool, so completed results survive the crash
    and the dead cells either retry (policy permitting) or land as
    per-task failure records.
    """
    max_workers = min(workers, len(pending))
    pool = ProcessPoolExecutor(max_workers=max_workers, mp_context=_pool_context())
    futures: dict = {}
    remaining: set = set()
    waiting: list[tuple[float, SweepTask]] = []  # (deadline, task) backoffs

    def submit(task: SweepTask) -> None:
        nonlocal pool
        try:
            future = pool.submit(_execute_task_payload, task)
        except BrokenProcessPool:
            logger.warning(
                "process pool broken; recreating it to resubmit %s", task.task_id
            )
            pool.shutdown(wait=False)
            pool = ProcessPoolExecutor(
                max_workers=max_workers, mp_context=_pool_context()
            )
            future = pool.submit(_execute_task_payload, task)
        futures[future] = task
        remaining.add(future)

    try:
        for task in pending:
            submit(task)
        while remaining or waiting:
            now = time.monotonic()
            if waiting:
                due = [entry for entry in waiting if entry[0] <= now]
                if due:
                    waiting = [entry for entry in waiting if entry[0] > now]
                    for _, task in due:
                        submit(task)
            if not remaining:
                # Everything left is waiting out a backoff deadline.
                time.sleep(max(0.0, min(when for when, _ in waiting) - now))
                continue
            timeout = (
                max(0.0, min(when for when, _ in waiting) - now)
                if waiting else None
            )
            done, remaining = wait(
                remaining, timeout=timeout, return_when=FIRST_COMPLETED
            )
            for future in done:
                task = futures.pop(future)
                error = future.exception()
                if error is not None:
                    # Pool-level failure (e.g. a killed worker) —
                    # always transient: the cell never got to run.
                    delay = retry_delay(task, FailureKind.TRANSIENT, 0.0)
                    if delay is None:
                        finish(task, None, f"{type(error).__name__}: {error}", 0.0)
                    else:
                        waiting.append((time.monotonic() + delay, task))
                    continue
                _, payload, task_error, seconds = future.result()
                result = (
                    None if payload is None else SimulationResult.from_json(payload)
                )
                delay = None
                if result is None:
                    delay = retry_delay(
                        task, classify_traceback(task_error), seconds
                    )
                if delay is None:
                    finish(task, result, task_error, seconds)
                else:
                    waiting.append((time.monotonic() + delay, task))
    finally:
        pool.shutdown(wait=True)
