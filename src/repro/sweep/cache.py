"""Content-addressed on-disk cache of simulation results.

A cell's cache key is the SHA-256 of its canonical task spec (scenario
config + scheduler + scheduler kwargs) combined with a code **schema
version**.  Re-running a figure therefore recomputes only cells whose
inputs changed; bumping :data:`SCHEMA_VERSION` after a
behaviour-changing simulator edit invalidates every stale entry at
once without touching the directory.

Entries are single JSON files (``<key>.json``) written atomically, so a
killed sweep never leaves a truncated entry behind and concurrent
sweeps sharing a directory at worst redo a cell.

The cache also garbage-collects: :meth:`ResultCache.prune` applies
age-, size- and count-bounds (oldest-written entries evicted first) and
sweeps orphaned temp files; ``repro cache`` exposes inspect/prune on
the command line.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from repro.simulation.simulator import SimulationResult
from repro.sweep.matrix import SweepTask, canonical_json

#: Bump whenever simulator/scheduler semantics change in a way that
#: alters results for identical configs — it invalidates all entries.
#: 2: heterogeneity-aware cluster model (GPU generations; per-type
#:    stats added to SimulationResult/AppStats; ScenarioConfig gained
#:    ``gpu_mix``, GeneratorConfig the gpu-type-affinity knobs).
#: 3: pluggable performance model (per-family x per-generation
#:    throughput matrices; ``num_migrations`` added to
#:    SimulationResult, ``migration`` knobs to SimulationConfig,
#:    ``perf_matrix`` to ScenarioConfig/GeneratorConfig/Trace).
#: 4: observability (SimulationResult gained fragmentation/starvation
#:    series, ``profile`` and ``round_stats``; AppStats gained
#:    ``starved_rounds_max``) — older payloads lack the new fields.
SCHEMA_VERSION = 4

#: Orphaned ``.tmp-*`` files from a killed writer older than this are
#: swept by :meth:`ResultCache.prune`.
_TMP_MAX_AGE_SECONDS = 3600.0


@dataclass(frozen=True)
class CacheEntry:
    """Metadata of one on-disk cache entry (payload not loaded)."""

    path: Path
    key: str
    size_bytes: int
    modified: float

    def describe(self) -> dict:
        """Read the entry's header fields (task id, scheduler, schema).

        Returns an empty dict for corrupt/unreadable entries instead of
        raising — inspect must work on directories a killed sweep left
        behind.
        """
        try:
            with self.path.open("r", encoding="utf-8") as fh:
                entry = json.load(fh)
            return {
                "task_id": entry.get("task_id"),
                "schema_version": entry.get("schema_version"),
                "scheduler": entry.get("spec", {}).get("scheduler"),
            }
        except (OSError, ValueError):
            return {}


@dataclass(frozen=True)
class PruneStats:
    """What one :meth:`ResultCache.prune` call did."""

    removed: int
    kept: int
    bytes_freed: int
    tmp_removed: int = 0


class ResultCache:
    """Directory of content-addressed :class:`SimulationResult` payloads.

    ``hits`` / ``misses`` / ``writes`` counters make cache behaviour
    observable (and testable) without instrumenting the executor.
    """

    def __init__(
        self,
        cache_dir: Union[str, Path],
        schema_version: int = SCHEMA_VERSION,
    ) -> None:
        self.cache_dir = Path(cache_dir)
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.schema_version = schema_version
        self.hits = 0
        self.misses = 0
        self.writes = 0

    def key_for(self, task: SweepTask) -> str:
        """Stable content hash of (task spec, schema version)."""
        material = canonical_json(
            {"schema_version": self.schema_version, "spec": task.spec()}
        )
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    def path_for(self, task: SweepTask) -> Path:
        """Where the entry for ``task`` lives (whether or not it exists)."""
        return self.cache_dir / f"{self.key_for(task)}.json"

    def load(self, task: SweepTask) -> Optional[SimulationResult]:
        """Return the cached result for ``task``, or ``None`` on a miss.

        Corrupt, unreadable or schema-mismatched entries count as
        misses — the executor will recompute and overwrite them.
        """
        path = self.path_for(task)
        try:
            with path.open("r", encoding="utf-8") as fh:
                entry = json.load(fh)
            if entry.get("schema_version") != self.schema_version:
                raise ValueError("schema version mismatch")
            result = SimulationResult.from_json(entry["result"])
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def store(self, task: SweepTask, result: SimulationResult) -> Path:
        """Atomically persist ``result`` under the task's content key."""
        path = self.path_for(task)
        entry = {
            "schema_version": self.schema_version,
            "task_id": task.task_id,
            "spec": task.spec(),
            "result": result.to_json(),
        }
        fd, tmp_name = tempfile.mkstemp(
            dir=self.cache_dir, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(entry, fh)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.writes += 1
        return path

    # ------------------------------------------------------------------
    # Inspection and garbage collection
    # ------------------------------------------------------------------
    def entries(self) -> list[CacheEntry]:
        """All entries, oldest (least recently written) first."""
        found: list[CacheEntry] = []
        for path in self.cache_dir.glob("*.json"):
            if path.name.startswith("."):
                continue
            try:
                stat = path.stat()
            except OSError:
                continue  # deleted by a concurrent prune
            found.append(
                CacheEntry(
                    path=path,
                    key=path.stem,
                    size_bytes=stat.st_size,
                    modified=stat.st_mtime,
                )
            )
        found.sort(key=lambda entry: (entry.modified, entry.key))
        return found

    def total_bytes(self) -> int:
        """Aggregate on-disk size of all entries."""
        return sum(entry.size_bytes for entry in self.entries())

    def prune(
        self,
        max_age_seconds: Optional[float] = None,
        max_total_bytes: Optional[int] = None,
        max_entries: Optional[int] = None,
        now: Optional[float] = None,
    ) -> PruneStats:
        """Age- and size-bounded garbage collection.

        Entries older than ``max_age_seconds`` are dropped first; then,
        while the directory exceeds ``max_total_bytes`` or
        ``max_entries``, the oldest surviving entries go — eviction is
        strictly oldest-written-first, so a warm sweep's fresh cells
        survive a bound that evicts last month's.  Orphaned ``.tmp-*``
        files from killed writers are swept too.  All bounds are
        optional; with none given only the tmp sweep runs.
        """
        for label, bound in (
            ("max_age_seconds", max_age_seconds),
            ("max_total_bytes", max_total_bytes),
            ("max_entries", max_entries),
        ):
            if bound is not None and bound < 0:
                raise ValueError(f"{label} must be >= 0, got {bound}")
        clock = time.time() if now is None else now
        entries = self.entries()
        removed = 0
        bytes_freed = 0

        def drop(entry: CacheEntry) -> None:
            nonlocal removed, bytes_freed
            try:
                entry.path.unlink()
            except OSError:
                return  # already gone: a concurrent prune won the race
            removed += 1
            bytes_freed += entry.size_bytes

        survivors: list[CacheEntry] = []
        for entry in entries:
            if (
                max_age_seconds is not None
                and clock - entry.modified > max_age_seconds
            ):
                drop(entry)
            else:
                survivors.append(entry)
        if max_entries is not None:
            while len(survivors) > max_entries:
                drop(survivors.pop(0))
        if max_total_bytes is not None:
            total = sum(entry.size_bytes for entry in survivors)
            while survivors and total > max_total_bytes:
                oldest = survivors.pop(0)
                total -= oldest.size_bytes
                drop(oldest)
        tmp_removed = 0
        for path in self.cache_dir.glob(".tmp-*"):
            try:
                if clock - path.stat().st_mtime > _TMP_MAX_AGE_SECONDS:
                    path.unlink()
                    tmp_removed += 1
            except OSError:
                continue
        return PruneStats(
            removed=removed,
            kept=len(survivors),
            bytes_freed=bytes_freed,
            tmp_removed=tmp_removed,
        )

    def __len__(self) -> int:
        # glob("*.json") also matches dot-prefixed names, which would
        # count orphaned .tmp-* files from a killed writer as entries.
        return sum(
            1 for p in self.cache_dir.glob("*.json") if not p.name.startswith(".")
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ResultCache({str(self.cache_dir)!r}, schema={self.schema_version}, "
            f"hits={self.hits}, misses={self.misses}, writes={self.writes})"
        )
