"""Content-addressed on-disk cache of simulation results.

A cell's cache key is the SHA-256 of its canonical task spec (scenario
config + scheduler + scheduler kwargs) combined with a code **schema
version**.  Re-running a figure therefore recomputes only cells whose
inputs changed; bumping :data:`SCHEMA_VERSION` after a
behaviour-changing simulator edit invalidates every stale entry at
once without touching the directory.

Entries are single JSON files (``<key>.json``) written atomically, so a
killed sweep never leaves a truncated entry behind and concurrent
sweeps sharing a directory at worst redo a cell.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Optional, Union

from repro.simulation.simulator import SimulationResult
from repro.sweep.matrix import SweepTask, canonical_json

#: Bump whenever simulator/scheduler semantics change in a way that
#: alters results for identical configs — it invalidates all entries.
SCHEMA_VERSION = 1


class ResultCache:
    """Directory of content-addressed :class:`SimulationResult` payloads.

    ``hits`` / ``misses`` / ``writes`` counters make cache behaviour
    observable (and testable) without instrumenting the executor.
    """

    def __init__(
        self,
        cache_dir: Union[str, Path],
        schema_version: int = SCHEMA_VERSION,
    ) -> None:
        self.cache_dir = Path(cache_dir)
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.schema_version = schema_version
        self.hits = 0
        self.misses = 0
        self.writes = 0

    def key_for(self, task: SweepTask) -> str:
        """Stable content hash of (task spec, schema version)."""
        material = canonical_json(
            {"schema_version": self.schema_version, "spec": task.spec()}
        )
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    def path_for(self, task: SweepTask) -> Path:
        """Where the entry for ``task`` lives (whether or not it exists)."""
        return self.cache_dir / f"{self.key_for(task)}.json"

    def load(self, task: SweepTask) -> Optional[SimulationResult]:
        """Return the cached result for ``task``, or ``None`` on a miss.

        Corrupt, unreadable or schema-mismatched entries count as
        misses — the executor will recompute and overwrite them.
        """
        path = self.path_for(task)
        try:
            with path.open("r", encoding="utf-8") as fh:
                entry = json.load(fh)
            if entry.get("schema_version") != self.schema_version:
                raise ValueError("schema version mismatch")
            result = SimulationResult.from_json(entry["result"])
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def store(self, task: SweepTask, result: SimulationResult) -> Path:
        """Atomically persist ``result`` under the task's content key."""
        path = self.path_for(task)
        entry = {
            "schema_version": self.schema_version,
            "task_id": task.task_id,
            "spec": task.spec(),
            "result": result.to_json(),
        }
        fd, tmp_name = tempfile.mkstemp(
            dir=self.cache_dir, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(entry, fh)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.writes += 1
        return path

    def __len__(self) -> int:
        # glob("*.json") also matches dot-prefixed names, which would
        # count orphaned .tmp-* files from a killed writer as entries.
        return sum(
            1 for p in self.cache_dir.glob("*.json") if not p.name.startswith(".")
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ResultCache({str(self.cache_dir)!r}, schema={self.schema_version}, "
            f"hits={self.hits}, misses={self.misses}, writes={self.writes})"
        )
