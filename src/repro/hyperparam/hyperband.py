"""HyperBand app scheduler (Li et al., referenced in Section 5.2).

"HyperBand launches several ML training jobs each with user-configured
equal priority ... HyperBand kills the bottom-half of jobs with poor
convergence periodically after a fixed number of iterations until a
single job remains."

This implements that successive-halving loop over a live app: rungs at
geometrically growing iteration counts; when every surviving job has
reached the current rung, the worse ``1 - 1/eta`` fraction (half, for
``eta = 2``) is killed by observed loss.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.hyperparam.base import AppSchedulerBase

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.workload.app import App
    from repro.workload.job import Job


class HyperBand(AppSchedulerBase):
    """Successive halving on observed loss at iteration rungs."""

    name = "hyperband"

    def __init__(self, app: App, min_iterations: float = 50.0, eta: float = 2.0) -> None:
        if min_iterations <= 0:
            raise ValueError(f"min_iterations must be > 0, got {min_iterations}")
        if eta <= 1.0:
            raise ValueError(f"eta must be > 1, got {eta}")
        super().__init__(app)
        self.min_iterations = min_iterations
        self.eta = eta
        self.rung_index = 0

    def current_rung(self) -> float:
        """Iteration threshold of the rung currently being filled."""
        return self.min_iterations * (self.eta**self.rung_index)

    def step(self, now: float) -> list[Job]:
        alive = self.alive()
        for job in alive:
            self.observe(job)
        if len(alive) <= 1:
            return []
        rung = self.current_rung()
        # A job past its total work before the rung still counts as
        # having "reached" it — it produced all the signal it ever will.
        reached = [
            job
            for job in alive
            if job.iterations_done >= rung - 1e-9
            or job.remaining_work <= 1e-9
        ]
        if len(reached) < len(alive):
            return []
        # Everyone reached the rung: kill the worst 1 - 1/eta fraction.
        survivors = max(1, int(len(alive) / self.eta))
        by_loss = sorted(
            alive, key=lambda job: (job.current_loss(), job.job_id)
        )
        victims = by_loss[survivors:]
        self.rung_index += 1
        return victims
