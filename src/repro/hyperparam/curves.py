"""Parametric loss curves and work-left estimation.

Real training jobs expose loss values over iterations; the paper's
profiler (Section 7) fits "a best-fit sub-linear or super-linear curve"
to those losses to estimate the work left to reach target accuracy.
We substitute a parametric power-law family that matches the empirical
shape of SGD training curves:

    loss(i) = floor + (initial - floor) * (1 + i / knee) ** (-alpha)

``alpha`` controls convergence speed — it is the quantity that differs
between "good" and "poor" hyper-parameter choices, which is exactly what
HyperBand / HyperDrive / SLAQ discriminate on.

:func:`fit_power_law` recovers the curve parameters from noisy samples
by least squares on a log transform, and
:func:`predict_iterations_to_loss` inverts a curve, which is the
work-left estimator used by the AGENT.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class LossCurve:
    """A power-law training-loss curve.

    ``initial`` is the loss at iteration 0, ``floor`` the asymptotic
    loss, ``alpha`` the convergence exponent and ``knee`` the iteration
    scale at which decay sets in.
    """

    initial: float
    floor: float
    alpha: float
    knee: float = 100.0

    def __post_init__(self) -> None:
        if self.initial <= self.floor:
            raise ValueError(
                f"initial loss {self.initial} must exceed floor {self.floor}"
            )
        if self.floor < 0:
            raise ValueError(f"loss floor must be >= 0, got {self.floor}")
        if self.alpha <= 0:
            raise ValueError(f"alpha must be > 0, got {self.alpha}")
        if self.knee <= 0:
            raise ValueError(f"knee must be > 0, got {self.knee}")

    def loss_at(self, iteration: float) -> float:
        """Loss value after ``iteration`` iterations (clamped at 0)."""
        if iteration < 0:
            raise ValueError(f"iteration must be >= 0, got {iteration}")
        decay = (1.0 + iteration / self.knee) ** (-self.alpha)
        return self.floor + (self.initial - self.floor) * decay

    def iterations_to(self, target_loss: float) -> float:
        """Iterations needed to reach ``target_loss``.

        Returns ``inf`` when the target is at or below the floor (the
        curve never reaches it), 0 when already satisfied at start.
        """
        if target_loss >= self.initial:
            return 0.0
        if target_loss <= self.floor:
            return math.inf
        ratio = (target_loss - self.floor) / (self.initial - self.floor)
        return self.knee * (ratio ** (-1.0 / self.alpha) - 1.0)

    def sample(self, iterations: Sequence[float]) -> list[float]:
        """Loss values at each requested iteration."""
        return [self.loss_at(i) for i in iterations]


def fit_power_law(
    iterations: Sequence[float],
    losses: Sequence[float],
    floor: float = 0.0,
    knee: float = 100.0,
) -> LossCurve:
    """Fit a :class:`LossCurve` to observed ``(iteration, loss)`` samples.

    Linearises the power law — ``log(loss - floor)`` is affine in
    ``log(1 + i / knee)`` — and solves the 1-D least-squares problem in
    closed form, which keeps the AGENT's bid-preparation path dependency
    free and fast.  ``floor`` and ``knee`` are treated as known (the
    profiler can sweep them); at least two distinct samples above the
    floor are required.
    """
    if len(iterations) != len(losses):
        raise ValueError("iterations and losses must have equal length")
    points = [
        (math.log1p(i / knee), math.log(loss - floor))
        for i, loss in zip(iterations, losses)
        if loss > floor and i >= 0
    ]
    if len(points) < 2:
        raise ValueError("need at least two samples above the loss floor to fit")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    n = len(points)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    var_x = sum((x - mean_x) ** 2 for x in xs)
    if var_x <= 1e-12:
        raise ValueError("all samples at the same iteration; cannot fit a slope")
    slope = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)) / var_x
    intercept = mean_y - slope * mean_x
    alpha = max(1e-6, -slope)
    initial = floor + math.exp(intercept)
    if initial <= floor:
        initial = floor + 1e-9
    return LossCurve(initial=initial, floor=floor, alpha=alpha, knee=knee)


def predict_iterations_to_loss(
    iterations: Sequence[float],
    losses: Sequence[float],
    target_loss: float,
    floor: float = 0.0,
    knee: float = 100.0,
) -> float:
    """Estimate total iterations to reach ``target_loss`` from samples.

    This is the AGENT's work-left estimator: fit the observed curve,
    invert it at the target.  Returns ``inf`` when the fitted curve
    never reaches the target (the job would be classified "poor").
    """
    curve = fit_power_law(iterations, losses, floor=floor, knee=knee)
    return curve.iterations_to(target_loss)
