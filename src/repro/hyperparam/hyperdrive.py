"""HyperDrive app scheduler (Rasley et al., referenced in Section 5.2).

"HyperDrive ... continually monitors the jobs' loss convergence
properties to classify jobs as good, promising, and poor.  HyperDrive
then gives varying execution priorities to different jobs by
controlling the maximum parallelism for each constituent job, with
higher priorities for good jobs and terminating a job as soon as it is
classified as poor."

Classification here follows the paper's description: fit the observed
loss curve, project iterations to the target loss, and compare against
the cohort — jobs projected far beyond the best job are poor (killed),
jobs close to the best are good (full parallelism), the rest promising
(halved parallelism via :attr:`Job.parallelism_limit`).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.hyperparam.base import AppSchedulerBase, JobClass
from repro.hyperparam.curves import fit_power_law

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.workload.app import App
    from repro.workload.job import Job


class HyperDrive(AppSchedulerBase):
    """Good / promising / poor classification with priority control."""

    name = "hyperdrive"

    def __init__(
        self,
        app: App,
        target_loss: float = 0.5,
        warmup_iterations: float = 50.0,
        good_factor: float = 1.5,
        poor_factor: float = 4.0,
    ) -> None:
        if good_factor <= 1.0 or poor_factor <= good_factor:
            raise ValueError(
                "need 1 < good_factor < poor_factor, got "
                f"{good_factor} / {poor_factor}"
            )
        super().__init__(app)
        self.target_loss = target_loss
        self.warmup_iterations = warmup_iterations
        self.good_factor = good_factor
        self.poor_factor = poor_factor
        self.classes: dict[str, JobClass] = {
            job.job_id: JobClass.PROMISING for job in app.jobs
        }

    def projected_iterations(self, job: Job) -> float:
        """Projected total iterations for ``job`` to reach the target loss."""
        samples = self.samples_of(job)
        if len(samples) < 2:
            return math.inf
        try:
            curve = fit_power_law([s[0] for s in samples], [s[1] for s in samples])
        except ValueError:
            return math.inf
        return curve.iterations_to(self.target_loss)

    def step(self, now: float) -> list[Job]:
        alive = self.alive()
        for job in alive:
            self.observe(job)
        if len(alive) <= 1:
            return []
        warmed = [job for job in alive if job.iterations_done >= self.warmup_iterations]
        if len(warmed) < 2:
            return []
        projections = {job.job_id: self.projected_iterations(job) for job in warmed}
        finite = [p for p in projections.values() if not math.isinf(p)]
        if not finite:
            return []
        best = min(finite)
        victims: list[Job] = []
        for job in warmed:
            projection = projections[job.job_id]
            if math.isinf(projection) or projection > self.poor_factor * best:
                self.classes[job.job_id] = JobClass.POOR
                victims.append(job)
            elif projection <= self.good_factor * best:
                self.classes[job.job_id] = JobClass.GOOD
                job.parallelism_limit = None  # full priority
            else:
                self.classes[job.job_id] = JobClass.PROMISING
                job.parallelism_limit = max(1, job.spec.max_parallelism // 2)
        # Never kill everyone: spare the best-projected job.
        if len(victims) >= len(alive):
            spared = min(victims, key=lambda job: projections.get(job.job_id, math.inf))
            victims = [job for job in victims if job.job_id != spared.job_id]
            self.classes[spared.job_id] = JobClass.PROMISING
        return victims
