"""Intra-app (top-level) scheduler API — Section 5.2's app schedulers.

The paper's two-level design keeps hyper-parameter logic inside the
app: HyperBand / HyperDrive decide which exploration jobs to kill and
how to prioritise survivors, while the AGENT pulls four quantities from
them to prepare bids: total work and work left per job, placement
sensitivity, and per-job maximum parallelism.

:class:`AppSchedulerBase` is that narrow API.  The simulator calls
:meth:`step` at every scheduling round; the returned jobs are killed
(their GPUs return to the pool).  Work-left estimates default to the
curve-fitting estimator of Section 7's profiler, with the clairvoyant
ground truth as fallback — both paths are exercised by tests.
"""

from __future__ import annotations

import abc
import enum
import math
from typing import TYPE_CHECKING, Optional

from repro.hyperparam.curves import fit_power_law

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (workload -> curves)
    from repro.workload.app import App
    from repro.workload.job import Job


class JobClass(enum.Enum):
    """HyperDrive's convergence classes (Section 5.2)."""

    GOOD = "good"
    PROMISING = "promising"
    POOR = "poor"


class AppSchedulerBase(abc.ABC):
    """Base class for intra-app hyper-parameter schedulers."""

    name: str = "base"

    def __init__(self, app: App) -> None:
        self.app = app
        #: Observed (iteration, loss) samples per job, fed by :meth:`observe`.
        self._samples: dict[str, list[tuple[float, float]]] = {
            job.job_id: [] for job in app.jobs
        }

    # ------------------------------------------------------------------
    # Profiling feed (Section 7: the AM profiler parses training logs)
    # ------------------------------------------------------------------
    def observe(self, job: Job) -> None:
        """Record the job's current (iteration, loss) point."""
        if job.spec.loss_curve is None:
            return
        samples = self._samples[job.job_id]
        point = (job.iterations_done, job.current_loss())
        if not samples or point[0] > samples[-1][0] + 1e-9:
            samples.append(point)

    def samples_of(self, job: Job) -> list[tuple[float, float]]:
        """All recorded samples for one job."""
        return list(self._samples[job.job_id])

    # ------------------------------------------------------------------
    # The AGENT-facing API (Section 5.2, "ML App Scheduler to Agent API")
    # ------------------------------------------------------------------
    def work_left(self, job: Job, target_loss: Optional[float] = None) -> float:
        """Estimated serial GPU-minutes left for ``job``.

        With a ``target_loss`` and at least two loss observations, fits
        the observed curve and converts projected iterations into work
        ("we minimally modify these schedulers to report their
        internally-tracked projected iterations to completion").
        Otherwise falls back to the clairvoyant remaining work.
        """
        samples = self._samples[job.job_id]
        if target_loss is not None and len(samples) >= 2:
            try:
                curve = fit_power_law(
                    [s[0] for s in samples], [s[1] for s in samples]
                )
            except ValueError:
                return job.remaining_work
            projected = curve.iterations_to(target_loss)
            if math.isinf(projected):
                return math.inf
            left_iterations = max(0.0, projected - job.iterations_done)
            minutes_per_iteration = job.spec.serial_work / job.spec.total_iterations
            return left_iterations * minutes_per_iteration
        return job.remaining_work

    def max_parallelism(self, job: Job) -> int:
        """Current parallelism bound for ``job`` (priority mechanism)."""
        return job.max_parallelism

    # ------------------------------------------------------------------
    # Scheduling decisions
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def step(self, now: float) -> list[Job]:
        """Advance scheduler state; return jobs to terminate now.

        Called by the simulator at every scheduling round.  Must never
        return the app's last active job (an app cannot kill itself).
        """

    def alive(self) -> list[Job]:
        """Jobs still running or waiting."""
        return self.app.active_jobs()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(app={self.app.app_id}, alive={len(self.alive())})"
