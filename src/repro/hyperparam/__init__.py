"""Hyper-parameter exploration substrate: loss curves and app schedulers.

The paper's apps are hyper-parameter explorations managed by HyperBand
or HyperDrive (Section 5.2).  This package implements both schedulers,
the parametric loss curves that stand in for real training convergence,
and the curve-fitting work estimator the AGENT uses to compute the work
left per job (Section 7's profiler).
"""

from repro.hyperparam.curves import LossCurve, fit_power_law, predict_iterations_to_loss
from repro.hyperparam.base import AppSchedulerBase, JobClass
from repro.hyperparam.hyperband import HyperBand
from repro.hyperparam.hyperdrive import HyperDrive

__all__ = [
    "AppSchedulerBase",
    "HyperBand",
    "HyperDrive",
    "JobClass",
    "LossCurve",
    "fit_power_law",
    "predict_iterations_to_loss",
]
