"""Evaluation metrics of Section 8.1.

* **Max Fairness** — worst finish-time fairness across apps (lower is
  fairer), and distance-from-ideal against the contention bound,
* **Jain's Fairness** — variance of rho across apps (1.0 is best),
* **Placement Score** — the 4-level locality score CDF,
* **GPU Time** — total GPU-minutes consumed (lower = more efficient),
* app completion time statistics and CDFs,
* per-app GPU allocation timelines (Figure 8).
"""

from repro.metrics.fairness import (
    distance_from_ideal,
    jain_index,
    max_fairness,
    rho_spread,
)
from repro.metrics.hetero import is_heterogeneous, per_type_rows
from repro.metrics.jct import average_jct, cdf, jct_summary, percentile
from repro.metrics.placement import placement_cdf, score_summary
from repro.metrics.sharing import (
    sharing_incentive_fraction,
    violators,
    worst_violation,
)
from repro.metrics.timeline import allocation_series, sample_series
from repro.metrics.utilization import gpu_time_total, utilization

__all__ = [
    "allocation_series",
    "average_jct",
    "cdf",
    "distance_from_ideal",
    "gpu_time_total",
    "is_heterogeneous",
    "jain_index",
    "jct_summary",
    "max_fairness",
    "per_type_rows",
    "percentile",
    "placement_cdf",
    "rho_spread",
    "sample_series",
    "score_summary",
    "sharing_incentive_fraction",
    "utilization",
    "violators",
    "worst_violation",
]
