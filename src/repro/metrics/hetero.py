"""Per-GPU-generation breakdowns for heterogeneous-cluster runs.

A mixed V100/P100/K80 fleet raises questions the aggregate metrics
cannot answer: which generation did the work, was the slow silicon left
idle, and did apps that ran mostly on old GPUs pay for it in fairness
or completion time?  :func:`per_type_rows` answers them from the
per-type GPU-time integrals the simulator records — no re-simulation
needed, so it works on cached :class:`SimulationResult` payloads too.

Per-type rho / JCT / placement are GPU-time-weighted means: an app
contributes to a generation's row in proportion to the device-minutes
it spent on that generation, which attributes mixed-fleet apps
fractionally instead of forcing a single label per app.
"""

from __future__ import annotations

import math

from repro.simulation.simulator import SimulationResult


def _weighted_mean(pairs: list[tuple[float, float]]) -> float:
    """Weighted mean of (value, weight) pairs; ``nan`` with no weight."""
    total_weight = sum(weight for _, weight in pairs)
    if total_weight <= 0:
        return math.nan
    return sum(value * weight for value, weight in pairs) / total_weight


def per_type_rows(result: SimulationResult) -> list[dict]:
    """One metrics row per GPU generation present in the run.

    Columns: GPU count, device GPU-time, share of all GPU-time,
    utilisation over the makespan window, and GPU-time-weighted mean
    rho (finite, finished apps), mean JCT and mean placement score.
    Weighted columns are ``nan`` when no finished app touched the
    generation.
    """
    type_names = sorted(
        set(result.cluster_gpus_by_type) | set(result.gpu_time_by_type)
    )
    total_gpu_time = sum(result.gpu_time_by_type.values())
    rows: list[dict] = []
    for name in type_names:
        gpus = result.cluster_gpus_by_type.get(name, 0)
        gpu_time = result.gpu_time_by_type.get(name, 0.0)
        rho_pairs: list[tuple[float, float]] = []
        jct_pairs: list[tuple[float, float]] = []
        placement_pairs: list[tuple[float, float]] = []
        for stats in result.app_stats:
            weight = stats.gpu_time_by_type.get(name, 0.0)
            if weight <= 0:
                continue
            if stats.finished_at is not None and math.isfinite(stats.rho):
                rho_pairs.append((stats.rho, weight))
            if stats.completion_time is not None:
                jct_pairs.append((stats.completion_time, weight))
            if stats.mean_placement_score > 0.0:
                placement_pairs.append((stats.mean_placement_score, weight))
        utilisation = (
            gpu_time / (gpus * result.makespan)
            if gpus > 0 and result.makespan > 0
            else 0.0
        )
        rows.append(
            {
                "gpu_type": name,
                "gpus": gpus,
                "gpu_time": gpu_time,
                "gpu_time_share": (
                    gpu_time / total_gpu_time if total_gpu_time > 0 else 0.0
                ),
                "utilization": utilisation,
                "weighted_rho": _weighted_mean(rho_pairs),
                "weighted_jct": _weighted_mean(jct_pairs),
                "weighted_placement": _weighted_mean(placement_pairs),
            }
        )
    return rows


def is_heterogeneous(result: SimulationResult) -> bool:
    """True when the run's cluster mixes more than one GPU generation."""
    return len(result.cluster_gpus_by_type) > 1
