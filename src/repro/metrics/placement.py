"""Placement score aggregation (Figure 7).

Each app's score is the time-weighted mean of its jobs' 4-level
placement scores while holding GPUs; Figure 7 plots the CDF of those
scores per scheduler ("A score of 1.0 indicates GPUs are tightly packed
while lower scores imply GPUs that are spread out").
"""

from __future__ import annotations

from typing import Sequence

from repro.metrics.jct import cdf, percentile


def placement_cdf(scores: Sequence[float]) -> list[tuple[float, float]]:
    """CDF points over per-app placement scores."""
    return cdf(scores)


def score_summary(scores: Sequence[float]) -> dict[str, float]:
    """Mean / median / p10 of per-app placement scores.

    The p10 (worst decile) is where placement-unaware schedulers
    separate most clearly from packing ones.
    """
    if not scores:
        raise ValueError("score_summary needs at least one score")
    return {
        "mean": sum(scores) / len(scores),
        "median": percentile(scores, 50.0),
        "p10": percentile(scores, 10.0),
    }
