"""App completion time statistics and CDFs (Figure 6).

The paper reports average app completion times ("THEMIS is ~4.6%,
~55.5%, and ~24.4% better than Gandiva, SLAQ, and Tiresias respectively
on average app completion time") and plots the full CDF.
"""

from __future__ import annotations

import math
from typing import Sequence


def cdf(values: Sequence[float]) -> list[tuple[float, float]]:
    """Empirical CDF points ``(x, P[X <= x])`` in ascending x order."""
    ordered = sorted(values)
    n = len(ordered)
    if n == 0:
        return []
    return [(x, (i + 1) / n) for i, x in enumerate(ordered)]


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, ``q`` in [0, 100]."""
    if not values:
        raise ValueError("percentile needs at least one value")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    weight = rank - low
    # a + (b - a) * w is exact at w = 0 and never overshoots b, unlike
    # the a*(1-w) + b*w form which can exceed max(values) by one ulp.
    return ordered[low] + (ordered[high] - ordered[low]) * weight


def average_jct(completion_times: Sequence[float]) -> float:
    """Mean app completion time."""
    if not completion_times:
        raise ValueError("average_jct needs at least one completion time")
    return sum(completion_times) / len(completion_times)


def jct_summary(completion_times: Sequence[float]) -> dict[str, float]:
    """Mean / median / p95 / max of app completion times."""
    return {
        "mean": average_jct(completion_times),
        "median": percentile(completion_times, 50.0),
        "p95": percentile(completion_times, 95.0),
        "max": max(completion_times),
    }
