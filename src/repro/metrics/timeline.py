"""Per-app GPU allocation timelines (Figure 8).

Figure 8 plots "a simplified timeline of GPU allocations for 2 ML apps"
— how many GPUs each app holds over time, showing that Themis
preferentially completes apps with small ideal times without starving
the long ones.  Runs with ``record_timeline=True`` append a
``(time, app_id, gpus_held)`` record at every allocation change; this
module turns those records into step-function series.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.simulation.simulator import SimulationResult


def allocation_series(
    result: SimulationResult,
    app_id: str,
    until: Optional[float] = None,
) -> list[tuple[float, int]]:
    """Step-function ``(time, gpus_held)`` series for one app.

    Consecutive records at the same instant collapse to the last value
    (the allocation that actually took effect).  Raises when the run
    was not executed with ``record_timeline=True``.
    """
    if not result.timeline:
        raise ValueError(
            "run has no timeline; pass record_timeline=True in SimulationConfig"
        )
    points: list[tuple[float, int]] = []
    for time, record_app, gpus in result.timeline:
        if record_app != app_id:
            continue
        if until is not None and time > until:
            break
        if points and abs(points[-1][0] - time) < 1e-9:
            points[-1] = (time, gpus)
        else:
            points.append((time, gpus))
    return points


def sample_series(
    series: Sequence[tuple[float, int]],
    times: Sequence[float],
) -> list[int]:
    """Sample a step series at given times (0 before the first record)."""
    values: list[int] = []
    index = 0
    current = 0
    for t in times:
        while index < len(series) and series[index][0] <= t + 1e-9:
            current = series[index][1]
            index += 1
        values.append(current)
    return values
