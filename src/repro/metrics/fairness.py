"""Fairness metrics: max finish-time fairness and Jain's index.

Section 8.1: "The Max Fairness metric captures the worst finish time
fairness across apps.  Lower values of max fairness indicate a fairer
allocation." and "We use Jain's Fairness to measure the variance of
rho values across apps.  Jain's Fairness close to 1 indicates lower
variance in rho and is better."
"""

from __future__ import annotations

import math
from typing import Sequence


def max_fairness(rhos: Sequence[float]) -> float:
    """Worst (largest) finish-time fairness across apps."""
    values = [r for r in rhos if not math.isnan(r)]
    if not values:
        raise ValueError("max_fairness needs at least one rho value")
    return max(values)


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index: ``(sum x)^2 / (n * sum x^2)``; 1.0 is best.

    Unbounded (``inf``) entries — fully starved apps — drive the index
    to 0, which is the correct limiting behaviour.
    """
    finite = [v for v in values if not math.isinf(v)]
    if len(finite) < len(values):
        return 0.0
    if not finite:
        raise ValueError("jain_index needs at least one value")
    total = sum(finite)
    squares = sum(v * v for v in finite)
    if squares == 0.0:
        return 1.0
    return (total * total) / (len(finite) * squares)


def distance_from_ideal(rhos: Sequence[float], contention: float) -> float:
    """Fractional distance of the worst rho from the ideal value.

    Section 8.3: with peak contention ``c`` times the cluster capacity
    "an ideal scheduler would be able to achieve a maximum finish-time
    fairness of [c]"; the paper reports Themis ~7% away from ideal and
    prior schemes 68%-2155% away.  Returns ``(max rho - c) / c``;
    negative values mean the scheduler beat the contention bound.
    """
    if contention <= 0:
        raise ValueError(f"contention must be > 0, got {contention}")
    return (max_fairness(rhos) - contention) / contention


def rho_spread(rhos: Sequence[float]) -> tuple[float, float, float]:
    """(min, median, max) of the rho distribution — Figure 4a's bars."""
    values = sorted(r for r in rhos if not math.isinf(r))
    if not values:
        raise ValueError("rho_spread needs at least one finite value")
    mid = len(values) // 2
    if len(values) % 2:
        median = values[mid]
    else:
        median = 0.5 * (values[mid - 1] + values[mid])
    return values[0], median, values[-1]
