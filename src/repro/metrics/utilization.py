"""Cluster efficiency metrics: GPU time and utilisation.

Section 8.1: "We use GPU Time as a measure of how efficiently the
cluster is utilized ... For two scheduling regimes S1 and S2 that have
GPU times G1 and G2, S1 utilizes the cluster more efficiently than S2
if G1 < G2."  (A placement-insensitive scheduler holds GPUs longer for
the same work, inflating GPU time — Figures 4b and 9b.)
"""

from __future__ import annotations

from repro.simulation.simulator import SimulationResult


def gpu_time_total(result: SimulationResult) -> float:
    """Total GPU-minutes consumed across all apps."""
    return result.total_gpu_time


def utilization(result: SimulationResult) -> float:
    """Fraction of cluster GPU-minutes actually held by jobs.

    Uses the run's makespan as the denominator window, so values are
    comparable across schedulers replaying the same trace.
    """
    if result.makespan <= 0:
        raise ValueError("run has non-positive makespan")
    if result.cluster_gpus <= 0:
        raise ValueError("run has no GPUs recorded")
    return result.total_gpu_time / (result.cluster_gpus * result.makespan)
