"""Sharing incentive: the paper's core fairness guarantee (Section 2.1).

"If there are a total N users sharing a cluster C, every user's
performance should be no worse than N times when using C all by
herself."  With finish-time fairness this means ``rho_i <= N`` for all
apps, where the operative N is the contention the app actually faced.
These helpers quantify how often a run satisfied that guarantee and by
how much the violators missed it.
"""

from __future__ import annotations

import math
from typing import Sequence


def sharing_incentive_fraction(rhos: Sequence[float], contention: float) -> float:
    """Fraction of apps whose rho stayed within the contention bound."""
    if contention <= 0:
        raise ValueError(f"contention must be > 0, got {contention}")
    if not rhos:
        raise ValueError("need at least one rho value")
    satisfied = sum(1 for rho in rhos if rho <= contention + 1e-9)
    return satisfied / len(rhos)


def worst_violation(rhos: Sequence[float], contention: float) -> float:
    """Largest relative violation ``(rho - N) / N``; 0 when none violate."""
    if contention <= 0:
        raise ValueError(f"contention must be > 0, got {contention}")
    worst = 0.0
    for rho in rhos:
        if math.isinf(rho):
            return math.inf
        worst = max(worst, (rho - contention) / contention)
    return worst


def violators(rhos: Sequence[float], contention: float) -> list[int]:
    """Indices of apps that missed the sharing-incentive bound."""
    if contention <= 0:
        raise ValueError(f"contention must be > 0, got {contention}")
    return [i for i, rho in enumerate(rhos) if rho > contention + 1e-9]
