"""Bounded append-only series: the streaming-metrics reservoir layer.

:class:`ReservoirSeries` is the generalisation of the simulator's old
``DownsampledSeries`` (which is now an alias of this class): an
append-only series bounded to at most ``cap`` retained entries whose
retained set is always "every ``stride``-th append".  Whenever the
retained list would exceed ``cap``, every second retained entry is
dropped and the stride doubles, so long traces keep an evenly thinned
record instead of growing without bound (or truncating one end).

This is the storage substrate of :mod:`repro.obs.metrics` (per-round
series, histogram reservoirs) and of the thinned ``per_round`` solver
stats in :class:`~repro.simulation.simulator.SimulationResult` —
every consumer gets the same bounded-memory, deterministic thinning.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional


class ReservoirSeries:
    """Append-only series bounded to at most ``cap`` retained entries.

    Accepts every ``stride``-th appended item; whenever the retained
    list would exceed ``cap``, every second retained entry is dropped
    and the stride doubles.  Deterministic: the retained set depends
    only on the append sequence, never on time or randomness.
    """

    __slots__ = ("cap", "_stride", "_appends", "_items")

    def __init__(self, cap: int) -> None:
        if cap < 2:
            raise ValueError(f"downsample cap must be >= 2, got {cap}")
        self.cap = cap
        self._stride = 1
        self._appends = 0
        self._items: list = []

    def append(self, item) -> None:
        """Record ``item`` if it falls on the current stride."""
        if self._appends % self._stride == 0:
            self._items.append(item)
            if len(self._items) > self.cap:
                self._items = self._items[::2]
                self._stride *= 2
        self._appends += 1

    def extend(self, items: Iterable) -> None:
        """Append every item of ``items`` in order."""
        for item in items:
            self.append(item)

    @property
    def total_appends(self) -> int:
        """How many items were ever appended (retained or thinned)."""
        return self._appends

    @property
    def stride(self) -> int:
        """Current thinning stride (doubles as the series fills)."""
        return self._stride

    def to_list(self) -> list:
        """The retained entries as a fresh list."""
        return list(self._items)

    @classmethod
    def merge(
        cls,
        series: Iterable["ReservoirSeries"],
        cap: Optional[int] = None,
        key: Optional[Callable] = None,
    ) -> "ReservoirSeries":
        """Combine several series into one bounded series.

        Retained entries of all inputs are interleaved in ``key`` order
        (identity by default — ``(timestamp, value)`` tuples sort by
        time) and re-appended through a fresh reservoir, so the merged
        series obeys the same cap/stride contract.  ``cap`` defaults to
        the smallest input cap.
        """
        inputs = list(series)
        if not inputs:
            raise ValueError("merge needs at least one series")
        merged = cls(cap if cap is not None else min(s.cap for s in inputs))
        items: list = []
        for s in inputs:
            items.extend(s._items)
        items.sort(key=key) if key is not None else items.sort()
        merged.extend(items)
        return merged

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self):
        return iter(self._items)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ReservoirSeries(cap={self.cap}, retained={len(self._items)}, "
            f"appends={self._appends}, stride={self._stride})"
        )
