"""Streaming metrics registry: counters, gauges, histograms, series.

Built on the :class:`~repro.obs.reservoir.ReservoirSeries` layer so
every instrument is bounded-memory: a series or histogram never retains
more than its cap, no matter how long the trace runs.  The simulator
owns one :class:`MetricsRegistry` per run and records the new
first-class per-round series through it:

* **fragmentation** — dispersion of free in-service GPUs across
  machines, ``1 - sum((free_m / free_total)^2)`` (one minus the
  Herfindahl index; 0 when all free GPUs sit on one machine — or none
  are free — approaching 1 as they scatter).  Machines are single-
  generation, so this is dispersion across generations too.
* **starvation** — per-app rounds since the app last held a GPU while
  wanting one; the per-round series records the p99 (nearest-rank)
  across currently-waiting apps.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Union

from repro.obs.reservoir import ReservoirSeries


def percentile_nearest_rank(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 1]); 0.0 on an empty input."""
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"percentile must be in [0, 1], got {q}")
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


class Counter:
    """Monotonic event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount


class Gauge:
    """Last-written scalar."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Streaming distribution: exact count/sum/min/max plus a bounded
    reservoir of observations for percentile estimates."""

    __slots__ = ("name", "count", "sum", "min", "max", "_reservoir")

    def __init__(self, name: str, cap: int = 512) -> None:
        self.name = name
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._reservoir = ReservoirSeries(cap)

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self._reservoir.append(value)

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile over the retained reservoir."""
        return percentile_nearest_rank(list(self._reservoir), q)

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.sum / self.count if self.count else None,
            "p50": self.percentile(0.5) if self.count else None,
            "p99": self.percentile(0.99) if self.count else None,
        }


#: A per-round series is a reservoir when a cap is set, else a plain
#: list — the exact convention the simulator's contention samples and
#: timeline already follow.
SeriesLike = Union[ReservoirSeries, list]


class MetricsRegistry:
    """Names and owns a run's instruments; O(instruments) memory.

    ``downsample`` caps every :meth:`series` (None keeps every sample,
    matching ``SimulationConfig.downsample`` semantics).
    """

    def __init__(self, downsample: Optional[int] = None) -> None:
        if downsample is not None and downsample < 2:
            raise ValueError(f"downsample must be >= 2, got {downsample}")
        self.downsample = downsample
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._series: dict[str, SeriesLike] = {}

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        if name not in self._gauges:
            self._gauges[name] = Gauge(name)
        return self._gauges[name]

    def histogram(self, name: str, cap: int = 512) -> Histogram:
        if name not in self._histograms:
            self._histograms[name] = Histogram(name, cap=cap)
        return self._histograms[name]

    def series(self, name: str) -> SeriesLike:
        if name not in self._series:
            self._series[name] = (
                ReservoirSeries(self.downsample) if self.downsample else []
            )
        return self._series[name]

    def snapshot(self) -> dict:
        """JSON-safe dump of every instrument (series as lists)."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.snapshot() for n, h in sorted(self._histograms.items())
            },
            "series": {n: list(s) for n, s in sorted(self._series.items())},
        }


def fragmentation_index(free_per_machine: Sequence[int]) -> float:
    """Free-GPU dispersion: ``1 - sum((f_m / F)^2)`` over machines.

    0.0 when the free pool is empty or concentrated on one machine;
    approaches ``1 - 1/M`` when F GPUs spread evenly over M machines.
    Callers must pass counts in a deterministic (machine-id) order so
    the float sum is byte-stable across lease-tracking modes.
    """
    total = 0
    for count in free_per_machine:
        total += count
    if total <= 0:
        return 0.0
    acc = 0.0
    for count in free_per_machine:
        share = count / total
        acc += share * share
    return 1.0 - acc
