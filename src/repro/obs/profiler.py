"""Phase profiler: context-manager wall timers around engine phases.

``with profiler.phase("auction_solve"): ...`` accumulates wall seconds
and call counts per named phase; the per-run breakdown lands in
``SimulationResult.profile`` and in ``repro bench sim`` output, giving
the "raw-speed wall" ROADMAP item per-phase attribution.

The default :class:`NullProfiler` hands out one shared no-op context
manager, so unprofiled hot paths pay two cheap calls per phase — and
the innermost kernels (the carve) additionally guard on
:attr:`PhaseProfiler.enabled` to skip even that.
"""

from __future__ import annotations

import time

#: Engine phases instrumented out of the box (informational; the
#: profiler accepts any name).
KNOWN_PHASES = (
    "advance",
    "metrics",
    "assign",
    "valuation",
    "carve",
    "batch_carve",
    "heap_warm_start",
    "auction_solve",
    "rescore",
    "payment_resolves",
    "leftovers",
    "placement",
    "migration",
)


class _PhaseTimer:
    """One timing scope; re-created per ``phase()`` call (re-entrant)."""

    __slots__ = ("_profiler", "_name", "_start")

    def __init__(self, profiler: "PhaseProfiler", name: str) -> None:
        self._profiler = profiler
        self._name = name

    def __enter__(self) -> "_PhaseTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._profiler._record(self._name, time.perf_counter() - self._start)


class _NullTimer:
    """Shared do-nothing context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_TIMER = _NullTimer()


class PhaseProfiler:
    """Accumulates wall seconds and call counts per named phase.

    Phases may nest (``assign`` contains ``valuation`` contains
    ``carve``); each accumulates its own inclusive wall time, so the
    snapshot is an attribution aid, not a disjoint partition.
    """

    enabled = True

    def __init__(self) -> None:
        self._seconds: dict[str, float] = {}
        self._calls: dict[str, int] = {}

    def phase(self, name: str) -> _PhaseTimer:
        """A context manager timing one scope under ``name``."""
        return _PhaseTimer(self, name)

    def _record(self, name: str, seconds: float) -> None:
        self._seconds[name] = self._seconds.get(name, 0.0) + seconds
        self._calls[name] = self._calls.get(name, 0) + 1

    def snapshot(self) -> dict:
        """``{phase: {"seconds": ..., "calls": ...}}``, sorted by cost."""
        return {
            name: {"seconds": self._seconds[name], "calls": self._calls[name]}
            for name in sorted(
                self._seconds, key=lambda n: -self._seconds[n]
            )
        }

    def total_seconds(self) -> float:
        """Sum of all phase wall times (phases nest, so this can exceed
        the run's wall time)."""
        return sum(self._seconds.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PhaseProfiler(phases={len(self._seconds)})"


class NullProfiler:
    """The do-nothing default; ``phase()`` returns one shared no-op."""

    enabled = False

    def phase(self, name: str) -> _NullTimer:
        return _NULL_TIMER

    def snapshot(self) -> dict:
        return {}

    def total_seconds(self) -> float:
        return 0.0


#: Shared do-nothing profiler instance (stateless, safe to share).
NULL_PROFILER = NullProfiler()
