"""Logging setup for the ``repro.*`` logger hierarchy.

The CLI's ``--log-level`` flag routes here; library code just calls
``logging.getLogger("repro.<module>")`` and stays silent unless the
application (CLI, tests, notebooks) configures the hierarchy.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional

#: Names accepted by ``--log-level``.
LOG_LEVELS = ("debug", "info", "warning", "error", "critical")

_HANDLER_ATTR = "_repro_cli_handler"


class _LazyStderrHandler(logging.StreamHandler):
    """StreamHandler that resolves ``sys.stderr`` at emit time.

    Binding the stream at handler-creation time would pin whatever
    object ``sys.stderr`` was then — breaking pytest's per-test capture
    (capsys swaps ``sys.stderr`` in and out), and any caller that
    redirects stderr after the first CLI invocation.
    """

    def __init__(self) -> None:
        logging.Handler.__init__(self)

    @property
    def stream(self):
        return sys.stderr

    @stream.setter
    def stream(self, value) -> None:  # StreamHandler.setStream is a no-op
        pass


def setup_logging(level: str = "warning", stream=None) -> logging.Logger:
    """Configure the ``repro`` logger with one stderr handler.

    Idempotent: repeated calls (tests invoke the CLI many times per
    process) reuse the existing handler and only adjust the level.
    Only the ``repro`` hierarchy is touched — never the root logger.
    ``stream`` pins an explicit destination; the default follows the
    *current* ``sys.stderr`` on every record.
    """
    name = level.lower()
    if name not in LOG_LEVELS:
        raise ValueError(f"unknown log level {level!r}; choose from {LOG_LEVELS}")
    logger = logging.getLogger("repro")
    logger.setLevel(getattr(logging, name.upper()))
    handler: Optional[logging.Handler] = getattr(logger, _HANDLER_ATTR, None)
    if handler is None:
        handler = (
            logging.StreamHandler(stream) if stream is not None
            else _LazyStderrHandler()
        )
        handler.setFormatter(
            logging.Formatter("%(levelname)s %(name)s: %(message)s")
        )
        logger.addHandler(handler)
        logger.propagate = False
        setattr(logger, _HANDLER_ATTR, handler)
    return logger
