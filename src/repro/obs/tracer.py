"""Structured decision tracing: schema-versioned typed event streams.

Every scheduling decision the engine makes — rounds firing, bids
submitted, auction winners, lease lifecycle, migrations, job state
changes — can be captured as a typed event.  Three sinks:

* :class:`NullTracer` — the default; ``enabled`` is False and every
  emit site guards on it, so an untraced run does zero extra work and
  produces byte-identical results (bench-guarded).
* :class:`RingTracer` — last-N events in a bounded in-memory ring.
* :class:`JsonlTracer` — one JSON object per line in a file, preceded
  by a schema-versioned header line; ``repro trace <file>`` filters,
  summarises and validates these artifacts.

The event schema is versioned (:data:`TRACE_SCHEMA_VERSION`) and typed
(:data:`EVENT_SCHEMA` names the required fields per kind);
:func:`validate_events` checks a stream against it.
"""

from __future__ import annotations

import json
from collections import Counter, deque
from typing import IO, Iterable, Mapping, Optional, Sequence

#: Version of the event schema; bumped whenever an event kind is
#: added/removed or a required field changes meaning.
#: v2: added the control-plane kinds ``job_retry`` and
#: ``dispatch_token``.
#: v3: added the worker-fleet kinds ``worker_register``,
#: ``worker_lost`` and ``job_report``.
TRACE_SCHEMA_VERSION = 3

#: The ``kind`` of the header record that opens every JSONL trace.
HEADER_KIND = "trace_header"

#: Required fields per event kind (beyond the envelope ``kind``/``t``).
EVENT_SCHEMA: dict[str, frozenset] = {
    "round_start": frozenset({"round", "pool_gpus", "active_apps"}),
    "apps_filtered": frozenset({"round", "eligible", "participants"}),
    "bid_submitted": frozenset({"round", "app", "rho", "demand"}),
    "auction_win": frozenset({"round", "app", "gpus"}),
    "lease_grant": frozenset({"app", "job", "gpu", "expiry"}),
    "lease_expire": frozenset({"gpu", "app"}),
    "lease_revoke": frozenset({"gpu", "app", "reason"}),
    "migration": frozenset({"app", "job", "from_gpus", "to_gpus", "gain"}),
    "job_state_change": frozenset({"app", "job", "state", "gpus"}),
    "job_retry": frozenset({"job", "attempt", "failure_kind", "delay"}),
    "dispatch_token": frozenset({"job", "epoch", "accepted"}),
    "worker_register": frozenset({"worker", "capacity"}),
    "worker_lost": frozenset({"worker", "reason"}),
    "job_report": frozenset({"job", "accepted", "reason"}),
}

EVENT_KINDS = tuple(sorted(EVENT_SCHEMA))


class TraceError(ValueError):
    """A trace file or event stream is malformed."""


def _normalize_kinds(events: Optional[Iterable[str]]) -> Optional[frozenset]:
    if events is None:
        return None
    kinds = frozenset(events)
    unknown = kinds - set(EVENT_SCHEMA)
    if unknown:
        raise TraceError(
            f"unknown trace event kinds {sorted(unknown)}; "
            f"known: {list(EVENT_KINDS)}"
        )
    return kinds or None


class Tracer:
    """Base sink: counts emits, applies an optional event-kind filter.

    Emit sites must guard on :attr:`enabled` before building the event
    payload — that guard is the whole zero-overhead story of the
    default :class:`NullTracer`.
    """

    enabled = True

    def __init__(self, events: Optional[Iterable[str]] = None) -> None:
        self._kinds = _normalize_kinds(events)
        self.events_written = 0
        #: Current scheduling round, stamped by the simulator at each
        #: round start so every emit site — including the arbiter, which
        #: keeps its own auction-invocation counter — shares one
        #: ``round`` numbering.
        self.round = 0
        self._header: dict = {"kind": HEADER_KIND, "schema": TRACE_SCHEMA_VERSION}

    def set_header(self, **fields) -> None:
        """Attach run metadata (scheduler, cluster, ...) to the stream."""
        self._header.update(fields)

    @property
    def header(self) -> dict:
        return dict(self._header)

    def wants(self, kind: str) -> bool:
        """True when this sink records events of ``kind``."""
        return self._kinds is None or kind in self._kinds

    def emit(self, kind: str, t: float, **fields) -> None:
        """Record one event (dropped when filtered out)."""
        if not self.wants(kind):
            return
        event = {"kind": kind, "t": t}
        event.update(fields)
        self.events_written += 1
        self._write(event)

    def _write(self, event: dict) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release the sink (idempotent)."""


class NullTracer(Tracer):
    """The do-nothing default; ``enabled`` is False so emit sites skip
    building event payloads entirely."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def emit(self, kind: str, t: float, **fields) -> None:
        pass

    def set_header(self, **fields) -> None:
        pass


#: Shared do-nothing tracer instance (stateless, safe to share).
NULL_TRACER = NullTracer()


class RingTracer(Tracer):
    """Keeps the last ``capacity`` events in memory (oldest dropped)."""

    def __init__(
        self, capacity: int = 65536, events: Optional[Iterable[str]] = None
    ) -> None:
        if capacity < 1:
            raise ValueError(f"ring capacity must be >= 1, got {capacity}")
        super().__init__(events)
        self._ring: deque = deque(maxlen=capacity)

    def _write(self, event: dict) -> None:
        self._ring.append(event)

    @property
    def events(self) -> list[dict]:
        """The retained events, oldest first."""
        return list(self._ring)

    @property
    def dropped(self) -> int:
        """Events evicted by the ring bound."""
        return self.events_written - len(self._ring)


class JsonlTracer(Tracer):
    """Streams events to ``path`` as JSONL, one schema header line first.

    The header is written lazily (so :meth:`set_header` metadata makes
    it into the file) but always — closing an event-free trace still
    yields a valid single-line file.
    """

    def __init__(self, path: str, events: Optional[Iterable[str]] = None) -> None:
        super().__init__(events)
        self.path = str(path)
        self._fh: Optional[IO[str]] = open(self.path, "w", encoding="utf-8")
        self._header_written = False

    def _ensure_header(self) -> None:
        if not self._header_written and self._fh is not None:
            self._fh.write(json.dumps(self._header) + "\n")
            self._header_written = True

    def _write(self, event: dict) -> None:
        if self._fh is None:
            raise TraceError(f"trace file {self.path!r} is already closed")
        self._ensure_header()
        self._fh.write(json.dumps(event) + "\n")

    def close(self) -> None:
        if self._fh is not None:
            self._ensure_header()
            self._fh.close()
            self._fh = None


# ----------------------------------------------------------------------
# Reading / validating / summarising trace artifacts
# ----------------------------------------------------------------------
def read_trace(path: str) -> tuple[dict, list[dict]]:
    """Load a JSONL trace file; returns ``(header, events)``.

    Raises :class:`TraceError` on unparsable lines or a missing header.
    """
    header: Optional[dict] = None
    events: list[dict] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise TraceError(f"{path}:{lineno}: invalid JSON ({error})")
            if not isinstance(record, dict):
                raise TraceError(f"{path}:{lineno}: expected a JSON object")
            if record.get("kind") == HEADER_KIND:
                if header is not None:
                    raise TraceError(f"{path}:{lineno}: duplicate trace header")
                header = record
            else:
                events.append(record)
    if header is None:
        raise TraceError(f"{path}: no {HEADER_KIND!r} line found")
    return header, events


def validate_events(
    events: Sequence[Mapping], header: Optional[Mapping] = None
) -> list[str]:
    """Check an event stream against the typed schema.

    Returns human-readable error strings (empty = valid): unknown
    kinds, missing required fields, non-numeric timestamps, time going
    backwards, and an unsupported header schema version.
    """
    errors: list[str] = []
    if header is not None:
        schema = header.get("schema")
        if schema != TRACE_SCHEMA_VERSION:
            errors.append(
                f"header: unsupported schema version {schema!r} "
                f"(this build reads version {TRACE_SCHEMA_VERSION})"
            )
    last_t: Optional[float] = None
    for index, event in enumerate(events):
        where = f"event {index}"
        kind = event.get("kind")
        if kind not in EVENT_SCHEMA:
            errors.append(f"{where}: unknown kind {kind!r}")
            continue
        t = event.get("t")
        if not isinstance(t, (int, float)) or isinstance(t, bool):
            errors.append(f"{where} ({kind}): non-numeric timestamp {t!r}")
        else:
            if last_t is not None and t < last_t - 1e-9:
                errors.append(
                    f"{where} ({kind}): time went backwards "
                    f"({t} after {last_t})"
                )
            last_t = float(t)
        missing = EVENT_SCHEMA[kind] - set(event)
        if missing:
            errors.append(
                f"{where} ({kind}): missing fields {sorted(missing)}"
            )
    return errors


def filter_events(
    events: Iterable[Mapping],
    kinds: Optional[Iterable[str]] = None,
    app: Optional[str] = None,
) -> list[dict]:
    """Subset an event stream by kind and/or app id."""
    kind_set = _normalize_kinds(kinds)
    out: list[dict] = []
    for event in events:
        if kind_set is not None and event.get("kind") not in kind_set:
            continue
        if app is not None and event.get("app") != app:
            continue
        out.append(dict(event))
    return out


def summarize_events(events: Sequence[Mapping]) -> dict:
    """Aggregate counts/time-span/app-coverage of an event stream."""
    by_kind = Counter(event.get("kind") for event in events)
    times = [
        event["t"]
        for event in events
        if isinstance(event.get("t"), (int, float))
    ]
    apps = {event["app"] for event in events if "app" in event}
    return {
        "events": len(events),
        "by_kind": dict(sorted(by_kind.items(), key=lambda kv: str(kv[0]))),
        "t_min": min(times) if times else None,
        "t_max": max(times) if times else None,
        "apps": len(apps),
        "rounds": by_kind.get("round_start", 0),
    }
