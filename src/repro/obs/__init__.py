"""repro.obs — observability for the whole engine.

Three instruments, threaded through simulator, arbiter, auction,
leases, migration and every baseline:

* **structured event tracing** (:mod:`repro.obs.tracer`) — typed,
  schema-versioned decision events into a ring buffer or a JSONL file;
  the default :class:`~repro.obs.tracer.NullTracer` is proven
  zero-overhead (byte-identical results, bench-guarded),
* a **phase profiler** (:mod:`repro.obs.profiler`) — context-manager
  wall timers whose per-phase breakdown lands in
  ``SimulationResult.profile`` and ``repro bench sim`` output,
* a **streaming metrics registry** (:mod:`repro.obs.metrics`) —
  counters/gauges/histograms/series on the bounded
  :class:`~repro.obs.reservoir.ReservoirSeries` layer; fragmentation
  and starvation ship as first-class per-round series.

:class:`Observability` bundles a tracer and a profiler for one run;
:class:`ObsConfig` is its picklable description, so sweep workers can
materialise per-task observability in their own process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    fragmentation_index,
    percentile_nearest_rank,
)
from repro.obs.profiler import NULL_PROFILER, NullProfiler, PhaseProfiler
from repro.obs.reservoir import ReservoirSeries
from repro.obs.tracer import (
    EVENT_KINDS,
    EVENT_SCHEMA,
    NULL_TRACER,
    TRACE_SCHEMA_VERSION,
    JsonlTracer,
    NullTracer,
    RingTracer,
    TraceError,
    Tracer,
    filter_events,
    read_trace,
    summarize_events,
    validate_events,
)

__all__ = [
    "Counter",
    "EVENT_KINDS",
    "EVENT_SCHEMA",
    "Gauge",
    "Histogram",
    "JsonlTracer",
    "MetricsRegistry",
    "NULL_PROFILER",
    "NULL_TRACER",
    "NullProfiler",
    "NullTracer",
    "ObsConfig",
    "Observability",
    "PhaseProfiler",
    "ReservoirSeries",
    "RingTracer",
    "TRACE_SCHEMA_VERSION",
    "TraceError",
    "Tracer",
    "filter_events",
    "fragmentation_index",
    "percentile_nearest_rank",
    "read_trace",
    "summarize_events",
    "validate_events",
]


class Observability:
    """One run's live observability bundle: a tracer plus a profiler.

    Defaults to the zero-overhead null instruments; pass one or both to
    turn them on.  :meth:`close` flushes file-backed tracers.
    """

    __slots__ = ("tracer", "profiler")

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        profiler: Optional[Union[PhaseProfiler, NullProfiler]] = None,
    ) -> None:
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.profiler = profiler if profiler is not None else NULL_PROFILER

    @classmethod
    def disabled(cls) -> "Observability":
        """The all-null bundle (what an unobserved run uses)."""
        return cls()

    @property
    def enabled(self) -> bool:
        return self.tracer.enabled or self.profiler.enabled

    def close(self) -> None:
        self.tracer.close()


@dataclass(frozen=True)
class ObsConfig:
    """Picklable observability spec; :meth:`build` makes it live.

    Carried on :class:`~repro.sweep.matrix.SweepTask` cells (excluded
    from cache fingerprints — observability never changes results) and
    materialised inside the worker process, where the trace file must
    actually be opened.
    """

    #: JSONL trace destination; None disables file tracing.
    trace_path: Optional[str] = None
    #: Event kinds to keep (empty = all kinds).
    trace_events: tuple[str, ...] = ()
    #: Collect the per-phase profile into ``SimulationResult.profile``.
    profile: bool = False
    #: Trace into an in-memory ring of this size instead of a file.
    ring_capacity: Optional[int] = None

    def __post_init__(self) -> None:
        if self.trace_path is not None and self.ring_capacity is not None:
            raise ValueError("choose one trace sink: trace_path or ring_capacity")

    @property
    def wants_anything(self) -> bool:
        return bool(self.trace_path or self.ring_capacity or self.profile)

    def build(self) -> Observability:
        """Materialise the live bundle (opens the trace file, if any)."""
        kinds = self.trace_events or None
        tracer: Optional[Tracer] = None
        if self.trace_path is not None:
            tracer = JsonlTracer(self.trace_path, events=kinds)
        elif self.ring_capacity is not None:
            tracer = RingTracer(self.ring_capacity, events=kinds)
        profiler = PhaseProfiler() if self.profile else None
        return Observability(tracer=tracer, profiler=profiler)
