"""Scenario execution: one scheduler or a whole comparison.

Every scheduler in a comparison replays the *same* trace instance
(regenerated fresh per run so job state never leaks between runs) on
the same cluster topology — the apples-to-apples setup the paper's
macrobenchmark uses.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.experiments.config import ScenarioConfig
from repro.schedulers.registry import make_scheduler
from repro.simulation.simulator import ClusterSimulator, SimulationResult


def run_scenario(
    scenario: ScenarioConfig,
    scheduler: str = "themis",
    scheduler_kwargs: Optional[Mapping] = None,
) -> SimulationResult:
    """Run one scheduler over the scenario and return its results."""
    simulator = ClusterSimulator(
        cluster=scenario.build_cluster(),
        workload=scenario.build_trace(),
        scheduler=make_scheduler(scheduler, **dict(scheduler_kwargs or {})),
        config=scenario.build_sim_config(),
    )
    return simulator.run()


def compare_schedulers(
    scenario: ScenarioConfig,
    schedulers: Sequence[str] = ("themis", "gandiva", "slaq", "tiresias"),
    scheduler_kwargs: Optional[Mapping[str, Mapping]] = None,
) -> dict[str, SimulationResult]:
    """Run several schedulers over identical workloads; keyed by name."""
    kwargs = scheduler_kwargs or {}
    results: dict[str, SimulationResult] = {}
    for name in schedulers:
        results[name] = run_scenario(scenario, name, kwargs.get(name))
    return results
