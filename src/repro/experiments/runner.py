"""Scenario execution: one scheduler or a whole comparison.

Every scheduler in a comparison replays the *same* trace instance
(regenerated fresh per run so job state never leaks between runs) on
the same cluster topology — the apples-to-apples setup the paper's
macrobenchmark uses.

:func:`run_scenario` stays a pure single-run primitive (it is what the
sweep subsystem's workers execute); :func:`compare_schedulers` routes
through :mod:`repro.sweep`, so comparisons fan out across worker
processes with ``workers > 1`` and reuse cached cells when given a
``cache_dir``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping, Optional, Sequence, Union

from repro.experiments.config import ScenarioConfig
from repro.obs import Observability, ObsConfig
from repro.schedulers.registry import make_scheduler
from repro.simulation.simulator import ClusterSimulator, SimulationResult


def run_scenario(
    scenario: ScenarioConfig,
    scheduler: str = "themis",
    scheduler_kwargs: Optional[Mapping] = None,
    obs: Union[Observability, ObsConfig, None] = None,
) -> SimulationResult:
    """Run one scheduler over the scenario and return its results.

    ``obs`` attaches observability (tracing / profiling) to the run;
    file-backed tracers are closed before returning so the trace is
    complete on disk even if the simulation raises.
    """
    simulator = ClusterSimulator(
        cluster=scenario.build_cluster(),
        workload=scenario.build_trace(),
        scheduler=make_scheduler(scheduler, **dict(scheduler_kwargs or {})),
        config=scenario.build_sim_config(),
        perf_model=scenario.build_perf_model(),
        obs=obs,
    )
    try:
        return simulator.run()
    finally:
        simulator.obs.close()


def compare_schedulers(
    scenario: ScenarioConfig,
    schedulers: Sequence[str] = ("themis", "gandiva", "slaq", "tiresias"),
    scheduler_kwargs: Optional[Mapping[str, Mapping]] = None,
    workers: int = 1,
    cache_dir: Union[str, Path, None] = None,
) -> dict[str, SimulationResult]:
    """Run several schedulers over identical workloads; keyed by name.

    ``workers`` sizes the sweep worker pool (1 = serial in-process);
    ``cache_dir`` enables the content-addressed result cache.  A
    failing run raises :class:`repro.sweep.SweepError` with the
    worker's traceback.
    """
    # Imported here: repro.sweep executes tasks via run_scenario above,
    # so a module-level import would be circular.
    from repro.sweep import SweepTask, run_sweep

    kwargs = scheduler_kwargs or {}
    names = list(dict.fromkeys(schedulers))  # dedupe, keep first occurrence
    tasks = [
        SweepTask(
            scenario=scenario,
            scheduler=name,
            scheduler_kwargs=tuple(sorted(dict(kwargs.get(name) or {}).items())),
        )
        for name in names
    ]
    report = run_sweep(tasks, workers=workers, cache=cache_dir)
    report.raise_on_failure()
    return {
        name: report.result_for(task.task_id) for name, task in zip(names, tasks)
    }
