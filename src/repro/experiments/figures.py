"""One experiment per figure of the paper's evaluation (Section 8).

Each ``figNN_*`` function runs the corresponding experiment and returns
a :class:`FigureResult` carrying the same rows/series the paper plots.
Benchmarks print these tables; EXPERIMENTS.md records paper-vs-measured
values.  Functions take a :class:`ScenarioConfig` so tests can shrink
workloads and benchmarks can match the paper's scale.

Sweep-shaped figures (4, 9, 10, 11 and the macrobenchmark) route
through :mod:`repro.sweep`: pass ``workers`` to fan the cells out over
a process pool and ``cache_dir`` to reuse unchanged cells across
invocations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.cluster.topology import ClusterSpec, MachineSpec, build_cluster
from repro.experiments.config import ScenarioConfig, sim_scenario, testbed_scenario
from repro.experiments.runner import compare_schedulers, run_scenario
from repro.metrics.fairness import distance_from_ideal, jain_index, max_fairness, rho_spread
from repro.metrics.jct import average_jct, cdf, jct_summary, percentile
from repro.metrics.placement import score_summary
from repro.metrics.timeline import allocation_series
from repro.metrics.utilization import utilization
from repro.simulation.simulator import ClusterSimulator, SimulationConfig
from repro.schedulers.registry import make_scheduler
from repro.sweep import SweepReport, SweepTask, run_sweep
from repro.workload.models import get_model, throughput
from repro.workload.trace import Trace, TraceApp, TraceJob

#: The paper's comparison set (Section 8.3).
PAPER_SCHEDULERS: tuple[str, ...] = ("themis", "gandiva", "slaq", "tiresias")

#: Optional cache-directory argument accepted by sweep-shaped figures.
CacheDir = Union[str, Path, None]


def _sweep(tasks: Sequence[SweepTask], workers: int, cache_dir: CacheDir) -> SweepReport:
    """Run figure cells through the sweep subsystem; raise on failures."""
    report = run_sweep(tasks, workers=workers, cache=cache_dir)
    report.raise_on_failure()
    return report


@dataclass
class FigureResult:
    """Reproduction output for one paper figure."""

    figure_id: str
    title: str
    rows: list[dict]
    series: dict[str, list[tuple]] = field(default_factory=dict)
    notes: str = ""

    def column(self, key: str) -> list:
        """Extract one column across rows."""
        return [row[key] for row in self.rows]


# ----------------------------------------------------------------------
# Figure 1 — task duration distribution of the trace
# ----------------------------------------------------------------------
def fig01_task_duration_cdf(scenario: Optional[ScenarioConfig] = None) -> FigureResult:
    """CDF of task durations (Figure 1).

    The paper's enterprise trace shows mostly sub-200-minute tasks with
    a tail out to ~1000 minutes; the generator reproduces the quoted
    medians (59 / 123 minutes short/long).  Durations are reported at
    the generator's native scale (duration_scale=1) so the x-axis is
    comparable with the paper's.
    """
    scenario = scenario or sim_scenario()
    trace = scenario.with_generator(duration_scale=1.0).build_trace()
    durations = trace.task_durations()
    points = cdf(durations)
    rows = [
        {"percentile": q, "duration_minutes": percentile(durations, q)}
        for q in (10, 25, 50, 75, 90, 99)
    ]
    return FigureResult(
        figure_id="fig01",
        title="Distribution of task durations",
        rows=rows,
        series={"cdf": points},
        notes=f"{len(durations)} tasks; median {percentile(durations, 50):.0f} min",
    )


# ----------------------------------------------------------------------
# Figure 2 — throughput vs GPU placement per model
# ----------------------------------------------------------------------
def fig02_placement_throughput(
    models: Sequence[str] = ("vgg16", "vgg19", "alexnet", "inceptionv3", "resnet50"),
) -> FigureResult:
    """Throughput for 4 GPUs on one server vs 2x2 across servers (Figure 2).

    VGG-family models should lose roughly half their throughput when
    split; the ResNet family should barely notice.
    """
    # Two 4-GPU machines in one rack: placement "one server" uses
    # machine 0 only; "2x2" takes two GPUs from each machine.
    cluster = build_cluster(
        ClusterSpec(
            machine_specs=(MachineSpec(count=2, gpus_per_machine=4),),
            num_racks=1,
            name="fig2-pair",
        )
    )
    one_server = cluster.gpus_on_machine(0)
    split = cluster.gpus_on_machine(0)[:2] + cluster.gpus_on_machine(1)[:2]
    rows = []
    for name in models:
        profile = get_model(name)
        t_local = throughput(profile, one_server)
        t_split = throughput(profile, split)
        rows.append(
            {
                "model": name,
                "one_server_4gpu": t_local,
                "two_by_two": t_split,
                "slowdown": t_split / t_local,
            }
        )
    return FigureResult(
        figure_id="fig02",
        title="Effect of GPU placement on job throughput",
        rows=rows,
        notes="slowdown < ~0.6 marks placement-sensitive models",
    )


# ----------------------------------------------------------------------
# Figure 4a/4b — fairness knob sweep
# ----------------------------------------------------------------------
def fig04_knob_sweep(
    scenario: Optional[ScenarioConfig] = None,
    knobs: Sequence[float] = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0),
    workers: int = 1,
    cache_dir: CacheDir = None,
) -> FigureResult:
    """Finish-time fairness and GPU time vs the fairness knob f (Fig 4a/4b).

    Expected shape: max fairness falls as f rises (with diminishing
    returns past ~0.8) while GPU time rises (fewer apps see each offer,
    so packing opportunities shrink).
    """
    scenario = scenario or sim_scenario()
    tasks = [
        SweepTask(
            scenario=scenario,
            scheduler="themis",
            scheduler_kwargs=(("fairness_knob", f),),
        )
        for f in knobs
    ]
    report = _sweep(tasks, workers, cache_dir)
    rows = []
    for f, task in zip(knobs, tasks):
        result = report.result_for(task.task_id)
        lo, mid, hi = rho_spread(result.rhos())
        rows.append(
            {
                "fairness_knob": f,
                "min_rho": lo,
                "median_rho": mid,
                "max_rho": hi,
                "gpu_time": result.total_gpu_time,
                "peak_contention": result.peak_contention,
            }
        )
    return FigureResult(
        figure_id="fig04ab",
        title="Sensitivity to fairness knob f (4a: fairness, 4b: GPU time)",
        rows=rows,
    )


# ----------------------------------------------------------------------
# Figure 4c — lease duration sweep
# ----------------------------------------------------------------------
def fig04c_lease_sweep(
    scenario: Optional[ScenarioConfig] = None,
    leases: Sequence[float] = (5.0, 10.0, 20.0, 30.0, 40.0),
    workers: int = 1,
    cache_dir: CacheDir = None,
) -> FigureResult:
    """Max finish-time fairness vs lease duration (Figure 4c).

    Shorter leases reallocate more often and are fairer, at the cost of
    more checkpoint/restore overhead (visible in the gpu_time column).
    """
    scenario = scenario or sim_scenario()
    tasks = [
        SweepTask(
            scenario=scenario.replace(lease_minutes=lease),
            scheduler="themis",
            tags=(("lease_minutes", lease),),
        )
        for lease in leases
    ]
    report = _sweep(tasks, workers, cache_dir)
    rows = []
    for lease, task in zip(leases, tasks):
        result = report.result_for(task.task_id)
        rows.append(
            {
                "lease_minutes": lease,
                "max_rho": max_fairness(result.rhos()),
                "gpu_time": result.total_gpu_time,
                "rounds": result.num_rounds,
            }
        )
    return FigureResult(
        figure_id="fig04c",
        title="Sensitivity to lease duration",
        rows=rows,
    )


# ----------------------------------------------------------------------
# Figures 5a, 5b, 6, 7 — the macrobenchmark comparison
# ----------------------------------------------------------------------
def fig05_to_07_macrobenchmark(
    scenario: Optional[ScenarioConfig] = None,
    schedulers: Sequence[str] = PAPER_SCHEDULERS,
    workers: int = 1,
    cache_dir: CacheDir = None,
) -> FigureResult:
    """Max fairness / Jain's index / JCT / placement scores per scheduler.

    One row per scheduler with every macrobenchmark metric; the CDFs of
    Figures 6 and 7 are attached as series.  Expected shape: Themis has
    the lowest max rho and distance-from-ideal, the best Jain index and
    the best average JCT; Gandiva comes closest on placement.
    """
    scenario = scenario or testbed_scenario()
    results = compare_schedulers(
        scenario, schedulers, workers=workers, cache_dir=cache_dir
    )
    rows = []
    series: dict[str, list[tuple]] = {}
    for name, result in results.items():
        rhos = result.rhos()
        jcts = result.completion_times()
        scores = result.placement_scores()
        rows.append(
            {
                "scheduler": name,
                "max_fairness": max_fairness(rhos),
                "jain_index": jain_index(rhos),
                "dist_from_ideal": distance_from_ideal(rhos, result.peak_contention),
                "avg_jct": average_jct(jcts),
                "p95_jct": jct_summary(jcts)["p95"],
                "mean_placement_score": score_summary(scores)["mean"],
                "gpu_time": result.total_gpu_time,
                "utilization": utilization(result),
            }
        )
        series[f"jct_cdf:{name}"] = cdf(jcts)
        series[f"placement_cdf:{name}"] = cdf(scores)
    return FigureResult(
        figure_id="fig05-07",
        title="Macrobenchmark: fairness, JCT and placement across schedulers",
        rows=rows,
        series=series,
        notes=f"peak contention {max(r.peak_contention for r in results.values()):.2f}x",
    )


# ----------------------------------------------------------------------
# Figure 8 — allocation timeline for a short and a long app
# ----------------------------------------------------------------------
def fig08_timeline(
    lease_minutes: float = 20.0,
    probe_arrival: float = 40.0,
) -> FigureResult:
    """GPU allocation timeline of two hand-picked apps (Figure 8).

    Reconstructs the paper's scenario: two single-job apps with a 3x
    running-time ratio and equal placement sensitivity arrive together
    at t=40 into a small contended cluster; more apps arrive at t=60.
    Expected shape: the short app is served first and runs to
    completion; the long app is temporarily displaced by fresh arrivals
    (whose rho is unbounded) but is never starved and finishes later.
    """
    cluster = build_cluster(
        ClusterSpec(
            machine_specs=(MachineSpec(count=2, gpus_per_machine=4),),
            num_racks=1,
            name="fig8-mini",
        )
    )

    def job(job_id: str, minutes: float) -> TraceJob:
        return TraceJob(
            job_id=job_id,
            model="vgg16",
            duration_minutes=minutes,
            max_parallelism=4,
        )

    apps = [
        TraceApp("short-app", probe_arrival, (job("short-app-j0", 30.0),)),
        TraceApp("long-app", probe_arrival, (job("long-app-j0", 90.0),)),
        TraceApp("bg-0", 60.0, (job("bg-0-j0", 40.0),)),
        TraceApp("bg-1", 60.0, (job("bg-1-j0", 40.0),)),
    ]
    trace = Trace(apps=tuple(apps), name="fig8")
    sim = ClusterSimulator(
        cluster=cluster,
        workload=trace,
        scheduler=make_scheduler("themis"),
        config=SimulationConfig(lease_minutes=lease_minutes, record_timeline=True),
    )
    result = sim.run()
    series = {
        "short_app": allocation_series(result, "short-app"),
        "long_app": allocation_series(result, "long-app"),
    }
    stats = result.stats_by_app()
    rows = [
        {
            "app": app_id,
            "finished_at": stats[app_id].finished_at,
            "completion_time": stats[app_id].completion_time,
            "rho": stats[app_id].rho,
        }
        for app_id in ("short-app", "long-app")
    ]
    return FigureResult(
        figure_id="fig08",
        title="Timeline of GPU allocations (short vs long app)",
        rows=rows,
        series=series,
        notes="short app should finish first; long app must not starve",
    )


# ----------------------------------------------------------------------
# Figure 9 — sweep over the fraction of network-intensive apps
# ----------------------------------------------------------------------
def fig09_network_sweep(
    scenario: Optional[ScenarioConfig] = None,
    fractions: Sequence[float] = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0),
    schedulers: Sequence[str] = PAPER_SCHEDULERS,
    workers: int = 1,
    cache_dir: CacheDir = None,
) -> FigureResult:
    """Fairness improvement and GPU time vs network-intensive mix (Fig 9).

    9a plots Themis' max-fairness improvement factor over Tiresias —
    expected to grow from ~1x (compute-only workloads) as the fraction
    rises.  9b plots GPU time per scheduler — placement-unaware
    schedulers inflate GPU time fastest.
    """
    scenario = scenario or sim_scenario()
    tasks = {
        (fraction, name): SweepTask(
            scenario=scenario.with_generator(network_intensive_fraction=fraction),
            scheduler=name,
            tags=(("network_intensive_fraction", fraction),),
        )
        for fraction in fractions
        for name in schedulers
    }
    report = _sweep(list(tasks.values()), workers, cache_dir)
    rows = []
    for fraction in fractions:
        row: dict = {"network_intensive_fraction": fraction}
        for name in schedulers:
            result = report.result_for(tasks[(fraction, name)].task_id)
            row[f"max_rho:{name}"] = max_fairness(result.rhos())
            row[f"gpu_time:{name}"] = result.total_gpu_time
        if "themis" in schedulers and "tiresias" in schedulers:
            row["improvement_over_tiresias"] = (
                row["max_rho:tiresias"] / row["max_rho:themis"]
            )
        rows.append(row)
    return FigureResult(
        figure_id="fig09",
        title="Impact of placement sensitivity (9a: fairness factor, 9b: GPU time)",
        rows=rows,
    )


# ----------------------------------------------------------------------
# Figure 10 — contention sweep
# ----------------------------------------------------------------------
def fig10_contention_sweep(
    scenario: Optional[ScenarioConfig] = None,
    factors: Sequence[float] = (1.0, 2.0, 4.0),
    schedulers: Sequence[str] = ("themis", "tiresias"),
    workers: int = 1,
    cache_dir: CacheDir = None,
) -> FigureResult:
    """Jain's fairness index vs cluster contention (Figure 10).

    Contention is raised by compressing inter-arrival times.  Expected
    shape: both schedulers degrade, Tiresias faster than Themis.
    """
    scenario = scenario or sim_scenario()
    tasks = {
        (factor, name): SweepTask(
            scenario=scenario.with_generator(
                mean_interarrival_minutes=scenario.generator.mean_interarrival_minutes
                / factor
            ),
            scheduler=name,
            tags=(("contention_factor", factor),),
        )
        for factor in factors
        for name in schedulers
    }
    report = _sweep(list(tasks.values()), workers, cache_dir)
    rows = []
    for factor in factors:
        row: dict = {"contention_factor": factor}
        for name in schedulers:
            result = report.result_for(tasks[(factor, name)].task_id)
            row[f"jain:{name}"] = jain_index(result.rhos())
            row[f"max_rho:{name}"] = max_fairness(result.rhos())
        rows.append(row)
    return FigureResult(
        figure_id="fig10",
        title="Effect of contention on Jain's fairness index",
        rows=rows,
    )


# ----------------------------------------------------------------------
# Figure 11 — error in bid valuations
# ----------------------------------------------------------------------
def fig11_bid_error_sweep(
    scenario: Optional[ScenarioConfig] = None,
    thetas: Sequence[float] = (0.0, 0.05, 0.10, 0.20),
    workers: int = 1,
    cache_dir: CacheDir = None,
) -> FigureResult:
    """Max finish-time fairness vs valuation error theta (Figure 11).

    Errors are sampled per bundle from [-theta, +theta]; the reported
    max fairness is computed on *accurate* values, as in the paper.
    Expected shape: flat — even 20% error barely moves the metric.
    """
    scenario = scenario or sim_scenario()
    tasks = [
        SweepTask(
            scenario=scenario,
            scheduler="themis",
            scheduler_kwargs=(("noise_theta", theta),),
        )
        for theta in thetas
    ]
    report = _sweep(tasks, workers, cache_dir)
    rows = []
    for theta, task in zip(thetas, tasks):
        result = report.result_for(task.task_id)
        rows.append(
            {
                "theta": theta,
                "max_rho": max_fairness(result.rhos()),
                "jain": jain_index(result.rhos()),
            }
        )
    return FigureResult(
        figure_id="fig11",
        title="Impact of bid valuation error on max fairness",
        rows=rows,
    )
