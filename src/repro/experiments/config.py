"""Scenario presets mirroring Section 8.1's two experimental setups.

* :func:`sim_scenario` — the heterogeneous 256-GPU simulated cluster
  replaying the enterprise-trace distributions.  ``duration_scale`` is
  calibrated (0.4) so peak contention lands near the paper's 4.76x
  ("We proportionally scale down these times for purpose of our
  experiments").
* :func:`testbed_scenario` — the 50-GPU / 20-instance testbed with job
  durations scaled down 5x relative to the simulation runs, exactly as
  footnote 3 of Section 8.3 describes.

Both return a :class:`ScenarioConfig`, a declarative bundle of trace
generator + cluster + simulator knobs; every figure function accepts a
scenario so tests can shrink them and benchmarks can grow them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.cluster.topology import (
    DEFAULT_GPU_MIX,
    Cluster,
    mixed_sim_cluster,
    testbed_cluster,
    themis_sim_cluster,
)
from repro.simulation.simulator import SimulationConfig
from repro.workload.app import CompletionSemantics
from repro.workload.generator import GeneratorConfig, generate_trace
from repro.workload.trace import Trace


@dataclass(frozen=True)
class ScenarioConfig:
    """A complete runnable scenario: workload + cluster + sim knobs."""

    name: str
    generator: GeneratorConfig
    #: "sim" (256 GPUs), "testbed" (50 GPUs) or "hetero" (the sim
    #: cluster shape with a mixed-generation GPU fleet).
    cluster_kind: str = "sim"
    cluster_scale: float = 1.0
    #: GPU-generation mixture for ``cluster_kind="hetero"``: a tuple of
    #: (type name, fraction) pairs — the heterogeneity-ratio sweep axis.
    #: Empty means :data:`~repro.cluster.topology.DEFAULT_GPU_MIX`.
    gpu_mix: tuple = ()
    lease_minutes: float = 20.0
    restart_overhead_minutes: float = 0.5
    record_timeline: bool = False
    max_minutes: Optional[float] = None
    semantics: CompletionSemantics = CompletionSemantics.ALL_JOBS
    #: Cap on retained contention/timeline samples (None = keep all).
    downsample: Optional[int] = None
    #: Performance-model spec: empty (scalar speeds), a preset name from
    #: :data:`repro.workload.perf.PERF_MATRIX_PRESETS`, or a matrix in
    #: any form :func:`repro.workload.perf.canonical_matrix` accepts.
    perf_matrix: object = ()
    #: Speed-aware job migration (see ``SimulationConfig.migration``).
    migration: bool = False

    def build_cluster(self) -> Cluster:
        """Materialise the scenario's cluster."""
        if self.cluster_kind == "sim":
            return themis_sim_cluster(scale=self.cluster_scale)
        if self.cluster_kind == "testbed":
            return testbed_cluster()
        if self.cluster_kind == "hetero":
            mix = tuple(tuple(pair) for pair in self.gpu_mix) or DEFAULT_GPU_MIX
            return mixed_sim_cluster(scale=self.cluster_scale, mix=mix)
        raise ValueError(f"unknown cluster kind {self.cluster_kind!r}")

    def build_trace(self) -> Trace:
        """Sample the scenario's workload trace (deterministic in the seed)."""
        return generate_trace(self.generator)

    def build_sim_config(self) -> SimulationConfig:
        """Simulator knobs for this scenario."""
        return SimulationConfig(
            lease_minutes=self.lease_minutes,
            restart_overhead_minutes=self.restart_overhead_minutes,
            semantics=self.semantics,
            max_minutes=self.max_minutes,
            record_timeline=self.record_timeline,
            downsample=self.downsample,
            migration=self.migration,
        )

    def build_perf_model(self):
        """The scenario's performance model, or ``None`` when unset.

        ``None`` (no matrix on the scenario) lets the simulator fall
        back to whatever the trace carries — a generator-embedded
        matrix must not be silently overridden by the scalar default.
        """
        from repro.workload.perf import resolve_matrix_spec, resolve_perf_model

        matrix = resolve_matrix_spec(self.perf_matrix)
        if not matrix:
            return None
        return resolve_perf_model(matrix)

    def replace(self, **changes) -> "ScenarioConfig":
        """Functional update returning a new scenario."""
        return replace(self, **changes)

    def with_generator(self, **changes) -> "ScenarioConfig":
        """Functional update of nested generator fields."""
        return self.replace(generator=self.generator.replace(**changes))


def sim_scenario(
    num_apps: int = 40,
    seed: int = 42,
    duration_scale: float = 0.4,
    **kwargs,
) -> ScenarioConfig:
    """The 256-GPU simulation scenario (Figures 4, 9, 10, 11)."""
    return ScenarioConfig(
        name=f"sim256-n{num_apps}-s{seed}",
        generator=GeneratorConfig(
            num_apps=num_apps, seed=seed, duration_scale=duration_scale
        ),
        cluster_kind="sim",
        **kwargs,
    )


def testbed_scenario(
    num_apps: int = 25,
    seed: int = 42,
    duration_scale: float = 0.08,
    jobs_per_app_median: float = 8.0,
    jobs_per_app_max: int = 24,
    **kwargs,
) -> ScenarioConfig:
    """The 50-GPU testbed scenario (Figures 5-8).

    Durations are 1/5 of the simulation scenario's (0.4 / 5 = 0.08),
    mirroring the paper's testbed scaling footnote while keeping the
    arrival process unchanged.  Exploration widths are narrowed
    (median 8 jobs/app instead of the trace's 23) so the 50-GPU
    cluster sees the peak contention the paper reports (~4.76x);
    replaying full-width apps would put demand at >20x a 50-GPU
    cluster and make every scheduler look identically saturated.
    """
    return ScenarioConfig(
        name=f"testbed50-n{num_apps}-s{seed}",
        generator=GeneratorConfig(
            num_apps=num_apps,
            seed=seed,
            duration_scale=duration_scale,
            jobs_per_app_median=jobs_per_app_median,
            jobs_per_app_max=jobs_per_app_max,
        ),
        cluster_kind="testbed",
        **kwargs,
    )


def hetero_scenario(
    num_apps: int = 40,
    seed: int = 42,
    duration_scale: float = 0.4,
    gpu_mix: tuple = DEFAULT_GPU_MIX,
    **kwargs,
) -> ScenarioConfig:
    """A mixed-generation variant of the 256-GPU simulation scenario.

    Same workload distributions as :func:`sim_scenario`, replayed on
    the paper-shaped cluster whose machine fleet is split across GPU
    generations by ``gpu_mix`` (default 50/25/25 V100/P100/K80).  The
    mix is the heterogeneity-ratio sweep axis; pass it through
    ``scenario_axes={"gpu_mix": [...]}`` to sweep fleet compositions.
    """
    mix = tuple(tuple(pair) for pair in gpu_mix)
    mix_tag = "-".join(f"{name}{fraction:g}" for name, fraction in mix)
    return ScenarioConfig(
        name=f"hetero256-n{num_apps}-s{seed}-{mix_tag}",
        generator=GeneratorConfig(
            num_apps=num_apps, seed=seed, duration_scale=duration_scale
        ),
        cluster_kind="hetero",
        gpu_mix=mix,
        **kwargs,
    )


def tiny_scenario(num_apps: int = 4, seed: int = 0) -> ScenarioConfig:
    """A seconds-fast scenario for unit and integration tests."""
    return ScenarioConfig(
        name=f"tiny-n{num_apps}-s{seed}",
        generator=GeneratorConfig(
            num_apps=num_apps,
            seed=seed,
            duration_scale=0.1,
            jobs_per_app_median=4.0,
            jobs_per_app_max=8,
        ),
        cluster_kind="testbed",
        lease_minutes=10.0,
    )
