"""Plain-text rendering of figure results.

Benchmarks print these tables so the regenerated rows/series of every
paper figure are visible in the benchmark log (and in
``bench_output.txt``), without any plotting dependency.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.experiments.figures import FigureResult


def _format_cell(value) -> str:
    if isinstance(value, float):
        if math.isinf(value):
            return "inf"
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Fixed-width ASCII table."""
    cells = [[_format_cell(v) for v in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(row[i]) for row in cells)) if cells else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in cells:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def format_figure(result: FigureResult, max_series_points: int = 8) -> str:
    """Render a FigureResult: title, table of rows, sampled series."""
    blocks = [f"== {result.figure_id}: {result.title} =="]
    if result.notes:
        blocks.append(f"   ({result.notes})")
    if result.rows:
        headers = list(result.rows[0].keys())
        table_rows = [[row.get(h) for h in headers] for row in result.rows]
        blocks.append(format_table(headers, table_rows))
    for name, points in result.series.items():
        if not points:
            continue
        step = max(1, len(points) // max_series_points)
        sampled = points[::step]
        rendered = ", ".join(
            "(" + ", ".join(_format_cell(v) for v in point) + ")" for point in sampled
        )
        blocks.append(f"series {name}: {rendered}")
    return "\n".join(blocks)
