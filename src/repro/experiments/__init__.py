"""Experiment harness: one entry point per figure of the evaluation.

:mod:`repro.experiments.config` defines the two scenario presets the
paper evaluates on (the 256-GPU simulated cluster and the 50-GPU
testbed, Section 8.1), :mod:`repro.experiments.runner` executes
scenarios, and :mod:`repro.experiments.figures` contains one function
per paper figure returning a :class:`FigureResult` with the same
rows/series the paper plots.  :mod:`repro.experiments.report` renders
results as text tables (the benchmark suite prints these).
"""

from repro.experiments.config import (
    ScenarioConfig,
    hetero_scenario,
    sim_scenario,
    testbed_scenario,
)
from repro.experiments.runner import compare_schedulers, run_scenario
from repro.experiments.figures import (
    FigureResult,
    fig01_task_duration_cdf,
    fig02_placement_throughput,
    fig04_knob_sweep,
    fig04c_lease_sweep,
    fig05_to_07_macrobenchmark,
    fig08_timeline,
    fig09_network_sweep,
    fig10_contention_sweep,
    fig11_bid_error_sweep,
)
from repro.experiments.report import format_figure, format_table

__all__ = [
    "FigureResult",
    "ScenarioConfig",
    "compare_schedulers",
    "fig01_task_duration_cdf",
    "fig02_placement_throughput",
    "fig04_knob_sweep",
    "fig04c_lease_sweep",
    "fig05_to_07_macrobenchmark",
    "fig08_timeline",
    "fig09_network_sweep",
    "fig10_contention_sweep",
    "fig11_bid_error_sweep",
    "format_figure",
    "format_table",
    "hetero_scenario",
    "run_scenario",
    "sim_scenario",
    "testbed_scenario",
]
