"""Themis: the full two-level semi-optimistic scheduler (Sections 3-5).

This class only wires the pieces together: a
:class:`~repro.core.fairness.FairnessEstimator` shared by all AGENTs,
one :class:`~repro.core.agent.Agent` per active app, and the central
:class:`~repro.core.arbiter.Arbiter` that runs the partial-allocation
auctions.  All policy lives in those core modules.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.cluster.topology import Gpu
from repro.core.agent import Agent
from repro.core.arbiter import Arbiter, ArbiterConfig
from repro.core.fairness import FairnessEstimator
from repro.schedulers.base import InterAppScheduler
from repro.workload.app import App


class ThemisScheduler(InterAppScheduler):
    """Finish-time-fair auctions with the fairness knob ``f``.

    Defaults follow the paper's operating point: ``f = 0.8`` and hidden
    payments enabled.  ``noise_theta`` injects the bid-valuation error
    of Figure 11; the two boolean switches feed the ablation benches.
    """

    name = "themis"

    def __init__(
        self,
        fairness_knob: float = 0.8,
        chunk_size: int = 4,
        noise_theta: float = 0.0,
        hidden_payments: bool = True,
        leftover_allocation: bool = True,
        seed: int = 0,
    ) -> None:
        super().__init__()
        self.config = ArbiterConfig(
            fairness_knob=fairness_knob,
            chunk_size=chunk_size,
            noise_theta=noise_theta,
            hidden_payments=hidden_payments,
            leftover_allocation=leftover_allocation,
        )
        self.seed = seed
        self.estimator: FairnessEstimator | None = None
        self.arbiter: Arbiter | None = None
        self.agents: dict[str, Agent] = {}
        #: Whether AGENTs reuse valuation state across rounds; bound
        #: from ``SimulationConfig.incremental`` (the cold-rebuild
        #: baseline of ``repro bench sim`` sets it to False).
        self.incremental = True

    def on_bind(self) -> None:
        assert self.sim is not None
        self.estimator = FairnessEstimator(
            self.sim.cluster,
            semantics=self.sim.config.semantics,
            perf_model=self.sim.perf_model,
        )
        self.incremental = getattr(self.sim.config, "incremental", True)
        self.arbiter = Arbiter(
            self.sim.cluster,
            config=self.config,
            rng=np.random.default_rng(self.seed),
        )
        # The batch valuation engine and the auction warm starts ride on
        # the incremental pipeline; the cold baseline runs neither.
        self.arbiter.incremental = self.incremental
        self.arbiter.estimator = self.estimator
        self.arbiter.auction.warm_enabled = self.incremental
        self.arbiter.auction.estimator = self.estimator
        obs = getattr(self.sim, "obs", None)
        if obs is not None:
            self.arbiter.tracer = obs.tracer
            self.arbiter.profiler = obs.profiler
            self.arbiter.auction.profiler = obs.profiler
            self.estimator.profiler = obs.profiler
        self.agents = {}

    def on_app_arrival(self, now: float, app: App) -> None:
        assert self.estimator is not None
        self.agents[app.app_id] = Agent(
            app,
            self.estimator,
            noise_theta=self.config.noise_theta,
            incremental=self.incremental,
        )

    def on_app_finish(self, now: float, app: App) -> None:
        self.agents.pop(app.app_id, None)

    def assign(self, now: float, pool: Sequence[Gpu]) -> dict[str, list[Gpu]]:
        assert self.arbiter is not None
        live_agents = {
            app_id: agent
            for app_id, agent in self.agents.items()
            if app_id in self.active_apps()
        }
        if not live_agents:
            return {}
        return self.arbiter.offer_resources(now, list(pool), live_agents)
