"""Inter-app scheduler interface.

A scheduler receives the pool of available GPUs whenever leases expire
or jobs complete, and returns who gets what.  The simulator handles the
mechanics (leases, preemption overhead, job events); the scheduler is
pure policy.  This is the seam at which Themis and every baseline plug
into the same market harness, as the paper's evaluation does.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Optional, Sequence

from repro.cluster.topology import Gpu
from repro.workload.app import App

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simulation.simulator import ClusterSimulator


class InterAppScheduler(abc.ABC):
    """Base class for all cross-app scheduling policies."""

    #: Human-readable policy name used in reports and figures.
    name: str = "base"

    def __init__(self) -> None:
        self.sim: Optional["ClusterSimulator"] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def bind(self, simulator: "ClusterSimulator") -> None:
        """Attach to a simulator before the run starts."""
        self.sim = simulator
        self.on_bind()

    def on_bind(self) -> None:
        """Hook for subclasses to build per-run state (estimators, RNGs)."""

    def on_app_arrival(self, now: float, app: App) -> None:
        """Called when an app becomes active."""

    def on_app_finish(self, now: float, app: App) -> None:
        """Called when an app completes."""

    # ------------------------------------------------------------------
    # The policy decision
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def assign(self, now: float, pool: Sequence[Gpu]) -> dict[str, list[Gpu]]:
        """Decide ownership of the pooled GPUs.

        Returns a mapping app_id -> GPUs drawn from ``pool``.  GPUs left
        out of the mapping stay with their incumbent holder (lease
        renewal) or remain free.  Assignments must be disjoint and must
        not exceed the pool; the simulator enforces both.
        """

    # ------------------------------------------------------------------
    # Common helpers
    # ------------------------------------------------------------------
    def active_apps(self) -> dict[str, App]:
        """The currently active apps, keyed by id."""
        if self.sim is None:
            raise RuntimeError(f"{type(self).__name__} is not bound to a simulator")
        return self.sim.active_apps

    def apps_with_demand(self) -> list[App]:
        """Active apps that can still use more GPUs, in id order."""
        return [
            app
            for app_id, app in sorted(self.active_apps().items())
            if app.unmet_demand() > 0
        ]

    def machine_speeds(self) -> dict[int, float]:
        """machine_id -> GPU speed class of the bound cluster."""
        if self.sim is None:
            raise RuntimeError(f"{type(self).__name__} is not bound to a simulator")
        return self.sim.cluster.machine_speeds()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
