"""Inter-app scheduler interface.

A scheduler receives the pool of available GPUs whenever leases expire
or jobs complete, and returns who gets what.  The simulator handles the
mechanics (leases, preemption overhead, job events); the scheduler is
pure policy.  This is the seam at which Themis and every baseline plug
into the same market harness, as the paper's evaluation does.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Mapping, Optional, Sequence

from repro.cluster.topology import Gpu
from repro.workload.app import App

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simulation.simulator import ClusterSimulator


class InterAppScheduler(abc.ABC):
    """Base class for all cross-app scheduling policies."""

    #: Human-readable policy name used in reports and figures.
    name: str = "base"

    def __init__(self) -> None:
        self.sim: Optional["ClusterSimulator"] = None
        self._scalar_speed_map: Optional[dict[int, float]] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def bind(self, simulator: "ClusterSimulator") -> None:
        """Attach to a simulator before the run starts."""
        self.sim = simulator
        self._scalar_speed_map = None
        self.on_bind()

    def on_bind(self) -> None:
        """Hook for subclasses to build per-run state (estimators, RNGs)."""

    def on_app_arrival(self, now: float, app: App) -> None:
        """Called when an app becomes active."""

    def on_app_finish(self, now: float, app: App) -> None:
        """Called when an app completes."""

    # ------------------------------------------------------------------
    # The policy decision
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def assign(self, now: float, pool: Sequence[Gpu]) -> dict[str, list[Gpu]]:
        """Decide ownership of the pooled GPUs.

        Returns a mapping app_id -> GPUs drawn from ``pool``.  GPUs left
        out of the mapping stay with their incumbent holder (lease
        renewal) or remain free.  Assignments must be disjoint and must
        not exceed the pool; the simulator enforces both.
        """

    # ------------------------------------------------------------------
    # Common helpers
    # ------------------------------------------------------------------
    def active_apps(self) -> dict[str, App]:
        """The currently active apps, keyed by id."""
        if self.sim is None:
            raise RuntimeError(f"{type(self).__name__} is not bound to a simulator")
        return self.sim.active_apps

    def apps_with_demand(self) -> list[App]:
        """Active apps that can still use more GPUs, in id order."""
        return [
            app
            for app_id, app in sorted(self.active_apps().items())
            if app.unmet_demand() > 0
        ]

    def machine_speeds(self) -> dict[int, float]:
        """machine_id -> GPU speed class of the bound cluster (scalar)."""
        if self.sim is None:
            raise RuntimeError(f"{type(self).__name__} is not bound to a simulator")
        return self.sim.cluster.machine_speeds()

    def perf_model(self):
        """The bound run's performance model (scalar when unbound)."""
        if self.sim is None:
            raise RuntimeError(f"{type(self).__name__} is not bound to a simulator")
        return self.sim.perf_model

    def machine_speeds_for(self, app: App) -> Mapping[int, float]:
        """Machine speeds as seen by one app's model family (read-only).

        Under the scalar model (or for mixed-family apps) this is the
        scalar speed map; under a throughput matrix each app sees its
        own family's row, so baseline fills drain the machines that are
        fast *for that app* first.  The returned mapping is shared and
        cached (one per family per run, one scalar map per bind) — it
        is called once per app per round on baseline hot paths, so
        callers must treat it as read-only.
        """
        if self.sim is None:
            raise RuntimeError(f"{type(self).__name__} is not bound to a simulator")
        family_fn = self.sim.family_speed_index
        if family_fn is not None:
            from repro.workload.perf import app_family

            family = app_family(app)
            if family is not None:
                return family_fn(family)
        if self._scalar_speed_map is None:
            self._scalar_speed_map = self.sim.cluster.machine_speeds()
        return self._scalar_speed_map

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
