"""Inter-app schedulers: Themis and the baselines of Section 8.

"Since none of the state-of-the-art schemes are open-source, we
benchmark THEMIS against them by emulating their behavior to fit into
an auction-based fair market scheme" — each baseline here implements
exactly the emulation the paper describes (placement-score greedy for
Gandiva, least-attained-service for Tiresias, aggregate loss reduction
for SLAQ), plus the Section 4 strawman and classical FIFO / DRF
baselines used by the ablation benchmarks.
"""

from repro.schedulers.base import InterAppScheduler
from repro.schedulers.fifo import FifoScheduler
from repro.schedulers.drf import DrfScheduler
from repro.schedulers.gandiva import GandivaScheduler
from repro.schedulers.optimus import OptimusScheduler
from repro.schedulers.slaq import SlaqScheduler
from repro.schedulers.strawman import StrawmanScheduler
from repro.schedulers.themis import ThemisScheduler
from repro.schedulers.tiresias import TiresiasScheduler
from repro.schedulers.registry import SCHEDULER_NAMES, make_scheduler

__all__ = [
    "DrfScheduler",
    "FifoScheduler",
    "GandivaScheduler",
    "InterAppScheduler",
    "OptimusScheduler",
    "SCHEDULER_NAMES",
    "SlaqScheduler",
    "StrawmanScheduler",
    "ThemisScheduler",
    "TiresiasScheduler",
    "make_scheduler",
]
