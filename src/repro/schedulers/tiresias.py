"""Tiresias baseline: least attained service (Section 8's emulation).

"We model Tiresias using bids by having all apps report their total GPU
service.  The ARBITER assigns resources to apps that have the least GPU
service.  This model represents a version of Least Acquired Service
(LAS) used by Tiresias."

Tiresias is deliberately placement-*unaware* ("Tiresias's inefficacy
arises from its focus on simple resource fairness which ignores
placement sensitivity"): GPUs are taken round-robin across machines,
modelling a scheduler that treats the cluster as a flat GPU pool.  On
mixed fleets the LAS metric itself is generation-aware — attained
service accrues in speed-weighted effective GPU-minutes (see
:meth:`repro.workload.job.Job.advance_to`), so a K80-hour counts for
less than a V100-hour — while the *fill* stays deliberately blind to
both placement and speed, true to the emulation.  It stays blind under
a per-family throughput matrix too: attained service measures *device*
compute consumed, not model progress, so Tiresias is the control
baseline that ignores rate inversions entirely.
"""

from __future__ import annotations

from typing import Sequence

from repro.cluster.topology import Gpu
from repro.core.assignment import group_pool
from repro.schedulers.base import InterAppScheduler


def take_scattered(pool_by_machine: dict[int, list[Gpu]], count: int) -> list[Gpu]:
    """Take ``count`` GPUs round-robin across machines (placement-blind).

    Mutates ``pool_by_machine``.  Deterministic: machines are visited
    in id order, one GPU per visit.
    """
    taken: list[Gpu] = []
    while count > 0 and pool_by_machine:
        for machine_id in sorted(pool_by_machine):
            gpus = pool_by_machine[machine_id]
            taken.append(gpus.pop(0))
            if not gpus:
                del pool_by_machine[machine_id]
            count -= 1
            if count <= 0:
                break
    return taken


class TiresiasScheduler(InterAppScheduler):
    """Least-attained-service ordering, placement-blind fill."""

    name = "tiresias"

    def assign(self, now: float, pool: Sequence[Gpu]) -> dict[str, list[Gpu]]:
        pool_by_machine = group_pool(pool)
        result: dict[str, list[Gpu]] = {}
        ranked = sorted(
            self.apps_with_demand(),
            key=lambda app: (app.attained_service(), app.app_id),
        )
        for app in ranked:
            if not pool_by_machine:
                break
            taken = take_scattered(pool_by_machine, app.unmet_demand())
            if taken:
                result[app.app_id] = taken
        return result
