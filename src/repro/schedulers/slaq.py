"""SLAQ baseline: quality-driven scheduling (Section 8's emulation).

"We model SLAQ using bids by having all apps report their decrease in
loss value given the resource allocation.  The ARBITER assigns
resources to apps so as to maximize the aggregate decrease in loss."

The utility of a bundle is the predicted total loss reduction over the
next lease window.  SLAQ is placement-unaware (it never profiled
communication), so its predictions assume perfect linear scaling
(S = 1) and it draws concrete GPUs placement-blind — which is why it
lands at the bottom of the placement-score CDF (Figure 7) and demotes
old, slowly-converging jobs (poor fairness, Figure 5).
"""

from __future__ import annotations

from typing import Sequence

from repro.cluster.topology import Gpu
from repro.core.assignment import greedy_utility_assign, group_pool
from repro.schedulers.base import InterAppScheduler
from repro.schedulers.tiresias import take_scattered
from repro.workload.app import App
from repro.workload.perf import app_effective_compute, app_family


class SlaqScheduler(InterAppScheduler):
    """Maximise aggregate loss reduction over the next lease window."""

    name = "slaq"

    def __init__(self, chunk_size: int = 4) -> None:
        super().__init__()
        self.chunk_size = chunk_size

    @staticmethod
    def _job_snapshot(app: App) -> list[tuple]:
        """Frozen per-job facts needed to predict loss reduction.

        Shortest-remaining-work jobs first, mirroring the intra-app
        split: (remaining, cap, curve, iterations_done, iters_per_work).
        """
        rows = []
        for job in app.active_jobs():
            if job.spec.loss_curve is None:
                continue
            rows.append(
                (
                    job.remaining_work,
                    job.max_parallelism,
                    job.spec.loss_curve,
                    job.iterations_done,
                    job.spec.total_iterations / job.spec.serial_work,
                    job.job_id,
                )
            )
        rows.sort(key=lambda row: (row[0], row[5]))
        return rows

    def _loss_reduction(
        self, snapshot: list[tuple], held_gpus: float, window: float, extra_gpus: float
    ) -> float:
        """Predicted loss decrease of an app over one lease window.

        Jobs split the app's hypothetical GPU total (existing + bundle,
        both in speed-weighted *effective* units) up to their
        parallelism caps, progress at the placement-blind rate ``G``
        work-units/minute, and each contributes its loss delta after
        that much extra work.
        """
        total_gpus = held_gpus + extra_gpus
        reduction = 0.0
        for remaining, cap, curve, iters_done, iters_per_work, _job_id in snapshot:
            if total_gpus <= 0:
                break
            take = min(cap, total_gpus)
            total_gpus -= take
            extra_work = min(remaining, take * window)
            loss_now = curve.loss_at(iters_done)
            loss_then = curve.loss_at(iters_done + extra_work * iters_per_work)
            reduction += loss_now - loss_then
        return reduction

    def assign(self, now: float, pool: Sequence[Gpu]) -> dict[str, list[Gpu]]:
        apps = self.apps_with_demand()
        if not apps:
            return {}
        pool_by_machine = group_pool(pool)
        counts = {m: len(g) for m, g in pool_by_machine.items()}
        window = self.sim.config.lease_minutes if self.sim else 20.0
        model = self.perf_model()
        # Family-relative effective units, like Optimus: SLAQ predicts
        # loss reduction from work done, and work rate per GPU depends
        # on the app's model family under a throughput matrix.  Held
        # compute and bundle increments must share one unit per app, so
        # mixed-family apps use scalar speeds for both.
        speed_maps = {app.app_id: self.machine_speeds_for(app) for app in apps}
        families = {app.app_id: app_family(app) for app in apps}

        def bundle_effective(app_id: str, bundle: dict[int, int]) -> float:
            speed_of = speed_maps[app_id]
            return sum(c * speed_of.get(m, 1.0) for m, c in bundle.items())

        snapshots = {app.app_id: self._job_snapshot(app) for app in apps}
        held = {
            app.app_id: (
                app_effective_compute(app, model)
                if families[app.app_id] is not None
                else app.allocation().effective_size
            )
            for app in apps
        }
        utilities = {
            app.app_id: (
                lambda bundle, app_id=app.app_id: self._loss_reduction(
                    snapshots[app_id],
                    held[app_id],
                    window,
                    bundle_effective(app_id, bundle),
                )
            )
            for app in apps
        }
        caps = {app.app_id: app.unmet_demand() for app in apps}
        assignment = greedy_utility_assign(
            counts, utilities, caps, chunk_size=self.chunk_size
        )
        # Placement-blind concretisation: SLAQ never reasons about which
        # machines the GPUs came from.
        result: dict[str, list[Gpu]] = {}
        for app_id in sorted(assignment, key=lambda a: (-sum(assignment[a].values()), a)):
            want = sum(assignment[app_id].values())
            taken = take_scattered(pool_by_machine, want)
            if taken:
                result[app_id] = taken
        return result
