"""Optimus baseline (Peng et al., EuroSys 2018 — Section 9 related work).

Optimus is the fourth ML-cluster scheduler the paper names ("Cluster
scheduling for ML workloads has been targeted by ... SLAQ, Gandiva,
Tiresias and Optimus").  It allocates GPUs greedily by *marginal gain*:
each additional GPU goes to the job whose estimated remaining
completion time drops the most, using a fitted throughput-scaling
model.  Like SLAQ and Tiresias it reasons about throughput, not
placement, so its scaling estimates assume perfect linear speedup and
its grants are concretised placement-blind.

Included as an extension beyond the paper's comparison set; the
ablation benchmarks exercise it.
"""

from __future__ import annotations

from typing import Sequence

from repro.cluster.topology import Gpu
from repro.core.assignment import greedy_utility_assign, group_pool
from repro.schedulers.base import InterAppScheduler
from repro.schedulers.tiresias import take_scattered
from repro.workload.app import App
from repro.workload.perf import app_effective_compute, app_family


class OptimusScheduler(InterAppScheduler):
    """Greedy marginal completion-time-reduction allocation."""

    name = "optimus"

    def __init__(self, chunk_size: int = 4) -> None:
        super().__init__()
        self.chunk_size = chunk_size

    @staticmethod
    def _job_snapshot(app: App) -> list[tuple[float, int]]:
        """(remaining_work, cap) rows, shortest remaining first."""
        rows = [
            (job.remaining_work, job.max_parallelism, job.job_id)
            for job in app.active_jobs()
        ]
        rows.sort(key=lambda row: (row[0], row[2]))
        return [(row[0], row[1]) for row in rows]

    @staticmethod
    def _estimated_completion(
        snapshot: Sequence[tuple[float, int]], gpus: float
    ) -> float:
        """Sum of per-job completion estimates with ``gpus`` split greedily.

        ``gpus`` is measured in *effective* compute units (speed-weighted
        GPU count, = plain count on a homogeneous cluster).  Optimus'
        linear-scaling assumption: a job with ``g`` effective GPUs takes
        ``remaining / g``; jobs beyond the GPU supply dominate the sum
        via a large (but finite) waiting proxy so marginal gains remain
        comparable.
        """
        total = 0.0
        available = gpus
        for remaining, cap in snapshot:
            take = min(cap, available)
            available -= take
            if take > 0:
                total += remaining / take
            else:
                # Unserved job: serial time plus a queueing penalty, so
                # the first GPU a job receives has positive marginal
                # value while the utility stays finite.
                total += 2.0 * remaining
        return total

    def _time_reduction(
        self, snapshot: Sequence[tuple[float, int]], held: float, extra: float
    ) -> float:
        base = self._estimated_completion(snapshot, held)
        improved = self._estimated_completion(snapshot, held + extra)
        return max(0.0, base - improved)

    def assign(self, now: float, pool: Sequence[Gpu]) -> dict[str, list[Gpu]]:
        apps = self.apps_with_demand()
        if not apps:
            return {}
        pool_by_machine = group_pool(pool)
        counts = {m: len(g) for m, g in pool_by_machine.items()}
        model = self.perf_model()
        # Effective units are family-relative under a throughput matrix:
        # each app prices an offered machine by its own row.  One unit
        # per app — mixed-family apps fall back to scalar speeds for
        # *both* held compute and bundle increments, so the marginal
        # comparison never mixes incommensurable units.
        speed_maps = {app.app_id: self.machine_speeds_for(app) for app in apps}
        families = {app.app_id: app_family(app) for app in apps}

        def bundle_effective(app_id: str, bundle: dict[int, int]) -> float:
            speed_of = speed_maps[app_id]
            return sum(c * speed_of.get(m, 1.0) for m, c in bundle.items())

        snapshots = {app.app_id: self._job_snapshot(app) for app in apps}
        held = {
            app.app_id: (
                app_effective_compute(app, model)
                if families[app.app_id] is not None
                else app.allocation().effective_size
            )
            for app in apps
        }
        utilities = {
            app.app_id: (
                lambda bundle, app_id=app.app_id: self._time_reduction(
                    snapshots[app_id], held[app_id], bundle_effective(app_id, bundle)
                )
            )
            for app in apps
        }
        caps = {app.app_id: app.unmet_demand() for app in apps}
        assignment = greedy_utility_assign(
            counts, utilities, caps, chunk_size=self.chunk_size
        )
        result: dict[str, list[Gpu]] = {}
        for app_id in sorted(assignment, key=lambda a: (-sum(assignment[a].values()), a)):
            want = sum(assignment[app_id].values())
            taken = take_scattered(pool_by_machine, want)
            if taken:
                result[app_id] = taken
        return result
