"""Gandiva baseline: introspective placement-score packing (Section 8).

"We model Gandiva by having all apps report the placement score for the
resources offered, and running the same greedy placement algorithm at
the end of each lease to maximize the placement scores for all apps."

The social objective is the *sum* of per-app packing quality — each
job's GPUs weighted by the 4-level placement score of their spread —
maximised with the shared greedy utility allocator.  No fairness terms
at all, which is why Gandiva places well (Figure 7) but lands far from
ideal on max finish-time fairness (Figure 5a).
"""

from __future__ import annotations

from typing import Sequence

from repro.cluster.topology import Gpu
from repro.core.assignment import concretise, greedy_utility_assign, group_pool
from repro.core.fairness import job_tuples_of, packing_utility
from repro.schedulers.base import InterAppScheduler


class GandivaScheduler(InterAppScheduler):
    """Greedy aggregate placement-score maximisation."""

    name = "gandiva"

    def __init__(self, chunk_size: int = 4) -> None:
        super().__init__()
        self.chunk_size = chunk_size
        self._rack_of: dict[int, int] = {}
        self._speed_of: dict[int, float] = {}
        self._family_speed_fn = None

    def on_bind(self) -> None:
        assert self.sim is not None
        self._rack_of = {
            machine.machine_id: machine.rack_id
            for machine in self.sim.cluster.machines
        }
        self._speed_of = self.sim.cluster.machine_speeds()
        # Per-family machine speeds under a throughput matrix (None =
        # scalar): packing quality then weighs each job's GPUs by how
        # fast *that job's* family runs on them.
        self._family_speed_fn = self.sim.family_speed_index

    def assign(self, now: float, pool: Sequence[Gpu]) -> dict[str, list[Gpu]]:
        apps = self.apps_with_demand()
        if not apps:
            return {}
        pool_by_machine = group_pool(pool)
        counts = {m: len(g) for m, g in pool_by_machine.items()}
        # Snapshot each app's job descriptors and current holdings once;
        # the greedy allocator probes utilities many times per round.
        snapshots = {
            app.app_id: (
                job_tuples_of(app.jobs),
                dict(app.allocation().per_machine_counts()),
            )
            for app in apps
        }

        def utility_for(app_id: str):
            tuples, base_counts = snapshots[app_id]

            def utility(bundle: dict[int, int]) -> float:
                merged = dict(base_counts)
                for machine_id, count in bundle.items():
                    merged[machine_id] = merged.get(machine_id, 0) + count
                return packing_utility(
                    tuples,
                    merged,
                    self._rack_of,
                    speed_of=self._speed_of,
                    family_speed_of=self._family_speed_fn,
                )

            return utility

        utilities = {app.app_id: utility_for(app.app_id) for app in apps}
        caps = {app.app_id: app.unmet_demand() for app in apps}
        assignment = greedy_utility_assign(
            counts, utilities, caps, chunk_size=self.chunk_size
        )
        return concretise(assignment, pool_by_machine)
