"""First-in-first-out baseline.

Not in the paper's comparison set, but the simplest sane policy — used
by tests and as an ablation anchor: arrival order, placement-aware fill
(an app keeps drawing from machines it already occupies).
"""

from __future__ import annotations

from typing import Sequence

from repro.cluster.topology import Gpu
from repro.core.assignment import group_pool, take_packed
from repro.schedulers.base import InterAppScheduler


class FifoScheduler(InterAppScheduler):
    """Earliest-arrival app first, each filled to its demand."""

    name = "fifo"

    def assign(self, now: float, pool: Sequence[Gpu]) -> dict[str, list[Gpu]]:
        pool_by_machine = group_pool(pool)
        result: dict[str, list[Gpu]] = {}
        ranked = sorted(
            self.apps_with_demand(), key=lambda app: (app.arrival_time, app.app_id)
        )
        for app in ranked:
            if not pool_by_machine:
                break
            want = app.unmet_demand()
            preferred = app.allocation().machine_ids
            # Each app drains the machines fastest *for its own model
            # family* first (= the scalar speed order on scalar runs).
            taken = take_packed(
                pool_by_machine,
                want,
                preferred_machines=preferred,
                speed_of=self.machine_speeds_for(app),
            )
            if taken:
                result[app.app_id] = taken
        return result
