"""DRF-style instantaneous resource fairness baseline (Section 2.2).

With GPUs as the single resource, Dominant Resource Fairness reduces to
max-min fairness on GPU shares: water-fill one GPU at a time to the app
with the smallest current holding (relative to its demand).  On a mixed
fleet the dominant share is *speed-weighted* — holding one K80 is a
smaller share of the cluster's compute than holding one V100 — which
reduces to plain GPU counts when every GPU has speed 1.0.  This is the
"established scheme" whose failure modes — indifference to task length
and to placement — motivate the paper; the ablation benchmarks measure
them directly.
"""

from __future__ import annotations

from typing import Sequence

from repro.cluster.topology import Gpu
from repro.core.assignment import group_pool, take_packed
from repro.schedulers.base import InterAppScheduler


class DrfScheduler(InterAppScheduler):
    """Max-min water-filling on speed-weighted GPU shares (single-resource DRF)."""

    name = "drf"

    def assign(self, now: float, pool: Sequence[Gpu]) -> dict[str, list[Gpu]]:
        pool_by_machine = group_pool(pool)
        apps = self.apps_with_demand()
        if not apps:
            return {}
        speed_of = self.machine_speeds()
        holdings = {app.app_id: app.allocation().effective_size for app in apps}
        demand_left = {app.app_id: app.unmet_demand() for app in apps}
        machines_of = {app.app_id: set(app.allocation().machine_ids) for app in apps}
        result: dict[str, list[Gpu]] = {app.app_id: [] for app in apps}
        while pool_by_machine:
            candidates = [a for a in sorted(holdings) if demand_left[a] > 0]
            if not candidates:
                break
            # Max-min: smallest dominant share (= effective compute held) first.
            chosen = min(candidates, key=lambda a: (holdings[a], a))
            taken = take_packed(
                pool_by_machine, 1, sorted(machines_of[chosen]), speed_of=speed_of
            )
            if not taken:
                break
            gpu = taken[0]
            result[chosen].append(gpu)
            holdings[chosen] += gpu.speed
            demand_left[chosen] -= 1
            machines_of[chosen].add(gpu.machine_id)
        return {a: gpus for a, gpus in result.items() if gpus}
