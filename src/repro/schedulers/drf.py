"""DRF-style instantaneous resource fairness baseline (Section 2.2).

With GPUs as the single resource, Dominant Resource Fairness reduces to
max-min fairness on GPU counts: water-fill one GPU at a time to the
app with the smallest current holding (relative to its demand).  This
is the "established scheme" whose failure modes — indifference to task
length and to placement — motivate the paper; the ablation benchmarks
measure them directly.
"""

from __future__ import annotations

from typing import Sequence

from repro.cluster.topology import Gpu
from repro.core.assignment import group_pool, take_packed
from repro.schedulers.base import InterAppScheduler


class DrfScheduler(InterAppScheduler):
    """Max-min water-filling on GPU counts (single-resource DRF)."""

    name = "drf"

    def assign(self, now: float, pool: Sequence[Gpu]) -> dict[str, list[Gpu]]:
        pool_by_machine = group_pool(pool)
        apps = self.apps_with_demand()
        if not apps:
            return {}
        holdings = {app.app_id: app.allocation().size for app in apps}
        demand_left = {app.app_id: app.unmet_demand() for app in apps}
        machines_of = {app.app_id: set(app.allocation().machine_ids) for app in apps}
        result: dict[str, list[Gpu]] = {app.app_id: [] for app in apps}
        while pool_by_machine:
            candidates = [a for a in sorted(holdings) if demand_left[a] > 0]
            if not candidates:
                break
            # Max-min: smallest dominant share (= GPU count) first.
            chosen = min(candidates, key=lambda a: (holdings[a], a))
            taken = take_packed(pool_by_machine, 1, sorted(machines_of[chosen]))
            if not taken:
                break
            gpu = taken[0]
            result[chosen].append(gpu)
            holdings[chosen] += 1
            demand_left[chosen] -= 1
            machines_of[chosen].add(gpu.machine_id)
        return {a: gpus for a, gpus in result.items() if gpus}
