"""DRF-style instantaneous resource fairness baseline (Section 2.2).

With GPUs as the single resource, Dominant Resource Fairness reduces to
max-min fairness on GPU shares: water-fill one GPU at a time to the app
with the smallest current holding (relative to its demand).  On a mixed
fleet the dominant share is *speed-weighted* — holding one K80 is a
smaller share of the cluster's compute than holding one V100 — which
reduces to plain GPU counts when every GPU has speed 1.0.  This is the
"established scheme" whose failure modes — indifference to task length
and to placement — motivate the paper; the ablation benchmarks measure
them directly.
"""

from __future__ import annotations

from typing import Sequence

from repro.cluster.topology import Gpu
from repro.core.assignment import group_pool, take_packed
from repro.schedulers.base import InterAppScheduler
from repro.workload.perf import app_effective_compute, app_family


class DrfScheduler(InterAppScheduler):
    """Max-min water-filling on speed-weighted GPU shares (single-resource DRF).

    Under a throughput matrix the dominant share is *family*-weighted:
    an app holding GPUs its model runs slowly on has a smaller share of
    useful compute than one holding the same silicon it runs fast on —
    which reduces to the scalar speed weighting (and then to plain
    counts) when every row equals the generation speeds.
    """

    name = "drf"

    def assign(self, now: float, pool: Sequence[Gpu]) -> dict[str, list[Gpu]]:
        pool_by_machine = group_pool(pool)
        apps = self.apps_with_demand()
        if not apps:
            return {}
        model = self.perf_model()
        speed_maps = {app.app_id: self.machine_speeds_for(app) for app in apps}
        families = {app.app_id: app_family(app) for app in apps}
        # One unit per app for the whole round: the family row for
        # single-family apps, the scalar speeds otherwise — holdings and
        # per-grant increments must never mix the two, or the max-min
        # ordering compares incommensurable shares mid-round.
        holdings = {
            app.app_id: (
                app_effective_compute(app, model)
                if families[app.app_id] is not None
                else app.allocation().effective_size
            )
            for app in apps
        }
        demand_left = {app.app_id: app.unmet_demand() for app in apps}
        machines_of = {app.app_id: set(app.allocation().machine_ids) for app in apps}
        result: dict[str, list[Gpu]] = {app.app_id: [] for app in apps}
        while pool_by_machine:
            candidates = [a for a in sorted(holdings) if demand_left[a] > 0]
            if not candidates:
                break
            # Max-min: smallest dominant share (= effective compute held) first.
            chosen = min(candidates, key=lambda a: (holdings[a], a))
            taken = take_packed(
                pool_by_machine,
                1,
                sorted(machines_of[chosen]),
                speed_of=speed_maps[chosen],
            )
            if not taken:
                break
            gpu = taken[0]
            result[chosen].append(gpu)
            family = families[chosen]
            if model.is_scalar or family is None:
                holdings[chosen] += gpu.speed
            else:
                holdings[chosen] += model.speedup(family, gpu.gpu_type)
            demand_left[chosen] -= 1
            machines_of[chosen].add(gpu.machine_id)
        return {a: gpus for a, gpus in result.items() if gpus}
