"""The Section 4 online strawman: everything to the worst-rho app.

"Each app can send updated values of rho to the ARBITER just before a
reallocation.  The ARBITER can then use these updated values to
reallocate resources to the app with the worst rho."

The paper rejects this design for two reasons — placement-insensitive
single-app allocation and gameable self-reported rho — and Themis'
auction exists to fix both.  The ablation benchmark runs this policy to
quantify that argument.
"""

from __future__ import annotations

from typing import Sequence

from repro.cluster.topology import Gpu
from repro.core.assignment import group_pool, take_packed
from repro.core.fairness import FairnessEstimator
from repro.schedulers.base import InterAppScheduler


class StrawmanScheduler(InterAppScheduler):
    """Greedy max-min on finish-time fairness, one app at a time."""

    name = "strawman"

    def __init__(self) -> None:
        super().__init__()
        self.estimator: FairnessEstimator | None = None

    def on_bind(self) -> None:
        assert self.sim is not None
        self.estimator = FairnessEstimator(
            self.sim.cluster,
            semantics=self.sim.config.semantics,
            perf_model=self.sim.perf_model,
        )

    def assign(self, now: float, pool: Sequence[Gpu]) -> dict[str, list[Gpu]]:
        assert self.estimator is not None
        apps = self.apps_with_demand()
        if not apps:
            return {}
        pool_by_machine = group_pool(pool)
        # The strawman reallocates to *the* app with the worst rho —
        # exactly one winner per round; whatever it cannot absorb stays
        # where it is until the next round.
        worst = min(
            apps,
            key=lambda app: (-self.estimator.rho_current(app, now), app.app_id),
        )
        taken = take_packed(
            pool_by_machine,
            worst.unmet_demand(),
            worst.allocation().machine_ids,
            speed_of=self.machine_speeds_for(worst),
        )
        if not taken:
            return {}
        return {worst.app_id: taken}
