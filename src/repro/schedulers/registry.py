"""Scheduler factory keyed by policy name.

The experiment harness and examples construct schedulers by name so a
whole comparison ("run Figure 5 across themis/gandiva/slaq/tiresias")
is data, not code.
"""

from __future__ import annotations

from typing import Callable

from repro.schedulers.base import InterAppScheduler
from repro.schedulers.drf import DrfScheduler
from repro.schedulers.fifo import FifoScheduler
from repro.schedulers.gandiva import GandivaScheduler
from repro.schedulers.optimus import OptimusScheduler
from repro.schedulers.slaq import SlaqScheduler
from repro.schedulers.strawman import StrawmanScheduler
from repro.schedulers.themis import ThemisScheduler
from repro.schedulers.tiresias import TiresiasScheduler

_FACTORIES: dict[str, Callable[..., InterAppScheduler]] = {
    "themis": ThemisScheduler,
    "gandiva": GandivaScheduler,
    "tiresias": TiresiasScheduler,
    "slaq": SlaqScheduler,
    "optimus": OptimusScheduler,
    "strawman": StrawmanScheduler,
    "drf": DrfScheduler,
    "fifo": FifoScheduler,
}

#: All registered policy names, in registration order.
SCHEDULER_NAMES: tuple[str, ...] = tuple(_FACTORIES)


def make_scheduler(name: str, **kwargs) -> InterAppScheduler:
    """Construct a scheduler by name, forwarding policy kwargs.

    Raises ``KeyError`` with the list of known names on a typo.
    """
    key = name.lower()
    if key not in _FACTORIES:
        raise KeyError(f"unknown scheduler {name!r}; available: {sorted(_FACTORIES)}")
    return _FACTORIES[key](**kwargs)
