"""The retry seam: attempt caps, exponential backoff, failure kinds.

One :class:`RetryPolicy` instance serves three callers — control-plane
job retries, re-dispatch after a worker/lease loss, and the sweep
executor's transient-cell retries — so backoff behaviour is configured
in exactly one place.  Jitter is *deterministic*: it derives from the
policy seed, the retry key and the attempt number via the same
SHA-256 stream derivation the simulator's RNG registry uses, so two
replays of the same schedule produce the same delays (the chaos
suite's convergence proofs depend on this).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.simulation.rng import derive_seed


class FailureKind(str, Enum):
    """Classification of one failure for retry purposes."""

    TRANSIENT = "transient"  # machine/infra trouble: retry may succeed
    FATAL = "fatal"  # the job itself is wrong: retrying cannot help

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Exception types treated as transient infrastructure failures by
#: :func:`classify_exception`.  ``OSError`` covers the worker-side
#: IO/process-management family (BrokenProcessPool wraps one).
_TRANSIENT_EXCEPTIONS = (OSError, ConnectionError, TimeoutError)


def classify_exception(error: BaseException) -> FailureKind:
    """Default exception -> :class:`FailureKind` mapping."""
    if isinstance(error, _TRANSIENT_EXCEPTIONS):
        return FailureKind.TRANSIENT
    return FailureKind.FATAL


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic seeded jitter.

    ``max_attempts`` bounds *reported execution failures* — attempt
    ``n`` is allowed while ``n < max_attempts``.  ``delay(attempt,
    key)`` is the wait before re-admitting after the ``attempt``-th
    failure: ``base_delay * factor**(attempt-1)`` capped at
    ``max_delay``, then multiplied by a jitter factor drawn uniformly
    from ``[1-jitter, 1+jitter)`` using ``(seed, key, attempt)`` — no
    global RNG is touched.
    """

    max_attempts: int = 3
    base_delay: float = 1.0
    factor: float = 2.0
    max_delay: float = 60.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if self.factor < 1.0:
            raise ValueError(f"backoff factor must be >= 1, got {self.factor}")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")

    def should_retry(self, kind: FailureKind, attempts: int) -> bool:
        """True when a failure of ``kind`` after ``attempts`` tries may retry."""
        return FailureKind(kind) is FailureKind.TRANSIENT and attempts < self.max_attempts

    def delay(self, attempt: int, key: str = "") -> float:
        """Backoff before the retry that follows failure ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        raw = min(self.base_delay * self.factor ** (attempt - 1), self.max_delay)
        if self.jitter == 0.0 or raw == 0.0:
            return raw
        unit = derive_seed(self.seed, f"retry:{key}:{attempt}") / float(2**64)
        return raw * (1.0 + self.jitter * (2.0 * unit - 1.0))


#: Conservative default shared by the daemon and the sweep executor.
DEFAULT_RETRY_POLICY = RetryPolicy()
