"""The job state machine: states, legal transitions, durable records.

Jobs move through an explicit lifecycle::

    QUEUED --> ADMITTED --> DISPATCHED --> RUNNING --> FINISHED
      |           |             |   \\        |  \\
      |           |             |    \\       |   +--> FAILED
      |           |             v     v      v
      +-----------+-------> CANCELLED  RETRYING <-----+
                                          |
                                          +--> ADMITTED  (backoff elapsed)

``FINISHED`` / ``FAILED`` / ``CANCELLED`` are terminal and absorb:
no transition leaves them, so WAL replay of a completed job is
idempotent.  :func:`transition` is the single enforcement point — the
daemon, the chaos harness and the tests all go through it.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from enum import Enum
from typing import Mapping, Optional

from repro.service.errors import StateMachineError


class JobState(str, Enum):
    """Lifecycle states of a control-plane job."""

    QUEUED = "queued"  # accepted by admission, waiting for capacity
    ADMITTED = "admitted"  # cleared the per-tenant gates, dispatchable
    DISPATCHED = "dispatched"  # token issued, worker not yet started
    RUNNING = "running"  # a worker redeemed the dispatch token
    FINISHED = "finished"  # terminal: completed successfully
    FAILED = "failed"  # terminal: fatal error or retries exhausted
    RETRYING = "retrying"  # waiting out a backoff before re-admission
    CANCELLED = "cancelled"  # terminal: explicit user cancellation

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: States no transition may leave.
TERMINAL_STATES = frozenset(
    {JobState.FINISHED, JobState.FAILED, JobState.CANCELLED}
)

#: The full legal-transition relation.  Anything not listed raises
#: :class:`StateMachineError` in :func:`transition`.
TRANSITIONS: Mapping[JobState, frozenset] = {
    JobState.QUEUED: frozenset({JobState.ADMITTED, JobState.CANCELLED}),
    JobState.ADMITTED: frozenset({JobState.DISPATCHED, JobState.CANCELLED}),
    JobState.DISPATCHED: frozenset(
        {JobState.RUNNING, JobState.RETRYING, JobState.FAILED, JobState.CANCELLED}
    ),
    JobState.RUNNING: frozenset(
        {JobState.FINISHED, JobState.FAILED, JobState.RETRYING, JobState.CANCELLED}
    ),
    JobState.RETRYING: frozenset({JobState.ADMITTED, JobState.CANCELLED}),
    JobState.FINISHED: frozenset(),
    JobState.FAILED: frozenset(),
    JobState.CANCELLED: frozenset(),
}


def can_transition(current: JobState, target: JobState) -> bool:
    """True when ``current -> target`` is a legal move."""
    return target in TRANSITIONS[current]


@dataclass
class JobRecord:
    """Everything the service durably knows about one job.

    ``attempts`` counts *reported execution failures* — a worker lost to
    a crash or a revoked dispatch lease re-dispatches without consuming
    an attempt, which is what makes crashed and uninterrupted runs
    converge to the same terminal states (the recovery invariant the
    chaos suite proves).  ``dispatches`` counts tokens issued, so
    at-least-once execution stays observable.

    ``worker`` is the id of the worker currently holding the dispatch
    (None for the daemon's own in-process execution), ``started_at`` is
    when the token was redeemed, and ``max_runtime_s`` — when set —
    bounds how long one execution may stay RUNNING before the daemon
    fails it transiently and fences the hung worker's token.
    """

    job_id: str
    tenant: str = "default"
    spec: dict = field(default_factory=dict)
    gpus: int = 1
    pool: str = "default"
    priority: int = 0
    state: JobState = JobState.QUEUED
    attempts: int = 0
    dispatches: int = 0
    submitted_at: float = 0.0
    updated_at: float = 0.0
    not_before: float = 0.0
    order: int = 0
    token: Optional[dict] = None
    detail: str = ""
    result: Optional[dict] = None
    worker: Optional[str] = None
    started_at: float = 0.0
    max_runtime_s: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.job_id:
            raise ValueError("job needs a non-empty job_id")
        if self.gpus < 1:
            raise ValueError(f"job gpus must be >= 1, got {self.gpus}")
        if self.max_runtime_s is not None and self.max_runtime_s <= 0:
            raise ValueError(
                f"max_runtime_s must be > 0, got {self.max_runtime_s}"
            )
        if isinstance(self.state, str) and not isinstance(self.state, JobState):
            self.state = JobState(self.state)

    @property
    def is_terminal(self) -> bool:
        """True once the job can never change state again."""
        return self.state in TERMINAL_STATES

    def to_json(self) -> dict:
        """JSON-safe snapshot of this record (WAL / snapshot / API)."""
        payload = {}
        for spec_field in fields(self):
            value = getattr(self, spec_field.name)
            payload[spec_field.name] = (
                value.value if isinstance(value, JobState) else value
            )
        return payload

    @classmethod
    def from_json(cls, payload: Mapping) -> "JobRecord":
        """Rebuild a record, ignoring unknown keys (forward compatible)."""
        known = {spec_field.name for spec_field in fields(cls)}
        kwargs = {key: value for key, value in payload.items() if key in known}
        return cls(**kwargs)


def transition(
    record: JobRecord,
    target: JobState,
    at: float,
    detail: str = "",
) -> JobRecord:
    """Apply a checked state transition in place.

    Raises :class:`StateMachineError` on an illegal move; updates
    ``state`` / ``updated_at`` / ``detail`` on a legal one.
    """
    target = JobState(target)
    if not can_transition(record.state, target):
        raise StateMachineError(
            f"job {record.job_id!r}: illegal transition "
            f"{record.state.value} -> {target.value}"
            + (f" ({detail})" if detail else "")
        )
    record.state = target
    record.updated_at = at
    if detail:
        record.detail = detail
    return record


def force_state(record: JobRecord, target: JobState, at: float) -> JobRecord:
    """Set a state without the legality check (WAL replay only).

    Replay applies transitions that were validated when first written;
    re-validating would make replay order-sensitive to compaction.
    """
    record.state = JobState(target)
    record.updated_at = at
    return record
