"""The out-of-process worker behind ``repro worker``.

One worker process runs a :class:`WorkerLoop`: register with the
daemon, then pull — claim dispatchable jobs, redeem each dispatch
token via ``start``, execute, ``report`` the outcome — while a
background thread heartbeats the lease.  Execution itself happens in a
*fresh child Python process per job* (:class:`SubprocessExecutor`), so
``kill -9`` on a worker or its child is a real fault the control plane
must absorb, not a simulated one.

The loop is deliberately fence-tolerant: a ``start`` or ``report``
rejected by the daemon (stale epoch, revoked claim, reaped worker) is
logged and dropped — the daemon has already re-queued or completed the
job, and insisting would be the double-effect the token fencing exists
to prevent.  A worker that learns it was reaped exits; supervisors
restart it and it re-registers under a fresh identity.
"""

from __future__ import annotations

import inspect
import json
import logging
import subprocess
import sys
import threading
import time
from typing import Callable, Optional

from repro.service.daemon import Executor, JobOutcome, SpecExecutor
from repro.service.errors import (
    ServiceError,
    TokenError,
    UnknownWorkerError,
)
from repro.service.retry import FailureKind, classify_exception
from repro.service.state import JobRecord

logger = logging.getLogger("repro.service.worker")


class SubprocessExecutor(Executor):
    """Runs each job in a fresh child Python process.

    The child (``python -m repro.service.worker``) reads the job record
    as JSON on stdin, interprets the spec with the same
    :class:`SpecExecutor` the daemon's in-process plane uses, and
    prints the :class:`JobOutcome` as JSON on stdout.  A child that
    dies without a well-formed outcome (crash, ``kill -9``) reports as
    a transient failure.  ``should_abort`` is polled while the child
    runs; when it fires the child is killed — the daemon revoked the
    claim, so the outcome would be fenced anyway.
    """

    #: Seconds between child liveness / abort polls.
    poll_interval = 0.05

    def execute(
        self,
        record: JobRecord,
        should_abort: Optional[Callable[[], bool]] = None,
    ) -> JobOutcome:
        child = subprocess.Popen(
            [sys.executable, "-m", "repro.service.worker"],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            child.stdin.write(json.dumps({"job": record.to_json()}))
            child.stdin.close()
        except (BrokenPipeError, OSError):
            pass  # the child died early; the exit-code path reports it
        while child.poll() is None:
            if should_abort is not None and should_abort():
                child.kill()
                child.wait()
                return JobOutcome.failure(
                    FailureKind.TRANSIENT,
                    detail="execution aborted: claim revoked by the daemon",
                )
            time.sleep(self.poll_interval)
        stdout = child.stdout.read()
        stderr = child.stderr.read()
        if child.returncode != 0:
            return JobOutcome.failure(
                FailureKind.TRANSIENT,
                detail=(
                    f"worker child exited {child.returncode}: "
                    f"{stderr.strip()[-500:]}"
                ),
            )
        try:
            return JobOutcome.from_json(json.loads(stdout))
        except (ValueError, TypeError) as error:
            return JobOutcome.failure(
                FailureKind.TRANSIENT,
                detail=f"malformed child outcome: {error}",
            )


class WorkerLoop:
    """The ``repro worker`` loop: register, claim, execute, report.

    ``client`` speaks the worker protocol — normally a
    :class:`~repro.service.api.ServiceClient`, but anything with the
    same five methods works (tests drive the loop against in-process
    fakes).  Heartbeats run on a background thread at a third of the
    lease TTL; each response carries the daemon's view of this worker's
    claim set, and a job we are executing that disappears from it was
    revoked — the executor is asked to abort it.
    """

    def __init__(
        self,
        client,
        *,
        name: str = "",
        capacity: int = 1,
        executor: Optional[Executor] = None,
        poll_interval: float = 0.2,
        max_seconds: Optional[float] = None,
        idle_exit: Optional[float] = None,
    ) -> None:
        self.client = client
        self.name = name
        self.capacity = int(capacity)
        self.executor = (
            executor if executor is not None else SubprocessExecutor()
        )
        self.poll_interval = float(poll_interval)
        self.max_seconds = max_seconds
        self.idle_exit = idle_exit
        self.worker_id: Optional[str] = None
        self.executed = 0
        self._stop = threading.Event()
        self._hb_lock = threading.Lock()
        self._hb_jobs: frozenset = frozenset()
        self._hb_seq = 0
        self._abort_aware = "should_abort" in inspect.signature(
            self.executor.execute
        ).parameters

    def stop(self) -> None:
        """Ask the loop (and its heartbeat thread) to wind down."""
        self._stop.set()

    def run(self) -> int:
        """Register and pull until stopped; returns jobs executed."""
        grant = self.client.register_worker(
            name=self.name, capacity=self.capacity
        )
        self.worker_id = str(grant["worker_id"])
        ttl = float(grant.get("ttl", 5.0))
        logger.info(
            "worker %s registered (epoch %s, lease ttl %.1fs)",
            self.worker_id, grant.get("epoch"), ttl,
        )
        heartbeats = threading.Thread(
            target=self._heartbeat_loop,
            args=(max(0.05, ttl / 3.0),),
            daemon=True,
        )
        heartbeats.start()
        started = time.monotonic()
        idle_since: Optional[float] = None
        try:
            while not self._stop.is_set():
                grants = self._claim()
                if grants is None:
                    break  # reaped: exit so a supervisor re-registers us
                if grants:
                    idle_since = None
                    for item in grants:
                        self._run_one(item["job"], item["token"])
                else:
                    now = time.monotonic()
                    if idle_since is None:
                        idle_since = now
                    if (
                        self.idle_exit is not None
                        and now - idle_since >= self.idle_exit
                    ):
                        logger.info(
                            "worker %s idle for %.1fs, exiting",
                            self.worker_id, self.idle_exit,
                        )
                        break
                    self._stop.wait(self.poll_interval)
                if (
                    self.max_seconds is not None
                    and time.monotonic() - started >= self.max_seconds
                ):
                    break
        finally:
            self._stop.set()
        return self.executed

    def _claim(self) -> Optional[list]:
        try:
            return self.client.claim(self.worker_id, max_jobs=self.capacity)
        except UnknownWorkerError:
            logger.warning(
                "worker %s was reaped by the daemon; exiting for a fresh "
                "registration", self.worker_id,
            )
            return None
        except ServiceError as error:
            logger.warning("claim failed (%s); idling", error.reason)
            return []

    def _heartbeat_loop(self, interval: float) -> None:
        while not self._stop.wait(interval):
            try:
                view = self.client.heartbeat(self.worker_id)
            except UnknownWorkerError:
                self._stop.set()
                return
            except ServiceError:
                continue  # transient; the lease TTL has slack for this
            with self._hb_lock:
                self._hb_jobs = frozenset(view.get("jobs", ()))
                self._hb_seq += 1

    def _run_one(self, job_payload: dict, token: dict) -> None:
        record = JobRecord.from_json(job_payload)
        try:
            self.client.start(token)
        except (TokenError, ServiceError) as error:
            logger.warning(
                "start for %s fenced (%s)",
                record.job_id, getattr(error, "reason", "?"),
            )
            return
        with self._hb_lock:
            seq_at_start = self._hb_seq

        def should_abort() -> bool:
            # Only trust a claim-set view observed *after* the start —
            # a pre-start heartbeat legitimately lacks this job.
            with self._hb_lock:
                return (
                    self._hb_seq > seq_at_start
                    and record.job_id not in self._hb_jobs
                )

        kwargs = {"should_abort": should_abort} if self._abort_aware else {}
        try:
            outcome = self.executor.execute(record, **kwargs)
        except Exception as error:  # noqa: BLE001 - seam boundary
            outcome = JobOutcome.failure(
                classify_exception(error),
                detail=f"{type(error).__name__}: {error}",
            )
        self.executed += 1
        try:
            verdict = self.client.report(token, outcome.to_json())
        except ServiceError as error:
            logger.warning(
                "report for %s failed (%s); the daemon's reapers own it now",
                record.job_id, error.reason,
            )
            return
        if not verdict.get("accepted"):
            logger.warning(
                "report for %s fenced (%s)",
                record.job_id, verdict.get("reason"),
            )


def run_child(stdin=None, stdout=None) -> int:
    """Entry point of one job's child process (``-m repro.service.worker``).

    Protocol: ``{"job": <JobRecord JSON>}`` on stdin, one
    :class:`JobOutcome` JSON object on stdout.  The exit code says only
    whether the protocol completed — job failure travels *inside* the
    outcome, so the parent can tell "the job failed" from "the child
    crashed".
    """
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    try:
        payload = json.load(stdin)
        record = JobRecord.from_json(payload["job"])
    except (ValueError, KeyError, TypeError) as error:
        outcome = JobOutcome.failure(
            FailureKind.FATAL, detail=f"malformed job payload: {error}"
        )
        print(json.dumps(outcome.to_json()), file=stdout)
        return 0
    try:
        outcome = SpecExecutor().execute(record)
    except Exception as error:  # noqa: BLE001 - seam boundary
        outcome = JobOutcome.failure(
            classify_exception(error),
            detail=f"{type(error).__name__}: {error}",
        )
    print(json.dumps(outcome.to_json()), file=stdout)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(run_child())
