"""Chaos harness: seeded, reproducible crash/corruption scenarios.

The harness drives the control plane through the failure modes the
ISSUE's recovery invariant names:

* **crash/restart** — :class:`CrashingStore` kills the service (raises
  :class:`SimulatedCrash`) immediately *before* the N-th WAL append,
  which — at record granularity — covers every ``kill -9`` point: a
  crash immediately after append K is indistinguishable from a crash
  before append K+1.  Optionally a torn partial line is left behind,
  modelling a write cut mid-record.
* **store-corruption-tail** — :func:`garble_wal_tail` truncates or
  garbles the final WAL bytes; recovery must drop exactly the torn
  tail and keep everything before it.
* **duplicate dispatch** — replaying a pre-crash token against the
  restarted service must be rejected (``stale_epoch``), and redeeming
  the same token twice in one epoch must be rejected too.
* **worker faults** — :class:`SimWorker` drives the daemon's pull
  protocol one explicit step at a time (no HTTP, no threads), so a
  fault is an *omission*: a killed worker simply never makes its next
  call (``kill -9`` erases its memory too), a stalled worker
  heartbeats without progressing, and a zombie holds its report and
  fires it after the daemon re-queued the job — which the token fence
  must reject.  :func:`drain_fleet` interleaves ticks (leases, reapers)
  with each live worker's pull cycle until the plane drains.

:func:`run_with_crashes` is the property-test workhorse: it replays
one scripted workload through a schedule of crash points (each
incarnation ``i`` dies after ``crash_points[i]`` of *its own* WAL
appends; the final incarnation runs crash-free until the service
drains) and reports terminal states plus the per-token start log so
tests can assert convergence and no-double-start.  Sweeping
``crash_points=[k]`` over every ``k`` up to the uninterrupted run's
record count covers every single ``kill -9`` position.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Optional, Sequence, Union

from repro.service.admission import AdmissionController
from repro.service.daemon import ControlPlane, Executor, JobOutcome
from repro.service.errors import TokenError, UnknownWorkerError
from repro.service.retry import RetryPolicy
from repro.service.state import JobRecord
from repro.service.store import DurableStore, StoreUnavailable


class SimulatedCrash(RuntimeError):
    """The chaos harness's ``kill -9``: unwind with no cleanup."""


class CrashingStore(DurableStore):
    """A durable store that dies immediately before one append.

    ``crash_after`` counts *lifetime* appends: the store raises
    :class:`SimulatedCrash` when asked to perform append number
    ``crash_after + 1``, so the first ``crash_after`` records land and
    the next is lost — exactly a ``kill -9`` between two records.
    ``torn_tail`` additionally leaves a partial JSON line in the WAL,
    modelling a crash mid-write.
    """

    def __init__(
        self,
        root: Union[str, Path],
        *,
        crash_after: Optional[int] = None,
        torn_tail: bool = False,
        **kwargs,
    ) -> None:
        super().__init__(root, **kwargs)
        self.crash_after = crash_after
        self.torn_tail = torn_tail

    def append(self, kind: str, **fields) -> int:
        if self.crash_after is not None and self.appends >= self.crash_after:
            if self.torn_tail and self._fh is not None:
                # A torn write: half a record, no newline.
                self._fh.write('{"seq": 99999, "kind": "torn')
                self._fh.flush()
            self.close()
            raise SimulatedCrash(
                f"simulated kill -9 before append #{self.appends + 1}"
            )
        return super().append(kind, **fields)


class FlakyStore(DurableStore):
    """A store whose availability tests can toggle (degradation drills)."""

    def __init__(self, root: Union[str, Path], **kwargs) -> None:
        super().__init__(root, **kwargs)
        self.available = True

    def append(self, kind: str, **fields) -> int:
        if not self.available:
            raise StoreUnavailable("flaky store is switched off")
        return super().append(kind, **fields)

    def maybe_compact(self, state: dict) -> bool:
        if not self.available:
            return False
        return super().maybe_compact(state)


def garble_wal_tail(
    root: Union[str, Path], *, drop_bytes: int = 0, garbage: bytes = b""
) -> None:
    """Corrupt the WAL's tail: truncate ``drop_bytes`` and/or append junk."""
    wal = Path(root) / "wal.jsonl"
    data = wal.read_bytes()
    if drop_bytes:
        data = data[: max(0, len(data) - drop_bytes)]
    wal.write_bytes(data + garbage)


# ----------------------------------------------------------------------
# Scripted, deterministic execution
# ----------------------------------------------------------------------
@dataclass
class ScriptedExecutor(Executor):
    """Outcomes scripted per job, indexed by *consumed attempts*.

    ``script`` maps ``job_id`` to the outcome sequence of its
    executions: execution ``n`` (zero-based index ``record.attempts``)
    returns ``script[job_id][n]`` (the last entry repeats).  Keying by
    consumed attempts — not by invocation count — is what makes a
    crashed-and-replayed execution deterministic: an execution whose
    outcome never reached the WAL re-runs with the same script index.

    ``executions`` logs every invocation as ``(job_id, attempts)`` so
    tests can observe at-least-once behaviour; ``started_tokens`` is
    filled by :func:`run_crash_schedule` from the daemon's start gate.
    """

    script: Mapping[str, Sequence[JobOutcome]] = field(default_factory=dict)
    default: JobOutcome = field(default_factory=JobOutcome.success)
    executions: list = field(default_factory=list)

    def execute(self, record: JobRecord) -> JobOutcome:
        self.executions.append((record.job_id, record.attempts))
        outcomes = self.script.get(record.job_id)
        if not outcomes:
            return self.default
        return outcomes[min(record.attempts, len(outcomes) - 1)]


@dataclass
class FakeClock:
    """A manually advanced clock (keeps backoff windows deterministic)."""

    now: float = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> float:
        self.now += seconds
        return self.now


# ----------------------------------------------------------------------
# The simulated worker fleet
# ----------------------------------------------------------------------
class SimWorker:
    """A deterministic in-process stand-in for one ``repro worker``.

    It speaks the daemon's pull protocol directly — no HTTP, no
    threads — one explicit step at a time, so fleet chaos tests are
    exact.  Claimed work moves through three local phases mirroring
    the real loop: ``pending`` (claimed, not started), ``running``
    (token redeemed), ``unreported`` (executed, outcome in hand).  A
    fault is an omission: :meth:`kill` erases all three (a ``kill -9``
    takes the worker's memory with it); a stalled worker calls
    :meth:`heartbeat` but never :meth:`step`; a zombie keeps its
    ``unreported`` entries and fires them late via :meth:`report_all`.
    """

    def __init__(
        self,
        plane: ControlPlane,
        executor: Optional[Executor] = None,
        *,
        name: str = "",
        capacity: int = 1,
    ) -> None:
        self.plane = plane
        self.executor = executor if executor is not None else ScriptedExecutor()
        self.capacity = capacity
        grant = plane.register_worker(name=name, capacity=capacity)
        self.worker_id = str(grant["worker_id"])
        self.alive = True
        self.pending: list = []  # (record, token)
        self.running: list = []  # (record, token)
        self.unreported: list = []  # (record, token, outcome)
        self.fenced: list = []  # (job_id, reason) rejections observed

    # -- protocol steps ------------------------------------------------
    def heartbeat(self) -> bool:
        """Renew the lease; False once the daemon reaped this worker."""
        try:
            self.plane.worker_heartbeat(self.worker_id)
        except UnknownWorkerError:
            return False
        return True

    def claim(self, max_jobs: Optional[int] = None) -> int:
        """Pull dispatchable work; returns how many jobs were granted."""
        try:
            grants = self.plane.claim(
                self.worker_id,
                max_jobs=max_jobs if max_jobs is not None else self.capacity,
            )
        except UnknownWorkerError:
            return 0
        self.pending.extend(grants)
        return len(grants)

    def start_all(self) -> None:
        """Redeem every pending token; fenced starts are recorded."""
        for record, token in self.pending:
            try:
                self.plane.start(token)
            except TokenError as error:
                self.fenced.append((record.job_id, error.reason))
                continue
            self.running.append((record, token))
        self.pending = []

    def execute_all(self) -> None:
        """Run every started job; outcomes wait in ``unreported``."""
        for record, token in self.running:
            outcome = self.executor.execute(record)
            self.unreported.append((record, token, outcome))
        self.running = []

    def report_all(self) -> None:
        """Deliver held outcomes; fenced reports are recorded."""
        for record, token, outcome in self.unreported:
            verdict = self.plane.report(token, outcome)
            if not verdict.get("accepted"):
                self.fenced.append((record.job_id, verdict.get("reason")))
        self.unreported = []

    def step(self) -> None:
        """One full pull cycle: claim, start, execute, report."""
        if not self.alive:
            return
        self.claim()
        self.start_all()
        self.execute_all()
        self.report_all()

    # -- faults --------------------------------------------------------
    def kill(self) -> None:
        """``kill -9``: stop participating and lose all local state."""
        self.alive = False
        self.pending = []
        self.running = []
        self.unreported = []


def drain_fleet(
    plane: ControlPlane,
    clock: FakeClock,
    workers: Sequence[SimWorker],
    *,
    step: float = 1.0,
    max_rounds: int = 500,
) -> None:
    """Interleave ticks with each live worker's pull cycle until drained.

    Each round is one tick (reapers, lease checks, retry promotion)
    followed by one :meth:`SimWorker.step` per live worker, then the
    clock advances — so killed workers age past the lease TTL while
    the survivors keep claiming.
    """
    for _ in range(max_rounds):
        plane.tick()
        for worker in workers:
            worker.step()
        if plane.active_jobs == 0:
            return
        clock.advance(step)
    raise RuntimeError(
        f"fleet did not drain within {max_rounds} rounds "
        f"({plane.active_jobs} jobs still active)"
    )


# ----------------------------------------------------------------------
# Scenario drivers
# ----------------------------------------------------------------------
@dataclass
class ChaosReport:
    """What one chaos schedule observed."""

    terminal_states: dict = field(default_factory=dict)
    crashes: int = 0
    epochs: int = 0
    executions: list = field(default_factory=list)
    started_tokens: list = field(default_factory=list)  # (epoch, seq, job)
    accepted_reports: list = field(default_factory=list)  # (epoch, seq, job)
    rejected_reports: list = field(default_factory=list)  # (job, reason)
    stale_rejections: int = 0

    def states_by_job(self) -> dict:
        return dict(sorted(self.terminal_states.items()))


def _drain(
    plane: ControlPlane, clock: FakeClock, *, step: float = 1.0, max_ticks: int = 500
) -> None:
    for _ in range(max_ticks):
        plane.tick()
        if plane.active_jobs == 0:
            return
        clock.advance(step)
    raise RuntimeError(
        f"service did not drain within {max_ticks} ticks "
        f"({plane.active_jobs} jobs still active)"
    )


def _record_starts(plane: ControlPlane, report: ChaosReport) -> None:
    original = plane.start

    def tracked_start(token):
        job = original(token)
        report.started_tokens.append((token.epoch, token.seq, token.job_id))
        return job

    plane.start = tracked_start  # type: ignore[method-assign]


def _record_reports(plane: ControlPlane, report: ChaosReport) -> None:
    original = plane.report

    def tracked_report(token, outcome):
        verdict = original(token, outcome)
        if verdict.get("accepted"):
            report.accepted_reports.append(
                (token.epoch, token.seq, token.job_id)
            )
        else:
            report.rejected_reports.append(
                (token.job_id, verdict.get("reason"))
            )
        return verdict

    plane.report = tracked_report  # type: ignore[method-assign]


def instrument(plane: ControlPlane) -> ChaosReport:
    """Wrap a plane's start/report gates; returns the live report."""
    report = ChaosReport(epochs=1)
    _record_starts(plane, report)
    _record_reports(plane, report)
    return report


def run_uninterrupted(
    root: Union[str, Path],
    submissions: Sequence[Mapping],
    executor: Executor,
    *,
    retry: Optional[RetryPolicy] = None,
    admission: Optional[AdmissionController] = None,
    step: float = 1.0,
) -> ChaosReport:
    """Run the scripted workload to completion with no failures."""
    clock = FakeClock()
    retry = retry if retry is not None else RetryPolicy(base_delay=0.5, jitter=0.0)
    plane = ControlPlane(
        DurableStore(root),
        executor=executor,
        retry=retry,
        admission=admission if admission is not None else AdmissionController(),
        clock=clock,
    )
    report = ChaosReport(epochs=1)
    _record_starts(plane, report)
    for submission in submissions:
        plane.submit(**submission)
    _drain(plane, clock, step=step)
    report.terminal_states = {
        job_id: job.state.value for job_id, job in plane.jobs.items()
    }
    report.executions = list(getattr(executor, "executions", ()))
    plane.close()
    return report


def run_with_crashes(
    root: Union[str, Path],
    submissions: Sequence[Mapping],
    executor_factory,
    *,
    crash_points: Sequence[int],
    torn_tail: bool = False,
    retry: Optional[RetryPolicy] = None,
    admission: Optional[AdmissionController] = None,
    step: float = 1.0,
    max_restarts: int = 50,
) -> ChaosReport:
    """Replay the workload through a schedule of ``kill -9`` points.

    Incarnation ``i`` runs on a :class:`CrashingStore` that dies after
    ``crash_points[i]`` of its own WAL appends; once the schedule is
    exhausted, the final incarnation runs crash-free until the service
    drains.  Each incarnation gets a fresh store object over the same
    directory (the on-disk state is all that survives a real ``kill
    -9``) and a fresh executor from ``executor_factory`` (worker-side
    memory dies with the process).  Submissions carry explicit
    ``job_id`` values and are replayed until the WAL has them — a
    submission lost to a crash is retried on the next incarnation.
    """
    retry = retry if retry is not None else RetryPolicy(base_delay=0.5, jitter=0.0)
    clock = FakeClock()
    report = ChaosReport()
    schedule = list(crash_points)
    for incarnation in range(max_restarts):
        if incarnation < len(schedule):
            store: DurableStore = CrashingStore(
                root, crash_after=schedule[incarnation], torn_tail=torn_tail
            )
        else:
            store = DurableStore(root)
        executor = executor_factory()
        try:
            plane = ControlPlane(
                store,
                executor=executor,
                retry=retry,
                admission=(
                    admission if admission is not None else AdmissionController()
                ),
                clock=clock,
            )
        except SimulatedCrash:
            report.crashes += 1
            continue
        report.epochs += 1
        _record_starts(plane, report)
        try:
            for submission in submissions:
                if submission["job_id"] not in plane.jobs:
                    plane.submit(**submission)
            _drain(plane, clock, step=step)
        except SimulatedCrash:
            report.crashes += 1
            report.executions.extend(executor.executions)
            continue
        report.executions.extend(executor.executions)
        report.terminal_states = {
            job_id: job.state.value for job_id, job in plane.jobs.items()
        }
        plane.close()
        return report
    raise RuntimeError(f"workload did not drain within {max_restarts} restarts")


def assert_no_double_start(report: ChaosReport) -> None:
    """Every issued token was redeemed at most once (epoch, seq) unique."""
    seen: set[tuple] = set()
    for epoch, seq, job_id in report.started_tokens:
        key = (epoch, seq)
        if key in seen:
            raise AssertionError(
                f"token (epoch={epoch}, seq={seq}) for job {job_id!r} "
                "started twice"
            )
        seen.add(key)


def assert_no_double_report(report: ChaosReport) -> None:
    """Every dispatch landed at most one accepted report."""
    seen: set[tuple] = set()
    for epoch, seq, job_id in report.accepted_reports:
        key = (epoch, seq)
        if key in seen:
            raise AssertionError(
                f"token (epoch={epoch}, seq={seq}) for job {job_id!r} "
                "reported twice"
            )
        seen.add(key)
