"""The worker fleet registry: heartbeat leases over pull-based executors.

A *worker* is an out-of-process executor (``repro worker``) that pulls
jobs from the control plane instead of the daemon pushing work into its
own tick.  The daemon knows a worker only through this registry:

* **register** mints a worker id bound to the current service epoch —
  a worker that restarts (or outlives a daemon restart) registers again
  and gets a fresh identity; ids from dead epochs can never collide.
* **heartbeat** renews the worker's lease.  Claims count as
  heartbeats: a worker actively pulling work is alive by definition.
* A worker whose lease exceeds the TTL is *reaped*: the daemon marks
  it LOST, re-queues its in-flight jobs through the retry path without
  consuming attempts, and rejects its id until it re-registers.  The
  zombie's dispatch tokens are fenced at ``start``/``report`` time, so
  a reaped-but-still-running worker cannot double-land any effect.

Worker lifecycle events (register, lost) are WAL records and trace
events; heartbeats are deliberately neither — they carry no state a
recovery could use (every worker is lost by definition when the epoch
dies) and would swamp the log.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from enum import Enum
from typing import Mapping, Optional

from repro.service.errors import UnknownWorkerError

#: Default seconds of heartbeat silence before a worker is reaped.
DEFAULT_WORKER_TTL = 5.0


class WorkerState(str, Enum):
    """Lifecycle states of a registered worker."""

    ALIVE = "alive"  # registered, lease not yet reaped
    LOST = "lost"  # lease expired or epoch died; terminal for this id

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class WorkerRecord:
    """Everything the daemon knows about one worker incarnation.

    ``jobs`` is the set of job ids currently claimed by (dispatched to)
    this worker — the work the reaper re-queues if the lease lapses.
    """

    worker_id: str
    name: str = ""
    capacity: int = 1
    state: WorkerState = WorkerState.ALIVE
    epoch: int = 0
    registered_at: float = 0.0
    last_heartbeat: float = 0.0
    lost_at: Optional[float] = None
    lost_reason: str = ""
    jobs: set = field(default_factory=set)

    def __post_init__(self) -> None:
        if not self.worker_id:
            raise ValueError("worker needs a non-empty worker_id")
        if self.capacity < 1:
            raise ValueError(f"worker capacity must be >= 1, got {self.capacity}")
        if isinstance(self.state, str) and not isinstance(self.state, WorkerState):
            self.state = WorkerState(self.state)
        if not isinstance(self.jobs, set):
            self.jobs = set(self.jobs)

    @property
    def free_slots(self) -> int:
        """Claim capacity left on this worker."""
        return max(0, self.capacity - len(self.jobs))

    def to_json(self) -> dict:
        """JSON-safe snapshot (WAL replay / snapshots / the health API)."""
        payload = {}
        for spec_field in fields(self):
            value = getattr(self, spec_field.name)
            if spec_field.name == "jobs":
                value = sorted(value)
            elif isinstance(value, WorkerState):
                value = value.value
            payload[spec_field.name] = value
        return payload

    @classmethod
    def from_json(cls, payload: Mapping) -> "WorkerRecord":
        """Rebuild a record, ignoring unknown keys (forward compatible)."""
        known = {spec_field.name for spec_field in fields(cls)}
        kwargs = {key: value for key, value in payload.items() if key in known}
        return cls(**kwargs)


class WorkerRegistry:
    """Tracks worker incarnations and their heartbeat leases."""

    def __init__(self, ttl: float = DEFAULT_WORKER_TTL) -> None:
        if ttl <= 0:
            raise ValueError(f"worker ttl must be > 0, got {ttl}")
        self.ttl = float(ttl)
        self.workers: dict[str, WorkerRecord] = {}
        self._counter = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def register(
        self,
        *,
        name: str = "",
        capacity: int = 1,
        now: float = 0.0,
        epoch: int = 0,
    ) -> WorkerRecord:
        """Mint a fresh worker incarnation bound to ``epoch``."""
        self._counter += 1
        worker_id = f"w{epoch}-{self._counter:03d}"
        record = WorkerRecord(
            worker_id=worker_id,
            name=name or worker_id,
            capacity=int(capacity),
            epoch=epoch,
            registered_at=now,
            last_heartbeat=now,
        )
        self.workers[worker_id] = record
        return record

    def get(self, worker_id: str) -> WorkerRecord:
        """The worker's record regardless of state; raises if never seen."""
        record = self.workers.get(worker_id)
        if record is None:
            raise UnknownWorkerError(worker_id)
        return record

    def heartbeat(self, worker_id: str, now: float) -> WorkerRecord:
        """Renew a lease.  A LOST (reaped) worker must re-register: its
        in-flight jobs were already re-queued, so resurrecting the old id
        would let it race the re-dispatch."""
        record = self.workers.get(worker_id)
        if record is None or record.state is not WorkerState.ALIVE:
            raise UnknownWorkerError(worker_id)
        record.last_heartbeat = now
        return record

    def mark_lost(
        self, worker_id: str, now: float, reason: str = ""
    ) -> WorkerRecord:
        """Transition a worker to LOST (idempotent)."""
        record = self.get(worker_id)
        if record.state is not WorkerState.LOST:
            record.state = WorkerState.LOST
            record.lost_at = now
            record.lost_reason = reason
        return record

    def release(self, worker_id: str, job_id: str) -> None:
        """Drop a job from a worker's claim set (tolerant of lost ids)."""
        record = self.workers.get(worker_id)
        if record is not None:
            record.jobs.discard(job_id)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def alive(self) -> list[WorkerRecord]:
        """ALIVE workers (lease freshness not considered), in id order."""
        return [
            record
            for record in self._in_order()
            if record.state is WorkerState.ALIVE
        ]

    def live(self, now: float) -> list[WorkerRecord]:
        """ALIVE workers whose lease is current at ``now``."""
        return [
            record
            for record in self.alive()
            if now - record.last_heartbeat <= self.ttl
        ]

    def expired(self, now: float) -> list[WorkerRecord]:
        """ALIVE workers whose lease lapsed — the reaper's worklist."""
        return [
            record
            for record in self.alive()
            if now - record.last_heartbeat > self.ttl
        ]

    def counts(self) -> dict:
        """Per-state worker counts (the health API)."""
        by_state: dict[str, int] = {}
        for record in self.workers.values():
            by_state[record.state.value] = by_state.get(record.state.value, 0) + 1
        return dict(sorted(by_state.items()))

    def _in_order(self) -> list[WorkerRecord]:
        return sorted(
            self.workers.values(),
            key=lambda record: (record.registered_at, record.worker_id),
        )

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def restore(self, payload: Mapping) -> WorkerRecord:
        """Re-insert a worker from a snapshot/WAL payload (replay only)."""
        record = WorkerRecord.from_json(payload)
        self.workers[record.worker_id] = record
        return record

    def restore_lost(
        self, worker_id: str, at: float = 0.0, reason: str = ""
    ) -> None:
        """Replay a ``worker_lost`` record (unknown ids are skipped —
        same forward-compatibility policy as unknown WAL kinds)."""
        record = self.workers.get(worker_id)
        if record is not None:
            record.state = WorkerState.LOST
            record.lost_at = at
            record.lost_reason = reason

    def to_json(self) -> list[dict]:
        """Every worker record, in registration order (snapshots)."""
        return [record.to_json() for record in self._in_order()]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WorkerRegistry(ttl={self.ttl}, workers={len(self.workers)})"
