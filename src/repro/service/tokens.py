"""Dispatch tokens: a worker may only start work the scheduler handed it.

A token binds one dispatch of one job to the service *epoch* that
issued it.  The epoch increments on every service start, so a token
issued before a crash can never start work after recovery — replaying
a stale dispatch message is rejected with ``stale_epoch`` instead of
silently double-running the job (the Snippet-1 ``dispatch_token``
contract, made crash-safe).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.service.errors import TokenError


@dataclass(frozen=True)
class DispatchToken:
    """One permission-to-start: job, issuing epoch, per-epoch sequence."""

    job_id: str
    epoch: int
    seq: int

    def to_json(self) -> dict:
        return {"job_id": self.job_id, "epoch": self.epoch, "seq": self.seq}

    @classmethod
    def from_json(cls, payload: Mapping) -> "DispatchToken":
        try:
            return cls(
                job_id=str(payload["job_id"]),
                epoch=int(payload["epoch"]),
                seq=int(payload["seq"]),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise TokenError(
                f"malformed dispatch token {payload!r}: {error}",
                reason="malformed_token",
            )


class TokenIssuer:
    """Issues epoch-stamped tokens and validates redemptions.

    One issuer lives inside one service incarnation; its ``epoch`` is
    fixed at construction (the recovered epoch + 1).  ``redeem`` is the
    single gate a worker start passes through — it enforces epoch
    freshness and single use, and the caller layers the job-state check
    on top.
    """

    def __init__(self, epoch: int) -> None:
        if epoch < 1:
            raise ValueError(f"epoch must be >= 1, got {epoch}")
        self.epoch = epoch
        self._next_seq = 1
        self._redeemed: set[int] = set()

    def issue(self, job_id: str) -> DispatchToken:
        """Mint a fresh token for one dispatch of ``job_id``."""
        token = DispatchToken(job_id=job_id, epoch=self.epoch, seq=self._next_seq)
        self._next_seq += 1
        return token

    def restore_seq(self, seq: int) -> None:
        """Advance the sequence past tokens recovered from the WAL."""
        self._next_seq = max(self._next_seq, seq + 1)

    def redeem(self, token: DispatchToken, expected: Optional[Mapping]) -> None:
        """Validate one start attempt; raises :class:`TokenError`.

        ``expected`` is the token payload recorded on the job at
        dispatch time (or None when the job holds no live token).
        """
        if token.epoch != self.epoch:
            raise TokenError(
                f"token for job {token.job_id!r} is from epoch {token.epoch}; "
                f"the service is in epoch {self.epoch} — a pre-crash dispatch "
                "must not start after recovery",
                reason="stale_epoch",
            )
        if token.seq in self._redeemed:
            raise TokenError(
                f"token seq {token.seq} for job {token.job_id!r} was already "
                "redeemed; duplicate dispatch suppressed",
                reason="already_redeemed",
            )
        if expected is None or DispatchToken.from_json(expected) != token:
            raise TokenError(
                f"token {token} does not match the job's recorded dispatch "
                f"{expected!r}",
                reason="token_mismatch",
            )
        self._redeemed.add(token.seq)
