"""HTTP front door + client for the control plane (stdlib only).

``repro serve`` exposes the same :class:`ControlPlane` API that
in-process callers use, as a tiny JSON-over-HTTP surface:

* ``POST /submit``  ``{"spec": {...}, "tenant", "gpus", "pool",
  "priority", "max_runtime_s"}`` -> ``{"job_id"}``
* ``POST /cancel``  ``{"job_id"}`` -> ``{"job_id", "state"}``
* ``GET  /status?job=ID`` -> the full job record
* ``GET  /jobs[?tenant=T][&state=S]`` -> ``{"jobs": [...]}``
* ``GET  /health`` -> epoch / degradation / per-state counts

plus the pull-based worker protocol (``repro worker``):

* ``POST /worker/register``  ``{"name", "capacity"}`` ->
  ``{"worker_id", "epoch", "ttl"}``
* ``POST /worker/heartbeat`` ``{"worker_id"}`` -> lease renewal + the
  daemon's view of the worker's claim set
* ``POST /worker/claim``     ``{"worker_id", "max_jobs"}`` ->
  ``{"grants": [{"job": ..., "token": ...}]}``
* ``POST /worker/start``     ``{"token"}`` -> the RUNNING job record
* ``POST /worker/report``    ``{"token", "outcome"}`` ->
  ``{"accepted", "reason", "state"}``

The server binds an ephemeral port by default and writes
``service.json`` (host, port, pid) into the store directory, so the
CLI verbs find a running daemon from ``--dir`` alone.  Service errors
map to HTTP statuses: admission -> 429, unavailable store -> 503,
unknown jobs -> 404, reaped workers -> 410, fenced tokens -> 409,
bad requests -> 400.  :class:`ServiceClient` retries transient
transport failures (connection refused, 503 store-degraded) with the
shared capped-backoff :class:`~repro.service.retry.RetryPolicy`.
"""

from __future__ import annotations

import json
import logging
import os
import threading
import time
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Optional, Union
from urllib.parse import parse_qs, urlparse

from repro.service.daemon import ControlPlane, JobOutcome
from repro.service.errors import (
    AdmissionError,
    ServiceError,
    ServiceUnavailable,
    TokenError,
    UnknownJobError,
    UnknownWorkerError,
)
from repro.service.retry import RetryPolicy
from repro.service.tokens import DispatchToken

logger = logging.getLogger("repro.service.api")

#: File the server drops into the store directory so CLI clients can
#: find it from ``--dir`` alone.
ENDPOINT_FILE = "service.json"

_STATUS_BY_REASON = {
    "max_queued_jobs": 429,
    "store_unavailable": 503,
    "unknown_job": 404,
    "duplicate_job": 409,
    "unknown_worker": 410,
    "stale_epoch": 409,
    "not_dispatched": 409,
    "token_mismatch": 409,
    "already_redeemed": 409,
    "malformed_token": 400,
}

#: Reasons the client rebuilds as :class:`TokenError` (fencing, not
#: transport trouble — workers branch on these).
_TOKEN_REASONS = frozenset(
    {"stale_epoch", "not_dispatched", "token_mismatch",
     "already_redeemed", "malformed_token"}
)

#: Transport retry for the client: fast capped backoff, a few tries.
#: Kept well under the daemon's job-level policy — this smooths over
#: hiccups (a daemon mid-restart, a store flapping), it does not queue.
DEFAULT_CLIENT_RETRY = RetryPolicy(
    max_attempts=4, base_delay=0.2, factor=2.0, max_delay=2.0, jitter=0.1
)


class ServiceClient:
    """Thin urllib client speaking the server's JSON dialect.

    Raises the same :mod:`repro.service.errors` types the in-process
    API raises, rebuilt from the error payload — CLI code handles both
    transports identically.  Transient transport failures retry with
    capped backoff, but only when a retry cannot double an effect:

    * 503 ``store_unavailable`` — the daemon *shed* the call before any
      state changed, so every verb is safe to retry;
    * connection refused — the request never reached a daemon, so POSTs
      are safe too;
    * GETs — idempotent, retried on any unreachable error;
    * a POST that *timed out* is NOT retried: it may have landed.
    """

    def __init__(
        self,
        url: str,
        timeout: float = 10.0,
        *,
        retry: RetryPolicy = DEFAULT_CLIENT_RETRY,
        sleep: Optional[callable] = None,
    ) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout
        self.retry = retry
        self._sleep = sleep if sleep is not None else time.sleep

    @classmethod
    def from_dir(
        cls,
        root: Union[str, Path],
        timeout: float = 10.0,
        *,
        retry: RetryPolicy = DEFAULT_CLIENT_RETRY,
    ) -> "ServiceClient":
        """Locate a running server via the directory's endpoint file."""
        endpoint = Path(root) / ENDPOINT_FILE
        if not endpoint.exists():
            raise ServiceUnavailable(
                f"no {ENDPOINT_FILE} under {root}; is `repro serve` running?",
                reason="no_endpoint",
            )
        meta = json.loads(endpoint.read_text(encoding="utf-8"))
        return cls(
            f"http://{meta['host']}:{meta['port']}",
            timeout=timeout,
            retry=retry,
        )

    def _request(self, method: str, path: str, payload: Optional[dict] = None) -> dict:
        attempt = 0
        while True:
            try:
                return self._request_once(method, path, payload)
            except ServiceUnavailable as error:
                attempt += 1
                if (
                    not self._safe_to_retry(method, error)
                    or attempt >= self.retry.max_attempts
                ):
                    raise
                delay = self.retry.delay(attempt, key=f"client:{path}")
                logger.debug(
                    "retrying %s %s in %.2fs (%s, attempt %d)",
                    method, path, delay, error.reason, attempt,
                )
                self._sleep(delay)

    @staticmethod
    def _safe_to_retry(method: str, error: ServiceUnavailable) -> bool:
        if error.reason == "store_unavailable":
            return True  # the daemon shed the call before any effect
        if error.reason == "unreachable":
            return method == "GET" or getattr(error, "connect_refused", False)
        return False

    def _request_once(
        self, method: str, path: str, payload: Optional[dict] = None
    ) -> dict:
        data = None if payload is None else json.dumps(payload).encode("utf-8")
        request = urllib.request.Request(
            self.url + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            try:
                body = json.loads(error.read().decode("utf-8"))
            except (ValueError, OSError):
                body = {}
            message = body.get("error", str(error))
            reason = body.get("reason", "error")
            if reason == "unknown_job":
                raise UnknownJobError(body.get("job_id", "?"))
            if reason == "unknown_worker":
                raise UnknownWorkerError(body.get("worker_id", "?"))
            if reason in _TOKEN_REASONS:
                raise TokenError(message, reason=reason)
            if error.code == 429:
                raise AdmissionError(message, reason=reason)
            if error.code == 503:
                raise ServiceUnavailable(message, reason=reason)
            raise ServiceError(message, reason=reason)
        except urllib.error.URLError as error:
            unavailable = ServiceUnavailable(
                f"cannot reach service at {self.url}: {error}",
                reason="unreachable",
            )
            # Connection refused means no daemon ever saw the request,
            # which is what makes a POST retry safe; a timeout does not.
            unavailable.connect_refused = isinstance(
                getattr(error, "reason", None), ConnectionRefusedError
            )
            raise unavailable

    def submit(
        self,
        spec: Optional[dict] = None,
        *,
        tenant: str = "default",
        gpus: int = 1,
        pool: str = "default",
        priority: int = 0,
        job_id: Optional[str] = None,
        max_runtime_s: Optional[float] = None,
    ) -> str:
        payload = {
            "spec": spec or {},
            "tenant": tenant,
            "gpus": gpus,
            "pool": pool,
            "priority": priority,
        }
        if job_id is not None:
            payload["job_id"] = job_id
        if max_runtime_s is not None:
            payload["max_runtime_s"] = max_runtime_s
        return self._request("POST", "/submit", payload)["job_id"]

    def cancel(self, job_id: str) -> str:
        return self._request("POST", "/cancel", {"job_id": job_id})["state"]

    # -- the worker protocol ------------------------------------------
    def register_worker(self, name: str = "", capacity: int = 1) -> dict:
        return self._request(
            "POST", "/worker/register", {"name": name, "capacity": capacity}
        )

    def heartbeat(self, worker_id: str) -> dict:
        return self._request(
            "POST", "/worker/heartbeat", {"worker_id": worker_id}
        )

    def claim(self, worker_id: str, max_jobs: int = 1) -> list:
        """Grants as ``[{"job": <record>, "token": <token>}, ...]``."""
        return self._request(
            "POST", "/worker/claim",
            {"worker_id": worker_id, "max_jobs": max_jobs},
        )["grants"]

    def start(self, token: dict) -> dict:
        """Redeem a dispatch token; returns the RUNNING job record."""
        return self._request("POST", "/worker/start", {"token": token})

    def report(self, token: dict, outcome: dict) -> dict:
        """Report one execution's outcome (a JSON ``JobOutcome``)."""
        return self._request(
            "POST", "/worker/report", {"token": token, "outcome": outcome}
        )

    def status(self, job_id: str) -> dict:
        return self._request("GET", f"/status?job={job_id}")

    def jobs(self, tenant: Optional[str] = None, state: Optional[str] = None) -> list:
        query = []
        if tenant:
            query.append(f"tenant={tenant}")
        if state:
            query.append(f"state={state}")
        suffix = "?" + "&".join(query) if query else ""
        return self._request("GET", f"/jobs{suffix}")["jobs"]

    def health(self) -> dict:
        return self._request("GET", "/health")


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP verbs onto the shared, lock-guarded control plane."""

    server: "ServiceServer"

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        logger.debug("http: " + format, *args)

    def _reply(self, code: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _fail(self, error: Exception) -> None:
        if isinstance(error, UnknownJobError):
            self._reply(404, {"error": str(error), "reason": error.reason,
                              "job_id": error.job_id})
        elif isinstance(error, UnknownWorkerError):
            self._reply(410, {"error": str(error), "reason": error.reason,
                              "worker_id": error.worker_id})
        elif isinstance(error, ServiceError):
            code = _STATUS_BY_REASON.get(error.reason, 400)
            self._reply(code, {"error": str(error), "reason": error.reason})
        else:
            self._reply(500, {"error": str(error), "reason": "internal"})

    def _body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            return {}
        data = self.rfile.read(length)
        payload = json.loads(data.decode("utf-8"))
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        path = urlparse(self.path).path
        try:
            payload = self._body()
            with self.server.lock:
                if path == "/submit":
                    max_runtime = payload.get("max_runtime_s")
                    job_id = self.server.plane.submit(
                        payload.get("spec") or {},
                        tenant=str(payload.get("tenant", "default")),
                        gpus=int(payload.get("gpus", 1)),
                        pool=str(payload.get("pool", "default")),
                        priority=int(payload.get("priority", 0)),
                        job_id=payload.get("job_id"),
                        max_runtime_s=(
                            float(max_runtime)
                            if max_runtime is not None else None
                        ),
                    )
                    self._reply(200, {"job_id": job_id})
                elif path == "/cancel":
                    job_id = str(payload.get("job_id", ""))
                    state = self.server.plane.cancel(job_id)
                    self._reply(200, {"job_id": job_id, "state": state.value})
                elif path == "/worker/register":
                    self._reply(200, self.server.plane.register_worker(
                        name=str(payload.get("name", "")),
                        capacity=int(payload.get("capacity", 1)),
                    ))
                elif path == "/worker/heartbeat":
                    self._reply(200, self.server.plane.worker_heartbeat(
                        str(payload.get("worker_id", ""))
                    ))
                elif path == "/worker/claim":
                    grants = self.server.plane.claim(
                        str(payload.get("worker_id", "")),
                        max_jobs=int(payload.get("max_jobs", 1)),
                    )
                    self._reply(200, {"grants": [
                        {"job": job.to_json(), "token": token.to_json()}
                        for job, token in grants
                    ]})
                elif path == "/worker/start":
                    token = DispatchToken.from_json(payload.get("token") or {})
                    job = self.server.plane.start(token)
                    self._reply(200, job.to_json())
                elif path == "/worker/report":
                    token = DispatchToken.from_json(payload.get("token") or {})
                    outcome = JobOutcome.from_json(payload.get("outcome") or {})
                    self._reply(200, self.server.plane.report(token, outcome))
                else:
                    self._reply(404, {"error": f"unknown path {path}",
                                      "reason": "not_found"})
        except (ValueError, TypeError, ServiceError) as error:
            self._fail(error)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        parsed = urlparse(self.path)
        query = {k: v[0] for k, v in parse_qs(parsed.query).items()}
        try:
            with self.server.lock:
                if parsed.path == "/status":
                    self._reply(200, self.server.plane.status(query.get("job", "")))
                elif parsed.path == "/jobs":
                    self._reply(200, {
                        "jobs": self.server.plane.job_list(
                            tenant=query.get("tenant"), state=query.get("state")
                        )
                    })
                elif parsed.path == "/health":
                    self._reply(200, self.server.plane.stats())
                else:
                    self._reply(404, {"error": f"unknown path {parsed.path}",
                                      "reason": "not_found"})
        except (ValueError, ServiceError) as error:
            self._fail(error)


class ServiceServer(ThreadingHTTPServer):
    """HTTP server bound to one :class:`ControlPlane` behind one lock."""

    daemon_threads = True

    def __init__(self, plane: ControlPlane, host: str = "127.0.0.1", port: int = 0):
        super().__init__((host, port), _Handler)
        self.plane = plane
        self.lock = threading.RLock()

    @property
    def endpoint(self) -> tuple[str, int]:
        return self.server_address[0], self.server_address[1]

    def write_endpoint_file(self, root: Union[str, Path]) -> Path:
        host, port = self.endpoint
        path = Path(root) / ENDPOINT_FILE
        path.write_text(
            json.dumps({"host": host, "port": port, "pid": os.getpid()}),
            encoding="utf-8",
        )
        return path


def serve_forever(
    plane: ControlPlane,
    server: ServiceServer,
    *,
    poll_interval: float = 0.1,
    max_seconds: Optional[float] = None,
    idle_exit: Optional[float] = None,
) -> None:
    """Run the daemon loop: HTTP in a thread, ticks in this one.

    ``max_seconds`` bounds the total run; ``idle_exit`` stops the loop
    once no non-terminal jobs existed for that long (both are what the
    CI smoke uses to keep ``repro serve`` short-lived).  The endpoint
    file is removed on the way out so stale clients fail fast.
    """
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    started = time.monotonic()
    idle_since: Optional[float] = None
    try:
        while True:
            with server.lock:
                plane.tick()
                active = plane.active_jobs
            now = time.monotonic()
            if active > 0:
                idle_since = None
            elif idle_since is None:
                idle_since = now
            if max_seconds is not None and now - started >= max_seconds:
                logger.info("serve: --max-seconds reached, shutting down")
                return
            if (
                idle_exit is not None
                and idle_since is not None
                and now - idle_since >= idle_exit
            ):
                logger.info("serve: idle for %.1fs, shutting down", idle_exit)
                return
            time.sleep(poll_interval)
    finally:
        server.shutdown()
        endpoint = Path(plane.store.root) / ENDPOINT_FILE
        if endpoint.exists():
            endpoint.unlink()
        plane.close()
