"""Error taxonomy of the control plane.

Every failure the service surfaces to a caller is a
:class:`ServiceError` subclass carrying a machine-readable ``reason``
slug, so the HTTP layer and the CLI can map errors to status codes and
messages without string-matching tracebacks.
"""

from __future__ import annotations


class ServiceError(Exception):
    """Base class for control-plane failures.

    ``reason`` is a stable machine-readable slug (e.g.
    ``"stale_epoch"``, ``"max_queued_jobs"``); the string form stays
    human-readable.
    """

    def __init__(self, message: str, reason: str = "error") -> None:
        super().__init__(message)
        self.reason = reason


class StateMachineError(ServiceError):
    """An illegal job-state transition was attempted."""

    def __init__(self, message: str) -> None:
        super().__init__(message, reason="invalid_transition")


class UnknownJobError(ServiceError):
    """A job id the service has never seen."""

    def __init__(self, job_id: str) -> None:
        super().__init__(f"unknown job {job_id!r}", reason="unknown_job")
        self.job_id = job_id


class UnknownWorkerError(ServiceError):
    """A worker id the registry does not recognise (or already reaped).

    The fix is always the same — the worker must re-register for a
    fresh identity — so this is one error, not two.
    """

    def __init__(self, worker_id: str) -> None:
        super().__init__(
            f"unknown or reaped worker {worker_id!r}; re-register for a "
            "fresh identity",
            reason="unknown_worker",
        )
        self.worker_id = worker_id


class TokenError(ServiceError):
    """A dispatch token was rejected (stale epoch, mismatch, reuse...)."""


class AdmissionError(ServiceError):
    """A submission violated the tenant's admission policy."""


class ServiceUnavailable(ServiceError):
    """The service is shedding work (e.g. the durable store is down)."""

    def __init__(self, message: str, reason: str = "unavailable") -> None:
        super().__init__(message, reason=reason)
