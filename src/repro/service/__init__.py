"""Crash-safe control plane around the Themis engine.

``repro.service`` turns the library-style simulator into a long-lived
scheduler service: a durable job state machine (WAL + snapshots),
epoch-stamped dispatch tokens, a retry/backoff seam shared with the
sweep executor, per-tenant admission control, a pull-based worker
fleet with heartbeat leases (``repro worker``), and a chaos harness
that proves the recovery invariants under ``kill -9`` — of the daemon
and of any worker.
"""

from repro.service.admission import (
    DEFAULT_POOL,
    AdmissionController,
    TenantPolicy,
    in_flight_gpus,
    policies_from_json,
)
from repro.service.daemon import (
    ControlPlane,
    Executor,
    JobOutcome,
    NoopExecutor,
    SpecExecutor,
    TickStats,
)
from repro.service.errors import (
    AdmissionError,
    ServiceError,
    ServiceUnavailable,
    StateMachineError,
    TokenError,
    UnknownJobError,
    UnknownWorkerError,
)
from repro.service.retry import (
    DEFAULT_RETRY_POLICY,
    FailureKind,
    RetryPolicy,
    classify_exception,
)
from repro.service.state import (
    TERMINAL_STATES,
    TRANSITIONS,
    JobRecord,
    JobState,
    can_transition,
    transition,
)
from repro.service.store import (
    STORE_SCHEMA_VERSION,
    DurableStore,
    StoreCorruption,
    StoreError,
    StoreImage,
    StoreUnavailable,
)
from repro.service.tokens import DispatchToken, TokenIssuer
from repro.service.workers import (
    DEFAULT_WORKER_TTL,
    WorkerRecord,
    WorkerRegistry,
    WorkerState,
)

__all__ = [
    "DEFAULT_POOL",
    "DEFAULT_RETRY_POLICY",
    "DEFAULT_WORKER_TTL",
    "STORE_SCHEMA_VERSION",
    "TERMINAL_STATES",
    "TRANSITIONS",
    "AdmissionController",
    "AdmissionError",
    "ControlPlane",
    "DispatchToken",
    "DurableStore",
    "Executor",
    "FailureKind",
    "JobOutcome",
    "JobRecord",
    "JobState",
    "NoopExecutor",
    "RetryPolicy",
    "ServiceError",
    "ServiceUnavailable",
    "SpecExecutor",
    "StateMachineError",
    "StoreCorruption",
    "StoreError",
    "StoreImage",
    "StoreUnavailable",
    "TenantPolicy",
    "TickStats",
    "TokenError",
    "TokenIssuer",
    "UnknownJobError",
    "UnknownWorkerError",
    "WorkerRecord",
    "WorkerRegistry",
    "WorkerState",
    "can_transition",
    "classify_exception",
    "in_flight_gpus",
    "policies_from_json",
    "transition",
]
