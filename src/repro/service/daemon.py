"""``repro.service`` daemon: the crash-safe control plane around the engine.

:class:`ControlPlane` is the long-lived service object.  Its contract:

* **Durability** — every state change is one WAL append *before* the
  in-memory state moves on.  ``kill -9`` at any record boundary yields
  a restart that replays the WAL and converges to the same terminal
  job states as an uninterrupted run (proven by the chaos suite).
* **Dispatch tokens** — workers start jobs only via :meth:`start` with
  the token :meth:`tick` issued.  Tokens are epoch-stamped; the epoch
  increments at every service start, so pre-crash dispatches replayed
  after recovery are rejected (``stale_epoch``), never double-started.
* **Retry/backoff** — reported execution failures consume attempts
  against the :class:`~repro.service.retry.RetryPolicy`; worker losses
  (crash recovery, revoked dispatch leases) re-dispatch with backoff
  but do *not* consume attempts, which is what makes interrupted and
  uninterrupted runs agree on terminal states.
* **Admission** — per-tenant queue-depth and per-pool concurrent-GPU
  gates run before any work reaches the scheduler.
* **Graceful degradation** — when the store becomes unavailable the
  service sheds *new* submissions with a clear error but keeps
  draining admitted work, buffering its transitions and flushing them
  once the store returns.

Execution has two planes.  With no live workers registered, the tick
runs jobs synchronously through the :class:`Executor` seam (the
single-node mode every chaos scenario drives deterministically).  Once
out-of-process workers register (``repro worker``), the daemon switches
to a *pull* protocol — :meth:`register_worker` / :meth:`claim` /
:meth:`worker_heartbeat` / :meth:`start` / :meth:`report` — with
heartbeat leases: a worker that stops heartbeating is reaped, its
in-flight jobs re-queue through the retry path *without consuming
attempts*, and the epoch/token fencing rejects any late ``start`` or
``report`` from the zombie, so every job's effects land exactly once.
"""

from __future__ import annotations

import logging
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional, Union

from repro.obs.tracer import NULL_TRACER, Tracer
from repro.service.admission import (
    DEFAULT_POOL,
    AdmissionController,
    in_flight_gpus,
)
from repro.service.errors import (
    ServiceError,
    ServiceUnavailable,
    TokenError,
    UnknownJobError,
)
from repro.service.retry import (
    DEFAULT_RETRY_POLICY,
    FailureKind,
    RetryPolicy,
    classify_exception,
)
from repro.service.state import (
    JobRecord,
    JobState,
    force_state,
    transition,
)
from repro.service.store import DurableStore, StoreUnavailable
from repro.service.tokens import DispatchToken, TokenIssuer
from repro.service.workers import (
    DEFAULT_WORKER_TTL,
    WorkerRecord,
    WorkerRegistry,
)

logger = logging.getLogger("repro.service.daemon")


# ----------------------------------------------------------------------
# Execution seam
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class JobOutcome:
    """What one execution of a job reported back."""

    ok: bool
    failure_kind: Optional[FailureKind] = None
    detail: str = ""
    result: Optional[dict] = None

    @classmethod
    def success(cls, result: Optional[dict] = None) -> "JobOutcome":
        return cls(ok=True, result=result)

    @classmethod
    def failure(
        cls, kind: Union[FailureKind, str], detail: str = ""
    ) -> "JobOutcome":
        return cls(ok=False, failure_kind=FailureKind(kind), detail=detail)

    def to_json(self) -> dict:
        """JSON-safe form (the worker protocol's ``report`` payload)."""
        return {
            "ok": self.ok,
            "failure_kind": (
                self.failure_kind.value if self.failure_kind else None
            ),
            "detail": self.detail,
            "result": self.result,
        }

    @classmethod
    def from_json(cls, payload: Mapping) -> "JobOutcome":
        kind = payload.get("failure_kind")
        return cls(
            ok=bool(payload.get("ok", False)),
            failure_kind=FailureKind(kind) if kind else None,
            detail=str(payload.get("detail", "")),
            result=payload.get("result"),
        )


class Executor:
    """Runs one job to completion; subclasses override :meth:`execute`."""

    def execute(self, record: JobRecord) -> JobOutcome:  # pragma: no cover
        raise NotImplementedError


class NoopExecutor(Executor):
    """Finishes every job immediately (tests, smoke runs)."""

    def execute(self, record: JobRecord) -> JobOutcome:
        return JobOutcome.success()


class SpecExecutor(Executor):
    """Interprets ``record.spec`` — the default executor behind
    ``repro serve``.

    Spec kinds:

    * ``noop`` — finish immediately,
    * ``sleep`` — ``{"seconds": s}`` busy the worker, then finish,
    * ``fail`` — ``{"failure_kind": "transient"|"fatal",
      "succeed_after": n}`` fail until ``n`` attempts were consumed
      (chaos / demo knob),
    * ``sim`` — run one simulation through the same
      :func:`~repro.experiments.runner.run_scenario` the CLI uses:
      ``{"scheduler", "apps", "seed", "duration_scale", "cluster"}``;
      the job result carries the run's headline metrics.
    """

    def execute(self, record: JobRecord) -> JobOutcome:
        kind = str(record.spec.get("kind", "noop"))
        if kind == "noop":
            return JobOutcome.success()
        if kind == "sleep":
            time.sleep(float(record.spec.get("seconds", 0.0)))
            return JobOutcome.success()
        if kind == "fail":
            succeed_after = int(record.spec.get("succeed_after", -1))
            if 0 <= succeed_after <= record.attempts:
                return JobOutcome.success()
            return JobOutcome.failure(
                record.spec.get("failure_kind", FailureKind.FATAL),
                detail="spec-directed failure",
            )
        if kind == "sim":
            return self._run_simulation(record)
        return JobOutcome.failure(
            FailureKind.FATAL, detail=f"unknown spec kind {kind!r}"
        )

    def _run_simulation(self, record: JobRecord) -> JobOutcome:
        from repro.experiments.config import sim_scenario, testbed_scenario
        from repro.experiments.runner import run_scenario
        from repro.metrics.fairness import max_fairness
        from repro.metrics.jct import average_jct

        spec = record.spec
        builder = (
            sim_scenario if spec.get("cluster", "testbed") == "sim"
            else testbed_scenario
        )
        scenario = builder(
            num_apps=int(spec.get("apps", 4)),
            seed=int(spec.get("seed", 0)),
            duration_scale=float(spec.get("duration_scale", 0.05)),
        )
        result = run_scenario(scenario, str(spec.get("scheduler", "themis")))
        rhos = result.rhos()
        return JobOutcome.success(
            result={
                "completed": result.completed,
                "num_apps": len(result.app_stats),
                "max_rho": max_fairness(rhos) if rhos else None,
                "avg_jct": (
                    average_jct(result.completion_times())
                    if result.completion_times()
                    else None
                ),
                "total_gpu_time": result.total_gpu_time,
            }
        )


# ----------------------------------------------------------------------
# The control plane
# ----------------------------------------------------------------------
@dataclass
class TickStats:
    """What one :meth:`ControlPlane.tick` did (for logs and tests)."""

    admitted: int = 0
    dispatched: int = 0
    finished: int = 0
    failed: int = 0
    retried: int = 0
    flushed: int = 0
    compacted: bool = False
    reaped_workers: int = 0  # workers whose heartbeat lease lapsed
    requeued: int = 0  # jobs re-queued after a worker/dispatch loss
    deadlined: int = 0  # RUNNING jobs failed past their max_runtime_s


@dataclass
class _Pending:
    """A WAL record buffered while the store is unavailable."""

    kind: str
    fields: dict = field(default_factory=dict)


class ControlPlane:
    """The durable job service: submit/cancel/status plus the tick loop."""

    def __init__(
        self,
        store: DurableStore,
        *,
        executor: Optional[Executor] = None,
        admission: Optional[AdmissionController] = None,
        retry: RetryPolicy = DEFAULT_RETRY_POLICY,
        clock: Callable[[], float] = time.time,
        tracer: Tracer = NULL_TRACER,
        worker_ttl: float = DEFAULT_WORKER_TTL,
        dispatch_timeout: float = 30.0,
    ) -> None:
        self.store = store
        self.executor = executor if executor is not None else SpecExecutor()
        self.admission = admission if admission is not None else AdmissionController()
        self.retry = retry
        self.clock = clock
        self.tracer = tracer
        self.jobs: dict[str, JobRecord] = {}
        self.workers = WorkerRegistry(ttl=worker_ttl)
        #: Seconds a claimed job may sit DISPATCHED before the daemon
        #: decides the worker stalled and re-queues it (fencing the
        #: worker's late ``start``).  Catches workers that heartbeat
        #: but never make progress, which the lease alone cannot.
        self.dispatch_timeout = float(dispatch_timeout)
        self.degraded = False
        self._pending: list[_Pending] = []
        self._order = 0
        #: Serialises every public entry point: HTTP handler threads
        #: (heartbeats, claims, reports) interleave with the tick loop.
        self._lock = threading.RLock()
        self.counters = {
            "starts": 0,
            "start_rejections": 0,
            "reports": 0,
            "report_rejections": 0,
            "workers_lost": 0,
            "requeued_lost": 0,
            "stalled_requeued": 0,
            "deadline_failures": 0,
        }
        now = self.clock()
        prior_epoch = self._recover(now)
        self.epoch = prior_epoch + 1
        self.issuer = TokenIssuer(self.epoch)
        # The epoch record is the first write of the new incarnation; a
        # store that is down at boot is a hard error (there is nothing
        # admitted yet to drain).
        self.store.append("epoch", epoch=self.epoch, at=now)
        self._orphan_sweep(now)

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _recover(self, now: float) -> int:
        """Replay snapshot + WAL; returns the highest epoch seen."""
        image = self.store.recover()
        epoch = 0
        if image.snapshot:
            epoch = int(image.snapshot.get("epoch", 0))
            for payload in image.snapshot.get("jobs", ()):
                record = JobRecord.from_json(payload)
                self.jobs[record.job_id] = record
            for payload in image.snapshot.get("workers", ()):
                self.workers.restore(payload)
        for record in image.records:
            kind = record.get("kind")
            if kind == "epoch":
                epoch = max(epoch, int(record.get("epoch", 0)))
            elif kind == "submit":
                job = JobRecord.from_json(record["job"])
                self.jobs[job.job_id] = job
            elif kind == "transition":
                self._replay_transition(record)
            elif kind == "worker_register":
                self.workers.restore(
                    {
                        "worker_id": record.get("worker", ""),
                        "name": record.get("name", ""),
                        "capacity": record.get("capacity", 1),
                        "epoch": record.get("epoch", 0),
                        "registered_at": record.get("at", 0.0),
                        "last_heartbeat": record.get("at", 0.0),
                    }
                )
            elif kind == "worker_lost":
                self.workers.restore_lost(
                    str(record.get("worker", "")),
                    at=float(record.get("at", 0.0)),
                    reason=str(record.get("reason", "")),
                )
            # Unknown kinds are skipped: forward compatibility with
            # newer writers, same policy as the trace reader.
        if image.dropped_tail:
            logger.warning(
                "recovered %s: dropped %d torn WAL tail line(s)",
                self.store.root, image.dropped_tail,
            )
        self._order = max(
            (job.order for job in self.jobs.values()), default=0
        )
        return epoch

    def _replay_transition(self, payload: Mapping) -> None:
        job = self.jobs.get(str(payload.get("job")))
        if job is None:
            logger.warning("WAL transition for unknown job %r", payload.get("job"))
            return
        force_state(job, payload["state"], float(payload.get("at", 0.0)))
        for key in (
            "attempts", "dispatches", "not_before", "detail",
            "worker", "started_at",
        ):
            if key in payload:
                setattr(job, key, payload[key])
        if "token" in payload:
            job.token = payload["token"]
        if "result" in payload:
            job.result = payload["result"]

    def _orphan_sweep(self, now: float) -> None:
        """Re-queue work that was in flight when the last epoch died.

        A DISPATCHED/RUNNING job's worker cannot survive the crash (its
        token is from a dead epoch), so the job re-enters via RETRYING
        with backoff.  No attempt is consumed: the execution never
        reported an outcome, so for retry accounting it never happened.
        Workers recovered ALIVE are marked lost for the same reason —
        their leases and tokens belong to the dead epoch; survivors
        simply re-register against the new one.
        """
        for job in self._jobs_in_order():
            if job.state in (JobState.DISPATCHED, JobState.RUNNING):
                self._requeue_lost(
                    job, now,
                    detail=f"worker lost before epoch {self.epoch}",
                )
                logger.info("orphaned job %s re-queued", job.job_id)
        for worker in self.workers.alive():
            self._lose_worker(worker, now, reason="service_restart")

    def _requeue_lost(self, job: JobRecord, now: float, detail: str) -> None:
        """Send a DISPATCHED/RUNNING job back through retry *without*
        consuming an attempt: its execution never reported an outcome,
        so for retry accounting it never happened.  Clearing the token
        is the fence — the lost worker's late ``start``/``report`` can
        no longer match the job's recorded dispatch."""
        delay = self.retry.delay(1, key=f"{job.job_id}:lost")
        job.not_before = now + delay
        job.token = None
        self._detach_worker(job)
        transition(job, JobState.RETRYING, now, detail=detail)
        self._append_transition(job, at=now)
        self.counters["requeued_lost"] += 1

    def _detach_worker(self, job: JobRecord) -> None:
        if job.worker is not None:
            self.workers.release(job.worker, job.job_id)
            job.worker = None

    def _lose_worker(
        self, worker: WorkerRecord, now: float, reason: str
    ) -> None:
        """Mark one worker LOST, durably and in the trace."""
        self.workers.mark_lost(worker.worker_id, now, reason=reason)
        self._append(
            "worker_lost", worker=worker.worker_id, at=now, reason=reason
        )
        self.counters["workers_lost"] += 1
        if self.tracer.enabled:
            self.tracer.emit(
                "worker_lost", now, worker=worker.worker_id, reason=reason
            )

    # ------------------------------------------------------------------
    # WAL plumbing (with graceful degradation)
    # ------------------------------------------------------------------
    def _append(self, kind: str, **fields) -> None:
        if self.degraded:
            self._pending.append(_Pending(kind, fields))
            return
        try:
            self.store.append(kind, **fields)
        except StoreUnavailable as error:
            logger.error("store unavailable, buffering records: %s", error)
            self.degraded = True
            self._pending.append(_Pending(kind, fields))

    def _append_transition(self, job: JobRecord, at: float) -> None:
        self._append(
            "transition",
            job=job.job_id,
            state=job.state.value,
            at=at,
            attempts=job.attempts,
            dispatches=job.dispatches,
            not_before=job.not_before,
            detail=job.detail,
            token=job.token,
            result=job.result,
            worker=job.worker,
            started_at=job.started_at,
        )

    def _flush_pending(self) -> int:
        """Try to drain buffered records back into the store."""
        if not self._pending:
            self.degraded = False
            return 0
        flushed = 0
        while self._pending:
            entry = self._pending[0]
            try:
                self.store.append(entry.kind, **entry.fields)
            except StoreUnavailable:
                return flushed
            self._pending.pop(0)
            flushed += 1
        self.degraded = False
        logger.info("store recovered; flushed %d buffered record(s)", flushed)
        return flushed

    def _snapshot_state(self) -> dict:
        return {
            "epoch": self.epoch,
            "jobs": [job.to_json() for job in self._jobs_in_order()],
            "workers": self.workers.to_json(),
        }

    # ------------------------------------------------------------------
    # Public API (shared by in-process callers, HTTP and the CLI)
    # ------------------------------------------------------------------
    def submit(
        self,
        spec: Optional[Mapping] = None,
        *,
        tenant: str = "default",
        gpus: int = 1,
        pool: str = DEFAULT_POOL,
        priority: int = 0,
        job_id: Optional[str] = None,
        max_runtime_s: Optional[float] = None,
    ) -> str:
        """Accept one job; returns its id.  Raises
        :class:`~repro.service.errors.AdmissionError` over policy and
        :class:`~repro.service.errors.ServiceUnavailable` while the
        store is down (shedding, not queueing in RAM)."""
        with self._lock:
            return self._submit_locked(
                spec, tenant=tenant, gpus=gpus, pool=pool,
                priority=priority, job_id=job_id, max_runtime_s=max_runtime_s,
            )

    def _submit_locked(
        self,
        spec: Optional[Mapping],
        *,
        tenant: str,
        gpus: int,
        pool: str,
        priority: int,
        job_id: Optional[str],
        max_runtime_s: Optional[float],
    ) -> str:
        if self.degraded:
            self._flush_pending()
        if self.degraded:
            raise ServiceUnavailable(
                "durable store is unavailable; new submissions are shed "
                "(running and admitted work keeps draining)",
                reason="store_unavailable",
            )
        queued = sum(
            1
            for job in self.jobs.values()
            if job.tenant == tenant
            and job.state in (JobState.QUEUED, JobState.ADMITTED, JobState.RETRYING)
        )
        self.admission.check_submit(tenant, queued)
        self._order += 1
        if job_id is None:
            job_id = f"job-{self._order:05d}"
        if job_id in self.jobs:
            self._order -= 1  # rejected submissions must not leave id gaps
            raise ServiceError(
                f"job id {job_id!r} already exists", reason="duplicate_job"
            )
        now = self.clock()
        record = JobRecord(
            job_id=job_id,
            tenant=tenant,
            spec=dict(spec or {}),
            gpus=int(gpus),
            pool=str(pool),
            priority=self.admission.effective_priority(tenant, priority),
            submitted_at=now,
            updated_at=now,
            order=self._order,
            max_runtime_s=(
                float(max_runtime_s) if max_runtime_s is not None else None
            ),
        )
        # Durability before visibility: the submit record hits the WAL
        # before the job becomes claimable by a tick.  A store that
        # fails right here sheds this submission (nothing buffered —
        # the caller was told the job was not accepted).
        try:
            self.store.append("submit", job=record.to_json())
        except StoreUnavailable as error:
            self.degraded = True
            self._order -= 1
            raise ServiceUnavailable(
                f"durable store is unavailable ({error}); submission shed",
                reason="store_unavailable",
            )
        self.jobs[job_id] = record
        return job_id

    def cancel(self, job_id: str) -> JobState:
        """Cancel a job; idempotent on terminal jobs (returns the state)."""
        with self._lock:
            job = self._job(job_id)
            if job.is_terminal:
                return job.state
            now = self.clock()
            job.token = None  # fences any in-flight worker's late report
            self._detach_worker(job)
            transition(job, JobState.CANCELLED, now, detail="cancelled by user")
            self._append_transition(job, at=now)
            return job.state

    def status(self, job_id: str) -> dict:
        """One job's full record (JSON-safe)."""
        return self._job(job_id).to_json()

    def job_list(
        self,
        tenant: Optional[str] = None,
        state: Optional[Union[JobState, str]] = None,
    ) -> list[dict]:
        """All jobs (optionally filtered), in submission order."""
        wanted = JobState(state) if state is not None else None
        return [
            job.to_json()
            for job in self._jobs_in_order()
            if (tenant is None or job.tenant == tenant)
            and (wanted is None or job.state is wanted)
        ]

    def stats(self) -> dict:
        """Service-level health: epoch, degradation, per-state counts."""
        with self._lock:
            by_state: dict[str, int] = {}
            for job in self.jobs.values():
                by_state[job.state.value] = by_state.get(job.state.value, 0) + 1
            return {
                "epoch": self.epoch,
                "degraded": self.degraded,
                "buffered_records": len(self._pending),
                "jobs": dict(sorted(by_state.items())),
                "workers": self.workers.counts(),
                "live_workers": len(self.workers.live(self.clock())),
                "counters": dict(self.counters),
            }

    @property
    def active_jobs(self) -> int:
        """Jobs not yet in a terminal state."""
        return sum(1 for job in self.jobs.values() if not job.is_terminal)

    # ------------------------------------------------------------------
    # Worker-facing: the pull protocol
    # ------------------------------------------------------------------
    def register_worker(self, name: str = "", capacity: int = 1) -> dict:
        """Register one worker incarnation; returns its identity + lease.

        Ids are epoch-scoped (``w{epoch}-{n}``), so an identity from a
        dead epoch can never collide with a live one.  The registration
        is a WAL record: recovery restores the roster, then the orphan
        sweep marks every restored worker lost (its lease and tokens
        belong to the dead epoch), forcing a re-register.
        """
        with self._lock:
            now = self.clock()
            record = self.workers.register(
                name=name, capacity=capacity, now=now, epoch=self.epoch
            )
            self._append(
                "worker_register",
                worker=record.worker_id,
                name=record.name,
                capacity=record.capacity,
                epoch=record.epoch,
                at=now,
            )
            if self.tracer.enabled:
                self.tracer.emit(
                    "worker_register",
                    now,
                    worker=record.worker_id,
                    capacity=record.capacity,
                )
            return {
                "worker_id": record.worker_id,
                "epoch": self.epoch,
                "ttl": self.workers.ttl,
            }

    def worker_heartbeat(self, worker_id: str) -> dict:
        """Renew a worker's lease; raises
        :class:`~repro.service.errors.UnknownWorkerError` once reaped.

        The response carries the daemon's view of the worker's claim
        set, so a worker can notice a job was revoked from under it
        (deadline, stalled-dispatch reap) and abort the local run.
        """
        with self._lock:
            now = self.clock()
            record = self.workers.heartbeat(worker_id, now)
            return {
                "worker_id": worker_id,
                "epoch": self.epoch,
                "jobs": sorted(record.jobs),
            }

    def claim(
        self, worker_id: str, max_jobs: int = 1
    ) -> list[tuple[JobRecord, DispatchToken]]:
        """Hand up to ``max_jobs`` dispatchable jobs to a live worker.

        A claim counts as a heartbeat — a worker actively pulling work
        is alive by definition.  Each grant is a full dispatch: token
        issued, DISPATCHED transition in the WAL, job bound to the
        worker's claim set (what the reaper re-queues if the lease
        lapses).
        """
        with self._lock:
            now = self.clock()
            worker = self.workers.heartbeat(worker_id, now)
            stats = TickStats()
            self._promote_retries(now, stats)
            self._admit_queued(now, stats)
            granted: list[tuple[JobRecord, DispatchToken]] = []
            budget = min(int(max_jobs), worker.free_slots)
            if budget <= 0:
                return granted
            usage = in_flight_gpus(self.jobs.values())
            admitted = [
                job
                for job in self.jobs.values()
                if job.state is JobState.ADMITTED
            ]
            for job in self._priority_order(admitted):
                if len(granted) >= budget:
                    break
                if not self.admission.may_admit(job, usage):
                    continue
                token = self._issue(job, now, worker=worker)
                key = (job.tenant, job.pool)
                usage[key] = usage.get(key, 0) + job.gpus
                granted.append((job, token))
            return granted

    def report(self, token: DispatchToken, outcome: JobOutcome) -> dict:
        """A worker reports one execution's outcome, fenced by the token.

        Exactly-once: the report lands iff the token is the job's
        *current* dispatch in the *current* epoch and the job is still
        RUNNING.  Zombies — a reaped worker, a revoked deadline, a
        recovered epoch — get a structured rejection, not a double
        effect.
        """
        with self._lock:
            now = self.clock()
            job = self.jobs.get(token.job_id)
            accepted, reason = True, "ok"
            if job is None:
                accepted, reason = False, "unknown_job"
            elif token.epoch != self.epoch:
                accepted, reason = False, "stale_epoch"
            elif job.token is None or job.token != token.to_json():
                # The job was re-queued (worker loss, revoke) or already
                # completed; this report belongs to a fenced dispatch.
                accepted, reason = False, "token_mismatch"
            elif job.state is not JobState.RUNNING:
                accepted, reason = False, "not_running"
            if self.tracer.enabled:
                self.tracer.emit(
                    "job_report",
                    now,
                    job=token.job_id,
                    accepted=accepted,
                    reason=reason,
                )
            if not accepted:
                self.counters["report_rejections"] += 1
                return {
                    "accepted": False,
                    "reason": reason,
                    "state": job.state.value if job is not None else None,
                }
            self.counters["reports"] += 1
            self._detach_worker(job)
            self._complete(now, job, outcome, TickStats())
            return {
                "accepted": True,
                "reason": "ok",
                "state": job.state.value,
            }

    # ------------------------------------------------------------------
    # Worker-facing: token redemption
    # ------------------------------------------------------------------
    def start(self, token: DispatchToken) -> JobRecord:
        """Redeem a dispatch token; the only way work may start.

        Raises :class:`TokenError` for stale-epoch, reused, mismatched
        or otherwise invalid tokens.  Emits a ``dispatch_token`` trace
        event either way.
        """
        with self._lock:
            now = self.clock()
            job = self.jobs.get(token.job_id)
            try:
                if token.epoch != self.epoch:
                    # Checked before the job's state so a zombie from a
                    # dead epoch learns the real reason, not whatever
                    # state its re-queued job happens to be in.
                    raise TokenError(
                        f"token epoch {token.epoch} != service epoch "
                        f"{self.epoch}; start from a dead incarnation "
                        "rejected",
                        reason="stale_epoch",
                    )
                if job is None:
                    raise TokenError(
                        f"token names unknown job {token.job_id!r}",
                        reason="unknown_job",
                    )
                if job.state is not JobState.DISPATCHED:
                    raise TokenError(
                        f"job {token.job_id!r} is {job.state.value}, not "
                        "dispatched; duplicate or out-of-order start rejected",
                        reason="not_dispatched",
                    )
                self.issuer.redeem(token, job.token)
            except TokenError as error:
                self.counters["start_rejections"] += 1
                self._emit_token(now, token, accepted=False, reason=error.reason)
                raise
            self.counters["starts"] += 1
            self._emit_token(now, token, accepted=True, reason="ok")
            job.started_at = now
            transition(job, JobState.RUNNING, now)
            self._append_transition(job, at=now)
            return job

    def _emit_token(
        self, now: float, token: DispatchToken, accepted: bool, reason: str
    ) -> None:
        if self.tracer.enabled:
            self.tracer.emit(
                "dispatch_token",
                now,
                job=token.job_id,
                epoch=token.epoch,
                seq=token.seq,
                accepted=accepted,
                reason=reason,
            )

    # ------------------------------------------------------------------
    # The tick loop
    # ------------------------------------------------------------------
    def tick(self, now: Optional[float] = None) -> TickStats:
        """One scheduling pass: flush, reap, re-admit, dispatch.

        With no live workers the tick also executes dispatched work
        in-process (the synchronous single-node plane every chaos
        scenario drives deterministically); once workers hold live
        leases, admitted jobs wait to be claimed instead.
        """
        with self._lock:
            now = self.clock() if now is None else now
            stats = TickStats()
            stats.flushed = self._flush_pending()
            self._reap_workers(now, stats)
            self._reap_stalled_dispatches(now, stats)
            self._reap_deadlines(now, stats)
            self._promote_retries(now, stats)
            self._admit_queued(now, stats)
            if not self.workers.live(now):
                self._self_execute(now, stats)
            if not self.degraded:
                # Compaction failing must degrade, not kill, the service —
                # the WAL already holds every record the snapshot would.
                try:
                    stats.compacted = self.store.maybe_compact(
                        self._snapshot_state()
                    )
                except StoreUnavailable as error:
                    logger.error(
                        "store unavailable during compaction: %s", error
                    )
                    self.degraded = True
            return stats

    def _jobs_in_order(self) -> list[JobRecord]:
        return sorted(self.jobs.values(), key=lambda job: job.order)

    def _priority_order(self, records: list[JobRecord]) -> list[JobRecord]:
        return sorted(records, key=lambda job: (-job.priority, job.order))

    def _promote_retries(self, now: float, stats: TickStats) -> None:
        due = [
            job
            for job in self._jobs_in_order()
            if job.state is JobState.RETRYING and job.not_before <= now
        ]
        for job in self._priority_order(due):
            transition(job, JobState.ADMITTED, now)
            self._append_transition(job, at=now)
            stats.admitted += 1

    def _admit_queued(self, now: float, stats: TickStats) -> None:
        queued = [
            job for job in self.jobs.values() if job.state is JobState.QUEUED
        ]
        for job in self._priority_order(queued):
            transition(job, JobState.ADMITTED, now)
            self._append_transition(job, at=now)
            stats.admitted += 1

    def _issue(
        self,
        job: JobRecord,
        now: float,
        worker: Optional[WorkerRecord] = None,
    ) -> DispatchToken:
        """Issue a dispatch token and move an ADMITTED job to DISPATCHED.

        The single dispatch path for both planes: ``worker`` binds the
        job to a claim set; ``None`` means the daemon is dispatching to
        itself.
        """
        token = self.issuer.issue(job.job_id)
        job.token = token.to_json()
        job.dispatches += 1
        job.started_at = 0.0
        if worker is not None:
            job.worker = worker.worker_id
            worker.jobs.add(job.job_id)
        transition(job, JobState.DISPATCHED, now)
        self._append_transition(job, at=now)
        return token

    def _self_execute(self, now: float, stats: TickStats) -> None:
        """The synchronous single-node plane: with no live workers the
        daemon dispatches to itself and runs jobs inline."""
        usage = in_flight_gpus(self.jobs.values())
        admitted = [
            job for job in self.jobs.values() if job.state is JobState.ADMITTED
        ]
        for job in self._priority_order(admitted):
            if not self.admission.may_admit(job, usage):
                continue  # stays ADMITTED until capacity frees up
            token = self._issue(job, now)
            key = (job.tenant, job.pool)
            usage[key] = usage.get(key, 0) + job.gpus
            stats.dispatched += 1
            self._run_one(now, job, token, stats)

    # ------------------------------------------------------------------
    # Reapers: leases, stalled claims, deadlines
    # ------------------------------------------------------------------
    def _reap_workers(self, now: float, stats: TickStats) -> None:
        """Reap workers whose lease lapsed; re-queue their in-flight jobs
        without consuming attempts (the executions never reported)."""
        for worker in self.workers.expired(now):
            claimed = sorted(worker.jobs)
            self._lose_worker(worker, now, reason="lease_expired")
            stats.reaped_workers += 1
            for job_id in claimed:
                job = self.jobs.get(job_id)
                if job is None or job.state not in (
                    JobState.DISPATCHED, JobState.RUNNING
                ):
                    continue
                self._requeue_lost(
                    job, now,
                    detail=(
                        f"worker {worker.worker_id} lost "
                        f"(lease expired after {self.workers.ttl:g}s)"
                    ),
                )
                stats.requeued += 1

    def _reap_stalled_dispatches(self, now: float, stats: TickStats) -> None:
        """Revoke claims that never started.

        A worker can heartbeat forever yet never redeem its token (hung
        between claim and start).  The lease cannot catch that, so a
        worker-held DISPATCHED job older than ``dispatch_timeout`` is
        re-queued; clearing the token fences the stalled worker's
        eventual late ``start``.
        """
        for job in self._jobs_in_order():
            if (
                job.state is JobState.DISPATCHED
                and job.worker is not None
                and now - job.updated_at > self.dispatch_timeout
            ):
                stalled_worker = job.worker
                self._requeue_lost(
                    job, now,
                    detail=(
                        f"dispatch to {stalled_worker} stalled past "
                        f"{self.dispatch_timeout:g}s; claim revoked"
                    ),
                )
                self.counters["stalled_requeued"] += 1
                stats.requeued += 1

    def _reap_deadlines(self, now: float, stats: TickStats) -> None:
        """Fail RUNNING jobs past their ``max_runtime_s`` deadline.

        Unlike a worker loss, a deadline expiry is an execution that ran
        and used its budget, so it *does* consume an attempt against the
        retry policy (as a transient failure).  :meth:`_complete` clears
        the token, fencing the hung worker's eventual report.
        """
        for job in self._jobs_in_order():
            if job.state is not JobState.RUNNING or job.max_runtime_s is None:
                continue
            # updated_at of the RUNNING transition doubles as the start
            # time for records replayed from WALs without started_at.
            started = job.started_at if job.started_at else job.updated_at
            if now - started > job.max_runtime_s:
                self._detach_worker(job)
                self.counters["deadline_failures"] += 1
                stats.deadlined += 1
                self._complete(
                    now, job,
                    JobOutcome.failure(
                        FailureKind.TRANSIENT,
                        detail=(
                            "deadline exceeded: still running past "
                            f"max_runtime_s={job.max_runtime_s:g}"
                        ),
                    ),
                    stats,
                )

    def _run_one(
        self, now: float, job: JobRecord, token: DispatchToken, stats: TickStats
    ) -> None:
        """The in-process worker: redeem the token, execute, report."""
        try:
            self.start(token)
        except TokenError as error:  # pragma: no cover - defensive
            logger.error("self-dispatch rejected: %s", error)
            return
        try:
            outcome = self.executor.execute(job)
        except Exception as error:  # noqa: BLE001 - seam boundary
            outcome = JobOutcome.failure(
                classify_exception(error), detail=f"{type(error).__name__}: {error}"
            )
        self._complete(now, job, outcome, stats)

    def _complete(
        self, now: float, job: JobRecord, outcome: JobOutcome, stats: TickStats
    ) -> None:
        job.token = None
        if outcome.ok:
            job.result = outcome.result
            transition(job, JobState.FINISHED, now)
            self._append_transition(job, at=now)
            stats.finished += 1
            return
        job.attempts += 1
        kind = outcome.failure_kind or FailureKind.FATAL
        if self.retry.should_retry(kind, job.attempts):
            delay = self.retry.delay(job.attempts, key=job.job_id)
            job.not_before = now + delay
            transition(
                job, JobState.RETRYING, now,
                detail=outcome.detail or f"{kind.value} failure",
            )
            self._append_transition(job, at=now)
            stats.retried += 1
            if self.tracer.enabled:
                self.tracer.emit(
                    "job_retry",
                    now,
                    job=job.job_id,
                    attempt=job.attempts,
                    failure_kind=kind.value,
                    delay=delay,
                )
            return
        transition(
            job, JobState.FAILED, now,
            detail=outcome.detail
            or f"{kind.value} failure, attempts exhausted",
        )
        self._append_transition(job, at=now)
        stats.failed += 1

    # ------------------------------------------------------------------
    # Lifecycle helpers
    # ------------------------------------------------------------------
    def _job(self, job_id: str) -> JobRecord:
        job = self.jobs.get(job_id)
        if job is None:
            raise UnknownJobError(job_id)
        return job

    def close(self) -> None:
        """Release the store (idempotent); the WAL stays replayable."""
        self.store.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ControlPlane(epoch={self.epoch}, jobs={len(self.jobs)}, "
            f"degraded={self.degraded})"
        )
