"""``repro.service`` daemon: the crash-safe control plane around the engine.

:class:`ControlPlane` is the long-lived service object.  Its contract:

* **Durability** — every state change is one WAL append *before* the
  in-memory state moves on.  ``kill -9`` at any record boundary yields
  a restart that replays the WAL and converges to the same terminal
  job states as an uninterrupted run (proven by the chaos suite).
* **Dispatch tokens** — workers start jobs only via :meth:`start` with
  the token :meth:`tick` issued.  Tokens are epoch-stamped; the epoch
  increments at every service start, so pre-crash dispatches replayed
  after recovery are rejected (``stale_epoch``), never double-started.
* **Retry/backoff** — reported execution failures consume attempts
  against the :class:`~repro.service.retry.RetryPolicy`; worker losses
  (crash recovery, revoked dispatch leases) re-dispatch with backoff
  but do *not* consume attempts, which is what makes interrupted and
  uninterrupted runs agree on terminal states.
* **Admission** — per-tenant queue-depth and per-pool concurrent-GPU
  gates run before any work reaches the scheduler.
* **Graceful degradation** — when the store becomes unavailable the
  service sheds *new* submissions with a clear error but keeps
  draining admitted work, buffering its transitions and flushing them
  once the store returns.

Execution is synchronous through the :class:`Executor` seam — the
point where a real deployment plugs in an async worker pool; the
in-process model keeps every chaos scenario deterministic.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional, Union

from repro.obs.tracer import NULL_TRACER, Tracer
from repro.service.admission import (
    DEFAULT_POOL,
    AdmissionController,
    in_flight_gpus,
)
from repro.service.errors import (
    ServiceError,
    ServiceUnavailable,
    TokenError,
    UnknownJobError,
)
from repro.service.retry import (
    DEFAULT_RETRY_POLICY,
    FailureKind,
    RetryPolicy,
    classify_exception,
)
from repro.service.state import (
    JobRecord,
    JobState,
    force_state,
    transition,
)
from repro.service.store import DurableStore, StoreUnavailable
from repro.service.tokens import DispatchToken, TokenIssuer

logger = logging.getLogger("repro.service.daemon")


# ----------------------------------------------------------------------
# Execution seam
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class JobOutcome:
    """What one execution of a job reported back."""

    ok: bool
    failure_kind: Optional[FailureKind] = None
    detail: str = ""
    result: Optional[dict] = None

    @classmethod
    def success(cls, result: Optional[dict] = None) -> "JobOutcome":
        return cls(ok=True, result=result)

    @classmethod
    def failure(
        cls, kind: Union[FailureKind, str], detail: str = ""
    ) -> "JobOutcome":
        return cls(ok=False, failure_kind=FailureKind(kind), detail=detail)


class Executor:
    """Runs one job to completion; subclasses override :meth:`execute`."""

    def execute(self, record: JobRecord) -> JobOutcome:  # pragma: no cover
        raise NotImplementedError


class NoopExecutor(Executor):
    """Finishes every job immediately (tests, smoke runs)."""

    def execute(self, record: JobRecord) -> JobOutcome:
        return JobOutcome.success()


class SpecExecutor(Executor):
    """Interprets ``record.spec`` — the default executor behind
    ``repro serve``.

    Spec kinds:

    * ``noop`` — finish immediately,
    * ``sleep`` — ``{"seconds": s}`` busy the worker, then finish,
    * ``fail`` — ``{"failure_kind": "transient"|"fatal",
      "succeed_after": n}`` fail until ``n`` attempts were consumed
      (chaos / demo knob),
    * ``sim`` — run one simulation through the same
      :func:`~repro.experiments.runner.run_scenario` the CLI uses:
      ``{"scheduler", "apps", "seed", "duration_scale", "cluster"}``;
      the job result carries the run's headline metrics.
    """

    def execute(self, record: JobRecord) -> JobOutcome:
        kind = str(record.spec.get("kind", "noop"))
        if kind == "noop":
            return JobOutcome.success()
        if kind == "sleep":
            time.sleep(float(record.spec.get("seconds", 0.0)))
            return JobOutcome.success()
        if kind == "fail":
            succeed_after = int(record.spec.get("succeed_after", -1))
            if 0 <= succeed_after <= record.attempts:
                return JobOutcome.success()
            return JobOutcome.failure(
                record.spec.get("failure_kind", FailureKind.FATAL),
                detail="spec-directed failure",
            )
        if kind == "sim":
            return self._run_simulation(record)
        return JobOutcome.failure(
            FailureKind.FATAL, detail=f"unknown spec kind {kind!r}"
        )

    def _run_simulation(self, record: JobRecord) -> JobOutcome:
        from repro.experiments.config import sim_scenario, testbed_scenario
        from repro.experiments.runner import run_scenario
        from repro.metrics.fairness import max_fairness
        from repro.metrics.jct import average_jct

        spec = record.spec
        builder = (
            sim_scenario if spec.get("cluster", "testbed") == "sim"
            else testbed_scenario
        )
        scenario = builder(
            num_apps=int(spec.get("apps", 4)),
            seed=int(spec.get("seed", 0)),
            duration_scale=float(spec.get("duration_scale", 0.05)),
        )
        result = run_scenario(scenario, str(spec.get("scheduler", "themis")))
        rhos = result.rhos()
        return JobOutcome.success(
            result={
                "completed": result.completed,
                "num_apps": len(result.app_stats),
                "max_rho": max_fairness(rhos) if rhos else None,
                "avg_jct": (
                    average_jct(result.completion_times())
                    if result.completion_times()
                    else None
                ),
                "total_gpu_time": result.total_gpu_time,
            }
        )


# ----------------------------------------------------------------------
# The control plane
# ----------------------------------------------------------------------
@dataclass
class TickStats:
    """What one :meth:`ControlPlane.tick` did (for logs and tests)."""

    admitted: int = 0
    dispatched: int = 0
    finished: int = 0
    failed: int = 0
    retried: int = 0
    flushed: int = 0
    compacted: bool = False


@dataclass
class _Pending:
    """A WAL record buffered while the store is unavailable."""

    kind: str
    fields: dict = field(default_factory=dict)


class ControlPlane:
    """The durable job service: submit/cancel/status plus the tick loop."""

    def __init__(
        self,
        store: DurableStore,
        *,
        executor: Optional[Executor] = None,
        admission: Optional[AdmissionController] = None,
        retry: RetryPolicy = DEFAULT_RETRY_POLICY,
        clock: Callable[[], float] = time.time,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        self.store = store
        self.executor = executor if executor is not None else SpecExecutor()
        self.admission = admission if admission is not None else AdmissionController()
        self.retry = retry
        self.clock = clock
        self.tracer = tracer
        self.jobs: dict[str, JobRecord] = {}
        self.degraded = False
        self._pending: list[_Pending] = []
        self._order = 0
        now = self.clock()
        prior_epoch = self._recover(now)
        self.epoch = prior_epoch + 1
        self.issuer = TokenIssuer(self.epoch)
        # The epoch record is the first write of the new incarnation; a
        # store that is down at boot is a hard error (there is nothing
        # admitted yet to drain).
        self.store.append("epoch", epoch=self.epoch, at=now)
        self._orphan_sweep(now)

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _recover(self, now: float) -> int:
        """Replay snapshot + WAL; returns the highest epoch seen."""
        image = self.store.recover()
        epoch = 0
        if image.snapshot:
            epoch = int(image.snapshot.get("epoch", 0))
            for payload in image.snapshot.get("jobs", ()):
                record = JobRecord.from_json(payload)
                self.jobs[record.job_id] = record
        for record in image.records:
            kind = record.get("kind")
            if kind == "epoch":
                epoch = max(epoch, int(record.get("epoch", 0)))
            elif kind == "submit":
                job = JobRecord.from_json(record["job"])
                self.jobs[job.job_id] = job
            elif kind == "transition":
                self._replay_transition(record)
            # Unknown kinds are skipped: forward compatibility with
            # newer writers, same policy as the trace reader.
        if image.dropped_tail:
            logger.warning(
                "recovered %s: dropped %d torn WAL tail line(s)",
                self.store.root, image.dropped_tail,
            )
        self._order = max(
            (job.order for job in self.jobs.values()), default=0
        )
        return epoch

    def _replay_transition(self, payload: Mapping) -> None:
        job = self.jobs.get(str(payload.get("job")))
        if job is None:
            logger.warning("WAL transition for unknown job %r", payload.get("job"))
            return
        force_state(job, payload["state"], float(payload.get("at", 0.0)))
        for key in ("attempts", "dispatches", "not_before", "detail"):
            if key in payload:
                setattr(job, key, payload[key])
        if "token" in payload:
            job.token = payload["token"]
        if "result" in payload:
            job.result = payload["result"]

    def _orphan_sweep(self, now: float) -> None:
        """Re-queue work that was in flight when the last epoch died.

        A DISPATCHED/RUNNING job's worker cannot survive the crash (its
        token is from a dead epoch), so the job re-enters via RETRYING
        with backoff.  No attempt is consumed: the execution never
        reported an outcome, so for retry accounting it never happened.
        """
        for job in self._jobs_in_order():
            if job.state in (JobState.DISPATCHED, JobState.RUNNING):
                delay = self.retry.delay(1, key=f"{job.job_id}:lost")
                job.not_before = now + delay
                job.token = None
                transition(
                    job, JobState.RETRYING, now,
                    detail=f"worker lost before epoch {self.epoch}",
                )
                self._append_transition(job, at=now)
                logger.info(
                    "orphaned job %s re-queued (retry in %.2fs)",
                    job.job_id, delay,
                )

    # ------------------------------------------------------------------
    # WAL plumbing (with graceful degradation)
    # ------------------------------------------------------------------
    def _append(self, kind: str, **fields) -> None:
        if self.degraded:
            self._pending.append(_Pending(kind, fields))
            return
        try:
            self.store.append(kind, **fields)
        except StoreUnavailable as error:
            logger.error("store unavailable, buffering records: %s", error)
            self.degraded = True
            self._pending.append(_Pending(kind, fields))

    def _append_transition(self, job: JobRecord, at: float) -> None:
        self._append(
            "transition",
            job=job.job_id,
            state=job.state.value,
            at=at,
            attempts=job.attempts,
            dispatches=job.dispatches,
            not_before=job.not_before,
            detail=job.detail,
            token=job.token,
            result=job.result,
        )

    def _flush_pending(self) -> int:
        """Try to drain buffered records back into the store."""
        if not self._pending:
            self.degraded = False
            return 0
        flushed = 0
        while self._pending:
            entry = self._pending[0]
            try:
                self.store.append(entry.kind, **entry.fields)
            except StoreUnavailable:
                return flushed
            self._pending.pop(0)
            flushed += 1
        self.degraded = False
        logger.info("store recovered; flushed %d buffered record(s)", flushed)
        return flushed

    def _snapshot_state(self) -> dict:
        return {
            "epoch": self.epoch,
            "jobs": [job.to_json() for job in self._jobs_in_order()],
        }

    # ------------------------------------------------------------------
    # Public API (shared by in-process callers, HTTP and the CLI)
    # ------------------------------------------------------------------
    def submit(
        self,
        spec: Optional[Mapping] = None,
        *,
        tenant: str = "default",
        gpus: int = 1,
        pool: str = DEFAULT_POOL,
        priority: int = 0,
        job_id: Optional[str] = None,
    ) -> str:
        """Accept one job; returns its id.  Raises
        :class:`~repro.service.errors.AdmissionError` over policy and
        :class:`~repro.service.errors.ServiceUnavailable` while the
        store is down (shedding, not queueing in RAM)."""
        if self.degraded:
            self._flush_pending()
        if self.degraded:
            raise ServiceUnavailable(
                "durable store is unavailable; new submissions are shed "
                "(running and admitted work keeps draining)",
                reason="store_unavailable",
            )
        queued = sum(
            1
            for job in self.jobs.values()
            if job.tenant == tenant
            and job.state in (JobState.QUEUED, JobState.ADMITTED, JobState.RETRYING)
        )
        self.admission.check_submit(tenant, queued)
        self._order += 1
        if job_id is None:
            job_id = f"job-{self._order:05d}"
        if job_id in self.jobs:
            self._order -= 1  # rejected submissions must not leave id gaps
            raise ServiceError(
                f"job id {job_id!r} already exists", reason="duplicate_job"
            )
        now = self.clock()
        record = JobRecord(
            job_id=job_id,
            tenant=tenant,
            spec=dict(spec or {}),
            gpus=int(gpus),
            pool=str(pool),
            priority=self.admission.effective_priority(tenant, priority),
            submitted_at=now,
            updated_at=now,
            order=self._order,
        )
        # Durability before visibility: the submit record hits the WAL
        # before the job becomes claimable by a tick.  A store that
        # fails right here sheds this submission (nothing buffered —
        # the caller was told the job was not accepted).
        try:
            self.store.append("submit", job=record.to_json())
        except StoreUnavailable as error:
            self.degraded = True
            self._order -= 1
            raise ServiceUnavailable(
                f"durable store is unavailable ({error}); submission shed",
                reason="store_unavailable",
            )
        self.jobs[job_id] = record
        return job_id

    def cancel(self, job_id: str) -> JobState:
        """Cancel a job; idempotent on terminal jobs (returns the state)."""
        job = self._job(job_id)
        if job.is_terminal:
            return job.state
        now = self.clock()
        job.token = None
        transition(job, JobState.CANCELLED, now, detail="cancelled by user")
        self._append_transition(job, at=now)
        return job.state

    def status(self, job_id: str) -> dict:
        """One job's full record (JSON-safe)."""
        return self._job(job_id).to_json()

    def job_list(
        self,
        tenant: Optional[str] = None,
        state: Optional[Union[JobState, str]] = None,
    ) -> list[dict]:
        """All jobs (optionally filtered), in submission order."""
        wanted = JobState(state) if state is not None else None
        return [
            job.to_json()
            for job in self._jobs_in_order()
            if (tenant is None or job.tenant == tenant)
            and (wanted is None or job.state is wanted)
        ]

    def stats(self) -> dict:
        """Service-level health: epoch, degradation, per-state counts."""
        by_state: dict[str, int] = {}
        for job in self.jobs.values():
            by_state[job.state.value] = by_state.get(job.state.value, 0) + 1
        return {
            "epoch": self.epoch,
            "degraded": self.degraded,
            "buffered_records": len(self._pending),
            "jobs": dict(sorted(by_state.items())),
        }

    @property
    def active_jobs(self) -> int:
        """Jobs not yet in a terminal state."""
        return sum(1 for job in self.jobs.values() if not job.is_terminal)

    # ------------------------------------------------------------------
    # Worker-facing: token redemption
    # ------------------------------------------------------------------
    def start(self, token: DispatchToken) -> JobRecord:
        """Redeem a dispatch token; the only way work may start.

        Raises :class:`TokenError` for stale-epoch, reused, mismatched
        or otherwise invalid tokens.  Emits a ``dispatch_token`` trace
        event either way.
        """
        now = self.clock()
        job = self.jobs.get(token.job_id)
        try:
            if job is None:
                raise TokenError(
                    f"token names unknown job {token.job_id!r}",
                    reason="unknown_job",
                )
            if job.state is not JobState.DISPATCHED:
                raise TokenError(
                    f"job {token.job_id!r} is {job.state.value}, not "
                    "dispatched; duplicate or out-of-order start rejected",
                    reason="not_dispatched",
                )
            self.issuer.redeem(token, job.token)
        except TokenError as error:
            self._emit_token(now, token, accepted=False, reason=error.reason)
            raise
        self._emit_token(now, token, accepted=True, reason="ok")
        transition(job, JobState.RUNNING, now)
        self._append_transition(job, at=now)
        return job

    def _emit_token(
        self, now: float, token: DispatchToken, accepted: bool, reason: str
    ) -> None:
        if self.tracer.enabled:
            self.tracer.emit(
                "dispatch_token",
                now,
                job=token.job_id,
                epoch=token.epoch,
                seq=token.seq,
                accepted=accepted,
                reason=reason,
            )

    # ------------------------------------------------------------------
    # The tick loop
    # ------------------------------------------------------------------
    def tick(self, now: Optional[float] = None) -> TickStats:
        """One scheduling pass: flush, re-admit, dispatch, execute."""
        now = self.clock() if now is None else now
        stats = TickStats()
        stats.flushed = self._flush_pending()
        self._promote_retries(now, stats)
        self._dispatch(now, stats)
        if not self.degraded:
            # Compaction failing must degrade, not kill, the service —
            # the WAL already holds every record the snapshot would.
            try:
                stats.compacted = self.store.maybe_compact(self._snapshot_state())
            except StoreUnavailable as error:
                logger.error("store unavailable during compaction: %s", error)
                self.degraded = True
        return stats

    def _jobs_in_order(self) -> list[JobRecord]:
        return sorted(self.jobs.values(), key=lambda job: job.order)

    def _priority_order(self, records: list[JobRecord]) -> list[JobRecord]:
        return sorted(records, key=lambda job: (-job.priority, job.order))

    def _promote_retries(self, now: float, stats: TickStats) -> None:
        due = [
            job
            for job in self._jobs_in_order()
            if job.state is JobState.RETRYING and job.not_before <= now
        ]
        for job in self._priority_order(due):
            transition(job, JobState.ADMITTED, now)
            self._append_transition(job, at=now)
            stats.admitted += 1

    def _dispatch(self, now: float, stats: TickStats) -> None:
        queued = [
            job for job in self.jobs.values() if job.state is JobState.QUEUED
        ]
        for job in self._priority_order(queued):
            transition(job, JobState.ADMITTED, now)
            self._append_transition(job, at=now)
            stats.admitted += 1
        usage = in_flight_gpus(self.jobs.values())
        admitted = [
            job for job in self.jobs.values() if job.state is JobState.ADMITTED
        ]
        for job in self._priority_order(admitted):
            if not self.admission.may_admit(job, usage):
                continue  # stays ADMITTED until capacity frees up
            token = self.issuer.issue(job.job_id)
            job.token = token.to_json()
            job.dispatches += 1
            transition(job, JobState.DISPATCHED, now)
            self._append_transition(job, at=now)
            key = (job.tenant, job.pool)
            usage[key] = usage.get(key, 0) + job.gpus
            stats.dispatched += 1
            self._run_one(now, job, token, stats)

    def _run_one(
        self, now: float, job: JobRecord, token: DispatchToken, stats: TickStats
    ) -> None:
        """The in-process worker: redeem the token, execute, report."""
        try:
            self.start(token)
        except TokenError as error:  # pragma: no cover - defensive
            logger.error("self-dispatch rejected: %s", error)
            return
        try:
            outcome = self.executor.execute(job)
        except Exception as error:  # noqa: BLE001 - seam boundary
            outcome = JobOutcome.failure(
                classify_exception(error), detail=f"{type(error).__name__}: {error}"
            )
        self._complete(now, job, outcome, stats)

    def _complete(
        self, now: float, job: JobRecord, outcome: JobOutcome, stats: TickStats
    ) -> None:
        job.token = None
        if outcome.ok:
            job.result = outcome.result
            transition(job, JobState.FINISHED, now)
            self._append_transition(job, at=now)
            stats.finished += 1
            return
        job.attempts += 1
        kind = outcome.failure_kind or FailureKind.FATAL
        if self.retry.should_retry(kind, job.attempts):
            delay = self.retry.delay(job.attempts, key=job.job_id)
            job.not_before = now + delay
            transition(
                job, JobState.RETRYING, now,
                detail=outcome.detail or f"{kind.value} failure",
            )
            self._append_transition(job, at=now)
            stats.retried += 1
            if self.tracer.enabled:
                self.tracer.emit(
                    "job_retry",
                    now,
                    job=job.job_id,
                    attempt=job.attempts,
                    failure_kind=kind.value,
                    delay=delay,
                )
            return
        transition(
            job, JobState.FAILED, now,
            detail=outcome.detail
            or f"{kind.value} failure, attempts exhausted",
        )
        self._append_transition(job, at=now)
        stats.failed += 1

    # ------------------------------------------------------------------
    # Lifecycle helpers
    # ------------------------------------------------------------------
    def _job(self, job_id: str) -> JobRecord:
        job = self.jobs.get(job_id)
        if job is None:
            raise UnknownJobError(job_id)
        return job

    def close(self) -> None:
        """Release the store (idempotent); the WAL stays replayable."""
        self.store.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ControlPlane(epoch={self.epoch}, jobs={len(self.jobs)}, "
            f"degraded={self.degraded})"
        )
