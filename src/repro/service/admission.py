"""Per-tenant admission control in front of the Themis auction.

The noisy-neighbor / SLA-tier knobs a multi-tenant service needs
(the ``tenant_gpu_policies`` shape from the modelops GPU-scheduler
doc, generalised from its fixed T4/MIG pools to arbitrary named GPU
pools):

* ``max_queued_jobs`` — gate at *submit* time: a tenant cannot flood
  the queue,
* ``pool_gpu_limits`` / ``max_concurrent_gpus`` — gate at *admit*
  time: a tenant's in-flight GPU demand per pool stays bounded,
* ``priority_boost`` — additive boost applied at enqueue time;
  admission and dispatch order by effective priority.

All of this runs *before* jobs reach the auction: the scheduler only
ever sees work that admission already cleared.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Iterable, Mapping, Optional

from repro.service.errors import AdmissionError
from repro.service.state import JobRecord

#: GPU pool jobs land in when they do not name one.
DEFAULT_POOL = "default"


@dataclass(frozen=True)
class TenantPolicy:
    """Admission knobs for one tenant (or the default for all others)."""

    tenant: str = "*"
    max_queued_jobs: int = 64
    max_concurrent_gpus: int = 256  # per-pool fallback limit
    pool_gpu_limits: tuple = ()  # ((pool, max_gpus), ...) overrides
    priority_boost: int = 0

    def __post_init__(self) -> None:
        if self.max_queued_jobs < 0:
            raise ValueError(
                f"max_queued_jobs must be >= 0, got {self.max_queued_jobs}"
            )
        if self.max_concurrent_gpus < 0:
            raise ValueError(
                f"max_concurrent_gpus must be >= 0, got {self.max_concurrent_gpus}"
            )
        object.__setattr__(
            self,
            "pool_gpu_limits",
            tuple((str(pool), int(limit)) for pool, limit in self.pool_gpu_limits),
        )
        if any(limit < 0 for _pool, limit in self.pool_gpu_limits):
            raise ValueError("pool gpu limits must be >= 0")

    def pool_limit(self, pool: str) -> int:
        """The concurrent-GPU cap for ``pool`` (falls back to the global)."""
        for name, limit in self.pool_gpu_limits:
            if name == pool:
                return limit
        return self.max_concurrent_gpus

    def to_json(self) -> dict:
        payload = {}
        for spec_field in fields(self):
            value = getattr(self, spec_field.name)
            payload[spec_field.name] = (
                [list(pair) for pair in value]
                if spec_field.name == "pool_gpu_limits"
                else value
            )
        return payload

    @classmethod
    def from_json(cls, payload: Mapping) -> "TenantPolicy":
        known = {spec_field.name for spec_field in fields(cls)}
        kwargs = {key: value for key, value in payload.items() if key in known}
        if "pool_gpu_limits" in kwargs:
            kwargs["pool_gpu_limits"] = tuple(
                (str(pool), int(limit)) for pool, limit in kwargs["pool_gpu_limits"]
            )
        return cls(**kwargs)


@dataclass
class AdmissionController:
    """Applies tenant policies at the submit and admit gates."""

    policies: dict = field(default_factory=dict)  # tenant -> TenantPolicy
    default: TenantPolicy = field(default_factory=TenantPolicy)

    def policy_for(self, tenant: str) -> TenantPolicy:
        """The tenant's policy, or the default when none is registered."""
        return self.policies.get(tenant, self.default)

    def set_policy(self, policy: TenantPolicy) -> None:
        """Register/replace one tenant's policy."""
        self.policies[policy.tenant] = policy

    def effective_priority(self, tenant: str, priority: int) -> int:
        """Base priority plus the tenant's boost (applied at enqueue)."""
        return int(priority) + self.policy_for(tenant).priority_boost

    def check_submit(self, tenant: str, queued_jobs: int) -> None:
        """Gate a new submission on the tenant's queue depth.

        ``queued_jobs`` counts the tenant's jobs in QUEUED/ADMITTED/
        RETRYING — work accepted but not yet dispatched.
        """
        policy = self.policy_for(tenant)
        if queued_jobs >= policy.max_queued_jobs:
            raise AdmissionError(
                f"tenant {tenant!r} already has {queued_jobs} queued jobs "
                f"(max_queued_jobs={policy.max_queued_jobs})",
                reason="max_queued_jobs",
            )

    def may_admit(
        self, record: JobRecord, in_flight_gpus: Mapping[tuple, int]
    ) -> bool:
        """True when dispatching ``record`` keeps its tenant within the
        pool's concurrent-GPU cap.

        ``in_flight_gpus`` maps ``(tenant, pool)`` to the GPUs of that
        tenant's DISPATCHED/RUNNING jobs in that pool.
        """
        policy = self.policy_for(record.tenant)
        used = in_flight_gpus.get((record.tenant, record.pool), 0)
        return used + record.gpus <= policy.pool_limit(record.pool)


def in_flight_gpus(records: Iterable[JobRecord]) -> dict:
    """Aggregate DISPATCHED/RUNNING GPU counts per (tenant, pool)."""
    from repro.service.state import JobState

    usage: dict[tuple, int] = {}
    for record in records:
        if record.state in (JobState.DISPATCHED, JobState.RUNNING):
            key = (record.tenant, record.pool)
            usage[key] = usage.get(key, 0) + record.gpus
    return usage


def policies_from_json(payload: Optional[Iterable[Mapping]]) -> AdmissionController:
    """Build a controller from a JSON list of tenant-policy objects.

    A policy whose ``tenant`` is ``"*"`` becomes the default for
    unregistered tenants.
    """
    controller = AdmissionController()
    for entry in payload or ():
        policy = TenantPolicy.from_json(entry)
        if policy.tenant == "*":
            controller.default = policy
        else:
            controller.set_policy(policy)
    return controller
