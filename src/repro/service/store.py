"""The durable store: append-only JSONL WAL + compacted snapshots.

Stdlib-only crash safety:

* every state change is one JSON line appended to ``wal.jsonl`` (an
  optional ``fsync`` per append for real durability; tests exercise
  crash points at record granularity, so buffered writes keep the same
  semantics),
* a *snapshot* (``snapshot.json``) is written atomically
  (tmp + ``os.replace``) every ``compact_every`` records and the WAL
  is then reset, so recovery cost is O(recent records), not
  O(history),
* every record carries a monotonically increasing ``seq`` that
  survives compaction, so a crash between the snapshot rename and the
  WAL reset replays no record twice — records at or below the
  snapshot's ``last_seq`` are skipped.

Recovery tolerates a *torn tail*: a partial or garbled final line
(the classic ``kill -9`` mid-write artifact) is dropped and the file
is repaired before appends resume.  Garbage in the middle of the WAL
— valid records after an invalid line — is real corruption and
raises :class:`StoreCorruption` instead of silently skipping history.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Optional, Union

from repro.service.errors import ServiceError

#: Version of the on-disk WAL/snapshot layout.
STORE_SCHEMA_VERSION = 1

#: ``kind`` of the header record opening every WAL file.
WAL_HEADER_KIND = "wal_header"


class StoreError(ServiceError):
    """The durable store failed in a way recovery cannot hide."""

    def __init__(self, message: str, reason: str = "store_error") -> None:
        super().__init__(message, reason=reason)


class StoreCorruption(StoreError):
    """Valid records follow garbage — history is untrustworthy."""

    def __init__(self, message: str) -> None:
        super().__init__(message, reason="store_corruption")


class StoreUnavailable(StoreError):
    """The store cannot accept writes right now (shed, don't crash)."""

    def __init__(self, message: str) -> None:
        super().__init__(message, reason="store_unavailable")


@dataclass
class StoreImage:
    """What recovery reconstructed: snapshot state + WAL records."""

    snapshot: Optional[dict] = None
    records: list = field(default_factory=list)
    last_seq: int = 0
    dropped_tail: int = 0  # torn-tail lines discarded during repair


class DurableStore:
    """Append-only WAL with periodic compacted snapshots under ``root``."""

    def __init__(
        self,
        root: Union[str, Path],
        *,
        fsync: bool = False,
        compact_every: int = 256,
    ) -> None:
        if compact_every < 1:
            raise ValueError(f"compact_every must be >= 1, got {compact_every}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.wal_path = self.root / "wal.jsonl"
        self.snapshot_path = self.root / "snapshot.json"
        self.fsync = bool(fsync)
        self.compact_every = int(compact_every)
        self._fh: Optional[IO[str]] = None
        self._seq = 0
        self._since_snapshot = 0
        self.appends = 0  # lifetime append count (chaos crash points key on it)

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def recover(self) -> StoreImage:
        """Load snapshot + WAL, repair a torn tail, open for append."""
        image = self._load()
        if image.dropped_tail:
            self._rewrite_valid_prefix(image)
        self._seq = image.last_seq
        self._since_snapshot = len(image.records)
        self._open_append(write_header=not self.wal_path.exists())
        return image

    def _load(self) -> StoreImage:
        image = StoreImage()
        if self.snapshot_path.exists():
            try:
                with open(self.snapshot_path, "r", encoding="utf-8") as fh:
                    snapshot = json.load(fh)
            except (OSError, json.JSONDecodeError) as error:
                raise StoreCorruption(
                    f"snapshot {self.snapshot_path} is unreadable: {error}"
                )
            if snapshot.get("schema") != STORE_SCHEMA_VERSION:
                raise StoreCorruption(
                    f"snapshot schema {snapshot.get('schema')!r} is not "
                    f"{STORE_SCHEMA_VERSION}"
                )
            image.snapshot = snapshot.get("state") or {}
            image.last_seq = int(snapshot.get("last_seq", 0))
        if not self.wal_path.exists():
            return image
        # errors="replace": a torn tail can contain arbitrary bytes; the
        # mangled line fails JSON parsing and is handled as torn, rather
        # than the whole recovery dying on a decode error.
        lines = self.wal_path.read_text(
            encoding="utf-8", errors="replace"
        ).splitlines()
        parsed: list[Optional[dict]] = []
        for line in lines:
            if not line.strip():
                parsed.append(None)
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                parsed.append(None)
                continue
            parsed.append(record if isinstance(record, dict) else None)
        # A torn tail is a (possibly empty) run of bad lines at the very
        # end; a bad line with any valid record after it is corruption.
        last_valid = -1
        for index, record in enumerate(parsed):
            if record is not None:
                last_valid = index
        for index in range(last_valid + 1):
            if parsed[index] is None:
                raise StoreCorruption(
                    f"{self.wal_path}:{index + 1}: invalid record followed "
                    "by valid records — WAL middle is corrupt"
                )
        image.dropped_tail = len(parsed) - (last_valid + 1)
        for record in parsed[: last_valid + 1]:
            if record.get("kind") == WAL_HEADER_KIND:
                if record.get("schema") != STORE_SCHEMA_VERSION:
                    raise StoreCorruption(
                        f"{self.wal_path}: WAL schema "
                        f"{record.get('schema')!r} is not {STORE_SCHEMA_VERSION}"
                    )
                continue
            seq = int(record.get("seq", 0))
            if seq <= image.last_seq and image.snapshot is not None:
                continue  # already folded into the snapshot
            image.records.append(record)
            image.last_seq = max(image.last_seq, seq)
        return image

    def _rewrite_valid_prefix(self, image: StoreImage) -> None:
        """Atomically rewrite the WAL without its torn tail."""
        tmp = self.wal_path.with_suffix(".jsonl.tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(self._header_line())
            for record in image.records:
                fh.write(json.dumps(record, sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.wal_path)

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def _header_line(self) -> str:
        return (
            json.dumps({"kind": WAL_HEADER_KIND, "schema": STORE_SCHEMA_VERSION})
            + "\n"
        )

    def _open_append(self, write_header: bool) -> None:
        try:
            self._fh = open(self.wal_path, "a", encoding="utf-8")
            if write_header or self.wal_path.stat().st_size == 0:
                self._fh.write(self._header_line())
                self._fh.flush()
        except OSError as error:
            raise StoreUnavailable(f"cannot open WAL {self.wal_path}: {error}")

    def append(self, kind: str, **fields) -> int:
        """Durably append one record; returns its ``seq``."""
        if self._fh is None:
            raise StoreUnavailable(f"store at {self.root} is not open")
        record = {"seq": self._seq + 1, "kind": kind}
        record.update(fields)
        try:
            self._fh.write(json.dumps(record, sort_keys=True) + "\n")
            self._fh.flush()
            if self.fsync:
                os.fsync(self._fh.fileno())
        except (OSError, ValueError) as error:
            # ValueError covers a handle something closed under us
            # ("I/O operation on closed file") — same shedding contract.
            raise StoreUnavailable(f"WAL append failed: {error}")
        self._seq += 1
        self._since_snapshot += 1
        self.appends += 1
        return self._seq

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    @property
    def records_since_snapshot(self) -> int:
        """WAL records not yet folded into a snapshot."""
        return self._since_snapshot

    def compact(self, state: dict) -> None:
        """Write an atomic snapshot of ``state`` and reset the WAL.

        Crash-safe ordering: the snapshot lands via ``os.replace``
        first; only then is the WAL truncated.  A crash in between
        leaves old records in the WAL, but their ``seq`` values are at
        or below the snapshot's ``last_seq`` and recovery skips them.
        """
        payload = {
            "schema": STORE_SCHEMA_VERSION,
            "last_seq": self._seq,
            "state": state,
        }
        tmp = self.snapshot_path.with_suffix(".json.tmp")
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, sort_keys=True)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.snapshot_path)
            if self._fh is not None:
                # Null the handle before the WAL rewrite: if the rewrite
                # fails we must not keep a closed file object around
                # (later appends would die on ValueError, not shed).
                self._fh.close()
                self._fh = None
            wal_tmp = self.wal_path.with_suffix(".jsonl.tmp")
            with open(wal_tmp, "w", encoding="utf-8") as fh:
                fh.write(self._header_line())
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(wal_tmp, self.wal_path)
            self._fh = open(self.wal_path, "a", encoding="utf-8")
        except OSError as error:
            raise StoreUnavailable(f"compaction failed: {error}")
        self._since_snapshot = 0

    def maybe_compact(self, state: dict) -> bool:
        """Compact when the WAL has grown past ``compact_every`` records."""
        if self._since_snapshot < self.compact_every:
            return False
        self.compact(state)
        return True

    def close(self) -> None:
        """Flush and release the WAL handle (idempotent)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DurableStore({str(self.root)!r}, seq={self._seq})"
