"""Benchmark harnesses: the PA-auction hot path and whole-trace runs.

Each :class:`AuctionBenchProfile` describes one contended auction round
— a cluster size, a contention factor (aggregate unmet demand over
offered GPUs) and a bidder count — from which a deterministic instance
is synthesised: apps hold a slice of the cluster already (so the greedy
solver exercises the gain path, not just rescues), the rest of the
GPUs form the offered pool, and every app bids through the real
:class:`~repro.core.bids.Bid` / :class:`~repro.core.fairness.FairnessEstimator`
machinery.

For every profile the harness times :meth:`PartialAllocationAuction.run`
with the default lazy solver and (optionally) with the pre-refactor
full-rescan reference solver, asserts the two outcomes are identical,
and reports wall-clock plus valuation-probe counts.  The *speedup*
ratio (reference / lazy on the same machine, same instance) is the
machine-independent number the CI regression guard tracks across
commits; absolute seconds are recorded for context only.

End-to-end profiles time a whole ``themis`` simulation through
:func:`repro.experiments.runner.run_scenario`, covering the simulator's
round loop (active-job index, batched lease expiries) as well as the
auction.

The **sim macro-benchmark** (``repro bench sim``) is the honest
events-per-second number for full trace replays: every
:class:`SimBenchProfile` runs one whole simulation twice — once with the
cross-round incremental valuation pipeline
(``SimulationConfig.incremental=True``, the default) and once with the
cold rebuild-everything baseline — asserts the two
``SimulationResult.to_json()`` payloads are byte-identical (modulo the
``incremental`` flag itself), and reports wall seconds, events/sec,
rounds/sec and carve ("rho probe") counts into ``BENCH_sim.json``.  The
machine-independent *speedup* ratio (cold / incremental, same machine,
same process) is what the CI smoke job gates on.
"""

from __future__ import annotations

import json
import random
import statistics
import time
from dataclasses import dataclass
from datetime import datetime, timezone
from typing import Mapping, Optional, Sequence

from repro.cluster.topology import (
    Cluster,
    ClusterSpec,
    MachineSpec,
    build_cluster,
    split_by_mix,
)
from repro.core.auction import AuctionOutcome, PartialAllocationAuction
from repro.core.bids import Bid, build_bid
from repro.core.fairness import FairnessEstimator
from repro.workload.app import App
from repro.workload.job import Job, JobSpec

#: Schema version of the BENCH_auction.json payload.
BENCH_SCHEMA = 1

#: Schema version of the BENCH_sim.json payload.
#: 2: per-profile ``obs`` record (tracing-on overhead ratio, byte-
#:    identity with tracing, event count, phase profile).
#: 3: top-level ``trajectory`` list — one timestamped summary entry
#:    appended per ``repro bench sim --out`` run, so the committed
#:    baseline carries its own speedup history instead of silently
#:    overwriting it.
BENCH_SIM_SCHEMA = 3

#: Models sampled for synthetic bench apps (mix of placement-sensitive
#: and compute-bound profiles so valuations are not all alike).
_BENCH_MODELS = ("resnet50", "vgg16", "transformer", "inceptionv3", "lstm-lm")


@dataclass(frozen=True)
class AuctionBenchProfile:
    """One synthetic auction round to benchmark."""

    name: str
    gpus: int
    contention: float  # aggregate unmet demand / offered GPUs
    num_apps: int
    gpus_per_machine: int = 4
    held_fraction: float = 0.25  # slice of the cluster apps already hold
    hidden_payments: bool = True
    chunk_size: int = 4
    seed: int = 0
    #: Skip the (much slower) rescan reference by default for this
    #: profile; the lazy solver is still timed.
    reference: bool = True
    #: Documented reason the rescan reference is skipped.  A *gated*
    #: profile must either time the reference (tracked ``speedup``) or
    #: carry this marker — ``check_regression`` fails on a silent
    #: neither, and falls back to gating the profile's deterministic
    #: probe counts instead of the timing ratio.
    skip_reference_reason: Optional[str] = None
    #: GPU-generation mixture, (type name, fraction) pairs; empty means
    #: a homogeneous default-type cluster.  Machines are split across
    #: generations by largest remainder, so the valuation path exercises
    #: the speed-weighted carve and the speed-class tie-breaks.
    gpu_mix: tuple[tuple[str, float], ...] = ()


@dataclass(frozen=True)
class EndToEndProfile:
    """One whole-simulation run to benchmark."""

    name: str
    num_apps: int
    seed: int = 42
    duration_scale: float = 0.1
    scheduler: str = "themis"


#: The tracked auction profiles: 64–512 GPUs at 2x–8x contention.  The
#: ``medium`` and ``hetero-medium`` profiles (128 GPUs, 4x contention,
#: hidden payments on; the latter on a 50/25/25 V100/P100/K80 fleet)
#: are the acceptance/CI gates.  ``large`` skips the rescan reference —
#: at 512 GPUs the O(apps x machines)-per-move rescan needs minutes.
AUCTION_PROFILES: dict[str, AuctionBenchProfile] = {
    p.name: p
    for p in (
        AuctionBenchProfile(name="small", gpus=64, contention=2.0, num_apps=8),
        AuctionBenchProfile(name="medium", gpus=128, contention=4.0, num_apps=16),
        AuctionBenchProfile(
            name="hetero-medium",
            gpus=128,
            contention=4.0,
            num_apps=16,
            gpu_mix=(("v100", 0.5), ("p100", 0.25), ("k80", 0.25)),
        ),
        AuctionBenchProfile(
            name="large",
            gpus=512,
            contention=8.0,
            num_apps=32,
            reference=False,
            skip_reference_reason=(
                "the O(apps x machines)-per-move rescan reference needs "
                "minutes per solve at 512 GPUs; the profile is gated on its "
                "deterministic rho-probe and pair-score counts instead"
            ),
        ),
    )
}

E2E_PROFILES: dict[str, EndToEndProfile] = {
    p.name: p
    for p in (
        EndToEndProfile(name="e2e-small", num_apps=6, duration_scale=0.05),
        EndToEndProfile(name="e2e-medium", num_apps=12, duration_scale=0.1),
    )
}


@dataclass(frozen=True)
class SimBenchProfile:
    """One full trace replay, timed incremental vs cold-rebuild.

    ``contention`` is the profile's target contention class (the knob
    compresses arrivals toward it); the *measured* peak contention is
    recorded in the payload.  ``failures`` injects machine outages as
    ``(machine_id, at_minutes, duration_minutes)`` triples.
    """

    name: str
    gpus: int
    contention: float
    num_apps: int
    duration_scale: float
    interarrival_minutes: float
    seed: int = 11
    scheduler: str = "themis"
    hetero: bool = False
    failures: tuple[tuple[int, float, float], ...] = ()
    downsample: int = 256
    jobs_per_app_median: float = 8.0
    jobs_per_app_max: int = 24
    #: Perf-matrix preset name ("" = scalar speeds); with a matrix the
    #: valuation path exercises the per-family carve kernel.
    perf_matrix: str = ""
    #: Speed-aware migration knob (exercises the post-round gang swaps).
    migration: bool = False
    #: Lease duration override (None = the scenario default, 20 min).
    #: The scale profiles stretch it so round count tracks workload
    #: churn instead of lease churn.
    lease_minutes: Optional[float] = None


#: The tracked sim profiles: 64-128 GPU traces at 2x/4x/8x contention
#: classes, homogeneous + hetero fleets, with and without failure
#: injection.  ``sim-medium`` (128 GPUs, 4x) is the acceptance gate
#: (>= 2x incremental-over-cold); ``sim-small`` is the CI smoke gate.
SIM_PROFILES: dict[str, SimBenchProfile] = {
    p.name: p
    for p in (
        SimBenchProfile(
            name="sim-small",
            gpus=64,
            contention=2.0,
            num_apps=12,
            duration_scale=0.3,
            interarrival_minutes=8.0,
        ),
        SimBenchProfile(
            name="sim-medium",
            gpus=128,
            contention=4.0,
            num_apps=36,
            duration_scale=0.35,
            interarrival_minutes=5.0,
        ),
        SimBenchProfile(
            name="sim-8x",
            gpus=128,
            contention=8.0,
            num_apps=64,
            duration_scale=0.35,
            interarrival_minutes=2.5,
        ),
        SimBenchProfile(
            name="sim-hetero",
            gpus=128,
            contention=4.0,
            num_apps=36,
            duration_scale=0.35,
            interarrival_minutes=5.0,
            hetero=True,
        ),
        SimBenchProfile(
            name="sim-failures",
            gpus=128,
            contention=4.0,
            num_apps=36,
            duration_scale=0.35,
            interarrival_minutes=5.0,
            failures=((3, 120.0, 120.0), (17, 200.0, 180.0), (9, 300.0, 90.0)),
        ),
        SimBenchProfile(
            name="sim-matrix",
            gpus=64,
            contention=2.0,
            num_apps=12,
            duration_scale=0.3,
            interarrival_minutes=8.0,
            hetero=True,
            perf_matrix="rate-inversion",
        ),
        SimBenchProfile(
            name="sim-migration",
            gpus=128,
            contention=4.0,
            num_apps=36,
            duration_scale=0.35,
            interarrival_minutes=5.0,
            hetero=True,
            perf_matrix="rate-inversion",
            migration=True,
        ),
        # The breadth/scale gate: 2048 GPUs (512 machines) x 512 apps.
        # What it proves is byte-identity and CI-budget wall clock at an
        # order of magnitude more machines than every other profile —
        # NOT a speedup headline.  At this scale the dominant cost is
        # the auction solver's exact re-scoring after each greedy move
        # (trajectory-dependent compound bundle keys x 512 machines),
        # which is identical work in incremental and cold modes, so the
        # incremental-over-cold ratio is structurally small here.  Tiny
        # short jobs + a long lease keep the round count tracking
        # workload churn instead of lease churn, which is what keeps
        # the whole replay inside the CI budget.  Not in the default
        # suite — run it explicitly (CI does, under a hard timeout).
        SimBenchProfile(
            name="sim-xl",
            gpus=2048,
            contention=0.25,
            num_apps=512,
            duration_scale=0.03,
            interarrival_minutes=0.1,
            jobs_per_app_median=1.0,
            jobs_per_app_max=2,
            lease_minutes=120.0,
        ),
    )
}


# ----------------------------------------------------------------------
# Instance synthesis
# ----------------------------------------------------------------------
def _bench_cluster(profile: AuctionBenchProfile) -> Cluster:
    machines = max(1, profile.gpus // profile.gpus_per_machine)
    if profile.gpu_mix:
        specs = tuple(
            MachineSpec(
                count=count,
                gpus_per_machine=profile.gpus_per_machine,
                gpu_type=gpu_type,
            )
            for gpu_type, count in split_by_mix(machines, profile.gpu_mix)
            if count > 0
        )
    else:
        specs = (
            MachineSpec(count=machines, gpus_per_machine=profile.gpus_per_machine),
        )
    return build_cluster(
        ClusterSpec(
            machine_specs=specs,
            num_racks=max(1, machines // 8),
            name=f"bench-{profile.name}",
        )
    )


def _bench_apps(
    profile: AuctionBenchProfile, cluster: Cluster, rng: random.Random
) -> list[App]:
    """Apps whose aggregate demand hits ``contention x offered GPUs``."""
    offered = int(round(profile.gpus * (1.0 - profile.held_fraction)))
    target_demand = int(round(profile.contention * offered))
    per_job = profile.gpus_per_machine
    jobs_per_app = max(1, round(target_demand / (per_job * profile.num_apps)))
    apps = []
    for index in range(profile.num_apps):
        jobs = [
            Job(
                spec=JobSpec(
                    job_id=f"b{index}-j{j}",
                    model=rng.choice(_BENCH_MODELS),
                    serial_work=rng.uniform(50.0, 400.0),
                    max_parallelism=per_job,
                )
            )
            for j in range(jobs_per_app)
        ]
        apps.append(
            App(app_id=f"b{index:03d}", arrival_time=rng.uniform(0.0, 120.0), jobs=jobs)
        )
    return apps


def build_auction_instance(
    profile: AuctionBenchProfile,
) -> tuple[dict[int, int], dict[str, Bid]]:
    """Deterministic (pool, bids) for one profile.

    ``held_fraction`` of the machines are handed whole to apps
    round-robin before bidding, so bids carry non-empty base
    allocations and positive current values; the remaining machines
    form the offered pool.  Fresh :class:`Bid` objects (cold valuation
    caches) are returned on every call so repeated timings are honest.
    """
    rng = random.Random(profile.seed)
    cluster = _bench_cluster(profile)
    apps = _bench_apps(profile, cluster, rng)
    machines = list(cluster.machines)
    held = machines[: int(len(machines) * profile.held_fraction)]
    for slot, machine in enumerate(held):
        app = apps[slot % len(apps)]
        job = app.jobs[(slot // len(apps)) % len(app.jobs)]
        job.set_allocation(0.0, job.allocation.union(machine.gpus), overhead=0.0)
    pool = {
        machine.machine_id: machine.num_gpus
        for machine in machines[len(held):]
    }
    estimator = FairnessEstimator(cluster)
    now = 150.0
    bids = {
        app.app_id: build_bid(app, estimator, now, pool)
        for app in apps
        if app.unmet_demand() > 0
    }
    return pool, bids


# ----------------------------------------------------------------------
# Timing
# ----------------------------------------------------------------------
def _outcome_digest(outcome: AuctionOutcome) -> list:
    """Canonical, JSON-stable digest of an auction outcome."""
    return [
        sorted(
            (app_id, sorted(bundle.items()))
            for app_id, bundle in outcome.winners.items()
        ),
        sorted(outcome.payments.items()),
        sorted(outcome.leftover.items()),
        outcome.nash_log_welfare,
    ]


def _time_solver(
    profile: AuctionBenchProfile, solver: str, repeats: int
) -> tuple[dict, list]:
    """Time ``auction.run`` on fresh instances; returns (record, digest)."""
    auction = PartialAllocationAuction(chunk_size=profile.chunk_size, solver=solver)
    seconds: list[float] = []
    digest: list = []
    probes = lookups = moves = pair_scores = 0
    for _ in range(max(1, repeats)):
        pool, bids = build_auction_instance(profile)
        start = time.perf_counter()
        outcome = auction.run(
            pool, bids, apply_hidden_payments=profile.hidden_payments
        )
        seconds.append(time.perf_counter() - start)
        digest = _outcome_digest(outcome)
        probes = sum(bid.rho_probes for bid in bids.values())
        lookups = sum(bid.rho_lookups for bid in bids.values())
        moves = auction.last_stats.moves
        pair_scores = auction.last_stats.pair_scores
    record = {
        "seconds": min(seconds),
        "seconds_mean": statistics.fmean(seconds),
        "repeats": len(seconds),
        "rho_probes": probes,
        "rho_lookups": lookups,
        "solver_moves": moves,
        "solver_pair_scores": pair_scores,
    }
    return record, digest


def run_auction_bench(
    profile: AuctionBenchProfile,
    repeats: int = 3,
    include_reference: Optional[bool] = None,
) -> dict:
    """Benchmark one auction profile; returns its JSON record."""
    if include_reference is None:
        include_reference = profile.reference
    fast, fast_digest = _time_solver(profile, "lazy", repeats)
    record = {
        "gpus": profile.gpus,
        "contention": profile.contention,
        "apps": profile.num_apps,
        "hidden_payments": profile.hidden_payments,
        "fast": fast,
    }
    if include_reference:
        reference, ref_digest = _time_solver(profile, "rescan", repeats)
        record["reference"] = reference
        record["identical_outcomes"] = fast_digest == ref_digest
        record["speedup"] = (
            reference["seconds"] / fast["seconds"] if fast["seconds"] > 0 else None
        )
    elif profile.skip_reference_reason is not None:
        record["skip_reference"] = profile.skip_reference_reason
    return record


def run_end_to_end_bench(profile: EndToEndProfile, repeats: int = 1) -> dict:
    """Time a full simulation run (imports deferred: heavier module)."""
    from repro.experiments.config import sim_scenario
    from repro.experiments.runner import run_scenario

    scenario = sim_scenario(
        num_apps=profile.num_apps,
        seed=profile.seed,
        duration_scale=profile.duration_scale,
    )
    seconds = []
    result = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = run_scenario(scenario, profile.scheduler)
        seconds.append(time.perf_counter() - start)
    return {
        "apps": profile.num_apps,
        "scheduler": profile.scheduler,
        "seconds": min(seconds),
        "repeats": len(seconds),
        "makespan": result.makespan,
        "num_rounds": result.num_rounds,
        "events_processed": result.events_processed,
    }


# ----------------------------------------------------------------------
# Sim macro-benchmark (repro bench sim)
# ----------------------------------------------------------------------
def sim_scenario_for(profile: SimBenchProfile):
    """Materialise the profile's scenario (deferred heavy imports)."""
    from repro.experiments.config import hetero_scenario, sim_scenario

    builder = hetero_scenario if profile.hetero else sim_scenario
    scenario = builder(
        num_apps=profile.num_apps,
        seed=profile.seed,
        duration_scale=profile.duration_scale,
    )
    overrides: dict = {
        "cluster_scale": profile.gpus / 256.0,
        "downsample": profile.downsample,
        "perf_matrix": profile.perf_matrix or (),
        "migration": profile.migration,
    }
    if profile.lease_minutes is not None:
        overrides["lease_minutes"] = profile.lease_minutes
    scenario = scenario.replace(**overrides)
    return scenario.with_generator(
        mean_interarrival_minutes=profile.interarrival_minutes,
        jobs_per_app_median=profile.jobs_per_app_median,
        jobs_per_app_max=profile.jobs_per_app_max,
    )


def canonical_result_json(result) -> str:
    """Byte-stable JSON of a SimulationResult, instrumentation excluded.

    The ``incremental`` flag is the experiment variable of the
    incremental-vs-cold comparison; ``round_stats`` (solver work
    counters legitimately differ between incremental and cold solves —
    that difference *is* the optimisation) and ``profile`` (wall-clock
    timings) are observability, not results.  Everything else must
    match byte for byte.
    """
    payload = result.to_json()
    payload["config"] = dict(payload["config"])
    payload["config"].pop("incremental", None)
    payload.pop("round_stats", None)
    payload.pop("profile", None)
    return json.dumps(payload, sort_keys=True)


def run_sim_once(profile: SimBenchProfile, incremental: bool, obs=None) -> dict:
    """One full trace replay; returns timing + result + canonical digest.

    ``obs`` optionally attaches an :class:`~repro.obs.Observability`
    bundle (the tracing-overhead pass of :func:`run_sim_bench`).
    """
    from dataclasses import replace as dc_replace

    from repro.schedulers.registry import make_scheduler
    from repro.simulation.failures import FailureInjector, MachineFailure
    from repro.simulation.simulator import ClusterSimulator

    scenario = sim_scenario_for(profile)
    scheduler = make_scheduler(profile.scheduler)
    simulator = ClusterSimulator(
        cluster=scenario.build_cluster(),
        workload=scenario.build_trace(),
        scheduler=scheduler,
        config=dc_replace(scenario.build_sim_config(), incremental=incremental),
        perf_model=scenario.build_perf_model(),
        obs=obs,
    )
    if profile.failures:
        injector = FailureInjector(
            [
                MachineFailure(machine_id=machine_id, at=at, duration=duration)
                for machine_id, at, duration in profile.failures
            ]
        )
        injector.install(simulator)
    start = time.perf_counter()
    result = simulator.run()
    seconds = time.perf_counter() - start
    estimator = getattr(scheduler, "estimator", None)
    return {
        "seconds": seconds,
        "result": result,
        "digest": canonical_result_json(result),
        "rho_probes": getattr(estimator, "carve_count", 0),
    }


def run_sim_bench(profile: SimBenchProfile, repeats: int = 1) -> dict:
    """Benchmark one sim profile; returns its record.

    Three passes: incremental (the default pipeline), cold rebuild (the
    speedup baseline), and incremental again with full tracing plus the
    phase profiler attached.  The traced pass proves observability is
    pay-for-what-you-use: its results must stay byte-identical and its
    ``trace_overhead`` ratio (traced / untraced, same machine and
    process) is the machine-independent number the CI guard gates.
    """
    from repro.obs import Observability, PhaseProfiler, RingTracer

    def _timed(incremental: bool, make_obs=None) -> dict:
        runs = []
        for _ in range(max(1, repeats)):
            obs = make_obs() if make_obs is not None else None
            run = run_sim_once(profile, incremental, obs=obs)
            run["_obs"] = obs
            runs.append(run)
        best = min(runs, key=lambda r: r["seconds"])
        seconds = best["seconds"]
        result = best["result"]
        # Post-move re-scoring accounting (deterministic per profile
        # and mode, so machine-independently gateable): scalar carves
        # the re-scores still did, memo skips, batched carves, and the
        # headline carves-per-move ratio the sim-xl CI gate holds a
        # ceiling on.
        totals = (result.round_stats or {}).get("totals", {})
        moves = totals.get("solver_moves", 0)
        solver = {
            "moves": moves,
            "rescore_carves": totals.get("rescore_carves", 0),
            "rescore_skipped": totals.get("rescore_skipped", 0),
            "rescore_batched": totals.get("rescore_batched", 0),
            "rescore_carves_per_move": (
                totals.get("rescore_carves", 0) / moves if moves else None
            ),
        }
        return {
            "seconds": seconds,
            "repeats": len(runs),
            "events_per_sec": result.events_processed / seconds if seconds > 0 else None,
            "rounds_per_sec": result.num_rounds / seconds if seconds > 0 else None,
            "rho_probes": best["rho_probes"],
            "solver": solver,
            "_digest": best["digest"],
            "_result": result,
            "_obs": best["_obs"],
        }

    fast = _timed(True)
    cold = _timed(False)
    traced = _timed(
        True,
        make_obs=lambda: Observability(
            tracer=RingTracer(capacity=1 << 20), profiler=PhaseProfiler()
        ),
    )
    result = fast.pop("_result")
    cold.pop("_result")
    fast.pop("_obs")
    cold.pop("_obs")
    fast_digest = fast.pop("_digest")
    cold_digest = cold.pop("_digest")
    traced_obs = traced["_obs"]
    traced_result = traced["_result"]
    obs_record = {
        "seconds": traced["seconds"],
        "trace_overhead": (
            traced["seconds"] / fast["seconds"] if fast["seconds"] > 0 else None
        ),
        "events": traced_obs.tracer.events_written,
        "events_dropped": traced_obs.tracer.dropped,
        "identical_with_tracing": traced["_digest"] == fast_digest,
        "profile": traced_result.profile,
    }
    return {
        "gpus": profile.gpus,
        "contention": profile.contention,
        "apps": profile.num_apps,
        "scheduler": profile.scheduler,
        "hetero": profile.hetero,
        "failures": len(profile.failures),
        "perf_matrix": profile.perf_matrix,
        "migration": profile.migration,
        "migrations": result.num_migrations,
        "peak_contention": result.peak_contention,
        "makespan": result.makespan,
        "rounds": result.num_rounds,
        "events": result.events_processed,
        "incremental": fast,
        "cold": cold,
        "speedup": cold["seconds"] / fast["seconds"] if fast["seconds"] > 0 else None,
        "identical_results": fast_digest == cold_digest,
        "obs": obs_record,
    }


def run_sim_suite(
    profiles: Sequence[str] = (
        "sim-small",
        "sim-medium",
        "sim-8x",
        "sim-hetero",
        "sim-failures",
        "sim-matrix",
        "sim-migration",
    ),
    repeats: int = 1,
) -> dict:
    """Run the selected sim profiles and assemble the BENCH_sim payload."""
    payload: dict = {"schema": BENCH_SIM_SCHEMA, "sim": {}}
    for name in profiles:
        payload["sim"][name] = run_sim_bench(SIM_PROFILES[name], repeats=repeats)
    return payload


def check_sim_regression(
    current: Mapping,
    baseline: Mapping,
    max_slowdown: float = 1.3,
    gate_profiles: Sequence[str] = ("sim-small", "sim-medium", "sim-matrix"),
) -> list[str]:
    """Compare a fresh sim bench run against the committed baseline.

    Gates on the machine-independent incremental-over-cold *speedup*
    ratio (fail when it falls below ``baseline / max_slowdown`` — the
    default tolerates 30%) and on result divergence, which is always a
    failure.  The observability record is gated too: a traced run whose
    results diverge from the untraced run always fails, and the
    traced-over-untraced overhead ratio (same machine, same process)
    must stay below ``baseline * max_slowdown``.

    Profiles whose baseline carries the solver re-score accounting are
    additionally held to a ``rescore_carves_per_move`` ceiling — the
    counter is *deterministic* per profile and mode (no timing noise at
    all), so this is the perf gate of choice for ``sim-xl``, where the
    timing ratio is structurally ~1 and deliberately not gated.
    Returns failure messages (empty = pass).
    """
    failures: list[str] = []
    for name in gate_profiles:
        cur = current.get("sim", {}).get(name)
        if cur is None:
            failures.append(f"{name}: profile missing from current run")
            continue
        if not cur.get("identical_results", False):
            failures.append(f"{name}: incremental and cold results diverged")
        cur_obs = cur.get("obs") or {}
        if cur_obs and not cur_obs.get("identical_with_tracing", False):
            failures.append(f"{name}: tracing changed simulation results")
        base = baseline.get("sim", {}).get(name)
        if base is None:
            continue  # new profile: nothing to compare against yet
        cur_speedup = cur.get("speedup")
        base_speedup = base.get("speedup")
        if cur_speedup is None or base_speedup is None:
            continue
        floor = base_speedup / max_slowdown
        if cur_speedup < floor:
            failures.append(
                f"{name}: sim throughput regressed — incremental speedup "
                f"{cur_speedup:.2f}x vs baseline {base_speedup:.2f}x "
                f"(floor {floor:.2f}x)"
            )
        cur_overhead = cur_obs.get("trace_overhead")
        base_overhead = (base.get("obs") or {}).get("trace_overhead")
        if cur_overhead is not None and base_overhead is not None:
            ceiling = base_overhead * max_slowdown
            if cur_overhead > ceiling:
                failures.append(
                    f"{name}: tracing overhead regressed — {cur_overhead:.2f}x "
                    f"vs baseline {base_overhead:.2f}x (ceiling {ceiling:.2f}x)"
                )
        cur_cpm = (cur.get("incremental", {}).get("solver") or {}).get(
            "rescore_carves_per_move"
        )
        base_cpm = (base.get("incremental", {}).get("solver") or {}).get(
            "rescore_carves_per_move"
        )
        if cur_cpm is not None and base_cpm is not None and base_cpm > 0:
            cpm_ceiling = base_cpm * max_slowdown
            if cur_cpm > cpm_ceiling:
                failures.append(
                    f"{name}: post-move re-scoring regressed — "
                    f"{cur_cpm:.2f} precise carves/move vs baseline "
                    f"{base_cpm:.2f} (ceiling {cpm_ceiling:.2f})"
                )
    return failures


def run_bench(
    profiles: Sequence[str] = ("small", "medium", "hetero-medium", "large"),
    e2e_profiles: Sequence[str] = ("e2e-small", "e2e-medium"),
    repeats: int = 3,
    include_reference: Optional[bool] = None,
) -> dict:
    """Run the selected profiles and assemble the BENCH payload."""
    payload: dict = {"schema": BENCH_SCHEMA, "auction": {}, "end_to_end": {}}
    for name in profiles:
        payload["auction"][name] = run_auction_bench(
            AUCTION_PROFILES[name], repeats=repeats, include_reference=include_reference
        )
    for name in e2e_profiles:
        payload["end_to_end"][name] = run_end_to_end_bench(
            E2E_PROFILES[name], repeats=repeats
        )
    return payload


# ----------------------------------------------------------------------
# Regression guard
# ----------------------------------------------------------------------
def check_regression(
    current: Mapping,
    baseline: Mapping,
    max_slowdown: float = 2.0,
    gate_profiles: Sequence[str] = ("medium", "hetero-medium", "large"),
) -> list[str]:
    """Compare a fresh bench run against a committed baseline.

    The guarded metric is the *speedup ratio* (rescan reference over
    lazy solver, measured on the same machine in the same process),
    which is comparable across machines; a profile regresses when its
    ratio falls below ``baseline / max_slowdown``.  Outcome divergence
    between the two solvers is always a failure.  A gated profile with
    no reference timing must carry an explicit ``skip_reference``
    marker — it is then gated on its deterministic work counts
    (rho probes / solver pair scores) instead of wall time; a gated
    profile with neither fails outright, so nothing is silently
    uncompared.  Returns a list of failure messages (empty = pass).
    """
    failures: list[str] = []
    for name in gate_profiles:
        cur = current.get("auction", {}).get(name)
        base = baseline.get("auction", {}).get(name)
        if cur is None:
            failures.append(f"{name}: profile missing from current run")
            continue
        if cur.get("identical_outcomes") is False:
            failures.append(f"{name}: lazy and rescan solvers diverged")
        cur_speedup = cur.get("speedup")
        if cur_speedup is None:
            if "skip_reference" not in cur:
                failures.append(
                    f"{name}: gated profile has neither a reference timing "
                    "nor a skip_reference marker"
                )
                continue
            if base is None:
                continue
            # Reference-free gate: the lazy solver's work counts are
            # deterministic per instance, so a large increase is a hot-
            # path regression even without a timing ratio.
            for counter in ("rho_probes", "solver_pair_scores"):
                cur_count = cur.get("fast", {}).get(counter)
                base_count = base.get("fast", {}).get(counter)
                if not cur_count or not base_count:
                    continue
                if cur_count > base_count * max_slowdown:
                    failures.append(
                        f"{name}: {counter} grew {cur_count} vs baseline "
                        f"{base_count} (allowed x{max_slowdown:g})"
                    )
            continue
        if base is None:
            continue  # new profile: nothing to compare against yet
        base_speedup = base.get("speedup")
        if base_speedup is None:
            continue
        floor = base_speedup / max_slowdown
        if cur_speedup < floor:
            failures.append(
                f"{name}: auction solve regressed — speedup {cur_speedup:.2f}x "
                f"vs baseline {base_speedup:.2f}x (floor {floor:.2f}x)"
            )
    return failures


def load_bench(path: str) -> dict:
    """Read a BENCH_auction.json payload."""
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def write_bench(payload: Mapping, path: str) -> None:
    """Write a BENCH_auction.json payload (stable key order)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


#: Trajectory entries kept in BENCH_sim.json.  Old entries age out so
#: the committed baseline does not grow without bound.
SIM_TRAJECTORY_LIMIT = 50


def sim_trajectory_entry(payload: Mapping, at: Optional[str] = None) -> dict:
    """One timestamped summary row of a sim bench run.

    Only the machine-comparable essentials per profile: the min-of-N
    wall times, the incremental-over-cold speedup ratio, and the byte-
    identity verdict.  ``at`` overrides the timestamp (tests).
    """
    if at is None:
        at = datetime.now(timezone.utc).isoformat(timespec="seconds")
    profiles = {}
    for name, record in payload.get("sim", {}).items():
        entry = {
            "incremental_seconds": record["incremental"]["seconds"],
            "cold_seconds": record["cold"]["seconds"],
            "repeats": record["incremental"]["repeats"],
            "speedup": record["speedup"],
            "identical_results": record["identical_results"],
        }
        carves_per_move = (record["incremental"].get("solver") or {}).get(
            "rescore_carves_per_move"
        )
        if carves_per_move is not None:
            entry["rescore_carves_per_move"] = carves_per_move
        profiles[name] = entry
    return {"at": at, "profiles": profiles}


def write_sim_bench(payload: Mapping, path: str, at: Optional[str] = None) -> dict:
    """Write BENCH_sim.json, *appending* to its speedup trajectory.

    Unlike :func:`write_bench`, a prior payload at ``path`` is not
    discarded wholesale:

    * per-profile records merge — profiles absent from this run keep
      their committed entries, so ``--profiles sim-8x --out`` refreshes
      one profile without dropping the rest of the baseline;
    * the ``trajectory`` list is carried forward and this run's
      :func:`sim_trajectory_entry` (covering only the profiles actually
      run) is appended, capped at :data:`SIM_TRAJECTORY_LIMIT`, oldest
      first out.

    A missing or unparsable prior file starts fresh.  Returns the
    payload actually written.
    """
    trajectory: list = []
    prior_sim: dict = {}
    try:
        prior = load_bench(path)
        prior_trajectory = prior.get("trajectory", [])
        if isinstance(prior_trajectory, list):
            trajectory = list(prior_trajectory)
        if isinstance(prior.get("sim"), dict):
            prior_sim = dict(prior["sim"])
    except (OSError, ValueError):
        pass
    trajectory.append(sim_trajectory_entry(payload, at=at))
    merged = dict(payload)
    merged["sim"] = {**prior_sim, **payload.get("sim", {})}
    merged["trajectory"] = trajectory[-SIM_TRAJECTORY_LIMIT:]
    write_bench(merged, path)
    return merged
