"""Performance benchmarking: tracked microbenchmarks for the hot paths.

:mod:`repro.perf.bench` times the partial-allocation auction (lazy
solver vs. the full-rescan reference) and end-to-end simulation runs at
small/medium/large contention, producing the ``BENCH_auction.json``
payload the CI regression guard and ``repro bench`` consume.
"""

from repro.perf.bench import (
    AUCTION_PROFILES,
    E2E_PROFILES,
    AuctionBenchProfile,
    EndToEndProfile,
    build_auction_instance,
    check_regression,
    run_bench,
)

__all__ = [
    "AUCTION_PROFILES",
    "E2E_PROFILES",
    "AuctionBenchProfile",
    "EndToEndProfile",
    "build_auction_instance",
    "check_regression",
    "run_bench",
]
