"""Performance benchmarking: tracked microbenchmarks for the hot paths.

:mod:`repro.perf.bench` times the partial-allocation auction (lazy
solver vs. the full-rescan reference) and end-to-end simulation runs at
small/medium/large contention, producing the ``BENCH_auction.json``
payload the CI regression guard and ``repro bench`` consume, plus the
``repro bench sim`` macro-benchmark that replays whole traces with the
incremental valuation pipeline on and off, producing ``BENCH_sim.json``.
"""

from repro.perf.bench import (
    AUCTION_PROFILES,
    E2E_PROFILES,
    SIM_PROFILES,
    AuctionBenchProfile,
    EndToEndProfile,
    SimBenchProfile,
    build_auction_instance,
    check_regression,
    check_sim_regression,
    run_bench,
    run_sim_bench,
    run_sim_suite,
)

__all__ = [
    "AUCTION_PROFILES",
    "E2E_PROFILES",
    "SIM_PROFILES",
    "AuctionBenchProfile",
    "EndToEndProfile",
    "SimBenchProfile",
    "build_auction_instance",
    "check_regression",
    "check_sim_regression",
    "run_bench",
    "run_sim_bench",
    "run_sim_suite",
]
