"""Cluster simulator: replays a trace under an inter-app scheduler.

This is the reproduction's equivalent of the paper's event-based
simulator (Section 8.1).  The mechanics mirror the Themis runtime:

* every GPU grant carries a **lease**; expired leases put the GPU into
  the next auction pool but the incumbent keeps running until the GPU
  is actually reassigned, so a renewal to the same job is seamless,
* **scheduling rounds** fire whenever GPUs become available (arrivals
  onto a non-full cluster, job/app completions, lease expiries), and
  the installed :class:`InterAppScheduler` decides who gets the pool,
* allocation changes charge a **checkpoint/restore overhead** during
  which the job holds (and bills) its GPUs without progress — the
  35-60 s cost measured in Section 8.3.2, and the reason very short
  leases hurt efficiency (Figure 4c),
* per-app **timelines**, contention samples and utilisation integrals
  are recorded for the evaluation figures.

The scheduler interface is duck-typed: anything with ``assign(now,
pool) -> dict[app_id, list[Gpu]]`` plus optional arrival/finish hooks
works; see :mod:`repro.schedulers.base`.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, field, fields
from typing import Mapping, Optional, Sequence, Union

from repro.cluster.allocation import Allocation
from repro.cluster.topology import Cluster, Gpu
from repro.core.leases import LeaseManager
from repro.obs import Observability, ObsConfig
from repro.obs.metrics import MetricsRegistry, percentile_nearest_rank
from repro.obs.reservoir import ReservoirSeries
from repro.simulation.engine import Event, EventKind, SimulationEngine, SimulationError
from repro.workload.app import App, AppState, CompletionSemantics
from repro.workload.job import Job
from repro.workload.perf import DEFAULT_PERF_MODEL, PerfModel
from repro.workload.trace import Trace

#: Work below this threshold counts as finished (floating-point dust).
_WORK_EPSILON = 1e-6

#: Backward-compatible name: the bounded series grew into the
#: observability layer's generalised reservoir (merge support,
#: histogram backing) and lives in :mod:`repro.obs.reservoir` now.
DownsampledSeries = ReservoirSeries


@dataclass(frozen=True)
class SimulationConfig:
    """Runtime knobs shared by all schedulers under comparison."""

    lease_minutes: float = 20.0
    restart_overhead_minutes: float = 0.5
    semantics: CompletionSemantics = CompletionSemantics.ALL_JOBS
    max_minutes: Optional[float] = None
    record_timeline: bool = False
    #: Cap on retained ``contention_samples`` / ``timeline`` entries
    #: (``None`` keeps every sample — unbounded on long traces).
    downsample: Optional[int] = None
    #: Cross-round incremental fast paths: AGENT valuation-state reuse,
    #: the tracked unleased-GPU pool, and the held-jobs-only advance
    #: loop.  ``False`` rebuilds everything from scratch every round —
    #: the cold baseline that ``repro bench sim`` times and that the
    #: equivalence suite proves byte-identical.
    incremental: bool = True
    #: Speed-aware job migration (off by default): after each round,
    #: jobs whose whole gang could run strictly faster on currently-free
    #: GPUs — as judged by the run's performance model, so a throughput
    #: matrix makes the decision family-relative — are traded to the
    #: faster (possibly smaller) gang, repaying the restart overhead.
    migration: bool = False
    #: Minimum candidate-rate over current-rate ratio a migration must
    #: clear; > 1 so the overhead repayment cannot be gamed by noise.
    migration_min_gain: float = 1.25

    def __post_init__(self) -> None:
        if self.lease_minutes <= 0:
            raise ValueError(f"lease_minutes must be > 0, got {self.lease_minutes}")
        if self.restart_overhead_minutes < 0:
            raise ValueError("restart_overhead_minutes must be >= 0")
        if self.downsample is not None and self.downsample < 2:
            raise ValueError(f"downsample must be >= 2, got {self.downsample}")
        if self.migration_min_gain < 1.0:
            raise ValueError(
                f"migration_min_gain must be >= 1.0, got {self.migration_min_gain}"
            )

    def to_json(self) -> dict:
        """Plain-JSON dict (enums by value) for the result cache."""
        data = asdict(self)
        data["semantics"] = self.semantics.value
        return data

    @classmethod
    def from_json(cls, data: Mapping) -> "SimulationConfig":
        """Inverse of :meth:`to_json`, tolerant of schema growth.

        Unknown keys (written by a newer build) are ignored and missing
        new fields take their defaults, so old cache entries and result
        payloads deserialise instead of raising on every schema change.
        """
        known = {f.name for f in fields(cls)}
        kwargs = {key: value for key, value in data.items() if key in known}
        if "semantics" in kwargs:
            kwargs["semantics"] = CompletionSemantics(kwargs["semantics"])
        return cls(**kwargs)


@dataclass(frozen=True)
class AppStats:
    """Final per-app measurements extracted after a run."""

    app_id: str
    arrival: float
    finished_at: Optional[float]
    completion_time: Optional[float]
    ideal_time: float
    rho: float
    gpu_time: float
    attained_service: float
    mean_placement_score: float
    num_jobs: int
    total_work: float
    #: GPU-minutes split by GPU-generation name (heterogeneity reports).
    gpu_time_by_type: dict = field(default_factory=dict)
    #: Longest stretch of scheduling rounds the app sat with unmet
    #: demand and zero GPUs (the starvation metric's per-app maximum).
    starved_rounds_max: int = 0

    def to_json(self) -> dict:
        """Plain-JSON dict; all fields are scalars or plain dicts already."""
        return asdict(self)

    @classmethod
    def from_json(cls, data: Mapping) -> "AppStats":
        """Inverse of :meth:`to_json`, tolerant of schema growth.

        Unknown keys are ignored and missing new fields (e.g. payloads
        written before ``gpu_time_by_type`` existed) take their
        defaults, so schema growth does not invalidate old caches.
        """
        known = {f.name for f in fields(cls)}
        return cls(**{key: value for key, value in data.items() if key in known})


@dataclass
class SimulationResult:
    """Everything a run produced, ready for the metrics layer."""

    scheduler_name: str
    cluster_name: str
    cluster_gpus: int
    config: SimulationConfig
    apps: list[App]
    app_stats: list[AppStats]
    makespan: float
    completed: bool
    peak_contention: float
    contention_samples: list[tuple[float, float]]
    timeline: list[tuple[float, str, int]]
    num_rounds: int
    events_processed: int
    total_gpu_time: float
    #: Cluster composition and consumption per GPU-generation name;
    #: single-entry ("default") on homogeneous clusters.
    cluster_gpus_by_type: dict = field(default_factory=dict)
    gpu_time_by_type: dict = field(default_factory=dict)
    #: Gang swaps performed by the speed-aware migration policy
    #: (always 0 with ``SimulationConfig.migration`` off).
    num_migrations: int = 0
    #: Per-round ``(now, fragmentation)`` samples: free-GPU dispersion
    #: across machines (1 - Herfindahl index of per-machine free
    #: counts); machines are single-generation, so this doubles as the
    #: cross-generation dispersion.  Recorded for every scheduler.
    fragmentation_samples: list = field(default_factory=list)
    #: Per-round ``(now, p99_rounds_waiting)`` samples: nearest-rank
    #: p99 over active apps' rounds-since-last-allocation (apps with
    #: unmet demand and zero GPUs).  Recorded for every scheduler.
    starvation_samples: list = field(default_factory=list)
    #: Per-phase ``{name: {"seconds", "calls"}}`` wall breakdown; empty
    #: unless the run was profiled (``--profile`` / PhaseProfiler).
    profile: dict = field(default_factory=dict)
    #: Serialised ARBITER ``RoundStats`` instrumentation (solver moves,
    #: pair scores, replayed warm-start moves, valuation probes):
    #: ``{"rounds", "totals", "per_round"}``; empty for schedulers
    #: without an arbiter.  ``per_round`` is downsample-thinned.
    round_stats: dict = field(default_factory=dict)

    def stats_by_app(self) -> dict[str, AppStats]:
        """Index the per-app stats by app id."""
        return {stats.app_id: stats for stats in self.app_stats}

    def rhos(self, finished_only: bool = True) -> list[float]:
        """Finish-time fairness values across apps (Figure 5a/5b input)."""
        values = []
        for stats in self.app_stats:
            if finished_only and stats.finished_at is None:
                continue
            values.append(stats.rho)
        return values

    def completion_times(self) -> list[float]:
        """App completion times for finished apps (Figure 6 input)."""
        return [
            stats.completion_time
            for stats in self.app_stats
            if stats.completion_time is not None
        ]

    def placement_scores(self) -> list[float]:
        """Mean placement scores per app (Figure 7 input)."""
        return [
            stats.mean_placement_score
            for stats in self.app_stats
            if stats.mean_placement_score > 0.0
        ]

    def to_json(self) -> dict:
        """JSON-safe dict carrying everything the metrics layer reads.

        The live :class:`~repro.workload.app.App` objects are runtime
        state, not measurements — they are intentionally excluded, and
        :meth:`from_json` restores ``apps=[]``.  Every metric function
        (rhos, JCTs, placement scores, utilisation, timelines) works off
        ``app_stats`` and the scalar/series fields, all of which
        round-trip losslessly.
        """
        return {
            "scheduler_name": self.scheduler_name,
            "cluster_name": self.cluster_name,
            "cluster_gpus": self.cluster_gpus,
            "config": self.config.to_json(),
            "app_stats": [stats.to_json() for stats in self.app_stats],
            "makespan": self.makespan,
            "completed": self.completed,
            "peak_contention": self.peak_contention,
            "contention_samples": [list(pair) for pair in self.contention_samples],
            "timeline": [list(record) for record in self.timeline],
            "num_rounds": self.num_rounds,
            "events_processed": self.events_processed,
            "total_gpu_time": self.total_gpu_time,
            "cluster_gpus_by_type": dict(self.cluster_gpus_by_type),
            "gpu_time_by_type": dict(self.gpu_time_by_type),
            "num_migrations": self.num_migrations,
            "fragmentation_samples": [
                list(pair) for pair in self.fragmentation_samples
            ],
            "starvation_samples": [list(pair) for pair in self.starvation_samples],
            "profile": dict(self.profile),
            "round_stats": dict(self.round_stats),
        }

    @classmethod
    def from_json(cls, data: Mapping) -> "SimulationResult":
        """Rebuild a result from :meth:`to_json` output (``apps`` empty).

        Missing new keys default (old payloads stay loadable) and
        unknown keys are ignored, mirroring the dataclass round-trips.
        """
        return cls(
            scheduler_name=data["scheduler_name"],
            cluster_name=data["cluster_name"],
            cluster_gpus=data["cluster_gpus"],
            config=SimulationConfig.from_json(data["config"]),
            apps=[],
            app_stats=[AppStats.from_json(s) for s in data["app_stats"]],
            makespan=data["makespan"],
            completed=data["completed"],
            peak_contention=data["peak_contention"],
            contention_samples=[tuple(pair) for pair in data["contention_samples"]],
            timeline=[tuple(record) for record in data["timeline"]],
            num_rounds=data["num_rounds"],
            events_processed=data["events_processed"],
            total_gpu_time=data["total_gpu_time"],
            cluster_gpus_by_type=dict(data.get("cluster_gpus_by_type", {})),
            gpu_time_by_type=dict(data.get("gpu_time_by_type", {})),
            num_migrations=data.get("num_migrations", 0),
            fragmentation_samples=[
                tuple(pair) for pair in data.get("fragmentation_samples", [])
            ],
            starvation_samples=[
                tuple(pair) for pair in data.get("starvation_samples", [])
            ],
            profile=dict(data.get("profile", {})),
            round_stats=dict(data.get("round_stats", {})),
        )


class ClusterSimulator:
    """Drives one scheduler over one trace on one cluster."""

    def __init__(
        self,
        cluster: Cluster,
        workload: Union[Trace, Sequence[App]],
        scheduler,
        config: Optional[SimulationConfig] = None,
        perf_model: Optional[PerfModel] = None,
        obs: Union[Observability, ObsConfig, None] = None,
    ) -> None:
        self.cluster = cluster
        self.config = config or SimulationConfig()
        self.scheduler = scheduler
        if obs is None:
            obs = Observability.disabled()
        elif isinstance(obs, ObsConfig):
            obs = obs.build()
        #: Live observability bundle; schedulers read it at bind time
        #: to wire the tracer/profiler into the arbiter and auction.
        self.obs = obs
        self.tracer = obs.tracer
        self.profiler = obs.profiler
        if perf_model is None:
            # A trace that carries a measured throughput matrix brings
            # its own model; explicit arguments override it.
            perf_model = getattr(workload, "perf_model", None)
            if callable(perf_model):
                perf_model = perf_model()
        self.perf_model: PerfModel = (
            perf_model if perf_model is not None else DEFAULT_PERF_MODEL
        )
        #: Per-family (or shared scalar) fastest-N capacity views —
        #: what T_id and the final rho report divide by.
        self.capacity = self.perf_model.capacity_for(cluster)
        #: Per-family machine-speed lookup (``None`` under the scalar
        #: model); shared with the schedulers via
        #: :attr:`family_speed_index`.
        self._family_speed_fn = self.perf_model.machine_speed_index(cluster)
        self._machine_type = {m.machine_id: m.gpu_type for m in cluster.machines}
        if isinstance(workload, Trace):
            self.apps = workload.instantiate(self.config.semantics)
        else:
            self.apps = list(workload)
        if not self.apps:
            raise ValueError("workload contains no apps")
        for app in self.apps:
            for job in app.jobs:
                job.perf_model = self.perf_model
        self.num_migrations = 0
        self._apps_by_id = {app.app_id: app for app in self.apps}
        self.engine = SimulationEngine()
        self.leases = LeaseManager()
        self.active_apps: dict[str, App] = {}
        #: Jobs of arrived apps still able to consume GPUs; kept so a
        #: round advances O(active jobs) instead of rescanning every
        #: app x job pair.  Inactive jobs are dropped lazily.
        self._active_jobs: dict[str, Job] = {}
        #: Jobs currently holding GPUs — the only jobs whose state can
        #: drift between events, so the incremental advance loop visits
        #: just these.  (A zero-GPU job integrates to a no-op: progress,
        #: GPU-time and overhead consumption are all linear in held
        #: time, so deferring its ``advance_to`` is exact.)
        self._held_jobs: dict[str, Job] = {}
        self._job_events: dict[str, Event] = {}
        self._job_owner: dict[str, App] = {}
        self._auction_pending = False
        self._last_round: tuple[float, frozenset[int]] | None = None
        self._down_gpu_ids: set[int] = set()
        #: Expiry timestamps with a pending LEASE_EXPIRY event; K leases
        #: expiring at one instant schedule one event, not K.
        self._expiry_times_scheduled: set[float] = set()
        self.num_rounds = 0
        self.peak_contention = 0.0
        cap = self.config.downsample
        self.contention_samples = (
            DownsampledSeries(cap) if cap else []
        )  # type: ignore[assignment]
        self.timeline = DownsampledSeries(cap) if cap else []  # type: ignore[assignment]
        #: Streaming metrics registry; owns the fragmentation and
        #: starvation per-round series (same downsample cap contract).
        self.metrics = MetricsRegistry(downsample=cap)
        self._frag_series = self.metrics.series("fragmentation")
        self._starv_series = self.metrics.series("starvation_p99")
        #: Rounds since each active app last held a GPU while wanting
        #: one; pruned on app completion, so O(active apps) memory.
        self._rounds_since_alloc: dict[str, int] = {}
        self._starved_rounds_max: dict[str, int] = {}
        for app in self.apps:
            for job in app.jobs:
                self._job_owner[job.job_id] = app
        if self.config.incremental:
            self.leases.track(self.cluster.gpus)
        else:
            # Cold baseline: every aggregate rescans the job list, every
            # round rebuilds every snapshot — the pre-incremental
            # behaviour `repro bench sim` compares against.
            for app in self.apps:
                app.set_cache_enabled(False)
        bind = getattr(scheduler, "bind", None)
        if callable(bind):
            bind(self)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def family_speed_index(self):
        """Per-family machine-speed lookup, or ``None`` (scalar model)."""
        return self._family_speed_fn

    def run(self) -> SimulationResult:
        """Execute the whole trace and collect results."""
        if self.tracer.enabled:
            self.tracer.set_header(
                scheduler=getattr(
                    self.scheduler, "name", type(self.scheduler).__name__
                ),
                cluster=self.cluster.name,
                gpus=self.cluster.num_gpus,
                apps=len(self.apps),
            )
        for app in self.apps:
            self.engine.schedule(
                app.arrival_time,
                self._make_arrival_callback(app),
                kind=EventKind.APP_ARRIVAL,
                label=f"arrive:{app.app_id}",
            )
        self.engine.run(until=self.config.max_minutes)
        return self._collect()

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def _make_arrival_callback(self, app: App):
        def _arrive(engine: SimulationEngine, event: Event) -> None:
            app.state = AppState.RUNNING
            self.active_apps[app.app_id] = app
            for job in app.jobs:
                job.last_update = engine.now
                if job.is_active:
                    self._active_jobs[job.job_id] = job
            hook = getattr(self.scheduler, "on_app_arrival", None)
            if callable(hook):
                hook(engine.now, app)
            self._request_round()

        return _arrive

    def _request_round(self) -> None:
        """Schedule a scheduling round at the current instant (deduped)."""
        if self._auction_pending:
            return
        self._auction_pending = True
        self.engine.schedule(
            self.engine.now, self._round_callback, kind=EventKind.AUCTION, label="round"
        )

    def _round_callback(self, engine: SimulationEngine, event: Event) -> None:
        self._auction_pending = False
        self._run_round(engine.now)

    def _lease_expiry_callback(self, engine: SimulationEngine, event: Event) -> None:
        self._expiry_times_scheduled.discard(event.time)
        self._request_round()

    def _make_job_finish_callback(self, job: Job):
        def _finish(engine: SimulationEngine, event: Event) -> None:
            self._job_events.pop(job.job_id, None)
            if not job.is_active:
                return
            job.advance_to(engine.now)
            if job.remaining_work > _WORK_EPSILON:
                # Stale completion estimate (allocation changed under us);
                # reschedule from fresh state.
                self._reschedule_job_finish(job)
                return
            self._complete_job(engine.now, job)

        return _finish

    # ------------------------------------------------------------------
    # Scheduling rounds
    # ------------------------------------------------------------------
    def _run_round(self, now: float) -> None:
        profiler = self.profiler
        with profiler.phase("advance"):
            self._advance_active_jobs(now)
        self._process_tuners(now)
        with profiler.phase("metrics"):
            self._sample_contention(now)
        pool = self.leases.pool_for_auction(now, self.cluster.gpus)
        pool = [gpu for gpu in pool if gpu.gpu_id not in self._down_gpu_ids]
        for gpu in pool:
            self._release_orphaned_lease(gpu)
        if not pool:
            return
        round_key = (now, frozenset(gpu.gpu_id for gpu in pool))
        if self._last_round == round_key:
            return  # identical round at the same instant; avoid livelock
        self._last_round = round_key
        self.num_rounds += 1
        tracer = self.tracer
        if tracer.enabled:
            tracer.round = self.num_rounds
            tracer.emit(
                "round_start",
                now,
                round=self.num_rounds,
                pool_gpus=len(pool),
                active_apps=len(self.active_apps),
            )
            lease_of = self.leases.lease_of
            for gpu in pool:
                lease = lease_of(gpu)
                if lease is not None and lease.is_expired(now):
                    tracer.emit(
                        "lease_expire", now, gpu=gpu.gpu_id, app=lease.app_id
                    )
        with profiler.phase("assign"):
            assignment = self.scheduler.assign(now, pool)
        with profiler.phase("placement"):
            self._apply_assignment(now, pool, assignment)
        if self.config.migration:
            with profiler.phase("migration"):
                self._migration_pass(now)
        with profiler.phase("metrics"):
            self._record_round_metrics(now)

    def _release_orphaned_lease(self, gpu: Gpu) -> None:
        """Free a pooled GPU whose lease holder vanished mid-round.

        A finished app's leases should already have been released; this
        is a belt-and-braces sweep (every pooled GPU stays reclaimable
        either way, so there is nothing to filter on).
        """
        lease = self.leases.lease_of(gpu)
        if lease is not None and lease.app_id not in self.active_apps:
            self.leases.release(gpu)
            self._emit_lease_revokes(
                self.engine.now, lease.app_id, (gpu,), "orphaned"
            )

    def _advance_active_jobs(self, now: float) -> None:
        if self.config.incremental:
            # Only jobs holding GPUs accrue anything between events;
            # zero-GPU jobs are advanced lazily right before their next
            # state change, which integrates to the identical result.
            stale: list[str] = []
            for job_id, job in self._held_jobs.items():
                if job.is_active:
                    job.advance_to(now)
                else:
                    stale.append(job_id)
            for job_id in stale:
                del self._held_jobs[job_id]
            return
        stale = []
        for job_id, job in self._active_jobs.items():
            if job.is_active:
                job.advance_to(now)
            else:
                stale.append(job_id)
        for job_id in stale:
            del self._active_jobs[job_id]

    def _track_held_job(self, job: Job) -> None:
        """Keep :attr:`_held_jobs` in sync after an allocation change."""
        if job.allocation.size > 0 and job.is_active:
            self._held_jobs[job.job_id] = job
        else:
            self._held_jobs.pop(job.job_id, None)

    def _process_tuners(self, now: float) -> None:
        """Let intra-app schedulers kill hyper-parameter losers."""
        for app in list(self.active_apps.values()):
            tuner = app.tuner
            if tuner is None:
                continue
            victims = tuner.step(now)
            # Tuners rewrite job state (parallelism limits, kills)
            # outside the Job mutators — the dirty-tracking contract
            # makes the simulator invalidate on their behalf.
            app.invalidate()
            for job in victims:
                if not job.is_active:
                    continue
                released = list(job.allocation.gpus)
                job.kill(now)
                self._held_jobs.pop(job.job_id, None)
                self.leases.release_all(released)
                self._emit_job_state(now, app, job, "killed")
                self._emit_lease_revokes(now, app.app_id, released, "tuner_kill")
                event = self._job_events.pop(job.job_id, None)
                if event is not None:
                    self.engine.cancel(event)
            if app.is_complete():
                self._complete_app(now, app)

    def _sample_contention(self, now: float) -> None:
        demand = 0
        for app in self.active_apps.values():
            demand += app.demand()
        # Honest contention during failure injection: demand is served
        # by the GPUs actually in service, not the nameplate cluster.
        in_service = self.cluster.num_gpus - len(self._down_gpu_ids)
        if in_service > 0:
            ratio = demand / in_service
        else:
            ratio = math.inf if demand > 0 else 0.0
        self.peak_contention = max(self.peak_contention, ratio)
        self.contention_samples.append((now, ratio))

    def _record_round_metrics(self, now: float) -> None:
        """Per-round fragmentation and starvation samples (every scheduler).

        Fragmentation: dispersion of free in-service GPUs across
        machines, ``1 - sum((free_m / free_total)^2)`` summed in
        machine-id order so the float result is byte-stable across the
        tracked and scanning lease modes.  Starvation: each active app's
        rounds-since-last-allocation (counted while it has unmet demand
        and zero GPUs); the series records the nearest-rank p99 across
        currently-waiting apps.  Both are O(free GPUs + active jobs).
        """
        down = self._down_gpu_ids
        free_total = 0
        free_by_machine: dict[int, int] = {}
        for gpu in self.leases.free_gpus(self.cluster.gpus):
            if gpu.gpu_id in down:
                continue
            free_total += 1
            free_by_machine[gpu.machine_id] = (
                free_by_machine.get(gpu.machine_id, 0) + 1
            )
        if free_total > 0:
            acc = 0.0
            for machine_id in sorted(free_by_machine):
                share = free_by_machine[machine_id] / free_total
                acc += share * share
            frag = 1.0 - acc
        else:
            frag = 0.0
        self._frag_series.append((now, frag))

        waiting: list[int] = []
        since = self._rounds_since_alloc
        worst = self._starved_rounds_max
        for app_id, app in self.active_apps.items():
            if app.allocation().size > 0 or app.unmet_demand() <= 0:
                since[app_id] = 0
                continue
            rounds = since.get(app_id, 0) + 1
            since[app_id] = rounds
            if rounds > worst.get(app_id, 0):
                worst[app_id] = rounds
            waiting.append(rounds)
        self._starv_series.append(
            (now, float(percentile_nearest_rank(waiting, 0.99)))
        )

    def _apply_assignment(
        self,
        now: float,
        pool: Sequence[Gpu],
        assignment: dict[str, list[Gpu]],
    ) -> None:
        # One pass over the pool resolves each GPU's incumbent lease;
        # everything below works off this list instead of re-querying
        # the lease table per check.
        incumbent: list[Optional[str]] = []
        pool_ids: set[int] = set()
        affected: set[str] = set()
        lease_of = self.leases.lease_of
        for gpu in pool:
            pool_ids.add(gpu.gpu_id)
            lease = lease_of(gpu)
            holder = lease.app_id if lease is not None else None
            incumbent.append(holder)
            if holder is not None:
                affected.add(holder)

        new_owner: dict[int, str] = {}
        for app_id, gpus in assignment.items():
            if app_id not in self.active_apps:
                raise SimulationError(f"scheduler assigned GPUs to unknown app {app_id!r}")
            for gpu in gpus:
                if gpu.gpu_id not in pool_ids:
                    raise SimulationError(
                        f"scheduler assigned GPU {gpu.gpu_id} outside the pool"
                    )
                if gpu.gpu_id in new_owner:
                    raise SimulationError(
                        f"scheduler assigned GPU {gpu.gpu_id} to two apps"
                    )
                new_owner[gpu.gpu_id] = app_id
                affected.add(app_id)

        tracer = self.tracer
        if tracer.enabled:
            for app_id in sorted(assignment):
                gpus = assignment[app_id]
                if gpus:
                    tracer.emit(
                        "auction_win",
                        now,
                        round=self.num_rounds,
                        app=app_id,
                        gpus=len(gpus),
                        gpu_ids=sorted(gpu.gpu_id for gpu in gpus),
                    )

        # Unassigned pooled GPUs stay with their incumbent (lease renewal)
        # when the incumbent is still active — work conservation.
        active_apps = self.active_apps
        for gpu, holder in zip(pool, incumbent):
            if gpu.gpu_id not in new_owner and holder is not None and holder in active_apps:
                new_owner[gpu.gpu_id] = holder

        # Rebuild each affected app's allocation.  One pass groups the
        # pool's grants per app (in pool order, matching what a per-app
        # pool scan would collect) instead of rescanning the pool for
        # every affected app.
        granted_by_app: dict[str, list[Gpu]] = {}
        for gpu in pool:
            owner = new_owner.get(gpu.gpu_id)
            if owner is not None:
                granted_by_app.setdefault(owner, []).append(gpu)
        for app_id in sorted(affected):
            app = self.active_apps.get(app_id)
            if app is None:
                continue
            retained = [
                gpu for gpu in app.allocation().gpus if gpu.gpu_id not in pool_ids
            ]
            granted = granted_by_app.get(app_id, [])
            self._install_app_allocation(now, app, Allocation(retained + granted))

    def _install_app_allocation(self, now: float, app: App, granted: Allocation) -> None:
        """Distribute an app-level grant to jobs and refresh leases/events."""
        if self.config.incremental and granted == app.allocation():
            # Pure lease renewal: the grant is exactly what the app's
            # jobs already hold.  When every job is within its cap the
            # distributor would keep all bindings and have nothing left
            # to hand out, so skip it and just renew the leases.  (A job
            # over its cap — a tuner lowered the limit mid-lease — falls
            # through to the full redistribution.)
            jobs = app.active_jobs()
            if all(job.allocation.size <= job.max_parallelism for job in jobs):
                for job in jobs:
                    if job.allocation:
                        self._refresh_leases(now, app, job, job.allocation)
                if self.config.record_timeline:
                    self.timeline.append((now, app.app_id, app.allocation().size))
                return
        job_allocs = app.distribute(granted)
        used_ids: set[int] = set()
        for job in app.active_jobs():
            target = job_allocs.get(job.job_id, Allocation())
            used_ids.update(target.gpu_ids)
            if target == job.allocation:
                self._refresh_leases(now, app, job, target)
                continue
            overhead = (
                self.config.restart_overhead_minutes if target.size > 0 else 0.0
            )
            job.advance_to(now)
            job.set_allocation(now, target, overhead=overhead)
            self._track_held_job(job)
            self._emit_job_state(now, app, job, "running")
            self._refresh_leases(now, app, job, target)
            self._reschedule_job_finish(job)
        # GPUs the app cannot use (beyond demand) go back to the free pool.
        for gpu in granted:
            if gpu.gpu_id not in used_ids:
                self.leases.release(gpu)
        if self.config.record_timeline:
            self.timeline.append((now, app.app_id, app.allocation().size))

    def _emit_job_state(self, now: float, app: App, job: Job, state: str) -> None:
        """Trace one job allocation/state change (no-op untraced).

        Emitted at every discrete point a job's held-GPU count changes
        (``set_allocation`` / ``finish`` / ``kill`` sites), so a trace
        consumer can integrate per-job GPU time exactly — allocations
        are piecewise-constant between these events.
        """
        if self.tracer.enabled:
            self.tracer.emit(
                "job_state_change",
                now,
                app=app.app_id,
                job=job.job_id,
                state=state,
                gpus=job.allocation.size,
            )

    def _emit_lease_revokes(
        self, now: float, app_id: str, gpus: Sequence[Gpu], reason: str
    ) -> None:
        """Trace lease revocations for released GPUs (no-op untraced)."""
        if self.tracer.enabled:
            for gpu in gpus:
                self.tracer.emit(
                    "lease_revoke", now, gpu=gpu.gpu_id, app=app_id, reason=reason
                )

    def _refresh_leases(self, now: float, app: App, job: Job, target: Allocation) -> None:
        """Grant / renew leases so every held GPU has an unexpired lease."""
        for gpu in target:
            lease = self.leases.lease_of(gpu)
            if lease is None or lease.app_id != app.app_id or lease.is_expired(now):
                new_lease = self.leases.grant(
                    gpu, app.app_id, job.job_id, now, self.config.lease_minutes
                )
                if self.tracer.enabled:
                    self.tracer.emit(
                        "lease_grant",
                        now,
                        app=app.app_id,
                        job=job.job_id,
                        gpu=gpu.gpu_id,
                        expiry=new_lease.expiry,
                    )
                # One expiry event per distinct timestamp: a round that
                # grants K leases (same ``now``, same duration) used to
                # schedule K identical wake-ups.
                if new_lease.expiry not in self._expiry_times_scheduled:
                    self._expiry_times_scheduled.add(new_lease.expiry)
                    self.engine.schedule(
                        new_lease.expiry,
                        self._lease_expiry_callback,
                        kind=EventKind.LEASE_EXPIRY,
                        label=f"lease:{new_lease.expiry:.3f}",
                    )
            else:
                lease.job_id = job.job_id

    def _reschedule_job_finish(self, job: Job) -> None:
        old = self._job_events.pop(job.job_id, None)
        if old is not None:
            self.engine.cancel(old)
        if not job.is_active:
            return
        eta = job.eta(self.engine.now)
        if math.isinf(eta):
            return
        event = self.engine.schedule(
            eta,
            self._make_job_finish_callback(job),
            kind=EventKind.JOB_FINISH,
            label=f"finish:{job.job_id}",
        )
        self._job_events[job.job_id] = event

    # ------------------------------------------------------------------
    # Failure injection (Section 6 extension)
    # ------------------------------------------------------------------
    def mark_gpus_down(self, gpus: Sequence[Gpu]) -> None:
        """Take GPUs out of service, revoking leases and job holdings.

        Affected jobs stall (their allocation shrinks) and repay the
        checkpoint/restart overhead when rescheduled; a scheduling
        round fires immediately so the freed demand can be served.
        """
        now = self.engine.now
        down_ids = {gpu.gpu_id for gpu in gpus}
        self._down_gpu_ids.update(down_ids)
        affected_apps: set[str] = set()
        for gpu in gpus:
            lease = self.leases.lease_of(gpu)
            if lease is not None:
                affected_apps.add(lease.app_id)
                self.leases.revoke(gpu, reason="failure")
                self._emit_lease_revokes(now, lease.app_id, (gpu,), "failure")
        for app_id in sorted(affected_apps):
            app = self.active_apps.get(app_id)
            if app is None:
                continue
            for job in app.active_jobs():
                if not any(g.gpu_id in down_ids for g in job.allocation):
                    continue
                job.advance_to(now)
                survivors = Allocation(
                    g for g in job.allocation if g.gpu_id not in down_ids
                )
                job.set_allocation(now, survivors, overhead=0.0)
                self._track_held_job(job)
                self._emit_job_state(now, app, job, "running")
                self._reschedule_job_finish(job)
            if self.config.record_timeline:
                self.timeline.append((now, app.app_id, app.allocation().size))
        self._request_round()

    def mark_gpus_up(self, gpus: Sequence[Gpu]) -> None:
        """Return repaired GPUs to service and trigger a round."""
        self._down_gpu_ids.difference_update(gpu.gpu_id for gpu in gpus)
        self._request_round()

    @property
    def down_gpu_count(self) -> int:
        """Number of GPUs currently out of service."""
        return len(self._down_gpu_ids)

    # ------------------------------------------------------------------
    # Speed-aware migration (ROADMAP heterogeneity follow-on)
    # ------------------------------------------------------------------
    def _free_gpus(self) -> dict[int, Gpu]:
        """In-service GPUs carrying no lease at all, keyed by gpu_id.

        Expired-but-leased GPUs are *not* free: their incumbents keep
        running until a round reassigns them, and migration must not
        yank a GPU another job is still using.
        """
        down = self._down_gpu_ids
        return {
            gpu.gpu_id: gpu
            for gpu in self.leases.unleased_gpus(self.cluster.gpus)
            if gpu.gpu_id not in down
        }

    def _family_machine_speed(self, family: str, machine_id: int) -> float:
        """One machine's speedup for one model family (scalar fallback)."""
        if self._family_speed_fn is not None:
            return self._family_speed_fn(family).get(machine_id, 1.0)
        gpu_type = self._machine_type.get(machine_id)
        return gpu_type.speed if gpu_type is not None else 1.0

    def _best_free_gang(self, job: Job, free: Mapping[int, Gpu]):
        """Best whole-gang replacement drawable from the free pool.

        Machines are drained fastest-for-this-family first (count x
        family speedup, lower machine id on ties); after each machine's
        GPUs join the candidate, the prefix is scored with the job's own
        rate kernel — so a slow or cross-rack machine that would *drag*
        the gang is naturally excluded by taking the best prefix.
        Returns ``(gpus, rate)``; ``(None, 0.0)`` when the pool is empty.
        """
        if not free:
            return None, 0.0
        by_machine: dict[int, list[Gpu]] = {}
        for gpu in free.values():
            by_machine.setdefault(gpu.machine_id, []).append(gpu)
        family = job.family
        order = sorted(
            by_machine,
            key=lambda m: (
                -len(by_machine[m]) * self._family_machine_speed(family, m),
                m,
            ),
        )
        cap = job.max_parallelism
        taken: list[Gpu] = []
        best_gpus: Optional[list[Gpu]] = None
        best_rate = 0.0
        for machine_id in order:
            for gpu in sorted(by_machine[machine_id], key=lambda g: g.gpu_id):
                if len(taken) >= cap:
                    break
                taken.append(gpu)
            rate = job.rate_of(taken, cap=cap)
            if rate > best_rate:
                best_rate = rate
                best_gpus = list(taken)
            if len(taken) >= cap:
                break
        return best_gpus, best_rate

    def _migration_pass(self, now: float) -> None:
        """Trade slow gangs for faster free ones (post-assignment sweep).

        For each GPU-holding job, in job-id order: if the free pool
        offers a whole replacement gang whose rate exceeds the current
        one by at least ``migration_min_gain`` *and* whose projected
        finish (restart overhead included) beats staying put — a nearly
        finished job never trades minutes of checkpoint stall for a
        faster gang it barely uses — swap the job onto it,
        releasing the old gang back to the free pool (where a later job
        in the same sweep may claim it), granting fresh leases on the
        new one, and repaying the checkpoint/restore overhead.  The
        perf model prices both sides, so under a throughput matrix a
        job trades *toward its own family's* fast generation — possibly
        onto a smaller gang, when fewer fast GPUs out-run more slow
        ones.
        """
        free = self._free_gpus()
        if not free:
            return
        overhead = self.config.restart_overhead_minutes
        min_gain = self.config.migration_min_gain
        migrated = False
        for job_id in sorted(self._held_jobs):
            job = self._held_jobs.get(job_id)
            if job is None or not job.is_active or job.allocation.size == 0:
                continue
            current_rate = job.rate()
            if current_rate <= 0.0:
                continue
            candidate, candidate_rate = self._best_free_gang(job, free)
            if candidate is None or candidate_rate < current_rate * min_gain:
                continue
            # The rate gain must also *repay the overhead*: a nearly
            # finished job gains nothing from a faster gang if the
            # checkpoint/restore stall exceeds the minutes saved.
            remaining = job.remaining_work
            time_now = job.overhead_remaining + remaining / current_rate
            time_after = overhead + remaining / candidate_rate
            if time_after >= time_now:
                continue
            app = self._job_owner[job.job_id]
            released = list(job.allocation.gpus)
            job.advance_to(now)
            target = Allocation(candidate)
            job.set_allocation(now, target, overhead=overhead)
            self._track_held_job(job)
            self.leases.release_all(released)
            if self.tracer.enabled:
                self.tracer.emit(
                    "migration",
                    now,
                    app=app.app_id,
                    job=job.job_id,
                    from_gpus=sorted(g.gpu_id for g in released),
                    to_gpus=sorted(g.gpu_id for g in candidate),
                    gain=candidate_rate / current_rate,
                )
                self._emit_lease_revokes(now, app.app_id, released, "migration")
                self._emit_job_state(now, app, job, "running")
            self._refresh_leases(now, app, job, target)
            self._reschedule_job_finish(job)
            for gpu in candidate:
                del free[gpu.gpu_id]
            for gpu in released:
                free[gpu.gpu_id] = gpu
            self.num_migrations += 1
            migrated = True
            if self.config.record_timeline:
                self.timeline.append((now, app.app_id, app.allocation().size))
        if migrated:
            # Freed slow gangs are back in the pool; let a follow-up
            # round at this instant offer them to whoever wants them.
            self._request_round()

    # ------------------------------------------------------------------
    # Completions
    # ------------------------------------------------------------------
    def _complete_job(self, now: float, job: Job) -> None:
        released = list(job.allocation.gpus)
        job.finish(now)
        self._held_jobs.pop(job.job_id, None)
        self.leases.release_all(released)
        app = self._job_owner[job.job_id]
        self._emit_job_state(now, app, job, "finished")
        self._emit_lease_revokes(now, app.app_id, released, "job_finished")
        if app.is_complete():
            self._complete_app(now, app)
        self._request_round()

    def _complete_app(self, now: float, app: App) -> None:
        # FIRST_WINNER semantics: the winner ends the app; kill the rest.
        for job in app.active_jobs():
            job.advance_to(now)
            released = list(job.allocation.gpus)
            job.kill(now)
            self._held_jobs.pop(job.job_id, None)
            self.leases.release_all(released)
            self._emit_job_state(now, app, job, "killed")
            self._emit_lease_revokes(now, app.app_id, released, "app_finished")
            event = self._job_events.pop(job.job_id, None)
            if event is not None:
                self.engine.cancel(event)
        app.state = AppState.FINISHED
        app.finished_at = now
        self.active_apps.pop(app.app_id, None)
        self._rounds_since_alloc.pop(app.app_id, None)
        if self.config.record_timeline:
            self.timeline.append((now, app.app_id, 0))
        hook = getattr(self.scheduler, "on_app_finish", None)
        if callable(hook):
            hook(now, app)

    # ------------------------------------------------------------------
    # Result assembly
    # ------------------------------------------------------------------
    def _collect(self) -> SimulationResult:
        now = self.engine.now
        capacity = self.capacity
        stats: list[AppStats] = []
        gpu_time_by_type: dict[str, float] = {}
        for app in self.apps:
            ideal = app.ideal_running_time(capacity)
            finished = app.finished_at
            completion = None if finished is None else finished - app.arrival_time
            rho = app.finish_time_fairness(now, capacity)
            per_type = app.gpu_time_by_type()
            for type_name, minutes in per_type.items():
                gpu_time_by_type[type_name] = (
                    gpu_time_by_type.get(type_name, 0.0) + minutes
                )
            stats.append(
                AppStats(
                    app_id=app.app_id,
                    arrival=app.arrival_time,
                    finished_at=finished,
                    completion_time=completion,
                    ideal_time=ideal,
                    rho=rho,
                    gpu_time=app.gpu_time(),
                    attained_service=app.attained_service(),
                    mean_placement_score=app.mean_placement_score(),
                    num_jobs=app.num_jobs,
                    total_work=app.total_work(),
                    gpu_time_by_type=per_type,
                    starved_rounds_max=self._starved_rounds_max.get(app.app_id, 0),
                )
            )
        completed = all(app.state is AppState.FINISHED for app in self.apps)
        return SimulationResult(
            scheduler_name=getattr(self.scheduler, "name", type(self.scheduler).__name__),
            cluster_name=self.cluster.name,
            cluster_gpus=self.cluster.num_gpus,
            config=self.config,
            apps=self.apps,
            app_stats=stats,
            makespan=now,
            completed=completed,
            peak_contention=self.peak_contention,
            contention_samples=list(self.contention_samples),
            timeline=list(self.timeline),
            num_rounds=self.num_rounds,
            events_processed=self.engine.events_processed,
            total_gpu_time=sum(s.gpu_time for s in stats),
            cluster_gpus_by_type=self.cluster.gpus_by_type(),
            gpu_time_by_type=dict(sorted(gpu_time_by_type.items())),
            num_migrations=self.num_migrations,
            fragmentation_samples=list(self._frag_series),
            starvation_samples=list(self._starv_series),
            profile=self.profiler.snapshot() if self.profiler.enabled else {},
            round_stats=self._round_stats_payload(),
        )

    def _round_stats_payload(self) -> dict:
        """Serialise the arbiter's per-round solver instrumentation.

        Schedulers without an arbiter (every baseline except themis)
        yield ``{}``.  ``per_round`` rows go through the same reservoir
        policy as the other series so a week-long trace cannot bloat
        the result JSON.
        """
        arbiter = getattr(self.scheduler, "arbiter", None)
        history = getattr(arbiter, "history", None)
        if not history:
            return {}
        totals = {
            "solver_moves": 0,
            "solver_pair_scores": 0,
            "solver_replayed_moves": 0,
            "valuation_probes": 0,
            "heap_warm_hits": 0,
            "heap_warm_misses": 0,
            "rescore_carves": 0,
            "rescore_skipped": 0,
            "rescore_batched": 0,
        }
        for rs in history:
            for key in totals:
                totals[key] += getattr(rs, key, 0)
        rows = [asdict(rs) for rs in history]
        cap = self.config.downsample
        if cap is not None and len(rows) > cap:
            thinned = ReservoirSeries(cap)
            thinned.extend(rows)
            rows = list(thinned)
        return {"rounds": len(history), "totals": totals, "per_round": rows}
