"""Named, reproducible random streams.

Every stochastic component of an experiment (arrival process, job sizes,
tie-breaking inside the auction, bid-valuation noise, ...) draws from its
own named stream.  Streams are derived from a single root seed with a
stable hash, so:

* two experiments with the same seed are bit-identical,
* adding draws to one component never perturbs another component's
  sequence (which would silently change every downstream number), and
* schedulers compared against each other see the *same* workload.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``root_seed`` and a stream ``name``.

    Uses SHA-256 rather than Python's ``hash`` so the derivation is stable
    across processes and interpreter versions.
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class RandomStreams:
    """A lazily populated registry of named :class:`numpy.random.Generator`.

    >>> streams = RandomStreams(seed=7)
    >>> a = streams.get("arrivals").random()
    >>> b = RandomStreams(seed=7).get("arrivals").random()
    >>> a == b
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed this registry was created with."""
        return self._seed

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        if name not in self._streams:
            self._streams[name] = np.random.default_rng(derive_seed(self._seed, name))
        return self._streams[name]

    def spawn(self, name: str) -> "RandomStreams":
        """Create an independent child registry (e.g. one per app)."""
        return RandomStreams(derive_seed(self._seed, f"spawn:{name}"))

    def reset(self) -> None:
        """Drop all streams; subsequent draws restart from the seed."""
        self._streams.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomStreams(seed={self._seed}, streams={sorted(self._streams)})"
