"""Machine-failure injection (Section 6's declared future work).

"THEMIS may pack apps into GPUs that share a failure domain ... a
machine failure would mean the job loses all its resources, stalls in
its progress, and has to be rescheduled immediately ... We leave a
systematic study of the effect of failures on scheduling for future
work."

This module is that extension: a :class:`MachineFailure` takes a
machine down at a given time and (optionally) repairs it later.  On
failure every lease on the machine is revoked, the affected jobs lose
those GPUs (paying the checkpoint/restart penalty when rescheduled),
and a scheduling round fires immediately — after which the finish-time
fairness dynamics take over: the stalled app's rho deteriorates, so it
wins GPUs back in upcoming auctions, possibly displacing other apps
exactly as Section 6 anticipates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simulation.simulator import ClusterSimulator


@dataclass(frozen=True)
class MachineFailure:
    """One machine outage: down at ``at``, repaired after ``duration``.

    ``duration=math.inf`` models a permanent loss.
    """

    machine_id: int
    at: float
    duration: float = math.inf

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"failure time must be >= 0, got {self.at}")
        if self.duration <= 0:
            raise ValueError(f"repair duration must be > 0, got {self.duration}")

    @property
    def repair_at(self) -> float:
        """Absolute repair time (``inf`` for permanent failures)."""
        return self.at + self.duration


class FailureInjector:
    """Schedules failures/repairs onto a simulator and tracks outages."""

    def __init__(self, failures: Sequence[MachineFailure]) -> None:
        self.failures = tuple(sorted(failures, key=lambda f: (f.at, f.machine_id)))
        self.down_machines: set[int] = set()
        self.events_applied = 0

    def install(self, sim: "ClusterSimulator") -> None:
        """Register all failure and repair events with the simulator."""
        for failure in self.failures:
            if failure.machine_id not in {
                m.machine_id for m in sim.cluster.machines
            }:
                raise ValueError(
                    f"failure names unknown machine {failure.machine_id}"
                )
            sim.engine.schedule(
                failure.at,
                self._make_failure_callback(sim, failure),
                label=f"fail:m{failure.machine_id}",
            )
            if not math.isinf(failure.repair_at):
                sim.engine.schedule(
                    failure.repair_at,
                    self._make_repair_callback(sim, failure),
                    label=f"repair:m{failure.machine_id}",
                )

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def _make_failure_callback(self, sim: "ClusterSimulator", failure: MachineFailure):
        def _fail(engine, event) -> None:
            self.events_applied += 1
            self.down_machines.add(failure.machine_id)
            gpus = sim.cluster.gpus_on_machine(failure.machine_id)
            sim.mark_gpus_down(gpus)

        return _fail

    def _make_repair_callback(self, sim: "ClusterSimulator", failure: MachineFailure):
        def _repair(engine, event) -> None:
            self.events_applied += 1
            self.down_machines.discard(failure.machine_id)
            gpus = sim.cluster.gpus_on_machine(failure.machine_id)
            sim.mark_gpus_up(gpus)

        return _repair
