"""Machine-failure injection (Section 6's declared future work).

"THEMIS may pack apps into GPUs that share a failure domain ... a
machine failure would mean the job loses all its resources, stalls in
its progress, and has to be rescheduled immediately ... We leave a
systematic study of the effect of failures on scheduling for future
work."

This module is that extension: a :class:`MachineFailure` takes a
machine down at a given time and (optionally) repairs it later.  On
failure every lease on the machine is revoked, the affected jobs lose
those GPUs (paying the checkpoint/restart penalty when rescheduled),
and a scheduling round fires immediately — after which the finish-time
fairness dynamics take over: the stalled app's rho deteriorates, so it
wins GPUs back in upcoming auctions, possibly displacing other apps
exactly as Section 6 anticipates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.simulation.rng import RandomStreams

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.topology import Cluster
    from repro.simulation.simulator import ClusterSimulator


@dataclass(frozen=True)
class MachineFailure:
    """One machine outage: down at ``at``, repaired after ``duration``.

    ``duration=math.inf`` models a permanent loss.
    """

    machine_id: int
    at: float
    duration: float = math.inf

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"failure time must be >= 0, got {self.at}")
        if self.duration <= 0:
            raise ValueError(f"repair duration must be > 0, got {self.duration}")

    @property
    def repair_at(self) -> float:
        """Absolute repair time (``inf`` for permanent failures)."""
        return self.at + self.duration


class FailureInjector:
    """Schedules failures/repairs onto a simulator and tracks outages."""

    def __init__(self, failures: Sequence[MachineFailure]) -> None:
        self.failures = tuple(sorted(failures, key=lambda f: (f.at, f.machine_id)))
        self.down_machines: set[int] = set()
        self.events_applied = 0

    def install(self, sim: "ClusterSimulator") -> None:
        """Register all failure and repair events with the simulator."""
        for failure in self.failures:
            if failure.machine_id not in {
                m.machine_id for m in sim.cluster.machines
            }:
                raise ValueError(
                    f"failure names unknown machine {failure.machine_id}"
                )
            sim.engine.schedule(
                failure.at,
                self._make_failure_callback(sim, failure),
                label=f"fail:m{failure.machine_id}",
            )
            if not math.isinf(failure.repair_at):
                sim.engine.schedule(
                    failure.repair_at,
                    self._make_repair_callback(sim, failure),
                    label=f"repair:m{failure.machine_id}",
                )

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def _make_failure_callback(self, sim: "ClusterSimulator", failure: MachineFailure):
        def _fail(engine, event) -> None:
            self.events_applied += 1
            self.down_machines.add(failure.machine_id)
            gpus = sim.cluster.gpus_on_machine(failure.machine_id)
            sim.mark_gpus_down(gpus)

        return _fail

    def _make_repair_callback(self, sim: "ClusterSimulator", failure: MachineFailure):
        def _repair(engine, event) -> None:
            self.events_applied += 1
            self.down_machines.discard(failure.machine_id)
            gpus = sim.cluster.gpus_on_machine(failure.machine_id)
            sim.mark_gpus_up(gpus)

        return _repair


# ----------------------------------------------------------------------
# Stochastic failure generation (MTBF/MTTR + correlated rack outages)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FailureModel:
    """Seeded stochastic outage process over a cluster.

    Per-machine outages arrive as a Poisson process with mean time
    between failures ``mtbf_minutes``; each outage lasts an
    exponentially distributed ``mttr_minutes`` repair time.  On top of
    the independent process, whole-rack outages (the shared failure
    domain Section 6 worries about — ToR switch, PDU) arrive with mean
    spacing ``rack_mtbf_minutes`` and take *every* machine of one rack
    down at the same instant.  ``rack_mtbf_minutes=None`` (the default)
    disables correlated failures.

    Sampling is driven by named :class:`RandomStreams` children, so a
    model is reproducible per seed and adding racks or machines never
    perturbs the draws of the others.
    """

    mtbf_minutes: float = 24 * 60.0
    mttr_minutes: float = 30.0
    horizon_minutes: float = 24 * 60.0
    seed: int = 0
    rack_mtbf_minutes: float | None = None

    def __post_init__(self) -> None:
        if self.mtbf_minutes <= 0 or self.mttr_minutes <= 0:
            raise ValueError("mtbf/mttr must be > 0 minutes")
        if self.horizon_minutes <= 0:
            raise ValueError(
                f"horizon must be > 0 minutes, got {self.horizon_minutes}"
            )
        if self.rack_mtbf_minutes is not None and self.rack_mtbf_minutes <= 0:
            raise ValueError("rack_mtbf_minutes must be > 0 when set")


def _sample_outages(rng, mtbf: float, mttr: float, horizon: float):
    """Yield ``(at, duration)`` outage windows of one Poisson process."""
    t = float(rng.exponential(mtbf))
    while t < horizon:
        duration = max(float(rng.exponential(mttr)), 1e-6)
        yield t, duration
        # The next failure clock starts after the repair completes: a
        # machine cannot fail while it is already down.
        t += duration + float(rng.exponential(mtbf))


def sample_failures(
    cluster: "Cluster", model: FailureModel
) -> tuple[MachineFailure, ...]:
    """Draw a reproducible failure schedule for ``cluster``.

    Returns :class:`MachineFailure` records sorted by ``(at,
    machine_id)``, ready for :class:`FailureInjector`.  Correlated rack
    outages appear as one failure per machine of the rack, all with the
    same ``at``/``duration`` — the injector needs no new concepts.
    """
    streams = RandomStreams(model.seed)
    failures: list[MachineFailure] = []
    for machine in cluster.machines:
        rng = streams.get(f"failures:machine:{machine.machine_id}")
        for at, duration in _sample_outages(
            rng, model.mtbf_minutes, model.mttr_minutes, model.horizon_minutes
        ):
            failures.append(
                MachineFailure(
                    machine_id=machine.machine_id, at=at, duration=duration
                )
            )
    if model.rack_mtbf_minutes is not None:
        for rack_id in cluster.rack_ids:
            rng = streams.get(f"failures:rack:{rack_id}")
            for at, duration in _sample_outages(
                rng,
                model.rack_mtbf_minutes,
                model.mttr_minutes,
                model.horizon_minutes,
            ):
                for machine in cluster.machines_in_rack(rack_id):
                    failures.append(
                        MachineFailure(
                            machine_id=machine.machine_id,
                            at=at,
                            duration=duration,
                        )
                    )
    return tuple(sorted(failures, key=lambda f: (f.at, f.machine_id)))
