"""Discrete-event simulation kernel used by every scheduler experiment.

The kernel is deliberately small and generic: an event heap with a
monotonic clock (:mod:`repro.simulation.engine`) and reproducible named
random streams (:mod:`repro.simulation.rng`).  The GPU-cluster specific
driver that wires workloads, schedulers and the cluster model together
lives in :mod:`repro.simulation.simulator`.
"""

from repro.simulation.engine import Event, EventKind, SimulationEngine, SimulationError
from repro.simulation.rng import RandomStreams
from repro.simulation.simulator import ClusterSimulator, SimulationConfig, SimulationResult

__all__ = [
    "ClusterSimulator",
    "Event",
    "EventKind",
    "RandomStreams",
    "SimulationConfig",
    "SimulationEngine",
    "SimulationError",
    "SimulationResult",
]
