"""Event-heap core of the discrete-event simulator.

The engine is a classic calendar queue built on :mod:`heapq`.  Three design
points matter for the Themis reproduction:

* **Deterministic ordering.**  Events are ordered by ``(time, priority,
  sequence)``.  The sequence number is a monotonically increasing integer,
  so two events scheduled for the same instant always fire in the order
  they were scheduled.  Experiments are therefore bit-reproducible for a
  given seed.

* **Lazy cancellation.**  Job-completion events are invalidated whenever a
  job's GPU allocation changes.  Rather than rebuilding the heap, cancelled
  events carry a flag and are skipped on pop.  This is the standard
  approach for simulators with frequently rescheduled completions.

* **Priorities.**  Within one instant, resource-releasing events (job
  finish, lease expiry) must run before the auction that redistributes the
  freed GPUs.  The :class:`EventKind` enum encodes that ordering.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional


class SimulationError(RuntimeError):
    """Raised when the engine is driven incorrectly (e.g. scheduling in the past)."""


class EventKind(enum.IntEnum):
    """Event categories, ordered by same-instant execution priority.

    Lower values run first when several events share a timestamp.  The
    ordering encodes the scheduler contract: arrivals and completions
    mutate cluster state, lease expiries release GPUs, and only then does
    an auction observe the fully updated pool.
    """

    APP_ARRIVAL = 0
    JOB_FINISH = 1
    LEASE_EXPIRY = 2
    AUCTION = 3
    GENERIC = 4


@dataclass
class Event:
    """A scheduled callback.

    Instances are returned by :meth:`SimulationEngine.schedule` and act as
    handles: callers keep them to :meth:`SimulationEngine.cancel` the event
    later.  ``cancelled`` is public but should only be mutated through the
    engine so accounting stays correct.
    """

    time: float
    kind: EventKind
    callback: Callable[["SimulationEngine", "Event"], None]
    label: str = ""
    cancelled: bool = False
    seq: int = field(default=-1)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.3f}, kind={self.kind.name}, label={self.label!r}, {state})"


@dataclass(order=True)
class _HeapEntry:
    sort_key: tuple
    event: Event = field(compare=False)


class SimulationEngine:
    """Minimal deterministic discrete-event loop.

    >>> engine = SimulationEngine()
    >>> fired = []
    >>> _ = engine.schedule(5.0, lambda eng, ev: fired.append(eng.now))
    >>> engine.run()
    >>> fired
    [5.0]
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: list[_HeapEntry] = []
        self._seq = itertools.count()
        self._events_processed = 0
        self._events_cancelled = 0
        self._running = False
        self._stopped = False

    # ------------------------------------------------------------------
    # Clock and introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time (minutes in all Themis experiments)."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of callbacks actually executed so far."""
        return self._events_processed

    @property
    def events_cancelled(self) -> int:
        """Number of events cancelled before firing (lazy invalidation)."""
        return self._events_cancelled

    @property
    def pending(self) -> int:
        """Number of not-yet-fired, not-cancelled events in the heap."""
        return sum(1 for entry in self._heap if not entry.event.cancelled)

    def peek_time(self) -> Optional[float]:
        """Return the timestamp of the next live event, or ``None`` if idle."""
        while self._heap and self._heap[0].event.cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].event.time

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        time: float,
        callback: Callable[["SimulationEngine", Event], None],
        kind: EventKind = EventKind.GENERIC,
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` to fire at absolute simulation ``time``.

        Scheduling strictly in the past is an error; scheduling at the
        current instant is allowed and fires within the current
        :meth:`run` sweep (after all currently executing callbacks).
        """
        if time < self._now - 1e-9:
            raise SimulationError(
                f"cannot schedule event at t={time:.6f}, clock already at t={self._now:.6f}"
            )
        event = Event(time=max(time, self._now), kind=kind, callback=callback, label=label)
        event.seq = next(self._seq)
        entry = _HeapEntry(sort_key=(event.time, int(kind), event.seq), event=event)
        heapq.heappush(self._heap, entry)
        return event

    def schedule_in(
        self,
        delay: float,
        callback: Callable[["SimulationEngine", Event], None],
        kind: EventKind = EventKind.GENERIC,
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` ``delay`` minutes after the current instant."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.schedule(self._now + delay, callback, kind=kind, label=label)

    def cancel(self, event: Event) -> bool:
        """Cancel a pending event.  Returns ``False`` if already fired/cancelled."""
        if event.cancelled:
            return False
        event.cancelled = True
        self._events_cancelled += 1
        return True

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Request that :meth:`run` return after the current callback."""
        self._stopped = True

    def step(self) -> bool:
        """Execute the single next live event.  Returns ``False`` when idle."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            event = entry.event
            if event.cancelled:
                continue
            if event.time < self._now - 1e-9:
                raise SimulationError("event heap produced an event in the past")
            self._now = max(self._now, event.time)
            event.cancelled = True  # an event fires exactly once
            self._events_processed += 1
            event.callback(self, event)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Drain the heap, optionally bounded by time or event count.

        ``until`` is inclusive: events stamped exactly ``until`` still fire.
        Returns the number of events executed by this call.
        """
        if self._running:
            raise SimulationError("SimulationEngine.run() is not reentrant")
        self._running = True
        self._stopped = False
        executed = 0
        try:
            while not self._stopped:
                if max_events is not None and executed >= max_events:
                    break
                next_time = self.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until + 1e-9:
                    self._now = until
                    break
                if not self.step():
                    break
                executed += 1
        finally:
            self._running = False
        return executed
