"""Locality levels, placement scores and the slowdown factor ``S``.

Section 8.1 defines a 4-level placement score: *slot locality* (all GPUs
on one NVLink island), *machine locality* (one machine, over PCIe),
*rack locality* and *no locality* (cross-rack).  Section 5.2 models the
placement sensitivity ``S`` of a job as the slowdown observed when its
GPUs span successive networking boundaries, with ``S -> 1`` for
close-to-ideal placement and job running time ``serial / (G * S)``.

This module implements both: the level classification of a set of GPUs,
the paper's placement *score* metric (Figure 7) and the *slowdown*
lookup given a per-model :class:`SensitivityProfile`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable

from repro.cluster.topology import Gpu


class LocalityLevel(enum.IntEnum):
    """Worst networking boundary spanned by an allocation (lower = tighter)."""

    SLOT = 0
    MACHINE = 1
    RACK = 2
    CLUSTER = 3


#: The 4-level placement score of Section 8.1: 1.0 means GPUs are tightly
#: packed (all NVLink), lower scores mean the allocation is spread out.
PLACEMENT_SCORES: dict[LocalityLevel, float] = {
    LocalityLevel.SLOT: 1.0,
    LocalityLevel.MACHINE: 0.75,
    LocalityLevel.RACK: 0.5,
    LocalityLevel.CLUSTER: 0.25,
}


@dataclass(frozen=True)
class SensitivityProfile:
    """Per-model slowdown at each locality level (Section 5.2).

    "We typically have three values for S, one each reflecting the case
    where GPUs span different slots in a machine; span multiple machines
    in a rack; and span racks."  Slot-local placement is ideal (S = 1).
    """

    machine: float
    rack: float
    cluster: float

    def __post_init__(self) -> None:
        values = (self.machine, self.rack, self.cluster)
        if not all(0.0 < v <= 1.0 for v in values):
            raise ValueError(f"slowdowns must be in (0, 1], got {values}")
        if not self.machine >= self.rack >= self.cluster:
            raise ValueError(
                "slowdowns must be monotonically non-increasing with spread: "
                f"machine={self.machine} rack={self.rack} cluster={self.cluster}"
            )

    def at(self, level: LocalityLevel) -> float:
        """Slowdown factor for GPUs spanning at most ``level``."""
        if level == LocalityLevel.SLOT:
            return 1.0
        if level == LocalityLevel.MACHINE:
            return self.machine
        if level == LocalityLevel.RACK:
            return self.rack
        return self.cluster


def placement_level(gpus: Iterable[Gpu]) -> LocalityLevel:
    """Classify an allocation by the worst boundary it spans.

    An empty allocation and a single GPU are both slot-local by
    definition.  The classification only inspects the GPUs themselves
    (their machine/rack/slot coordinates), so it needs no cluster handle.
    """
    gpus = list(gpus)
    if len(gpus) <= 1:
        return LocalityLevel.SLOT
    racks = {gpu.rack_id for gpu in gpus}
    if len(racks) > 1:
        return LocalityLevel.CLUSTER
    machines = {gpu.machine_id for gpu in gpus}
    if len(machines) > 1:
        return LocalityLevel.RACK
    slots = {(gpu.machine_id, gpu.slot_id) for gpu in gpus}
    if len(slots) > 1:
        return LocalityLevel.MACHINE
    return LocalityLevel.SLOT


def placement_score(gpus: Iterable[Gpu]) -> float:
    """The paper's 4-level placement score for an allocation (Figure 7).

    Returns 0.0 for an empty allocation (no placement to score).
    """
    gpus = list(gpus)
    if not gpus:
        return 0.0
    return PLACEMENT_SCORES[placement_level(gpus)]


def slowdown(profile: SensitivityProfile, gpus: Iterable[Gpu]) -> float:
    """Slowdown factor ``S`` for ``gpus`` under a model's sensitivity profile.

    Follows Section 5.2: with ideal placement the job scales linearly in
    the number of GPUs; otherwise throughput is multiplied by
    ``S(level) <= 1`` where the level is the worst boundary spanned.
    Returns 1.0 for empty or single-GPU allocations (no communication).
    """
    gpus = list(gpus)
    if len(gpus) <= 1:
        return 1.0
    return profile.at(placement_level(gpus))
