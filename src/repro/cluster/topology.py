"""Cluster topology: GPUs grouped into NVLink slots, machines and racks.

The paper evaluates on two clusters:

* a **heterogeneous 256-GPU simulated cluster** — "a mixture of 4 GPU,
  2 GPU, and 1 GPU machines spread across multiple racks" (Section 8.1),
* a **50-GPU testbed** — "20 instances ... that have 1/2/4 GPUs in each
  instance" (Section 8.1).

:func:`themis_sim_cluster` and :func:`testbed_cluster` build those two.
Arbitrary clusters are described with :class:`ClusterSpec` and built with
:func:`build_cluster`.

Beyond the paper, GPUs carry a :class:`GpuType` (generation name +
relative speed factor), so mixed V100/P100/K80-style fleets are
first-class: :func:`mixed_sim_cluster` builds the paper-shaped cluster
with a generation mixture, and :class:`ClusterCapacity` exposes the
speed-sorted compute totals the fairness estimator needs.  A cluster
whose GPUs are all speed 1.0 behaves bit-identically to the original
homogeneous model.

Topology is immutable after construction; allocation state (who holds a
GPU) lives in the simulator, not here, so topology objects can be shared
freely between scheduler instances under comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, Union


@dataclass(frozen=True)
class GpuType:
    """One GPU generation: a name and a relative speed factor.

    ``speed`` is throughput relative to the cluster's reference
    generation (1.0 = fastest).  A job placed on ``G`` GPUs of speed
    ``s`` progresses at ``G * s`` work-units per minute before the
    placement slowdown ``S`` is applied, so *effective compute* — the
    speed-weighted GPU count — replaces raw counts wherever progress,
    valuations or fairness are estimated.
    """

    name: str
    speed: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("gpu type needs a non-empty name")
        if self.speed <= 0:
            raise ValueError(f"gpu speed must be > 0, got {self.speed}")


#: The implicit generation of every GPU before heterogeneity is opted
#: into.  Speed 1.0 everywhere reproduces the homogeneous model exactly.
DEFAULT_GPU_TYPE = GpuType("default", 1.0)

#: Named generations for the mixed-fleet presets.  Relative speeds
#: follow the rough V100 : P100 : K80 ResNet-class throughput ratios
#: reported by heterogeneity-aware follow-on work (Gavel et al.).
GPU_TYPES: dict[str, GpuType] = {
    "v100": GpuType("v100", 1.0),
    "p100": GpuType("p100", 0.6),
    "k80": GpuType("k80", 0.35),
}


def resolve_gpu_type(gpu_type: Union[str, GpuType]) -> GpuType:
    """Accept a :class:`GpuType` or a preset name from :data:`GPU_TYPES`."""
    if isinstance(gpu_type, GpuType):
        return gpu_type
    key = str(gpu_type).lower()
    if key == DEFAULT_GPU_TYPE.name:
        return DEFAULT_GPU_TYPE
    if key not in GPU_TYPES:
        raise KeyError(f"unknown gpu type {gpu_type!r}; available: {sorted(GPU_TYPES)}")
    return GPU_TYPES[key]


@dataclass(frozen=True)
class Gpu:
    """A single GPU, identified globally and by its topological position.

    ``slot_id`` identifies the NVLink island within the machine; GPUs in
    the same slot communicate over NVLink, GPUs in different slots of the
    same machine over PCIe (paper's 4-level locality, Section 8.1).
    ``gpu_type`` carries the device generation; machines are internally
    homogeneous, so every GPU of a machine shares one type.
    """

    gpu_id: int
    machine_id: int
    rack_id: int
    slot_id: int
    gpu_type: GpuType = DEFAULT_GPU_TYPE

    @property
    def speed(self) -> float:
        """Relative speed factor of this GPU's generation."""
        return self.gpu_type.speed

    def __repr__(self) -> str:
        suffix = "" if self.gpu_type is DEFAULT_GPU_TYPE else f"/{self.gpu_type.name}"
        return f"Gpu({self.gpu_id}@m{self.machine_id}/r{self.rack_id}/s{self.slot_id}{suffix})"


@dataclass(frozen=True)
class MachineSpec:
    """How many machines of a given shape to build.

    ``nvlink_group_size`` controls how many GPUs share one NVLink island;
    a 4-GPU machine with group size 2 has two NVLink pairs bridged over
    PCIe, which is the common PCIe-server configuration the paper's
    slot-vs-machine locality distinction implies.
    """

    count: int
    gpus_per_machine: int
    nvlink_group_size: int = 2
    gpu_type: GpuType = DEFAULT_GPU_TYPE

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError(f"machine count must be >= 0, got {self.count}")
        if self.gpus_per_machine <= 0:
            raise ValueError(f"gpus_per_machine must be > 0, got {self.gpus_per_machine}")
        if self.nvlink_group_size <= 0:
            raise ValueError(f"nvlink_group_size must be > 0, got {self.nvlink_group_size}")


@dataclass(frozen=True)
class ClusterSpec:
    """Declarative description of a cluster to build.

    Machines from all specs are built in order and dealt round-robin
    across ``num_racks`` racks, which spreads machine shapes evenly the
    way the paper describes ("spread across multiple racks").
    """

    machine_specs: tuple[MachineSpec, ...]
    num_racks: int = 4
    name: str = "custom"

    def __post_init__(self) -> None:
        if self.num_racks <= 0:
            raise ValueError(f"num_racks must be > 0, got {self.num_racks}")
        if not self.machine_specs:
            raise ValueError("cluster needs at least one MachineSpec")

    @property
    def total_gpus(self) -> int:
        """Total number of GPUs the spec describes."""
        return sum(spec.count * spec.gpus_per_machine for spec in self.machine_specs)

    @property
    def total_machines(self) -> int:
        """Total number of machines the spec describes."""
        return sum(spec.count for spec in self.machine_specs)


class Machine:
    """A machine holding one or more GPUs, possibly in NVLink slot groups.

    Machines are internally homogeneous: all GPUs share one
    :class:`GpuType`.  This is what lets the auction keep its
    per-machine *count* bid representation under heterogeneity — a
    count on a machine implies a speed class.
    """

    def __init__(self, machine_id: int, rack_id: int, gpus: list[Gpu]) -> None:
        if not gpus:
            raise ValueError("a machine must hold at least one GPU")
        if len({gpu.gpu_type for gpu in gpus}) > 1:
            raise ValueError(
                f"machine {machine_id} mixes GPU types "
                f"{sorted({gpu.gpu_type.name for gpu in gpus})}; "
                "machines must be internally homogeneous"
            )
        self.machine_id = machine_id
        self.rack_id = rack_id
        self.gpus: tuple[Gpu, ...] = tuple(gpus)

    @property
    def num_gpus(self) -> int:
        """Number of GPUs installed in this machine."""
        return len(self.gpus)

    @property
    def gpu_type(self) -> GpuType:
        """The (single) GPU generation installed in this machine."""
        return self.gpus[0].gpu_type

    @property
    def speed(self) -> float:
        """Relative speed factor of this machine's GPUs."""
        return self.gpus[0].gpu_type.speed

    @property
    def slot_ids(self) -> tuple[int, ...]:
        """Distinct NVLink slot ids present in this machine."""
        return tuple(sorted({gpu.slot_id for gpu in self.gpus}))

    def gpus_in_slot(self, slot_id: int) -> tuple[Gpu, ...]:
        """GPUs belonging to one NVLink island."""
        return tuple(gpu for gpu in self.gpus if gpu.slot_id == slot_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Machine(m{self.machine_id}, rack={self.rack_id}, gpus={self.num_gpus})"


class ClusterCapacity:
    """Speed-sorted compute capacity: ``fastest(n)`` prefix sums.

    The ideal running time of Section 5.2 assumes the app runs alone
    with perfect placement; under heterogeneity "alone on the cluster"
    means "on the *fastest* N GPUs", so T_id divides work by the sum of
    the top-N speed factors.  For an all-speed-1.0 cluster
    ``fastest(n) == float(n)`` exactly and every derived quantity is
    bit-identical to the homogeneous count model.
    """

    __slots__ = ("_prefix",)

    def __init__(self, speeds: Iterable[float]) -> None:
        ordered = sorted(speeds, reverse=True)
        if not ordered:
            raise ValueError("capacity needs at least one GPU speed")
        if ordered[-1] <= 0:
            raise ValueError("gpu speeds must be > 0")
        prefix = [0.0]
        total = 0.0
        for speed in ordered:
            total += speed
            prefix.append(total)
        self._prefix: tuple[float, ...] = tuple(prefix)

    @classmethod
    def uniform(cls, num_gpus: int) -> "ClusterCapacity":
        """Capacity of ``num_gpus`` speed-1.0 GPUs (the legacy count model)."""
        if num_gpus <= 0:
            raise ValueError(f"cluster_gpus must be > 0, got {num_gpus}")
        return cls([1.0] * num_gpus)

    @property
    def num_gpus(self) -> int:
        """Number of GPUs backing this capacity."""
        return len(self._prefix) - 1

    @property
    def total(self) -> float:
        """Aggregate speed-weighted compute of the whole cluster."""
        return self._prefix[-1]

    def fastest(self, n: int) -> float:
        """Summed speed factors of the ``n`` fastest GPUs (clamped)."""
        return self._prefix[min(max(n, 0), self.num_gpus)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ClusterCapacity(gpus={self.num_gpus}, total={self.total:g})"


CapacityLike = Union[int, ClusterCapacity]


def as_capacity(capacity: CapacityLike) -> ClusterCapacity:
    """Coerce a legacy GPU count into a uniform :class:`ClusterCapacity`."""
    if isinstance(capacity, ClusterCapacity):
        return capacity
    return ClusterCapacity.uniform(capacity)


class Cluster:
    """An immutable GPU cluster topology with fast lookup tables."""

    def __init__(self, machines: Iterable[Machine], name: str = "custom") -> None:
        self.name = name
        self.machines: tuple[Machine, ...] = tuple(machines)
        if not self.machines:
            raise ValueError("a cluster must contain at least one machine")
        self._machines_by_id = {m.machine_id: m for m in self.machines}
        if len(self._machines_by_id) != len(self.machines):
            raise ValueError("duplicate machine ids in cluster")
        self._gpus: tuple[Gpu, ...] = tuple(gpu for m in self.machines for gpu in m.gpus)
        self._gpus_by_id = {gpu.gpu_id: gpu for gpu in self._gpus}
        if len(self._gpus_by_id) != len(self._gpus):
            raise ValueError("duplicate gpu ids in cluster")
        self._racks: dict[int, list[Machine]] = {}
        for machine in self.machines:
            self._racks.setdefault(machine.rack_id, []).append(machine)
        self._machine_speeds = {m.machine_id: m.speed for m in self.machines}
        self._capacity = ClusterCapacity(gpu.speed for gpu in self._gpus)
        counts: dict[str, int] = {}
        for gpu in self._gpus:
            counts[gpu.gpu_type.name] = counts.get(gpu.gpu_type.name, 0) + 1
        self._gpus_by_type = dict(sorted(counts.items()))

    # ------------------------------------------------------------------
    # Size queries
    # ------------------------------------------------------------------
    @property
    def num_gpus(self) -> int:
        """Total GPUs in the cluster."""
        return len(self._gpus)

    @property
    def num_machines(self) -> int:
        """Total machines in the cluster."""
        return len(self.machines)

    @property
    def num_racks(self) -> int:
        """Total racks in the cluster."""
        return len(self._racks)

    @property
    def gpus(self) -> tuple[Gpu, ...]:
        """All GPUs, ordered by gpu_id construction order."""
        return self._gpus

    @property
    def rack_ids(self) -> tuple[int, ...]:
        """Sorted rack identifiers."""
        return tuple(sorted(self._racks))

    # ------------------------------------------------------------------
    # Heterogeneity queries
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> ClusterCapacity:
        """Speed-sorted compute capacity (shared, immutable)."""
        return self._capacity

    @property
    def total_speed(self) -> float:
        """Aggregate speed-weighted compute of every GPU."""
        return self._capacity.total

    @property
    def gpu_types(self) -> tuple[GpuType, ...]:
        """Distinct GPU generations present, fastest first."""
        distinct = {m.gpu_type for m in self.machines}
        return tuple(sorted(distinct, key=lambda t: (-t.speed, t.name)))

    def machine_speeds(self) -> dict[int, float]:
        """machine_id -> speed factor (machines are internally homogeneous).

        Returns a fresh dict: clusters are shared freely between
        scheduler instances under comparison, so callers must not be
        able to mutate shared lookup state.
        """
        return dict(self._machine_speeds)

    def speed_of_machine(self, machine_id: int) -> float:
        """Speed factor of one machine's GPUs."""
        return self._machine_speeds[machine_id]

    def gpus_by_type(self) -> dict[str, int]:
        """GPU counts per generation name, sorted by name."""
        return dict(self._gpus_by_type)

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def gpu(self, gpu_id: int) -> Gpu:
        """Look a GPU up by id.  Raises ``KeyError`` for unknown ids."""
        return self._gpus_by_id[gpu_id]

    def machine(self, machine_id: int) -> Machine:
        """Look a machine up by id.  Raises ``KeyError`` for unknown ids."""
        return self._machines_by_id[machine_id]

    def machines_in_rack(self, rack_id: int) -> tuple[Machine, ...]:
        """All machines in one rack."""
        return tuple(self._racks[rack_id])

    def gpus_on_machine(self, machine_id: int) -> tuple[Gpu, ...]:
        """All GPUs installed in one machine."""
        return self._machines_by_id[machine_id].gpus

    def iter_gpus(self) -> Iterator[Gpu]:
        """Iterate all GPUs in deterministic order."""
        return iter(self._gpus)

    def __contains__(self, gpu_id: int) -> bool:
        return gpu_id in self._gpus_by_id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Cluster({self.name!r}, gpus={self.num_gpus}, "
            f"machines={self.num_machines}, racks={self.num_racks})"
        )


def build_cluster(spec: ClusterSpec) -> Cluster:
    """Materialise a :class:`Cluster` from a :class:`ClusterSpec`.

    GPU and machine ids are assigned sequentially, machines are dealt
    round-robin over racks, and NVLink slots are numbered within each
    machine, so builds are fully deterministic.
    """
    machines: list[Machine] = []
    gpu_id = 0
    machine_id = 0
    for machine_spec in spec.machine_specs:
        for _ in range(machine_spec.count):
            rack_id = machine_id % spec.num_racks
            gpus = []
            for index in range(machine_spec.gpus_per_machine):
                slot_id = index // machine_spec.nvlink_group_size
                gpus.append(
                    Gpu(
                        gpu_id=gpu_id,
                        machine_id=machine_id,
                        rack_id=rack_id,
                        slot_id=slot_id,
                        gpu_type=machine_spec.gpu_type,
                    )
                )
                gpu_id += 1
            machines.append(Machine(machine_id=machine_id, rack_id=rack_id, gpus=gpus))
            machine_id += 1
    return Cluster(machines, name=spec.name)


def themis_sim_cluster(scale: float = 1.0, num_racks: int = 8) -> Cluster:
    """The heterogeneous 256-GPU simulation cluster of Section 8.1.

    The composition (40 four-GPU, 32 two-GPU, 32 one-GPU machines, i.e.
    160 + 64 + 32 = 256 GPUs over 8 racks) follows the paper's
    description of "a mixture of 4 GPU, 2 GPU, and 1 GPU machines spread
    across multiple racks".  ``scale`` shrinks or grows every machine
    count proportionally, which the microbenchmarks use for sweeps.
    """
    if scale <= 0:
        raise ValueError(f"scale must be > 0, got {scale}")
    spec = ClusterSpec(
        machine_specs=(
            MachineSpec(count=max(1, round(40 * scale)), gpus_per_machine=4),
            MachineSpec(count=max(1, round(32 * scale)), gpus_per_machine=2),
            MachineSpec(count=max(1, round(32 * scale)), gpus_per_machine=1),
        ),
        num_racks=num_racks,
        name=f"themis-sim-{scale:g}x",
    )
    return build_cluster(spec)


#: Default generation mixture for the heterogeneous presets: half the
#: fleet current-generation, the rest split between two older ones —
#: the composition the mixed-fleet example sweep uses.
DEFAULT_GPU_MIX: tuple[tuple[str, float], ...] = (
    ("v100", 0.5),
    ("p100", 0.25),
    ("k80", 0.25),
)


def split_by_mix(count: int, mix: Sequence[tuple[str, float]]) -> list[tuple[GpuType, int]]:
    """Split ``count`` machines across GPU generations by mix fractions.

    Largest-remainder apportionment: totals are preserved exactly and
    the split is deterministic in the mix order.  Fractions are
    normalised, so ``(("v100", 2), ("k80", 1))`` style ratios work too.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if not mix:
        raise ValueError("gpu mix needs at least one (type, fraction) entry")
    types = [resolve_gpu_type(name) for name, _ in mix]
    weights = [float(fraction) for _, fraction in mix]
    if any(w < 0 for w in weights) or sum(weights) <= 0:
        raise ValueError(f"gpu mix fractions must be >= 0 and sum > 0, got {weights}")
    total_weight = sum(weights)
    quotas = [count * w / total_weight for w in weights]
    floors = [int(q) for q in quotas]
    remainder = count - sum(floors)
    by_fraction = sorted(
        range(len(mix)), key=lambda i: (-(quotas[i] - floors[i]), i)
    )
    for i in by_fraction[:remainder]:
        floors[i] += 1
    return [(gpu_type, n) for gpu_type, n in zip(types, floors)]


def mixed_sim_cluster(
    scale: float = 1.0,
    mix: Sequence[tuple[str, float]] = DEFAULT_GPU_MIX,
    num_racks: int = 8,
) -> Cluster:
    """A mixed-generation variant of the 256-GPU simulation cluster.

    Keeps the paper's machine shapes (4/2/1-GPU boxes in the Section
    8.1 proportions) but splits each shape's machine count across GPU
    generations by ``mix`` — e.g. the default 50/25/25 V100/P100/K80
    fleet.  Machines stay internally homogeneous, so the auction's
    per-machine count bids remain well defined.
    """
    if scale <= 0:
        raise ValueError(f"scale must be > 0, got {scale}")
    shapes = (
        (max(1, round(40 * scale)), 4),
        (max(1, round(32 * scale)), 2),
        (max(1, round(32 * scale)), 1),
    )
    specs: list[MachineSpec] = []
    for count, gpus_per_machine in shapes:
        for gpu_type, split_count in split_by_mix(count, mix):
            if split_count > 0:
                specs.append(
                    MachineSpec(
                        count=split_count,
                        gpus_per_machine=gpus_per_machine,
                        gpu_type=gpu_type,
                    )
                )
    spec = ClusterSpec(
        machine_specs=tuple(specs),
        num_racks=num_racks,
        name=f"themis-sim-hetero-{scale:g}x",
    )
    return build_cluster(spec)


def testbed_cluster(num_racks: int = 4) -> Cluster:
    """The 50-GPU / 20-instance Azure testbed of Section 8.1.

    Eight 4-GPU, six 2-GPU and six 1-GPU instances give 20 machines and
    32 + 12 + 6 = 50 GPUs, matching the paper's NC/NV-series mixture.
    """
    spec = ClusterSpec(
        machine_specs=(
            MachineSpec(count=8, gpus_per_machine=4),
            MachineSpec(count=6, gpus_per_machine=2),
            MachineSpec(count=6, gpus_per_machine=1),
        ),
        num_racks=num_racks,
        name="themis-testbed",
    )
    return build_cluster(spec)
