"""Cluster topology: GPUs grouped into NVLink slots, machines and racks.

The paper evaluates on two clusters:

* a **heterogeneous 256-GPU simulated cluster** — "a mixture of 4 GPU,
  2 GPU, and 1 GPU machines spread across multiple racks" (Section 8.1),
* a **50-GPU testbed** — "20 instances ... that have 1/2/4 GPUs in each
  instance" (Section 8.1).

:func:`themis_sim_cluster` and :func:`testbed_cluster` build those two.
Arbitrary clusters are described with :class:`ClusterSpec` and built with
:func:`build_cluster`.

Topology is immutable after construction; allocation state (who holds a
GPU) lives in the simulator, not here, so topology objects can be shared
freely between scheduler instances under comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator


@dataclass(frozen=True)
class Gpu:
    """A single GPU, identified globally and by its topological position.

    ``slot_id`` identifies the NVLink island within the machine; GPUs in
    the same slot communicate over NVLink, GPUs in different slots of the
    same machine over PCIe (paper's 4-level locality, Section 8.1).
    """

    gpu_id: int
    machine_id: int
    rack_id: int
    slot_id: int

    def __repr__(self) -> str:
        return f"Gpu({self.gpu_id}@m{self.machine_id}/r{self.rack_id}/s{self.slot_id})"


@dataclass(frozen=True)
class MachineSpec:
    """How many machines of a given shape to build.

    ``nvlink_group_size`` controls how many GPUs share one NVLink island;
    a 4-GPU machine with group size 2 has two NVLink pairs bridged over
    PCIe, which is the common PCIe-server configuration the paper's
    slot-vs-machine locality distinction implies.
    """

    count: int
    gpus_per_machine: int
    nvlink_group_size: int = 2

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError(f"machine count must be >= 0, got {self.count}")
        if self.gpus_per_machine <= 0:
            raise ValueError(f"gpus_per_machine must be > 0, got {self.gpus_per_machine}")
        if self.nvlink_group_size <= 0:
            raise ValueError(f"nvlink_group_size must be > 0, got {self.nvlink_group_size}")


@dataclass(frozen=True)
class ClusterSpec:
    """Declarative description of a cluster to build.

    Machines from all specs are built in order and dealt round-robin
    across ``num_racks`` racks, which spreads machine shapes evenly the
    way the paper describes ("spread across multiple racks").
    """

    machine_specs: tuple[MachineSpec, ...]
    num_racks: int = 4
    name: str = "custom"

    def __post_init__(self) -> None:
        if self.num_racks <= 0:
            raise ValueError(f"num_racks must be > 0, got {self.num_racks}")
        if not self.machine_specs:
            raise ValueError("cluster needs at least one MachineSpec")

    @property
    def total_gpus(self) -> int:
        """Total number of GPUs the spec describes."""
        return sum(spec.count * spec.gpus_per_machine for spec in self.machine_specs)

    @property
    def total_machines(self) -> int:
        """Total number of machines the spec describes."""
        return sum(spec.count for spec in self.machine_specs)


class Machine:
    """A machine holding one or more GPUs, possibly in NVLink slot groups."""

    def __init__(self, machine_id: int, rack_id: int, gpus: list[Gpu]) -> None:
        if not gpus:
            raise ValueError("a machine must hold at least one GPU")
        self.machine_id = machine_id
        self.rack_id = rack_id
        self.gpus: tuple[Gpu, ...] = tuple(gpus)

    @property
    def num_gpus(self) -> int:
        """Number of GPUs installed in this machine."""
        return len(self.gpus)

    @property
    def slot_ids(self) -> tuple[int, ...]:
        """Distinct NVLink slot ids present in this machine."""
        return tuple(sorted({gpu.slot_id for gpu in self.gpus}))

    def gpus_in_slot(self, slot_id: int) -> tuple[Gpu, ...]:
        """GPUs belonging to one NVLink island."""
        return tuple(gpu for gpu in self.gpus if gpu.slot_id == slot_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Machine(m{self.machine_id}, rack={self.rack_id}, gpus={self.num_gpus})"


class Cluster:
    """An immutable GPU cluster topology with fast lookup tables."""

    def __init__(self, machines: Iterable[Machine], name: str = "custom") -> None:
        self.name = name
        self.machines: tuple[Machine, ...] = tuple(machines)
        if not self.machines:
            raise ValueError("a cluster must contain at least one machine")
        self._machines_by_id = {m.machine_id: m for m in self.machines}
        if len(self._machines_by_id) != len(self.machines):
            raise ValueError("duplicate machine ids in cluster")
        self._gpus: tuple[Gpu, ...] = tuple(gpu for m in self.machines for gpu in m.gpus)
        self._gpus_by_id = {gpu.gpu_id: gpu for gpu in self._gpus}
        if len(self._gpus_by_id) != len(self._gpus):
            raise ValueError("duplicate gpu ids in cluster")
        self._racks: dict[int, list[Machine]] = {}
        for machine in self.machines:
            self._racks.setdefault(machine.rack_id, []).append(machine)

    # ------------------------------------------------------------------
    # Size queries
    # ------------------------------------------------------------------
    @property
    def num_gpus(self) -> int:
        """Total GPUs in the cluster."""
        return len(self._gpus)

    @property
    def num_machines(self) -> int:
        """Total machines in the cluster."""
        return len(self.machines)

    @property
    def num_racks(self) -> int:
        """Total racks in the cluster."""
        return len(self._racks)

    @property
    def gpus(self) -> tuple[Gpu, ...]:
        """All GPUs, ordered by gpu_id construction order."""
        return self._gpus

    @property
    def rack_ids(self) -> tuple[int, ...]:
        """Sorted rack identifiers."""
        return tuple(sorted(self._racks))

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def gpu(self, gpu_id: int) -> Gpu:
        """Look a GPU up by id.  Raises ``KeyError`` for unknown ids."""
        return self._gpus_by_id[gpu_id]

    def machine(self, machine_id: int) -> Machine:
        """Look a machine up by id.  Raises ``KeyError`` for unknown ids."""
        return self._machines_by_id[machine_id]

    def machines_in_rack(self, rack_id: int) -> tuple[Machine, ...]:
        """All machines in one rack."""
        return tuple(self._racks[rack_id])

    def gpus_on_machine(self, machine_id: int) -> tuple[Gpu, ...]:
        """All GPUs installed in one machine."""
        return self._machines_by_id[machine_id].gpus

    def iter_gpus(self) -> Iterator[Gpu]:
        """Iterate all GPUs in deterministic order."""
        return iter(self._gpus)

    def __contains__(self, gpu_id: int) -> bool:
        return gpu_id in self._gpus_by_id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Cluster({self.name!r}, gpus={self.num_gpus}, "
            f"machines={self.num_machines}, racks={self.num_racks})"
        )


def build_cluster(spec: ClusterSpec) -> Cluster:
    """Materialise a :class:`Cluster` from a :class:`ClusterSpec`.

    GPU and machine ids are assigned sequentially, machines are dealt
    round-robin over racks, and NVLink slots are numbered within each
    machine, so builds are fully deterministic.
    """
    machines: list[Machine] = []
    gpu_id = 0
    machine_id = 0
    for machine_spec in spec.machine_specs:
        for _ in range(machine_spec.count):
            rack_id = machine_id % spec.num_racks
            gpus = []
            for index in range(machine_spec.gpus_per_machine):
                slot_id = index // machine_spec.nvlink_group_size
                gpus.append(
                    Gpu(gpu_id=gpu_id, machine_id=machine_id, rack_id=rack_id, slot_id=slot_id)
                )
                gpu_id += 1
            machines.append(Machine(machine_id=machine_id, rack_id=rack_id, gpus=gpus))
            machine_id += 1
    return Cluster(machines, name=spec.name)


def themis_sim_cluster(scale: float = 1.0, num_racks: int = 8) -> Cluster:
    """The heterogeneous 256-GPU simulation cluster of Section 8.1.

    The composition (40 four-GPU, 32 two-GPU, 32 one-GPU machines, i.e.
    160 + 64 + 32 = 256 GPUs over 8 racks) follows the paper's
    description of "a mixture of 4 GPU, 2 GPU, and 1 GPU machines spread
    across multiple racks".  ``scale`` shrinks or grows every machine
    count proportionally, which the microbenchmarks use for sweeps.
    """
    if scale <= 0:
        raise ValueError(f"scale must be > 0, got {scale}")
    spec = ClusterSpec(
        machine_specs=(
            MachineSpec(count=max(1, round(40 * scale)), gpus_per_machine=4),
            MachineSpec(count=max(1, round(32 * scale)), gpus_per_machine=2),
            MachineSpec(count=max(1, round(32 * scale)), gpus_per_machine=1),
        ),
        num_racks=num_racks,
        name=f"themis-sim-{scale:g}x",
    )
    return build_cluster(spec)


def testbed_cluster(num_racks: int = 4) -> Cluster:
    """The 50-GPU / 20-instance Azure testbed of Section 8.1.

    Eight 4-GPU, six 2-GPU and six 1-GPU instances give 20 machines and
    32 + 12 + 6 = 50 GPUs, matching the paper's NC/NV-series mixture.
    """
    spec = ClusterSpec(
        machine_specs=(
            MachineSpec(count=8, gpus_per_machine=4),
            MachineSpec(count=6, gpus_per_machine=2),
            MachineSpec(count=6, gpus_per_machine=1),
        ),
        num_racks=num_racks,
        name="themis-testbed",
    )
    return build_cluster(spec)
