"""Immutable GPU allocation vectors.

The paper represents an allocation as a vector ``[G_{x,y}]`` over GPUs
``x`` on machines ``y`` (Section 4) and bids as per-machine fractions of
free GPUs (Section 5.1).  :class:`Allocation` is the concrete form used
throughout this reproduction: an immutable, hashable set of
:class:`~repro.cluster.topology.Gpu` with the aggregate queries the bid
generator, auction and metrics need.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Iterator

from repro.cluster.placement import LocalityLevel, placement_level, placement_score
from repro.cluster.topology import Gpu


class Allocation:
    """An immutable set of GPUs with topology-aware aggregate queries.

    Allocations compare equal by GPU membership, hash (usable as dict
    keys inside bid tables) and combine with ``|`` and ``-``:

    >>> a = Allocation([gpu1, gpu2])          # doctest: +SKIP
    >>> (a | Allocation([gpu3])).size          # doctest: +SKIP
    3
    """

    __slots__ = (
        "_gpus",
        "_key",
        "_effective",
        "_type_counts",
        "_machine_counts",
        "_score",
        "_type_items",
    )

    def __init__(self, gpus: Iterable[Gpu] = ()) -> None:
        unique = {gpu.gpu_id: gpu for gpu in gpus}
        self._gpus: tuple[Gpu, ...] = tuple(unique[g] for g in sorted(unique))
        self._key = frozenset(unique)
        self._effective: float | None = None
        self._type_counts: dict[str, int] | None = None
        self._machine_counts: dict[int, int] | None = None
        self._score: float | None = None
        self._type_items: tuple[tuple[str, int], ...] | None = None

    # ------------------------------------------------------------------
    # Basic container behaviour
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of GPUs in the allocation."""
        return len(self._gpus)

    @property
    def gpus(self) -> tuple[Gpu, ...]:
        """The member GPUs in ascending gpu_id order."""
        return self._gpus

    @property
    def gpu_ids(self) -> frozenset[int]:
        """The member GPU ids."""
        return self._key

    @property
    def effective_size(self) -> float:
        """Speed-weighted GPU count (= ``size`` on homogeneous clusters).

        The unit every heterogeneity-aware estimate works in: a V100
        counts 1.0, an older generation counts its speed factor.
        """
        if self._effective is None:
            self._effective = sum(gpu.speed for gpu in self._gpus)
        return self._effective

    def effective_size_weighted(self, weight_of) -> float:
        """Sum of arbitrary per-GPU weights, in ascending gpu_id order.

        The family-aware generalisation of :attr:`effective_size`: a
        performance model weights each GPU by its holder's model family
        instead of the generation's scalar speed.  Summation order
        matches :attr:`effective_size` exactly, so a weighting that
        degenerates to ``gpu.speed`` produces bit-identical floats.
        """
        return sum(weight_of(gpu) for gpu in self._gpus)

    def per_type_counts(self) -> dict[str, int]:
        """Map GPU-type name -> number of member GPUs of that generation."""
        if self._type_counts is None:
            counts: dict[str, int] = {}
            for gpu in self._gpus:
                name = gpu.gpu_type.name
                counts[name] = counts.get(name, 0) + 1
            self._type_counts = counts
        return dict(self._type_counts)

    def type_count_items(self) -> tuple[tuple[str, int], ...]:
        """``per_type_counts().items()`` as a shared immutable tuple.

        The GPU-time integrator reads the split every simulated minute a
        job holds this allocation; the tuple avoids a dict copy per read.
        """
        if self._type_items is None:
            self._type_items = tuple(self.per_type_counts().items())
        return self._type_items

    def __len__(self) -> int:
        return len(self._gpus)

    def __iter__(self) -> Iterator[Gpu]:
        return iter(self._gpus)

    def __bool__(self) -> bool:
        return bool(self._gpus)

    def __contains__(self, gpu: Gpu) -> bool:
        return gpu.gpu_id in self._key

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Allocation):
            return NotImplemented
        return self._key == other._key

    def __hash__(self) -> int:
        return hash(self._key)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Allocation({sorted(self._key)})"

    # ------------------------------------------------------------------
    # Set algebra
    # ------------------------------------------------------------------
    def __or__(self, other: "Allocation") -> "Allocation":
        if not isinstance(other, Allocation):
            return NotImplemented
        return Allocation(self._gpus + other._gpus)

    def __sub__(self, other: "Allocation") -> "Allocation":
        if not isinstance(other, Allocation):
            return NotImplemented
        return Allocation(gpu for gpu in self._gpus if gpu.gpu_id not in other._key)

    def union(self, gpus: Iterable[Gpu]) -> "Allocation":
        """Allocation extended with additional GPUs."""
        return Allocation(self._gpus + tuple(gpus))

    def without(self, gpus: Iterable[Gpu]) -> "Allocation":
        """Allocation with the given GPUs removed (missing ones ignored)."""
        drop = {gpu.gpu_id for gpu in gpus}
        return Allocation(gpu for gpu in self._gpus if gpu.gpu_id not in drop)

    def intersects(self, other: "Allocation") -> bool:
        """True when the two allocations share at least one GPU."""
        return bool(self._key & other._key)

    # ------------------------------------------------------------------
    # Topology aggregates
    # ------------------------------------------------------------------
    @property
    def machine_ids(self) -> tuple[int, ...]:
        """Distinct machines spanned, sorted."""
        return tuple(sorted({gpu.machine_id for gpu in self._gpus}))

    @property
    def rack_ids(self) -> tuple[int, ...]:
        """Distinct racks spanned, sorted."""
        return tuple(sorted({gpu.rack_id for gpu in self._gpus}))

    def per_machine_counts(self) -> dict[int, int]:
        """Map machine_id -> number of member GPUs on that machine.

        This is the paper's bid representation: "each dimension in R
        represents the number of unused GPUs in a given machine".
        Memoised (allocations are immutable); a fresh copy is returned
        so callers can extend it into hypothetical bundles.
        """
        if self._machine_counts is None:
            self._machine_counts = dict(Counter(gpu.machine_id for gpu in self._gpus))
        return dict(self._machine_counts)

    def on_machine(self, machine_id: int) -> tuple[Gpu, ...]:
        """Member GPUs hosted on one machine."""
        return tuple(gpu for gpu in self._gpus if gpu.machine_id == machine_id)

    def level(self) -> LocalityLevel:
        """Worst networking boundary spanned (see :func:`placement_level`)."""
        return placement_level(self._gpus)

    def score(self) -> float:
        """4-level placement score of the allocation (Figure 7 metric).

        Memoised: the score integral accrues every simulated minute a
        job holds this (immutable) allocation.
        """
        if self._score is None:
            self._score = placement_score(self._gpus)
        return self._score


#: The empty allocation, shared to avoid churn in hot paths.
EMPTY_ALLOCATION = Allocation()
