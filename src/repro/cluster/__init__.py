"""GPU cluster topology and placement model.

This package is the substrate that replaces the paper's physical clusters
(the 256-GPU simulated cluster and the 50-GPU Azure testbed).  It models
machines with NVLink slot groups inside racks, immutable GPU allocation
vectors, the paper's 4-level placement score, and the slowdown factor
``S`` that makes job throughput placement-sensitive (Section 2.2 / 5.2).
"""

from repro.cluster.allocation import Allocation
from repro.cluster.placement import (
    LocalityLevel,
    PLACEMENT_SCORES,
    SensitivityProfile,
    placement_level,
    placement_score,
    slowdown,
)
from repro.cluster.topology import (
    Cluster,
    ClusterSpec,
    Gpu,
    Machine,
    MachineSpec,
    build_cluster,
    testbed_cluster,
    themis_sim_cluster,
)

__all__ = [
    "Allocation",
    "Cluster",
    "ClusterSpec",
    "Gpu",
    "LocalityLevel",
    "Machine",
    "MachineSpec",
    "PLACEMENT_SCORES",
    "SensitivityProfile",
    "build_cluster",
    "placement_level",
    "placement_score",
    "slowdown",
    "testbed_cluster",
    "themis_sim_cluster",
]
