"""Command-line interface: run scenarios, comparisons and paper figures.

Examples::

    python -m repro run --scheduler themis --apps 12 --seed 1
    python -m repro compare --schedulers themis,tiresias --apps 10 --workers 4
    python -m repro figure fig02
    python -m repro figure fig09 --workers 4 --cache-dir .sweep-cache
    python -m repro sweep --schedulers themis,tiresias,gandiva \\
        --seeds 1,2,3,4 --workers 4 --cache-dir .sweep-cache
    python -m repro sweep --cluster hetero --gpu-mix v100:0.5,p100:0.25,k80:0.25 \\
        --schedulers themis,tiresias --seeds 1,2
    python -m repro bench --quick --check BENCH_auction.json
    python -m repro bench sim --check BENCH_sim.json --out BENCH_sim.json
    python -m repro cache prune --dir .sweep-cache --max-age-days 30
    python -m repro trace --apps 30 --out trace.jsonl
    python -m repro serve --dir .service --idle-exit 5 &
    python -m repro submit --dir .service --kind sim --spec '{"apps": 4}'
    python -m repro status --dir .service

The CLI is a thin shell over :mod:`repro.experiments` and
:mod:`repro.sweep`; everything it prints comes from the same
figure/report code the benchmarks use.
"""

from __future__ import annotations

import argparse
import json
import logging
import math
import re
import sys
from typing import Optional, Sequence

from repro.cluster.topology import DEFAULT_GPU_MIX
from repro.experiments.config import (
    ScenarioConfig,
    hetero_scenario,
    sim_scenario,
    testbed_scenario,
)
from repro.experiments.figures import (
    fig01_task_duration_cdf,
    fig02_placement_throughput,
    fig04_knob_sweep,
    fig04c_lease_sweep,
    fig05_to_07_macrobenchmark,
    fig08_timeline,
    fig09_network_sweep,
    fig10_contention_sweep,
    fig11_bid_error_sweep,
)
from repro.experiments.report import format_figure, format_table
from repro.experiments.runner import compare_schedulers, run_scenario
from repro.metrics.fairness import jain_index, max_fairness
from repro.metrics.hetero import is_heterogeneous, per_type_rows
from repro.metrics.jct import average_jct
from repro.metrics.placement import score_summary
from repro.obs import (
    EVENT_KINDS,
    ObsConfig,
    TraceError,
    filter_events,
    read_trace,
    summarize_events,
    validate_events,
)
from repro.obs.logs import LOG_LEVELS, setup_logging
from repro.schedulers.registry import SCHEDULER_NAMES
from repro.sweep import SweepMatrix, run_sweep
from repro.workload.generator import GeneratorConfig, generate_trace

logger = logging.getLogger("repro.cli")

#: Figure name -> callable of (scenario, workers, cache_dir); figures
#: without a sweep shape ignore the execution arguments.
_FIGURES = {
    "fig01": lambda s, w, c: fig01_task_duration_cdf(s),
    "fig02": lambda s, w, c: fig02_placement_throughput(),
    "fig04ab": lambda s, w, c: fig04_knob_sweep(
        s, knobs=(0.0, 0.4, 0.8, 1.0), workers=w, cache_dir=c
    ),
    "fig04c": lambda s, w, c: fig04c_lease_sweep(
        s, leases=(10.0, 20.0, 40.0), workers=w, cache_dir=c
    ),
    "fig05-07": lambda s, w, c: fig05_to_07_macrobenchmark(
        s, workers=w, cache_dir=c
    ),
    "fig08": lambda s, w, c: fig08_timeline(),
    "fig09": lambda s, w, c: fig09_network_sweep(
        s, fractions=(0.0, 0.5, 1.0), schedulers=("themis", "tiresias"),
        workers=w, cache_dir=c,
    ),
    "fig10": lambda s, w, c: fig10_contention_sweep(
        s, factors=(1.0, 2.0), workers=w, cache_dir=c
    ),
    "fig11": lambda s, w, c: fig11_bid_error_sweep(
        s, thetas=(0.0, 0.2), workers=w, cache_dir=c
    ),
}


def _float_list(text: str) -> tuple[float, ...]:
    try:
        return tuple(float(v) for v in text.split(",") if v.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected comma-separated numbers, got {text!r}")


def _int_list(text: str) -> tuple[int, ...]:
    try:
        return tuple(int(v) for v in text.split(",") if v.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected comma-separated integers, got {text!r}")


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _gpu_mix(text: str) -> tuple[tuple[str, float], ...]:
    """Parse and validate ``v100:0.5,p100:0.25,k80:0.25`` into a gpu_mix tuple.

    Unknown generation names and malformed / non-positive mixes fail at
    argument-parse time with the valid alternatives spelled out, not at
    cluster-build time with a bare KeyError.
    """
    from repro.cluster.topology import resolve_gpu_type

    pairs = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        name, sep, fraction_text = part.partition(":")
        name = name.strip()
        if not sep or not name:
            raise argparse.ArgumentTypeError(
                f"malformed gpu-mix entry {part!r}: expected name:fraction "
                "pairs like 'v100:0.5,k80:0.5'"
            )
        try:
            resolve_gpu_type(name)
        except KeyError as error:
            raise argparse.ArgumentTypeError(f"--gpu-mix: {error.args[0]}")
        try:
            fraction = float(fraction_text)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"gpu-mix fraction for {name!r} must be a number, "
                f"got {fraction_text!r}"
            )
        # isfinite: NaN slips past `< 0` (all NaN comparisons are False)
        # and would crash largest-remainder apportionment downstream.
        if not math.isfinite(fraction) or fraction < 0:
            raise argparse.ArgumentTypeError(
                f"gpu-mix fraction for {name!r} must be finite and >= 0, "
                f"got {fraction}"
            )
        pairs.append((name, fraction))
    if not pairs or sum(fraction for _, fraction in pairs) <= 0:
        raise argparse.ArgumentTypeError(
            f"gpu mix needs at least one positive fraction, got {text!r}"
        )
    return tuple(pairs)


def _perf_matrix(text: str):
    """Parse ``--perf-matrix``: a preset name, a JSON file, or an inline spec.

    Inline form: ``family:gen=speedup,gen=speedup;family2:...`` e.g.
    ``vgg:v100=1.0,p100=0.25;resnet:v100=0.7,p100=0.9``.  Unknown
    family / generation names and malformed cells are rejected here
    with the valid alternatives listed.
    """
    from repro.workload.perf import (
        PERF_MATRIX_PRESETS,
        PerfModelError,
        canonical_matrix,
        validate_matrix_names,
    )

    import os

    text = text.strip()
    if not text:
        raise argparse.ArgumentTypeError("--perf-matrix must not be empty")
    if text in PERF_MATRIX_PRESETS:
        return text
    # Anything path-shaped is a file: inline specs never contain path
    # separators, and an existing file beats guessing from the suffix
    # (a valid JSON matrix in matrix.txt must not fall into the inline
    # parser with a misleading "malformed row" error).
    looks_like_file = (
        text.lower().endswith(".json") or os.sep in text or os.path.isfile(text)
    )
    if looks_like_file:
        try:
            with open(text, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except OSError as error:
            raise argparse.ArgumentTypeError(
                f"cannot read perf-matrix file {text!r}: {error}"
            )
        except json.JSONDecodeError as error:
            raise argparse.ArgumentTypeError(
                f"perf-matrix file {text!r} is not valid JSON: {error}"
            )
    else:
        data = {}
        for row in text.split(";"):
            row = row.strip()
            if not row:
                continue
            family, sep, cells = row.partition(":")
            family = family.strip()
            if not sep or not family or not cells.strip():
                raise argparse.ArgumentTypeError(
                    f"malformed perf-matrix row {row!r}: expected "
                    "'family:gen=speedup,gen=speedup' (or a preset name: "
                    f"{sorted(PERF_MATRIX_PRESETS)})"
                )
            if family in data:
                raise argparse.ArgumentTypeError(
                    f"duplicate perf-matrix row for family {family!r}"
                )
            row_cells = {}
            for cell in cells.split(","):
                cell = cell.strip()
                if not cell:
                    continue
                generation, eq, value = cell.partition("=")
                generation = generation.strip()
                if not eq or not generation:
                    raise argparse.ArgumentTypeError(
                        f"malformed perf-matrix cell {cell!r} in row "
                        f"{family!r}: expected gen=speedup"
                    )
                if generation in row_cells:
                    raise argparse.ArgumentTypeError(
                        f"duplicate perf-matrix cell for {generation!r} "
                        f"in row {family!r}"
                    )
                row_cells[generation] = value.strip()
            if not row_cells:
                raise argparse.ArgumentTypeError(
                    f"perf-matrix row {family!r} has no gen=speedup cells"
                )
            data[family] = row_cells
        if not data:
            raise argparse.ArgumentTypeError(
                f"perf-matrix spec {text!r} contains no rows; expected "
                "'family:gen=speedup[,gen=speedup][;family:...]'"
            )
    try:
        matrix = canonical_matrix(data)
        validate_matrix_names(matrix)
    except PerfModelError as error:
        raise argparse.ArgumentTypeError(f"--perf-matrix: {error}")
    return matrix


def _event_kinds(text: str) -> tuple[str, ...]:
    """Parse/validate a comma-separated event-kind filter."""
    kinds = tuple(dict.fromkeys(k.strip() for k in text.split(",") if k.strip()))
    unknown = [k for k in kinds if k not in EVENT_KINDS]
    if unknown:
        raise argparse.ArgumentTypeError(
            f"unknown trace event kinds {unknown}; known: {sorted(EVENT_KINDS)}"
        )
    return kinds


def _add_obs_args(parser: argparse.ArgumentParser, trace_help: str) -> None:
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help=trace_help)
    parser.add_argument("--trace-events", type=_event_kinds, default=(),
                        help="comma-separated event kinds to keep (default: "
                             f"all of {sorted(EVENT_KINDS)})")
    parser.add_argument("--profile", action="store_true",
                        help="time the engine's phases (valuation, carve, "
                             "auction solve, payments, placement, migration, "
                             "...) and print the breakdown")


def _obs_from_args(args: argparse.Namespace, trace_path=None) -> Optional[ObsConfig]:
    """Build the run's ObsConfig from --trace/--trace-events/--profile."""
    path = trace_path if trace_path is not None else args.trace
    if path is None and not args.profile:
        if args.trace_events:
            logger.warning("--trace-events has no effect without --trace")
        return None
    return ObsConfig(
        trace_path=str(path) if path is not None else None,
        trace_events=tuple(args.trace_events),
        profile=args.profile,
    )


def _print_profile(profile: dict, title: str = "\nphase profile:") -> None:
    """Render a ``SimulationResult.profile`` snapshot as a table."""
    if not profile:
        return
    total = sum(rec["seconds"] for rec in profile.values())
    rows = [
        [name, round(rec["seconds"], 4), rec["calls"],
         f"{100.0 * rec['seconds'] / total:.1f}%" if total > 0 else "-"]
        for name, rec in profile.items()
    ]
    if title:
        print(title)
    print(format_table(["phase", "seconds", "calls", "share"], rows))


def _parse_schedulers(text: str) -> Optional[list[str]]:
    """Split/validate a scheduler list; None (plus stderr) on unknown names.

    Duplicates collapse to the first occurrence — a repeated name is
    the same simulation cell, not a second run.
    """
    names = list(dict.fromkeys(n.strip() for n in text.split(",") if n.strip()))
    unknown = [n for n in names if n not in SCHEDULER_NAMES]
    if unknown:
        print(f"unknown schedulers: {unknown}; known: {list(SCHEDULER_NAMES)}",
              file=sys.stderr)
        return None
    return names


def _scenario_from_args(args: argparse.Namespace) -> ScenarioConfig:
    if args.cluster == "hetero":
        scenario = hetero_scenario(
            num_apps=args.apps,
            seed=args.seed,
            duration_scale=args.duration_scale,
            gpu_mix=args.gpu_mix,
        )
    else:
        builder = sim_scenario if args.cluster == "sim" else testbed_scenario
        scenario = builder(
            num_apps=args.apps,
            seed=args.seed,
            duration_scale=args.duration_scale,
        )
    perf_matrix = getattr(args, "perf_matrix", None) or ()
    if perf_matrix and args.cluster != "hetero":
        # The sim/testbed presets are single-generation ("default")
        # fleets: unless the matrix prices that generation explicitly,
        # every lookup falls back to the scalar speed and the run would
        # silently measure nothing.
        from repro.workload.perf import resolve_matrix_spec

        resolved = resolve_matrix_spec(perf_matrix)
        prices_default = any(
            generation == "default"
            for _family, cells in resolved
            for generation, _speedup in cells
        )
        if not prices_default:
            logger.warning(
                "--perf-matrix has no effect on the single-generation "
                "'%s' cluster (no 'default' cells, so every lookup falls "
                "back to the scalar speed); use --cluster hetero to "
                "exercise the matrix",
                args.cluster,
            )
    return scenario.replace(
        lease_minutes=args.lease,
        perf_matrix=perf_matrix,
        migration=bool(getattr(args, "migration", False)),
    )


def _add_scenario_args(parser: argparse.ArgumentParser, default_apps: int) -> None:
    parser.add_argument("--cluster", choices=("sim", "testbed", "hetero"),
                        default="testbed",
                        help="256-GPU simulated cluster, 50-GPU testbed, or the "
                             "mixed-generation 256-GPU fleet")
    parser.add_argument("--gpu-mix", type=_gpu_mix, default=DEFAULT_GPU_MIX,
                        help="GPU-generation mixture for --cluster hetero as "
                             "name:fraction pairs, e.g. "
                             "v100:0.5,p100:0.25,k80:0.25; generation names "
                             "must be known presets (v100/p100/k80) and "
                             "fractions must be >= 0 with a positive sum")
    parser.add_argument("--perf-matrix", type=_perf_matrix, default=None,
                        help="per-model-family x per-GPU-generation throughput "
                             "matrix: a preset name (rate-inversion, "
                             "gavel-like), a .json file of "
                             "{family: {generation: speedup}}, or an inline "
                             "spec like 'vgg:v100=1.0,p100=0.25;"
                             "resnet:v100=0.7,p100=0.9'; unset = scalar "
                             "per-generation speeds")
    parser.add_argument("--migration", action="store_true",
                        help="enable speed-aware job migration: after each "
                             "round, trade a job's gang for free GPUs that "
                             "run its model family strictly faster")
    parser.add_argument("--apps", type=int, default=default_apps,
                        help="number of apps to generate")
    parser.add_argument("--seed", type=int, default=42, help="workload seed")
    parser.add_argument("--duration-scale", type=float, default=None,
                        help="scale factor on job durations")
    parser.add_argument("--lease", type=float, default=20.0,
                        help="GPU lease duration in minutes")


def _add_exec_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workers", type=_positive_int, default=1,
                        help="worker processes for sweep cells (1 = serial)")
    parser.add_argument("--cache-dir", default=None,
                        help="content-addressed result cache directory")


def _fill_duration_default(args: argparse.Namespace) -> None:
    if args.duration_scale is None:
        args.duration_scale = 0.4 if args.cluster in ("sim", "hetero") else 0.08


def _summary_row(name: str, result) -> list:
    rhos = result.rhos()
    return [
        name,
        max_fairness(rhos),
        jain_index(rhos),
        average_jct(result.completion_times()),
        score_summary(result.placement_scores())["mean"],
        result.total_gpu_time,
        result.peak_contention,
    ]


_SUMMARY_HEADERS = [
    "scheduler", "max_rho", "jain", "avg_jct",
    "placement", "gpu_time", "contention",
]


def _cmd_run(args: argparse.Namespace) -> int:
    _fill_duration_default(args)
    scenario = _scenario_from_args(args)
    kwargs = {}
    if args.fairness_knob is not None:
        kwargs["fairness_knob"] = args.fairness_knob
    obs = _obs_from_args(args)
    result = run_scenario(scenario, args.scheduler, kwargs or None, obs=obs)
    print(format_table(_SUMMARY_HEADERS, [_summary_row(args.scheduler, result)]))
    if not result.completed:
        logger.warning("run hit max_minutes before all apps finished")
    if args.profile:
        _print_profile(result.profile)
    if args.trace:
        print(f"wrote trace to {args.trace}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    _fill_duration_default(args)
    scenario = _scenario_from_args(args)
    names = _parse_schedulers(args.schedulers)
    if names is None:
        return 2
    results = compare_schedulers(
        scenario, names, workers=args.workers, cache_dir=args.cache_dir
    )
    rows = [_summary_row(name, results[name]) for name in names]
    print(format_table(_SUMMARY_HEADERS, rows))
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    _fill_duration_default(args)
    if args.name not in _FIGURES:
        print(f"unknown figure {args.name!r}; known: {sorted(_FIGURES)}",
              file=sys.stderr)
        return 2
    scenario = _scenario_from_args(args)
    figure = _FIGURES[args.name](scenario, args.workers, args.cache_dir)
    print(format_figure(figure))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    _fill_duration_default(args)
    names = _parse_schedulers(args.schedulers)
    if names is None:
        return 2
    if args.knobs and "themis" not in names:
        print("--knobs sweeps the themis-only fairness_knob kwarg; add themis "
              "to --schedulers", file=sys.stderr)
        return 2
    scenario_axes = {}
    if args.leases:
        scenario_axes["lease_minutes"] = args.leases
    base = _scenario_from_args(args)
    generator_axes = {}
    if args.contention:
        generator_axes["mean_interarrival_minutes"] = tuple(
            base.generator.mean_interarrival_minutes / factor
            for factor in args.contention
        )
    # fairness_knob is a themis-only kwarg: give themis the knob axis
    # and run the other schedulers without it, in one task list.
    matrix = SweepMatrix(
        base=base,
        schedulers=tuple(n for n in names if n != "themis") if args.knobs else names,
        seeds=args.seeds or (),
        scenario_axes=scenario_axes,
        generator_axes=generator_axes,
    )
    tasks = []
    if args.knobs:
        tasks += SweepMatrix(
            base=base,
            schedulers=("themis",),
            seeds=args.seeds or (),
            scenario_axes=scenario_axes,
            generator_axes=generator_axes,
            scheduler_axes={"fairness_knob": args.knobs},
        ).expand()
    if matrix.schedulers:
        tasks += matrix.expand()
    if args.trace or args.profile:
        tasks = _attach_sweep_obs(tasks, args)
    print(f"expanded {len(tasks)} sweep cells ({len(names)} schedulers)")
    retry = None
    if args.retries:
        from repro.service.retry import RetryPolicy

        retry = RetryPolicy(max_attempts=args.retries + 1, base_delay=0.5,
                            max_delay=10.0)
    report = run_sweep(
        tasks,
        workers=args.workers,
        cache=args.cache_dir,
        progress=print if args.verbose else None,
        retry=retry,
    )
    rows = []
    for task, record in zip(tasks, report.records):
        if record.status == "failed":
            continue
        rows.append(
            _summary_row(task.task_id, report.result_for(task.task_id))
            + [record.status, record.duration_seconds]
        )
    print(format_table(_SUMMARY_HEADERS + ["status", "seconds"], rows))
    _print_per_type_breakdown(tasks, report)
    if args.seeds and len(args.seeds) > 1:
        agg_rows = report.aggregate(tasks)
        if agg_rows:
            print("\ncross-seed aggregation (mean +/- 95% CI):")
            headers = list(agg_rows[0].keys())
            print(format_table(headers, [[row.get(h) for h in headers] for row in agg_rows]))
    print(report.summary())
    if args.out:
        payload = {
            "summary": {
                "tasks": len(report.records),
                "ok": report.num_ok,
                "cached": report.num_cached,
                "failed": report.num_failed,
                "workers": report.workers,
                "wall_seconds": report.wall_seconds,
            },
            "results": {
                tid: result.to_json() for tid, result in report.results.items()
            },
        }
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh)
        print(f"wrote {len(report.results)} results to {args.out}")
    if report.num_failed:
        for record in report.failures():
            logger.error("FAILED %s:\n%s", record.task_id, record.error)
        return 1
    return 0


def _attach_sweep_obs(tasks, args: argparse.Namespace):
    """Attach per-cell observability: one trace file per task under
    ``--trace DIR``, plus the phase profiler with ``--profile``.

    Cells served from the result cache never execute, so they produce
    no trace file — the cache stores results, not event streams.
    """
    from dataclasses import replace as dc_replace
    from pathlib import Path

    trace_dir = Path(args.trace) if args.trace else None
    if trace_dir is not None:
        trace_dir.mkdir(parents=True, exist_ok=True)
    attached = []
    for task in tasks:
        path = None
        if trace_dir is not None:
            safe = re.sub(r"[^A-Za-z0-9._=-]+", "_", task.task_id)
            path = str(trace_dir / f"{safe}.jsonl")
        attached.append(
            dc_replace(
                task,
                obs=ObsConfig(
                    trace_path=path,
                    trace_events=tuple(args.trace_events),
                    profile=args.profile,
                ),
            )
        )
    return attached


def _print_per_type_breakdown(tasks, report) -> None:
    """Per-GPU-generation metric rows for heterogeneous sweep cells."""
    type_rows = []
    for task in tasks:
        result = report.results.get(task.task_id)
        if result is None or not is_heterogeneous(result):
            continue
        for row in per_type_rows(result):
            type_rows.append(
                [
                    task.task_id,
                    row["gpu_type"],
                    row["gpus"],
                    row["gpu_time"],
                    row["utilization"],
                    row["weighted_rho"],
                    row["weighted_jct"],
                    row["weighted_placement"],
                ]
            )
    if type_rows:
        print("\nper-GPU-type breakdown (rho/jct/placement weighted by GPU time):")
        print(format_table(
            ["task", "gpu_type", "gpus", "gpu_time", "util",
             "rho", "jct", "placement"],
            type_rows,
        ))


def _cmd_bench(args: argparse.Namespace) -> int:
    if args.suite == "sim":
        return _cmd_bench_sim(args)
    from repro.perf.bench import (
        AUCTION_PROFILES,
        E2E_PROFILES,
        check_regression,
        load_bench,
        run_bench,
        write_bench,
    )

    profiles = list(args.profiles or AUCTION_PROFILES)
    e2e = list(args.e2e)
    repeats = args.repeats
    if args.quick:
        # CI smoke mode: one repeat, skip the (minutes-long) large
        # auction profile and the medium end-to-end run.
        profiles = [p for p in profiles if p != "large"]
        e2e = [p for p in e2e if p == "e2e-small"]
        repeats = 1
    unknown = [p for p in profiles if p not in AUCTION_PROFILES] + [
        p for p in e2e if p not in E2E_PROFILES
    ]
    if unknown:
        print(
            f"unknown bench profiles: {unknown}; known: "
            f"{sorted(AUCTION_PROFILES)} + {sorted(E2E_PROFILES)}",
            file=sys.stderr,
        )
        return 2
    baseline = None
    if args.check:
        baseline = load_bench(args.check)
    payload = run_bench(profiles=profiles, e2e_profiles=e2e, repeats=repeats)
    rows = []
    for name in profiles:
        record = payload["auction"][name]
        reference = record.get("reference", {})
        rows.append([
            name,
            record["gpus"],
            record["contention"],
            record["apps"],
            record["fast"]["seconds"],
            reference.get("seconds", "-"),
            record.get("speedup") or "-",
            record["fast"]["rho_probes"],
        ])
    print(format_table(
        ["profile", "gpus", "contention", "apps", "fast_s", "ref_s", "speedup", "probes"],
        rows,
    ))
    for name in e2e:
        record = payload["end_to_end"][name]
        print(f"{name}: {record['seconds']:.2f}s wall, "
              f"{record['num_rounds']} rounds, "
              f"{record['events_processed']} events")
    if args.out:
        write_bench(payload, args.out)
        print(f"wrote {args.out}")
    if baseline is not None:
        gate = tuple(
            p for p in ("medium", "hetero-medium", "large") if p in profiles
        )
        if not gate:
            print("regression check skipped: no gated profile "
                  "(medium/hetero-medium/large) in this run")
            return 0
        failures = check_regression(
            payload, baseline, max_slowdown=args.max_slowdown, gate_profiles=gate
        )
        if failures:
            for failure in failures:
                print(f"REGRESSION {failure}", file=sys.stderr)
            return 1
        print("regression check passed vs", args.check)
    return 0


def _cmd_bench_sim(args: argparse.Namespace) -> int:
    """``repro bench sim``: the whole-trace incremental-vs-cold suite."""
    from repro.perf.bench import (
        SIM_PROFILES,
        check_sim_regression,
        load_bench,
        run_sim_suite,
        write_sim_bench,
    )

    # sim-xl is explicit-only: the scale gate costs minutes per mode,
    # so a bare ``repro bench sim`` must not pick it up by default.
    default_profiles = [p for p in SIM_PROFILES if p != "sim-xl"]
    profiles = list(args.profiles or default_profiles)
    repeats = args.repeats
    if args.quick:
        # CI smoke mode: the two small profiles only — the scalar
        # baseline and the throughput-matrix variant, so the per-family
        # carve kernel is gated from day one.  Two repeats per mode
        # (min-of-N) so the gated speedup ratio is not a single
        # unaveraged timing pair on a noisy shared runner.  sim-xl is
        # additionally allowed through when asked for by name (the CI
        # scale smoke), at a single repeat — its gates are byte-identity
        # under a wall-clock budget plus the deterministic
        # rescore-carves-per-move ceiling, not a timing ratio.
        quick_set = ("sim-small", "sim-matrix")
        quick_allowed = quick_set + ("sim-xl",)
        dropped = [p for p in profiles if p not in quick_allowed]
        if args.profiles and dropped:
            logger.warning(
                "--quick runs only %s; dropping explicitly requested "
                "profiles %s", list(quick_allowed), dropped,
            )
        profiles = [p for p in profiles if p in quick_allowed] or list(quick_set)
        if "sim-xl" in profiles:
            repeats = 1
        else:
            repeats = min(repeats, 2) if repeats else 2
    unknown = [p for p in profiles if p not in SIM_PROFILES]
    if unknown:
        print(
            f"unknown sim bench profiles: {unknown}; known: {sorted(SIM_PROFILES)}",
            file=sys.stderr,
        )
        return 2
    baseline = load_bench(args.check) if args.check else None
    payload = run_sim_suite(profiles=profiles, repeats=repeats)
    rows = []
    for name in profiles:
        record = payload["sim"][name]
        obs = record.get("obs") or {}
        solver = record["incremental"].get("solver") or {}
        carves_per_move = solver.get("rescore_carves_per_move")
        rows.append([
            name,
            record["gpus"],
            round(record["peak_contention"], 2),
            record["rounds"],
            round(record["incremental"]["seconds"], 3),
            round(record["cold"]["seconds"], 3),
            round(record["speedup"], 2) if record["speedup"] else "-",
            round(record["incremental"]["events_per_sec"], 1),
            record["incremental"]["rho_probes"],
            round(carves_per_move, 2) if carves_per_move is not None else "-",
            record["identical_results"],
            round(obs["trace_overhead"], 3) if obs.get("trace_overhead") else "-",
            obs.get("events", "-"),
        ])
    print(format_table(
        ["profile", "gpus", "contention", "rounds", "inc_s", "cold_s",
         "speedup", "events/s", "probes", "carve/mv", "identical",
         "trace_ovh", "trace_ev"],
        rows,
    ))
    for name in profiles:
        obs = payload["sim"][name].get("obs") or {}
        if obs.get("profile"):
            _print_profile(obs["profile"], title=f"\n{name} traced-run phase profile:")
    if args.out:
        write_sim_bench(payload, args.out)
        print(f"wrote {args.out} (trajectory appended)")
    if baseline is not None:
        gate = tuple(
            p
            for p in ("sim-small", "sim-medium", "sim-matrix", "sim-xl")
            if p in profiles
        )
        if not gate:
            print("regression check skipped: no gated profile "
                  "(sim-small/sim-medium/sim-matrix/sim-xl) in this run")
            return 0
        failures = check_sim_regression(
            payload, baseline, max_slowdown=args.max_slowdown, gate_profiles=gate
        )
        if failures:
            for failure in failures:
                print(f"REGRESSION {failure}", file=sys.stderr)
            return 1
        print("regression check passed vs", args.check)
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.sweep import ResultCache

    directory = Path(args.dir)
    if not directory.is_dir():
        print(f"no cache directory at {directory}", file=sys.stderr)
        return 2
    cache = ResultCache(directory)
    entries = cache.entries()
    if args.action == "stats":
        total = sum(e.size_bytes for e in entries)
        print(f"{len(entries)} entries, {total / 1e6:.2f} MB in {directory}")
        print(f"schema version: {cache.schema_version}")
        if entries:
            import datetime

            oldest = datetime.datetime.fromtimestamp(entries[0].modified)
            newest = datetime.datetime.fromtimestamp(entries[-1].modified)
            print(f"oldest entry: {oldest:%Y-%m-%d %H:%M}, newest: {newest:%Y-%m-%d %H:%M}")
        return 0
    if args.action == "list":
        rows = []
        for entry in entries[-args.limit:] if args.limit else entries:
            header = entry.describe()
            rows.append([
                entry.key[:12],
                header.get("task_id") or "?",
                header.get("schema_version"),
                entry.size_bytes,
            ])
        print(format_table(["key", "task_id", "schema", "bytes"], rows))
        return 0
    # prune
    kwargs = {}
    if args.max_age_days is not None:
        kwargs["max_age_seconds"] = args.max_age_days * 86400.0
    if args.max_size_mb is not None:
        kwargs["max_total_bytes"] = int(args.max_size_mb * 1e6)
    if args.max_entries is not None:
        kwargs["max_entries"] = args.max_entries
    try:
        stats = cache.prune(**kwargs)
    except ValueError as error:
        print(f"cache prune: {error}", file=sys.stderr)
        return 2
    print(
        f"pruned {stats.removed} entries ({stats.bytes_freed / 1e6:.2f} MB), "
        f"{stats.kept} kept, {stats.tmp_removed} orphaned temp files removed"
    )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.file is not None:
        return _cmd_trace_inspect(args)
    _fill_duration_default(args)
    trace = generate_trace(
        GeneratorConfig(
            num_apps=args.apps,
            seed=args.seed,
            duration_scale=args.duration_scale,
            perf_matrix=args.perf_matrix or (),
        )
    )
    trace.to_jsonl(args.out)
    extra = " (perf matrix embedded)" if trace.perf_matrix else ""
    print(f"wrote {trace.num_apps} apps / {trace.num_jobs} jobs to {args.out}{extra}")
    return 0


def _cmd_trace_inspect(args: argparse.Namespace) -> int:
    """``repro trace FILE``: summarize / validate / filter a decision trace."""
    try:
        header, events = read_trace(args.file)
    except (OSError, TraceError) as error:
        print(f"cannot read trace {args.file!r}: {error}", file=sys.stderr)
        return 2
    if args.validate:
        problems = validate_events(events, header=header)
        if problems:
            for problem in problems:
                print(f"INVALID {problem}", file=sys.stderr)
            return 1
        print(f"trace OK: {len(events)} events, schema {header.get('schema')}")
        return 0
    if args.filter or args.app:
        selected = filter_events(events, kinds=args.filter or None, app=args.app)
        if args.limit:
            selected = selected[: args.limit]
        for event in selected:
            print(json.dumps(event, sort_keys=True))
        return 0
    summary = summarize_events(events)
    print(f"trace {args.file}")
    meta = {k: v for k, v in header.items() if k not in ("kind",)}
    print(f"header: {json.dumps(meta, sort_keys=True)}")
    print(f"{summary['events']} events, rounds={summary['rounds']}, "
          f"apps={summary['apps']}, "
          f"t=[{summary['t_min']}, {summary['t_max']}]")
    rows = [[kind, count] for kind, count in sorted(summary["by_kind"].items())]
    if rows:
        print(format_table(["kind", "events"], rows))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve``: run the durable control-plane daemon."""
    from repro.service import ControlPlane, DurableStore, policies_from_json
    from repro.service.api import ServiceServer, serve_forever

    admission = None
    if args.policies:
        try:
            with open(args.policies, "r", encoding="utf-8") as handle:
                admission = policies_from_json(json.load(handle))
        except (OSError, ValueError, TypeError) as error:
            print(f"cannot load tenant policies {args.policies!r}: {error}",
                  file=sys.stderr)
            return 2
    store = DurableStore(args.dir, fsync=args.fsync)
    kwargs = {"admission": admission} if admission is not None else {}
    plane = ControlPlane(
        store,
        worker_ttl=args.worker_ttl,
        dispatch_timeout=args.dispatch_timeout,
        **kwargs,
    )
    server = ServiceServer(plane, host=args.host, port=args.port)
    endpoint = server.write_endpoint_file(args.dir)
    host, port = server.endpoint
    print(f"repro service: epoch {plane.epoch} on http://{host}:{port} "
          f"(endpoint file {endpoint})")
    try:
        serve_forever(
            plane,
            server,
            poll_interval=args.poll_interval,
            max_seconds=args.max_seconds,
            idle_exit=args.idle_exit,
        )
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    return 0


def _client_for(args: argparse.Namespace):
    from repro.service.api import ServiceClient

    return ServiceClient.from_dir(args.dir)


def _cmd_submit(args: argparse.Namespace) -> int:
    """``repro submit``: enqueue one job; prints the bare job id."""
    from repro.service.errors import ServiceError

    spec = {"kind": args.kind}
    if args.spec:
        try:
            extra = json.loads(args.spec)
            if not isinstance(extra, dict):
                raise ValueError("--spec must be a JSON object")
        except ValueError as error:
            print(f"bad --spec: {error}", file=sys.stderr)
            return 2
        spec.update(extra)
    try:
        job_id = _client_for(args).submit(
            spec,
            tenant=args.tenant,
            gpus=args.gpus,
            pool=args.pool,
            priority=args.priority,
            job_id=args.job_id,
            max_runtime_s=args.max_runtime_s,
        )
    except ServiceError as error:
        print(f"submit failed ({error.reason}): {error}", file=sys.stderr)
        return 1
    print(job_id)
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    """``repro worker``: pull-based executor against a running daemon."""
    from repro.service.errors import ServiceError
    from repro.service.worker import WorkerLoop

    try:
        client = _client_for(args)
        loop = WorkerLoop(
            client,
            name=args.name or "",
            capacity=args.capacity,
            poll_interval=args.poll_interval,
            max_seconds=args.max_seconds,
            idle_exit=args.idle_exit,
        )
        try:
            executed = loop.run()
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            loop.stop()
            executed = loop.executed
    except ServiceError as error:
        print(f"worker failed ({error.reason}): {error}", file=sys.stderr)
        return 1
    print(f"worker {loop.worker_id or '?'}: executed {executed} job(s)")
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    """``repro status``: one job's record, or a table of every job."""
    from repro.service.errors import ServiceError

    try:
        client = _client_for(args)
        if args.job:
            print(json.dumps(client.status(args.job), indent=2, sort_keys=True))
            return 0
        jobs = client.jobs(tenant=args.tenant, state=args.state)
        health = client.health()
    except ServiceError as error:
        print(f"status failed ({error.reason}): {error}", file=sys.stderr)
        return 1
    print(f"epoch {health['epoch']}, degraded={health['degraded']}, "
          f"{sum(health['jobs'].values())} jobs")
    rows = [
        [job["job_id"], job["tenant"], job["state"], job["gpus"],
         job["attempts"], job["detail"][:40]]
        for job in jobs
    ]
    if rows:
        print(format_table(
            ["job", "tenant", "state", "gpus", "attempts", "detail"], rows))
    return 0


def _cmd_cancel(args: argparse.Namespace) -> int:
    """``repro cancel``: cancel a job (idempotent on terminal states)."""
    from repro.service.errors import ServiceError

    try:
        state = _client_for(args).cancel(args.job)
    except ServiceError as error:
        print(f"cancel failed ({error.reason}): {error}", file=sys.stderr)
        return 1
    print(f"{args.job}: {state}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``repro`` argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Themis (NSDI 2020) reproduction: schedulers, traces, figures",
    )
    parser.add_argument("--log-level", choices=LOG_LEVELS, default="warning",
                        help="verbosity of the repro.* logger hierarchy on "
                             "stderr (debug shows per-cell sweep progress)")
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="run one scheduler over a scenario")
    _add_scenario_args(run_parser, default_apps=10)
    run_parser.add_argument("--scheduler", default="themis", choices=SCHEDULER_NAMES)
    run_parser.add_argument("--fairness-knob", type=float, default=None)
    _add_obs_args(run_parser,
                  trace_help="write the structured decision-event stream "
                             "(JSONL) to this path")
    run_parser.set_defaults(func=_cmd_run)

    compare_parser = sub.add_parser("compare", help="compare several schedulers")
    _add_scenario_args(compare_parser, default_apps=10)
    compare_parser.add_argument(
        "--schedulers", default="themis,gandiva,slaq,tiresias",
        help="comma-separated scheduler names",
    )
    _add_exec_args(compare_parser)
    compare_parser.set_defaults(func=_cmd_compare)

    figure_parser = sub.add_parser("figure", help="regenerate a paper figure")
    figure_parser.add_argument("name", help=f"one of {sorted(_FIGURES)}")
    _add_scenario_args(figure_parser, default_apps=8)
    _add_exec_args(figure_parser)
    figure_parser.set_defaults(func=_cmd_figure)

    sweep_parser = sub.add_parser(
        "sweep", help="run a scheduler x seed x knob matrix through the pool"
    )
    _add_scenario_args(sweep_parser, default_apps=6)
    sweep_parser.add_argument(
        "--schedulers", default="themis,gandiva,slaq,tiresias",
        help="comma-separated scheduler names (one matrix axis)",
    )
    sweep_parser.add_argument("--seeds", type=_int_list, default=None,
                              help="comma-separated workload seeds axis")
    sweep_parser.add_argument("--knobs", type=_float_list, default=None,
                              help="comma-separated fairness-knob axis "
                                   "(themis-only kwarg)")
    sweep_parser.add_argument("--leases", type=_float_list, default=None,
                              help="comma-separated lease-minutes axis")
    sweep_parser.add_argument("--contention", type=_float_list, default=None,
                              help="comma-separated contention-factor axis")
    sweep_parser.add_argument("--out", default=None,
                              help="write all results as JSON to this path")
    sweep_parser.add_argument("--verbose", action="store_true",
                              help="print one line per completed cell")
    sweep_parser.add_argument("--retries", type=int, default=0,
                              help="re-run a cell up to N extra times after "
                                   "transient failures (worker deaths, IO "
                                   "errors) with capped backoff")
    _add_obs_args(sweep_parser,
                  trace_help="directory for per-cell decision-event streams "
                             "(one <task_id>.jsonl per executed cell; cached "
                             "cells produce no trace)")
    _add_exec_args(sweep_parser)
    sweep_parser.set_defaults(func=_cmd_sweep)

    bench_parser = sub.add_parser(
        "bench", help="run the tracked auction/simulator benchmarks"
    )
    bench_parser.add_argument(
        "suite", nargs="?", choices=("auction", "sim"), default="auction",
        help="auction: PA-solver microbenchmarks (BENCH_auction.json); "
             "sim: whole-trace incremental-vs-cold macro-benchmark "
             "(BENCH_sim.json)",
    )
    bench_parser.add_argument(
        "--profiles", type=lambda t: [p.strip() for p in t.split(",") if p.strip()],
        default=None,
        help="comma-separated profiles; defaults to every profile of the "
             "selected suite (auction: small,medium,hetero-medium,large; "
             "sim: sim-small,sim-medium,sim-8x,sim-hetero,sim-failures,"
             "sim-matrix,sim-migration; the sim-xl scale gate runs only "
             "when named explicitly)",
    )
    bench_parser.add_argument(
        "--e2e", type=lambda t: [p.strip() for p in t.split(",") if p.strip()],
        default=["e2e-small", "e2e-medium"],
        help="comma-separated end-to-end profiles",
    )
    bench_parser.add_argument("--repeats", type=_positive_int, default=3,
                              help="timing repeats per profile (min is reported)")
    bench_parser.add_argument("--quick", action="store_true",
                              help="CI smoke mode: 1 repeat; auction suite skips "
                                   "large/e2e-medium, sim suite runs "
                                   "sim-small + sim-matrix only (plus sim-xl "
                                   "when requested by name, at 1 repeat)")
    bench_parser.add_argument("--out", default=None,
                              help="write the bench payload to this JSON path")
    bench_parser.add_argument("--check", default=None,
                              help="compare against a committed baseline JSON; "
                                   "exit 1 on >max-slowdown regression")
    bench_parser.add_argument("--max-slowdown", type=float, default=2.0,
                              help="allowed speedup-ratio slack vs the baseline")
    bench_parser.set_defaults(func=_cmd_bench)

    cache_parser = sub.add_parser(
        "cache", help="inspect or prune a sweep result-cache directory"
    )
    cache_parser.add_argument("action", choices=("stats", "list", "prune"),
                              help="stats: totals; list: entries; prune: GC")
    cache_parser.add_argument("--dir", default=".sweep-cache",
                              help="cache directory (default .sweep-cache)")
    cache_parser.add_argument("--limit", type=_positive_int, default=None,
                              help="list: show only the newest N entries")
    cache_parser.add_argument("--max-age-days", type=float, default=None,
                              help="prune: drop entries older than this")
    cache_parser.add_argument("--max-size-mb", type=float, default=None,
                              help="prune: keep total size under this bound")
    cache_parser.add_argument("--max-entries", type=int, default=None,
                              help="prune: keep at most this many entries")
    cache_parser.set_defaults(func=_cmd_cache)

    trace_parser = sub.add_parser(
        "trace",
        help="generate a workload trace, or inspect a decision trace",
        description="Without a FILE argument: generate a workload trace "
                    "JSONL (--apps/--seed/--out).  With FILE: inspect a "
                    "decision-event stream produced by 'repro run --trace' — "
                    "summarize it, --validate it against the event schema, "
                    "or --filter/--app it down to matching events.",
    )
    trace_parser.add_argument("file", nargs="?", default=None,
                              help="decision-trace JSONL to inspect "
                                   "(omit to generate a workload trace)")
    trace_parser.add_argument("--apps", type=int, default=30)
    trace_parser.add_argument("--seed", type=int, default=42)
    trace_parser.add_argument("--duration-scale", type=float, default=None)
    trace_parser.add_argument("--cluster", choices=("sim", "testbed"), default="sim")
    trace_parser.add_argument("--perf-matrix", type=_perf_matrix, default=None,
                              help="embed a throughput matrix (preset name, "
                                   ".json file, or inline spec) into the "
                                   "trace header")
    trace_parser.add_argument("--out", default="trace.jsonl")
    trace_parser.add_argument("--validate", action="store_true",
                              help="inspect mode: check the stream against "
                                   "the typed event schema; exit 1 on "
                                   "violations")
    trace_parser.add_argument("--filter", type=_event_kinds, default=(),
                              help="inspect mode: print only these event "
                                   "kinds, one JSON object per line")
    trace_parser.add_argument("--app", default=None,
                              help="inspect mode: print only events touching "
                                   "this app id")
    trace_parser.add_argument("--limit", type=_positive_int, default=None,
                              help="inspect mode: print at most N events")
    trace_parser.set_defaults(func=_cmd_trace)

    serve_parser = sub.add_parser(
        "serve",
        help="run the crash-safe control-plane daemon",
        description="Long-lived scheduler service over a durable WAL + "
                    "snapshot store.  Writes service.json into --dir so "
                    "'repro submit/status/cancel --dir DIR' find it.",
    )
    serve_parser.add_argument("--dir", required=True,
                              help="durable store directory (WAL, snapshots, "
                                   "endpoint file)")
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=0,
                              help="TCP port (0 picks an ephemeral port)")
    serve_parser.add_argument("--poll-interval", type=float, default=0.1,
                              help="seconds between control-plane ticks")
    serve_parser.add_argument("--max-seconds", type=float, default=None,
                              help="exit after this long (CI smoke knob)")
    serve_parser.add_argument("--idle-exit", type=float, default=None,
                              help="exit once idle (no active jobs) this long")
    serve_parser.add_argument("--fsync", action="store_true",
                              help="fsync every WAL append (durability over "
                                   "throughput)")
    serve_parser.add_argument("--policies", default=None,
                              help="JSON file with a list of tenant admission "
                                   "policies (tenant '*' sets the default)")
    serve_parser.add_argument("--worker-ttl", type=float, default=5.0,
                              help="seconds of heartbeat silence before a "
                                   "worker is reaped and its jobs re-queued")
    serve_parser.add_argument("--dispatch-timeout", type=float, default=30.0,
                              help="seconds a claimed job may sit dispatched "
                                   "before the claim is revoked")
    serve_parser.set_defaults(func=_cmd_serve)

    worker_parser = sub.add_parser(
        "worker",
        help="run a pull-based worker against a 'repro serve' daemon",
        description="Registers with the daemon found via --dir, then "
                    "claims, executes (one child process per job) and "
                    "reports jobs until stopped.  Run several for a "
                    "fleet; kill any of them freely — leases and "
                    "dispatch tokens keep every job exactly-once.",
    )
    worker_parser.add_argument("--dir", required=True,
                               help="store directory of the running service")
    worker_parser.add_argument("--name", default=None,
                               help="human-readable worker name (logs only)")
    worker_parser.add_argument("--capacity", type=_positive_int, default=1,
                               help="jobs this worker may hold at once")
    worker_parser.add_argument("--poll-interval", type=float, default=0.2,
                               help="seconds between claim polls when idle")
    worker_parser.add_argument("--max-seconds", type=float, default=None,
                               help="exit after this long (CI smoke knob)")
    worker_parser.add_argument("--idle-exit", type=float, default=None,
                               help="exit once no work was granted this long")
    worker_parser.set_defaults(func=_cmd_worker)

    submit_parser = sub.add_parser(
        "submit", help="submit a job to a running 'repro serve' daemon"
    )
    submit_parser.add_argument("--dir", required=True,
                               help="store directory of the running service")
    submit_parser.add_argument("--kind", default="noop",
                               choices=("noop", "sleep", "fail", "sim"),
                               help="spec kind the daemon executor interprets")
    submit_parser.add_argument("--spec", default=None,
                               help="JSON object merged into the job spec")
    submit_parser.add_argument("--tenant", default="default")
    submit_parser.add_argument("--gpus", type=_positive_int, default=1)
    submit_parser.add_argument("--pool", default="default")
    submit_parser.add_argument("--priority", type=int, default=0)
    submit_parser.add_argument("--job-id", default=None,
                               help="explicit job id (idempotent resubmission)")
    submit_parser.add_argument("--max-runtime-s", type=float, default=None,
                               help="deadline: fail the job transiently if "
                                    "one execution runs longer than this")
    submit_parser.set_defaults(func=_cmd_submit)

    status_parser = sub.add_parser(
        "status", help="show one job, or every job, of a running daemon"
    )
    status_parser.add_argument("--dir", required=True,
                               help="store directory of the running service")
    status_parser.add_argument("job", nargs="?", default=None,
                               help="job id (omit for the full table)")
    status_parser.add_argument("--tenant", default=None,
                               help="table mode: only this tenant's jobs")
    status_parser.add_argument("--state", default=None,
                               help="table mode: only jobs in this state")
    status_parser.set_defaults(func=_cmd_status)

    cancel_parser = sub.add_parser(
        "cancel", help="cancel a job on a running daemon (idempotent)"
    )
    cancel_parser.add_argument("--dir", required=True,
                               help="store directory of the running service")
    cancel_parser.add_argument("job", help="job id to cancel")
    cancel_parser.set_defaults(func=_cmd_cancel)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    setup_logging(args.log_level)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests
    raise SystemExit(main())
