"""Command-line interface: run scenarios, comparisons and paper figures.

Examples::

    python -m repro run --scheduler themis --apps 12 --seed 1
    python -m repro compare --schedulers themis,tiresias --apps 10
    python -m repro figure fig02
    python -m repro trace --apps 30 --out trace.jsonl

The CLI is a thin shell over :mod:`repro.experiments`; everything it
prints comes from the same figure/report code the benchmarks use.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.experiments.config import ScenarioConfig, sim_scenario, testbed_scenario
from repro.experiments.figures import (
    fig01_task_duration_cdf,
    fig02_placement_throughput,
    fig04_knob_sweep,
    fig04c_lease_sweep,
    fig05_to_07_macrobenchmark,
    fig08_timeline,
    fig09_network_sweep,
    fig10_contention_sweep,
    fig11_bid_error_sweep,
)
from repro.experiments.report import format_figure, format_table
from repro.experiments.runner import compare_schedulers, run_scenario
from repro.metrics.fairness import jain_index, max_fairness
from repro.metrics.jct import average_jct
from repro.metrics.placement import score_summary
from repro.schedulers.registry import SCHEDULER_NAMES
from repro.workload.generator import GeneratorConfig, generate_trace

#: Figure name -> zero-argument callable (scenario-taking ones get a
#: small default so the CLI stays interactive-speed).
_FIGURES = {
    "fig01": lambda s: fig01_task_duration_cdf(s),
    "fig02": lambda s: fig02_placement_throughput(),
    "fig04ab": lambda s: fig04_knob_sweep(s, knobs=(0.0, 0.4, 0.8, 1.0)),
    "fig04c": lambda s: fig04c_lease_sweep(s, leases=(10.0, 20.0, 40.0)),
    "fig05-07": lambda s: fig05_to_07_macrobenchmark(s),
    "fig08": lambda s: fig08_timeline(),
    "fig09": lambda s: fig09_network_sweep(
        s, fractions=(0.0, 0.5, 1.0), schedulers=("themis", "tiresias")
    ),
    "fig10": lambda s: fig10_contention_sweep(s, factors=(1.0, 2.0)),
    "fig11": lambda s: fig11_bid_error_sweep(s, thetas=(0.0, 0.2)),
}


def _scenario_from_args(args: argparse.Namespace) -> ScenarioConfig:
    builder = sim_scenario if args.cluster == "sim" else testbed_scenario
    return builder(
        num_apps=args.apps,
        seed=args.seed,
        duration_scale=args.duration_scale,
    ).replace(lease_minutes=args.lease)


def _add_scenario_args(parser: argparse.ArgumentParser, default_apps: int) -> None:
    parser.add_argument("--cluster", choices=("sim", "testbed"), default="testbed",
                        help="256-GPU simulated cluster or 50-GPU testbed")
    parser.add_argument("--apps", type=int, default=default_apps,
                        help="number of apps to generate")
    parser.add_argument("--seed", type=int, default=42, help="workload seed")
    parser.add_argument("--duration-scale", type=float, default=None,
                        help="scale factor on job durations")
    parser.add_argument("--lease", type=float, default=20.0,
                        help="GPU lease duration in minutes")


def _fill_duration_default(args: argparse.Namespace) -> None:
    if args.duration_scale is None:
        args.duration_scale = 0.4 if args.cluster == "sim" else 0.08


def _summary_row(name: str, result) -> list:
    rhos = result.rhos()
    return [
        name,
        max_fairness(rhos),
        jain_index(rhos),
        average_jct(result.completion_times()),
        score_summary(result.placement_scores())["mean"],
        result.total_gpu_time,
        result.peak_contention,
    ]


_SUMMARY_HEADERS = [
    "scheduler", "max_rho", "jain", "avg_jct",
    "placement", "gpu_time", "contention",
]


def _cmd_run(args: argparse.Namespace) -> int:
    _fill_duration_default(args)
    scenario = _scenario_from_args(args)
    kwargs = {}
    if args.fairness_knob is not None:
        kwargs["fairness_knob"] = args.fairness_knob
    result = run_scenario(scenario, args.scheduler, kwargs or None)
    print(format_table(_SUMMARY_HEADERS, [_summary_row(args.scheduler, result)]))
    if not result.completed:
        print("warning: run hit max_minutes before all apps finished")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    _fill_duration_default(args)
    scenario = _scenario_from_args(args)
    names = [n.strip() for n in args.schedulers.split(",") if n.strip()]
    unknown = [n for n in names if n not in SCHEDULER_NAMES]
    if unknown:
        print(f"unknown schedulers: {unknown}; known: {list(SCHEDULER_NAMES)}",
              file=sys.stderr)
        return 2
    results = compare_schedulers(scenario, names)
    rows = [_summary_row(name, results[name]) for name in names]
    print(format_table(_SUMMARY_HEADERS, rows))
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    _fill_duration_default(args)
    if args.name not in _FIGURES:
        print(f"unknown figure {args.name!r}; known: {sorted(_FIGURES)}",
              file=sys.stderr)
        return 2
    scenario = _scenario_from_args(args)
    figure = _FIGURES[args.name](scenario)
    print(format_figure(figure))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    _fill_duration_default(args)
    trace = generate_trace(
        GeneratorConfig(
            num_apps=args.apps, seed=args.seed, duration_scale=args.duration_scale
        )
    )
    trace.to_jsonl(args.out)
    print(f"wrote {trace.num_apps} apps / {trace.num_jobs} jobs to {args.out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``repro`` argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Themis (NSDI 2020) reproduction: schedulers, traces, figures",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="run one scheduler over a scenario")
    _add_scenario_args(run_parser, default_apps=10)
    run_parser.add_argument("--scheduler", default="themis", choices=SCHEDULER_NAMES)
    run_parser.add_argument("--fairness-knob", type=float, default=None)
    run_parser.set_defaults(func=_cmd_run)

    compare_parser = sub.add_parser("compare", help="compare several schedulers")
    _add_scenario_args(compare_parser, default_apps=10)
    compare_parser.add_argument(
        "--schedulers", default="themis,gandiva,slaq,tiresias",
        help="comma-separated scheduler names",
    )
    compare_parser.set_defaults(func=_cmd_compare)

    figure_parser = sub.add_parser("figure", help="regenerate a paper figure")
    figure_parser.add_argument("name", help=f"one of {sorted(_FIGURES)}")
    _add_scenario_args(figure_parser, default_apps=8)
    figure_parser.set_defaults(func=_cmd_figure)

    trace_parser = sub.add_parser("trace", help="generate a trace JSONL file")
    trace_parser.add_argument("--apps", type=int, default=30)
    trace_parser.add_argument("--seed", type=int, default=42)
    trace_parser.add_argument("--duration-scale", type=float, default=None)
    trace_parser.add_argument("--cluster", choices=("sim", "testbed"), default="sim")
    trace_parser.add_argument("--out", default="trace.jsonl")
    trace_parser.set_defaults(func=_cmd_trace)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests
    raise SystemExit(main())
