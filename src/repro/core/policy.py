"""The offline finish-time fair policy of Section 4, solved exactly.

The paper formalises Themis' goal as an optimisation program: assign
every GPU ``(x, y)`` to at most one app so that the maximum deviation
``eps_max`` of any app's ``rho`` above the ideal value is minimised

    min eps_max
    s.t. rho_i <= N + eps_i,  eps_i <= eps_max,  sum_i G_xyi = 1

with ``rho_i`` a placement-sensitive function of the allocation.  The
online auction only approximates this; this module solves the program
*exactly* for small instances by enumerating per-machine GPU splits,
giving tests (and users) a ground-truth lower bound to compare the
mechanism against.

This mirrors the paper's own justification ("the solution to the above
induces sharing incentive in the case where all apps start at the same
time, and resources are apportioned offline").
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.fairness import FairnessEstimator
from repro.workload.app import App


@dataclass(frozen=True)
class OfflineSolution:
    """Result of the exact offline max-min fairness program."""

    allocation: dict[str, dict[int, int]]
    rhos: dict[str, float]
    max_rho: float

    @property
    def eps_max(self) -> float:
        """Deviation of the worst app from the N-app ideal."""
        return self.max_rho - len(self.rhos)


def solve_offline_max_min(
    apps: Sequence[App],
    machine_free_gpus: Mapping[int, int],
    estimator: FairnessEstimator,
    now: float = 0.0,
    max_states: int = 500_000,
) -> OfflineSolution:
    """Exact minimiser of the maximum rho over all GPU assignments.

    Enumerates every split of each machine's free GPUs across apps
    (lexicographically minimising the sorted rho vector, so the
    solution is leximin — the natural strengthening of min-max the
    paper's max-min policy implies).  Exponential; guarded by
    ``max_states`` and intended for validation-sized instances.
    """
    app_list = list(apps)
    if not app_list:
        raise ValueError("need at least one app")
    machines = sorted(m for m, c in machine_free_gpus.items() if c > 0)
    snapshots = {app.app_id: estimator.snapshot(app) for app in app_list}

    def splits(count: int, ways: int):
        if ways == 1:
            for take in range(count + 1):
                yield (take,)
            return
        for take in range(count + 1):
            for rest in splits(count - take, ways - 1):
                yield (take,) + rest

    options = [list(splits(machine_free_gpus[m], len(app_list))) for m in machines]
    total_states = 1
    for opts in options:
        total_states *= len(opts)
        if total_states > max_states:
            raise ValueError(
                f"instance too large for exact offline solve ({total_states} states)"
            )

    best_key = None
    best_allocation: dict[str, dict[int, int]] = {}
    best_rhos: dict[str, float] = {}
    for combo in itertools.product(*options):
        allocation: dict[str, dict[int, int]] = {app.app_id: {} for app in app_list}
        for machine_index, split in enumerate(combo):
            machine_id = machines[machine_index]
            for app_index, take in enumerate(split):
                if take > 0:
                    allocation[app_list[app_index].app_id][machine_id] = take
        rhos = {}
        for app in app_list:
            counts = dict(app.allocation().per_machine_counts())
            for machine_id, take in allocation[app.app_id].items():
                counts[machine_id] = counts.get(machine_id, 0) + take
            rhos[app.app_id] = estimator.rho_from_snapshot(
                snapshots[app.app_id], now, counts
            )
        # Leximin: compare the descending-sorted rho vector.
        key = tuple(sorted(rhos.values(), reverse=True))
        if best_key is None or key < best_key:
            best_key = key
            best_allocation = allocation
            best_rhos = rhos
    finite = [r for r in best_rhos.values() if not math.isinf(r)]
    max_rho = max(best_rhos.values()) if best_rhos else math.inf
    return OfflineSolution(
        allocation={a: b for a, b in best_allocation.items() if b},
        rhos=best_rhos,
        max_rho=max_rho if finite or math.isinf(max_rho) else max(finite),
    )
