"""GPU leases (Section 3).

"Each GPU in a THEMIS-managed cluster has a lease associated with it.
The lease dictates how long an app can assume ownership of the GPU ...
When a lease expires, the resource is made available for allocation."

The manager tracks which app (and job) holds each GPU and until when.
Expired leases are *not* auto-revoked: the GPU enters the next auction's
pool and, if re-won by the same job, the lease renews seamlessly with
no checkpoint cost — matching the prototype's behaviour where only an
actual ownership change forces a checkpoint/restore cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.cluster.topology import Gpu


@dataclass
class Lease:
    """Ownership of one GPU by one app (and the job using it)."""

    gpu: Gpu
    app_id: str
    job_id: str
    start: float
    expiry: float

    def is_expired(self, now: float) -> bool:
        """True once the lease has run out at time ``now``."""
        return now >= self.expiry - 1e-9

    def remaining(self, now: float) -> float:
        """Minutes of lease left (0 when expired)."""
        return max(0.0, self.expiry - now)


class LeaseManager:
    """Tracks the lease on every GPU in the cluster.

    Calling :meth:`track` with the cluster's GPU set additionally
    maintains the *complement* — the unleased GPUs — incrementally, so
    :meth:`pool_for_auction` assembles the auction pool from the leases
    and the free dict instead of rescanning every GPU in the cluster
    each round.  Untracked managers (the default, and the cold baseline
    of ``repro bench sim``) keep the original full-scan behaviour; both
    produce the same sorted pool.
    """

    def __init__(self) -> None:
        self._leases: dict[int, Lease] = {}
        self._free: Optional[dict[int, Gpu]] = None
        #: Forced-revocation tally by reason ("failure", "preemption",
        #: ...) — ordinary releases/renewals do not count.
        self.revocations: dict[str, int] = {}

    def track(self, all_gpus: Iterable[Gpu]) -> None:
        """Maintain the unleased-GPU set incrementally for ``all_gpus``."""
        self._free = {
            gpu.gpu_id: gpu for gpu in all_gpus if gpu.gpu_id not in self._leases
        }

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def grant(self, gpu: Gpu, app_id: str, job_id: str, now: float, duration: float) -> Lease:
        """Grant (or renew) the lease on ``gpu`` for ``duration`` minutes.

        Granting over an existing lease is allowed — it is exactly the
        renewal / ownership-transfer path after an auction.
        """
        if duration <= 0:
            raise ValueError(f"lease duration must be > 0, got {duration}")
        lease = Lease(gpu=gpu, app_id=app_id, job_id=job_id, start=now, expiry=now + duration)
        self._leases[gpu.gpu_id] = lease
        if self._free is not None:
            self._free.pop(gpu.gpu_id, None)
        return lease

    def release(self, gpu: Gpu) -> Optional[Lease]:
        """Drop the lease on ``gpu`` (no-op when unleased)."""
        lease = self._leases.pop(gpu.gpu_id, None)
        if lease is not None and self._free is not None:
            self._free[gpu.gpu_id] = gpu
        return lease

    def release_all(self, gpus: Iterable[Gpu]) -> None:
        """Drop leases on several GPUs."""
        for gpu in gpus:
            self.release(gpu)

    def revoke(self, gpu: Gpu, reason: str = "forced") -> Optional[Lease]:
        """Forcibly drop the lease on ``gpu``, recording ``reason``.

        Same state change as :meth:`release`, but counted in
        :attr:`revocations` — a revocation is an ownership loss the
        holder did not choose (machine failure, preemption), which the
        control plane treats as a transient worker loss rather than a
        job failure.  No-op (and uncounted) when ``gpu`` is unleased.
        """
        lease = self.release(gpu)
        if lease is not None:
            self.revocations[reason] = self.revocations.get(reason, 0) + 1
        return lease

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def lease_of(self, gpu: Gpu) -> Optional[Lease]:
        """The active lease on ``gpu``, if any."""
        return self._leases.get(gpu.gpu_id)

    def holder(self, gpu: Gpu) -> Optional[str]:
        """The app currently holding ``gpu``, if any."""
        lease = self._leases.get(gpu.gpu_id)
        return lease.app_id if lease else None

    def is_leased(self, gpu: Gpu) -> bool:
        """True when ``gpu`` currently has a lease (expired or not)."""
        return gpu.gpu_id in self._leases

    def leases_of_app(self, app_id: str) -> list[Lease]:
        """All leases held by one app, in gpu_id order."""
        return [
            self._leases[gpu_id]
            for gpu_id in sorted(self._leases)
            if self._leases[gpu_id].app_id == app_id
        ]

    def expired_gpus(self, now: float) -> list[Gpu]:
        """GPUs whose lease has expired by ``now``, in gpu_id order."""
        return [
            lease.gpu
            for gpu_id, lease in sorted(self._leases.items())
            if lease.is_expired(now)
        ]

    def unleased_gpus(self, all_gpus: Iterable[Gpu]) -> list[Gpu]:
        """GPUs from ``all_gpus`` that carry no lease at all."""
        return [gpu for gpu in all_gpus if gpu.gpu_id not in self._leases]

    def free_gpus(self, all_gpus: Iterable[Gpu]) -> Iterable[Gpu]:
        """Unleased GPUs, served from the tracked free dict when available.

        Same set as :meth:`unleased_gpus`, but O(free) instead of
        O(cluster) under :meth:`track` — the per-round metrics sampler's
        hot path.  Iteration order is unspecified; callers needing
        determinism must aggregate order-independently (or sort).
        """
        if self._free is not None:
            return self._free.values()
        return self.unleased_gpus(all_gpus)

    def next_expiry(self, now: float) -> Optional[float]:
        """Earliest future lease expiry strictly after ``now`` (None when idle)."""
        future = [lease.expiry for lease in self._leases.values() if lease.expiry > now + 1e-9]
        return min(future) if future else None

    def pool_for_auction(self, now: float, all_gpus: Iterable[Gpu]) -> list[Gpu]:
        """The auction pool: unleased GPUs plus GPUs with expired leases.

        With :meth:`track` enabled the unleased side comes from the
        incrementally-maintained free dict (``all_gpus`` is ignored —
        it was captured at track time); otherwise every GPU is scanned.
        Either way the pool is sorted by gpu_id, so downstream rounds
        are identical.
        """
        if self._free is not None:
            pool = list(self._free.values())
            pool.extend(
                lease.gpu
                for lease in self._leases.values()
                if lease.is_expired(now)
            )
        else:
            pool = self.unleased_gpus(all_gpus)
            pool.extend(self.expired_gpus(now))
        return sorted(pool, key=lambda gpu: gpu.gpu_id)

    @property
    def active_lease_count(self) -> int:
        """Number of GPUs currently under lease."""
        return len(self._leases)

    def utilisation(self, total_gpus: int) -> float:
        """Fraction of the cluster under lease."""
        if total_gpus <= 0:
            raise ValueError(f"total_gpus must be > 0, got {total_gpus}")
        return len(self._leases) / total_gpus

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LeaseManager(active={len(self._leases)})"
