"""Bids: valuation functions over subsets of the offered GPUs.

Section 5.2: "In response to an offer, each AGENT prepares a single bid.
This bid contains a valuation function V that provides, for each
resource subset, a value, i.e. the AGENT's estimate of the finish-time
fair metric the app will achieve with the allocation of the resource
subset."

A :class:`Bid` is both things the paper describes: the queryable
valuation function (used by the arbiter's winner determination, with
memoisation since the greedy solver probes many incremental bundles)
and the explicit table of ``(subset, rho)`` rows shown in Figure 3(b).
Bundles are per-machine GPU counts — "each allocation identifies the
fraction of each machine's free GPU resources desired by the app".

Figure 11's experiment injects a percentage error into every valuation;
the noise here is derived deterministically from ``(salt, app, bundle)``
so a bundle is always misestimated the *same* way within an auction
(the solver would otherwise chase inconsistent numbers) while different
auctions and apps see independent errors.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Mapping

from repro.core.fairness import AppValuationState, FairnessEstimator, value_from_rho
from repro.workload.app import App


def _bundle_key(extra_counts: Mapping[int, int]) -> tuple[tuple[int, int], ...]:
    """Canonical hashable form of a per-machine count bundle."""
    return tuple(sorted((m, c) for m, c in extra_counts.items() if c > 0))


def _merge_keys(
    base: tuple[tuple[int, int], ...], extra: tuple[tuple[int, int], ...]
) -> tuple[tuple[int, int], ...]:
    """Merge two canonical count keys, summing counts per machine.

    Both inputs are sorted by machine id, so the canonical total is a
    linear merge — no dict build, no re-sort on the valuation hot path.
    """
    if not base:
        return extra
    if not extra:
        return base
    out: list[tuple[int, int]] = []
    i = j = 0
    len_a, len_b = len(base), len(extra)
    while i < len_a and j < len_b:
        machine_a, count_a = base[i]
        machine_b, count_b = extra[j]
        if machine_a == machine_b:
            out.append((machine_a, count_a + count_b))
            i += 1
            j += 1
        elif machine_a < machine_b:
            out.append(base[i])
            i += 1
        else:
            out.append(extra[j])
            j += 1
    out.extend(base[i:])
    out.extend(extra[j:])
    return tuple(out)


def _noise_factor(salt: int, app_id: str, key: tuple, theta: float) -> float:
    """Deterministic multiplicative error in ``[1 - theta, 1 + theta]``."""
    if theta <= 0.0:
        return 1.0
    digest = hashlib.sha256(f"{salt}:{app_id}:{key}".encode("utf-8")).digest()
    fraction = int.from_bytes(digest[:8], "little") / float(2**64)
    return 1.0 + theta * (2.0 * fraction - 1.0)


@dataclass(frozen=True)
class BidEntry:
    """One row of the valuation table of Figure 3(b)."""

    bundle: tuple[tuple[int, int], ...]
    rho: float
    value: float

    @property
    def gpu_count(self) -> int:
        """Total GPUs in this bundle."""
        return sum(count for _, count in self.bundle)


class Bid:
    """An app's complete response to one resource offer."""

    def __init__(
        self,
        app: App,
        estimator: FairnessEstimator,
        now: float,
        offered_counts: Mapping[int, int],
        noise_theta: float = 0.0,
        noise_salt: int = 0,
        state: AppValuationState | None = None,
        refresh_token: int | None = None,
    ) -> None:
        self.app = app
        self.app_id = app.app_id
        self.now = now
        self.offered_counts = {m: c for m, c in offered_counts.items() if c > 0}
        self.noise_theta = noise_theta
        self.noise_salt = noise_salt
        self._estimator = estimator
        # One rho/value cache per bid, shared across the auction's full
        # solve and every ``without_i`` payment re-solve (the solver
        # probes the same bundles in all of them).  These are noisy and
        # clock-dependent, so they live and die with the bid;
        # ``rho_probes`` counts actual carve computations (cross-round
        # delta-cache misses) and ``rho_lookups`` all queries; the perf
        # harness reports both.
        self._rho_cache: dict[tuple, float] = {}
        self._value_cache: dict[tuple, float] = {}
        # The solver's pair-score memo, keyed on the *exact purity key*
        # of a scored (app, machine) pair — gain path
        # ``(machine, current_key, min(chunk, free, headroom))``, rescue
        # path ``(machine, current_key)`` storing the free-independent
        # ``new_value`` (see PartialAllocationAuction._score_pair for
        # the proof sketch).  Keying on the effective step bound instead
        # of raw ``free`` means a column shrink that leaves the bound
        # unchanged is a guaranteed hit: the payment re-solves rebuild
        # their heaps from dict lookups, and the post-move re-scores of
        # ``rescore="gated"`` skip every pair a move provably could not
        # have changed — in cold mode too.  Like the rho cache it dies
        # with the bid — scores embed clock-dependent values.
        self._pair_memo: dict[tuple, object] = {}
        self.rho_probes = 0
        self.rho_lookups = 0
        # The app's holdings and job states are fixed for the duration
        # of the auction.  The cross-round :class:`AppValuationState`
        # carries the frozen snapshot plus the elapsed-independent
        # delta cache; an AGENT passes its persistent instance in (so a
        # starved app's bid table survives verbatim between rounds),
        # while ad-hoc callers get a fresh single-auction state.
        if state is None:
            state = AppValuationState(app, estimator, reuse=False)
        snap = state.refresh(refresh_token)
        self._state = state
        # The app's (single) model family selects its throughput-matrix
        # row for speed-class tie-breaks; mixed-family apps fall back to
        # the scalar generation speeds.  Memoised on the snapshot — a
        # starved app's snapshot survives many rounds of bids.
        self._family = snap.family
        self.demand = app.unmet_demand()
        self.current_rho = self.rho_of({})

    @property
    def state(self) -> AppValuationState:
        """The cross-round valuation state backing this bid."""
        return self._state

    def total_key_of(
        self, key: tuple[tuple[int, int], ...]
    ) -> tuple[tuple[int, int], ...]:
        """Canonical key of the app's holdings plus bundle ``key``.

        This is the key :meth:`rho_from_key` will probe the estimator
        with — the auction's warm start uses it to batch-prime the
        kernel caches before the heap build issues scalar probes.
        """
        return _merge_keys(self._state.base_key, key)

    # ------------------------------------------------------------------
    # Valuation queries
    # ------------------------------------------------------------------
    def rho_of(self, extra_counts: Mapping[int, int]) -> float:
        """(Noisy) estimated rho after adding ``extra_counts`` to the app.

        Raises when the bundle exceeds the offer — an AGENT cannot bid
        on GPUs it was not shown.
        """
        if not extra_counts:
            return self.rho_from_key(())
        return self.rho_from_key(_bundle_key(extra_counts))

    def rho_from_key(self, key: tuple[tuple[int, int], ...]) -> float:
        """``rho_of`` for a pre-canonicalised bundle key.

        The auction solver maintains each app's bundle as a sorted
        ``(machine, count)`` tuple and extends it incrementally, so the
        hot path skips the per-probe dict build and re-sort.
        """
        self.rho_lookups += 1
        cached = self._rho_cache.get(key)
        if cached is not None:
            return cached
        for machine_id, count in key:
            if count > self.offered_counts.get(machine_id, 0):
                raise ValueError(
                    f"bid of app {self.app_id} requests {count} GPUs on machine "
                    f"{machine_id} but only {self.offered_counts.get(machine_id, 0)} "
                    "were offered"
                )
        # For a starved app (the common case at high contention) the
        # bundle *is* the total allocation; otherwise the two canonical
        # keys merge linearly — no dict build on the hot path.
        total_key = _merge_keys(self._state.base_key, key)
        state = self._state
        misses_before = state.estimator.carve_count
        rho = state.rho_at(self.now, total_key)
        if state.estimator.carve_count != misses_before:
            self.rho_probes += 1
        if not math.isinf(rho):
            rho *= _noise_factor(self.noise_salt, self.app_id, key, self.noise_theta)
        self._rho_cache[key] = rho
        return rho

    def value_of(self, extra_counts: Mapping[int, int]) -> float:
        """Valuation ``V = 1 / rho`` of a bundle (0 when rho is unbounded).

        A degenerate ``rho <= 0`` (an app whose estimated shared finish
        time is not ahead of ``now``) is clamped to the finite
        :data:`~repro.core.fairness.VALUE_CEILING` instead of ``inf`` —
        the solver's log-gain keys and ``nash_log_welfare`` must stay
        finite and totally ordered.
        """
        if not extra_counts:
            return self.value_from_key(())
        return self.value_from_key(_bundle_key(extra_counts))

    def value_from_key(self, key: tuple[tuple[int, int], ...]) -> float:
        """``value_of`` for a pre-canonicalised bundle key (hot path)."""
        cached = self._value_cache.get(key)
        if cached is not None:
            return cached
        value = value_from_rho(self.rho_from_key(key))
        self._value_cache[key] = value
        return value

    def bundle_size(self, extra_counts: Mapping[int, int]) -> int:
        """Total GPUs in a bundle."""
        return sum(c for c in extra_counts.values() if c > 0)

    def machine_speed(self, machine_id: int) -> float:
        """Speed class of one offered machine's GPUs, for *this* app.

        The offer vector stays per-machine counts (the paper's R), but
        each dimension carries the machine's GPU generation; the solver
        uses it to break ties toward faster free compute.  Under a
        throughput matrix "faster" is relative to the app's model
        family — two bidders can disagree about which machine is the
        prize, which is exactly the rate-inversion the matrix encodes.
        """
        return self._estimator.machine_speed_for(self._family, machine_id)

    # ------------------------------------------------------------------
    # The explicit table (Figure 3b)
    # ------------------------------------------------------------------
    def table(self, max_entries: int = 64) -> list[BidEntry]:
        """Enumerate representative rows of the valuation function.

        Rows cover: the empty bundle (current rho), each machine's free
        GPUs at every feasible fraction (the paper's ``1/n .. n/n``),
        and cumulative cross-machine bundles up to the app's unmet
        demand.  The enumeration is capped because the full subset
        lattice is exponential — the paper's own AGENT reports 334 ms
        p95 bid preparation for the same reason (Section 8.3.2).
        """
        entries: list[BidEntry] = []
        seen: set[tuple] = set()

        def add(bundle: Mapping[int, int]) -> None:
            key = _bundle_key(bundle)
            if key in seen or len(entries) >= max_entries:
                return
            seen.add(key)
            rho = self.rho_of(dict(key))
            entries.append(
                BidEntry(bundle=key, rho=rho, value=0.0 if math.isinf(rho) else 1.0 / rho)
            )

        add({})
        # Per-machine fractions: 1/n, 2/n, ..., n/n of each machine's offer.
        for machine_id in sorted(self.offered_counts):
            available = self.offered_counts[machine_id]
            for count in range(1, min(available, max(1, self.demand)) + 1):
                add({machine_id: count})
        # Cumulative bundles across machines, biggest offers first.
        cumulative: dict[int, int] = {}
        total = 0
        for machine_id in sorted(
            self.offered_counts, key=lambda m: (-self.offered_counts[m], m)
        ):
            if total >= self.demand:
                break
            take = min(self.offered_counts[machine_id], self.demand - total)
            cumulative[machine_id] = take
            total += take
            add(dict(cumulative))
        return entries

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Bid(app={self.app_id}, rho={self.current_rho:.3f}, "
            f"demand={self.demand}, offered={sum(self.offered_counts.values())})"
        )


def build_bid(
    app: App,
    estimator: FairnessEstimator,
    now: float,
    offered_counts: Mapping[int, int],
    noise_theta: float = 0.0,
    noise_salt: int = 0,
    state: AppValuationState | None = None,
) -> Bid:
    """Convenience constructor mirroring the AGENT's PREPAREBIDS call."""
    return Bid(
        app=app,
        estimator=estimator,
        now=now,
        offered_counts=offered_counts,
        noise_theta=noise_theta,
        noise_salt=noise_salt,
        state=state,
    )
