"""Finish-time fairness: ``rho = T_sh / T_id`` and its estimators.

Section 5.2 spells out how an AGENT values a hypothetical allocation:

1. merge the offered GPUs with the app's current allocation,
2. split the aggregate across constituent jobs in a placement-sensitive
   greedy manner,
3. compute each job's rate ``G_j * S_j`` from the spread of its GPUs,
4. estimate the shared finish time ``T_sh`` and divide by the ideal
   time ``T_id`` (max parallelism, perfect placement).

Valuations are queried *many* times per auction (the greedy Nash-product
winner determination probes incremental bundles), so this module is
built for that hot path:

* all estimates work on per-machine GPU *counts* — the paper's own bid
  representation — never on concrete GPU sets; machines are internally
  homogeneous, so a count on a machine implies a GPU generation and the
  carve scores it in speed-weighted *effective compute*,
* :class:`AppSnapshot` freezes an app's job list (sorted once) for the
  duration of an auction,
* the carve loop stops as soon as the count pool drains, so the cost is
  bounded by the GPUs offered, not the (much larger) job count.

:func:`carve_allotments` is the public, fully-annotated version used by
Gandiva's packing utility and by tests.
"""

from __future__ import annotations

import heapq
import math
import os
import warnings
from dataclasses import dataclass
from functools import cached_property
from typing import Callable, Mapping, Optional, Sequence

try:  # pragma: no cover - exercised by the no-numpy CI leg
    if os.environ.get("REPRO_NO_NUMPY"):
        _np = None
    else:
        import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

from repro.cluster.placement import LocalityLevel, SensitivityProfile
from repro.cluster.topology import Cluster
from repro.obs.profiler import NULL_PROFILER
from repro.workload.app import App, CompletionSemantics
from repro.workload.job import Job
from repro.workload.perf import DEFAULT_PERF_MODEL, PerfModel

#: Internal job descriptor:
#: (remaining_work, parallelism_cap, profile, job_id, family).
#: ``family`` selects the job's row of a per-family throughput matrix;
#: scalar runs carry it too (it is inert there) so one tuple shape
#: serves both paths.
_JobTuple = tuple[float, int, SensitivityProfile, str, str]

#: Per-family machine speed lookup: family -> {machine_id: speedup}.
#: ``None`` means the scalar model — the carve keeps its single shared
#: speed map and the original fast path.
FamilySpeedFn = Optional[Callable[[str], Mapping[int, float]]]

#: Ceiling on valuations when rho is (degenerately) zero or negative.
#: ``V = 1/rho`` would otherwise be ``inf``, and the auction's greedy
#: gain computation and Nash-log-welfare take ``log`` of it — an ``inf``
#: sort key poisons every downstream comparison.  A large finite value
#: preserves "this app values any allocation maximally" semantics while
#: keeping all arithmetic finite.
VALUE_CEILING = 1e12


def value_from_rho(rho: float) -> float:
    """Auction valuation ``V = 1/rho``, clamped to finite range.

    ``inf`` rho (fully starved) maps to 0; a degenerate ``rho <= 0``
    maps to :data:`VALUE_CEILING`.  The single conversion point shared
    by :class:`FairnessEstimator` and :class:`~repro.core.bids.Bid`.
    """
    if math.isinf(rho):
        return 0.0
    if rho <= 0:
        return VALUE_CEILING
    return min(1.0 / rho, VALUE_CEILING)


@dataclass(frozen=True)
class JobAllotment:
    """What one job would get out of a hypothetical app-level allocation.

    ``effective`` is the speed-weighted GPU count (= ``gpus`` on a
    homogeneous cluster); ``rate = effective * slowdown``.
    """

    job_id: str
    gpus: int
    level: LocalityLevel
    slowdown: float
    rate: float
    remaining_work: float
    effective: float = 0.0


#: Heap entry: (negated effective free compute, machine_id, count-at-push).
_PoolEntry = tuple[float, int, int]


class _CountPool:
    """Per-machine free-GPU counts with lazy-heap best-machine queries.

    ``best(racks)`` returns the machine with the most *effective* free
    compute (count x speed factor; machines are internally homogeneous)
    among the given racks — or globally when ``racks`` is empty —
    preferring lower machine ids on ties.  With all speeds 1.0 this is
    exactly the original most-free-GPUs rule, tie-breaks included.
    Counts only decrease, so stale heap entries are discarded lazily.
    """

    __slots__ = ("counts", "rack_of", "speed_of", "_global_heap", "_rack_heaps")

    def __init__(
        self,
        counts: Mapping[int, int],
        rack_of: Mapping[int, int],
        speed_of: Optional[Mapping[int, float]] = None,
    ) -> None:
        self.counts = {m: c for m, c in counts.items() if c > 0}
        self.rack_of = rack_of
        self.speed_of = speed_of
        self._global_heap: list[_PoolEntry] = [
            (-c * self._speed(m), m, c) for m, c in self.counts.items()
        ]
        heapq.heapify(self._global_heap)
        self._rack_heaps: dict[int, list[_PoolEntry]] = {}
        for machine_id, count in self.counts.items():
            self._rack_heaps.setdefault(rack_of[machine_id], []).append(
                (-count * self._speed(machine_id), machine_id, count)
            )
        for heap in self._rack_heaps.values():
            heapq.heapify(heap)

    def _speed(self, machine_id: int) -> float:
        if self.speed_of is None:
            return 1.0
        return self.speed_of.get(machine_id, 1.0)

    def __bool__(self) -> bool:
        return bool(self.counts)

    def _peek(self, heap: list[_PoolEntry]) -> Optional[_PoolEntry]:
        """Valid top entry of a heap, discarding stale entries."""
        counts = self.counts
        while heap:
            entry = heap[0]
            if counts.get(entry[1], 0) == entry[2]:
                return entry
            heapq.heappop(heap)
        return None

    def best(self, racks: Sequence[int]) -> Optional[int]:
        """Best machine within ``racks``, or globally when none match."""
        if racks:
            top: Optional[_PoolEntry] = None
            for rack_id in racks:
                heap = self._rack_heaps.get(rack_id)
                if not heap:
                    continue
                candidate = self._peek(heap)
                if candidate is not None and (top is None or candidate < top):
                    top = candidate
            if top is not None:
                return top[1]
        candidate = self._peek(self._global_heap)
        return candidate[1] if candidate else None

    def take(self, machine_id: int, amount: int) -> int:
        """Remove up to ``amount`` GPUs from ``machine_id``; returns taken."""
        available = self.counts.get(machine_id, 0)
        grab = min(amount, available)
        if grab <= 0:
            return 0
        remaining = available - grab
        if remaining > 0:
            self.counts[machine_id] = remaining
            entry = (-remaining * self._speed(machine_id), machine_id, remaining)
            heapq.heappush(self._global_heap, entry)
            heapq.heappush(self._rack_heaps[self.rack_of[machine_id]], entry)
        else:
            del self.counts[machine_id]
        return grab


def _classify_taken(
    taken: dict[int, int], rack_of: Mapping[int, int], nvlink_group_size: int
) -> LocalityLevel:
    """Locality level of a per-machine count vector (non-empty)."""
    if len(taken) == 1:
        ((machine_id, count),) = taken.items()
        if count <= nvlink_group_size:
            return LocalityLevel.SLOT
        return LocalityLevel.MACHINE
    racks = {rack_of[m] for m in taken}
    if len(racks) == 1:
        return LocalityLevel.RACK
    return LocalityLevel.CLUSTER


#: One carved allotment: (job_tuple, gpus, level, rate, effective_gpus).
_Carved = tuple[_JobTuple, int, LocalityLevel, float, float]


def _carve_fast(
    job_tuples: Sequence[_JobTuple],
    machine_counts: Mapping[int, int],
    rack_of: Mapping[int, int],
    nvlink_group_size: int,
    speed_of: Optional[Mapping[int, float]] = None,
    family_speed_of: FamilySpeedFn = None,
) -> tuple[list[_Carved], int]:
    """Core carve loop over pre-sorted job tuples — flat-array edition.

    Returns ``(allotments, next_index)`` where ``allotments`` holds one
    ``(job_tuple, gpus, level, rate, effective)`` entry per job that
    received GPUs and ``next_index`` is the index of the first job that
    received nothing (the pool drained).  ``effective`` is the
    speed-weighted GPU count and ``rate = effective * S(level)``; with
    no ``speed_of`` both reduce to the homogeneous count model.  Jobs
    are assumed sorted by remaining work ascending, mirroring the
    intra-app distributor.

    The machine pool lives in parallel flat lists (ids, counts,
    effective-compute, racks, speeds) instead of the heap-backed
    :class:`_CountPool`: a valuation probe carves a *bundle* — a
    handful of machines — and at that size the heap entries, the
    per-job ``taken`` dict and the pool object itself dominated the
    cost (~113k probes on the ``large`` bench profile).  A linear
    argmax over the flat arrays performs the exact comparisons the heap
    made — most effective free compute first, lower machine id on ties,
    racks already used by the job preferred — so the carve order, and
    therefore every downstream rho, is byte-identical to
    :func:`_carve_reference` (property-tested in tests/test_fairness.py).

    ``family_speed_of`` switches to the per-family kernel
    (:func:`_carve_fast_family`): machine speeds then depend on the
    *current job's* model family, so a bundle can be "fast" for one job
    and "slow" for the next.  The scalar path below is untouched — a
    scalar perf model never pays for family dispatch.
    """
    if family_speed_of is not None:
        return _carve_fast_family(
            job_tuples, machine_counts, rack_of, nvlink_group_size, family_speed_of
        )
    mids: list[int] = []
    cnts: list[int] = []
    effs: list[float] = []
    rids: list[int] = []
    spds: list[float] = []
    if speed_of is None:
        for machine_id, count in machine_counts.items():
            if count > 0:
                mids.append(machine_id)
                cnts.append(count)
                spds.append(1.0)
                effs.append(count * 1.0)
                rids.append(rack_of[machine_id])
    else:
        for machine_id, count in machine_counts.items():
            if count > 0:
                speed = speed_of.get(machine_id, 1.0)
                mids.append(machine_id)
                cnts.append(count)
                spds.append(speed)
                effs.append(count * speed)
                rids.append(rack_of[machine_id])
    live = len(mids)
    num_machines = live
    out: list[_Carved] = []
    index = 0
    for index, job in enumerate(job_tuples):
        if not live:
            return out, index
        need = job[1]
        taken_machines = 0
        first_count = 0
        effective = 0.0
        used_racks: list[int] = []
        while need > 0 and live:
            best = -1
            best_eff = -1.0
            best_mid = -1
            if used_racks:
                for i in range(num_machines):
                    if cnts[i] and rids[i] in used_racks:
                        eff = effs[i]
                        mid = mids[i]
                        if eff > best_eff or (eff == best_eff and mid < best_mid):
                            best = i
                            best_eff = eff
                            best_mid = mid
            if best < 0:
                for i in range(num_machines):
                    if cnts[i]:
                        eff = effs[i]
                        mid = mids[i]
                        if eff > best_eff or (eff == best_eff and mid < best_mid):
                            best = i
                            best_eff = eff
                            best_mid = mid
            if best < 0:
                break
            count = cnts[best]
            grab = need if need < count else count
            remaining = count - grab
            cnts[best] = remaining
            if remaining:
                effs[best] = remaining * spds[best]
            else:
                live -= 1
            taken_machines += 1
            if taken_machines == 1:
                first_count = grab
            effective += grab * spds[best]
            rack_id = rids[best]
            if rack_id not in used_racks:
                used_racks.append(rack_id)
            need -= grab
        total = job[1] - need
        if total <= 0:
            return out, index
        if taken_machines == 1:
            level = (
                LocalityLevel.SLOT
                if first_count <= nvlink_group_size
                else LocalityLevel.MACHINE
            )
        elif len(used_racks) == 1:
            level = LocalityLevel.RACK
        else:
            level = LocalityLevel.CLUSTER
        factor = 1.0 if total <= 1 else job[2].at(level)
        out.append((job, total, level, effective * factor, effective))
    return out, index + 1


def _carve_fast_family(
    job_tuples: Sequence[_JobTuple],
    machine_counts: Mapping[int, int],
    rack_of: Mapping[int, int],
    nvlink_group_size: int,
    family_speed_of: Callable[[str], Mapping[int, float]],
) -> tuple[list[_Carved], int]:
    """Flat-array carve with per-job family-specific machine speeds.

    Identical argmax rule to :func:`_carve_fast` — most effective free
    compute first, lower machine id on ties, used racks preferred — but
    "effective" is measured with the current job's family row, so a
    throughput matrix can invert which machines drain first between two
    jobs of different families.  A matrix whose rows all equal the
    scalar speeds produces the same comparison floats as the scalar
    kernel, hence byte-identical carves (pinned by
    tests/test_hetero_equivalence.py).

    Per-family flat speed arrays are cached for the duration of one
    carve; effective compute is recomputed as ``count * speed`` inside
    the scan instead of being maintained incrementally, because the
    speeds change with every job's family.
    """
    mids: list[int] = []
    cnts: list[int] = []
    rids: list[int] = []
    for machine_id, count in machine_counts.items():
        if count > 0:
            mids.append(machine_id)
            cnts.append(count)
            rids.append(rack_of[machine_id])
    live = len(mids)
    num_machines = live
    fam_speeds: dict[str, list[float]] = {}
    out: list[_Carved] = []
    index = 0
    for index, job in enumerate(job_tuples):
        if not live:
            return out, index
        family = job[4]
        spds = fam_speeds.get(family)
        if spds is None:
            speed_map = family_speed_of(family)
            spds = [speed_map.get(machine_id, 1.0) for machine_id in mids]
            fam_speeds[family] = spds
        need = job[1]
        taken_machines = 0
        first_count = 0
        effective = 0.0
        used_racks: list[int] = []
        while need > 0 and live:
            best = -1
            best_eff = -1.0
            best_mid = -1
            if used_racks:
                for i in range(num_machines):
                    if cnts[i] and rids[i] in used_racks:
                        eff = cnts[i] * spds[i]
                        mid = mids[i]
                        if eff > best_eff or (eff == best_eff and mid < best_mid):
                            best = i
                            best_eff = eff
                            best_mid = mid
            if best < 0:
                for i in range(num_machines):
                    if cnts[i]:
                        eff = cnts[i] * spds[i]
                        mid = mids[i]
                        if eff > best_eff or (eff == best_eff and mid < best_mid):
                            best = i
                            best_eff = eff
                            best_mid = mid
            if best < 0:
                break
            count = cnts[best]
            grab = need if need < count else count
            remaining = count - grab
            cnts[best] = remaining
            if not remaining:
                live -= 1
            taken_machines += 1
            if taken_machines == 1:
                first_count = grab
            effective += grab * spds[best]
            rack_id = rids[best]
            if rack_id not in used_racks:
                used_racks.append(rack_id)
            need -= grab
        total = job[1] - need
        if total <= 0:
            return out, index
        if taken_machines == 1:
            level = (
                LocalityLevel.SLOT
                if first_count <= nvlink_group_size
                else LocalityLevel.MACHINE
            )
        elif len(used_racks) == 1:
            level = LocalityLevel.RACK
        else:
            level = LocalityLevel.CLUSTER
        factor = 1.0 if total <= 1 else job[2].at(level)
        out.append((job, total, level, effective * factor, effective))
    return out, index + 1


def _carve_reference(
    job_tuples: Sequence[_JobTuple],
    machine_counts: Mapping[int, int],
    rack_of: Mapping[int, int],
    nvlink_group_size: int,
    speed_of: Optional[Mapping[int, float]] = None,
    family_speed_of: FamilySpeedFn = None,
) -> tuple[list[_Carved], int]:
    """Pre-refactor heap-backed carve, kept as the equivalence oracle.

    Identical contract to :func:`_carve_fast`; the property suite
    asserts both return byte-identical allotments on randomized
    instances (the same role :func:`~repro.core.auction.rescan_fair_allocation`
    plays for the auction solver).  With ``family_speed_of`` the
    heap-backed pool (whose ordering is fixed at build time) cannot be
    used — the per-family oracle is an independent dict-scan instead,
    re-finding the best machine from scratch for every grab.
    """
    if family_speed_of is not None:
        counts = {m: c for m, c in machine_counts.items() if c > 0}
        out = []
        index = 0
        for index, job in enumerate(job_tuples):
            if not counts:
                return out, index
            speed_map = family_speed_of(job[4])
            need = job[1]
            taken: dict[int, int] = {}
            effective = 0.0
            used_racks: list[int] = []
            while need > 0 and counts:
                best_key = None
                machine_id = None
                pool_ids = (
                    [m for m in counts if rack_of[m] in used_racks]
                    if used_racks
                    else []
                ) or list(counts)
                for candidate in pool_ids:
                    key = (-counts[candidate] * speed_map.get(candidate, 1.0), candidate)
                    if best_key is None or key < best_key:
                        best_key = key
                        machine_id = candidate
                if machine_id is None:
                    break
                grab = min(need, counts[machine_id])
                if counts[machine_id] - grab > 0:
                    counts[machine_id] -= grab
                else:
                    del counts[machine_id]
                taken[machine_id] = taken.get(machine_id, 0) + grab
                effective += grab * speed_map.get(machine_id, 1.0)
                rack_id = rack_of[machine_id]
                if rack_id not in used_racks:
                    used_racks.append(rack_id)
                need -= grab
            total = job[1] - need
            if total <= 0:
                return out, index
            level = _classify_taken(taken, rack_of, nvlink_group_size)
            factor = 1.0 if total <= 1 else job[2].at(level)
            out.append((job, total, level, effective * factor, effective))
        return out, index + 1
    pool = _CountPool(machine_counts, rack_of, speed_of)
    out = []
    index = 0
    for index, job in enumerate(job_tuples):
        if not pool:
            return out, index
        need = job[1]
        taken = {}
        effective = 0.0
        used_racks = []
        while need > 0 and pool:
            machine_id = pool.best(used_racks)
            if machine_id is None:
                break
            grab = pool.take(machine_id, need)
            if grab <= 0:
                break
            taken[machine_id] = taken.get(machine_id, 0) + grab
            effective += grab * pool._speed(machine_id)
            rack_id = rack_of[machine_id]
            if rack_id not in used_racks:
                used_racks.append(rack_id)
            need -= grab
        total = job[1] - need
        if total <= 0:
            return out, index
        level = _classify_taken(taken, rack_of, nvlink_group_size)
        factor = 1.0 if total <= 1 else job[2].at(level)
        out.append((job, total, level, effective * factor, effective))
    return out, index + 1


#: One batch-carve instance: (job_tuples, canonical counts key).
_CarveInstance = tuple[Sequence[_JobTuple], tuple[tuple[int, int], ...]]

#: Below this many instances the per-call numpy overhead outweighs the
#: vectorisation; the scalar kernel is run in a loop instead.  Purely a
#: perf knob — both paths are byte-identical.
_BATCH_MIN = 6

#: Rows narrower than this many machines carve faster through the
#: scalar kernel than through the lockstep pass (the masked argmax
#: replaces a linear scan that short, while the per-iteration numpy
#: overhead and the per-job transitions stay).  Purely a perf knob —
#: both paths are byte-identical.
_LOCKSTEP_MIN_WIDTH = 16

_batch_fallback_warned = False


def _carve_batch(
    instances: Sequence[_CarveInstance],
    rack_of: Mapping[int, int],
    nvlink_group_size: int,
    speed_of: Optional[Mapping[int, float]] = None,
    family_speed_of: FamilySpeedFn = None,
) -> list[tuple[list[_Carved], int]]:
    """Carve many (job_tuples, counts-key) instances in one pass.

    Returns one ``(allotments, next_index)`` per instance, byte-identical
    to calling :func:`_carve_fast` on each (property-tested in
    tests/test_batch_carve.py).  With numpy available and enough
    instances, all rows advance in lockstep through a padded 2-D machine
    layout — one masked argmax replaces the per-instance linear scans.
    Without numpy the batch degrades to the scalar kernel with a
    one-time warning.
    """
    global _batch_fallback_warned
    if _np is None:
        if not _batch_fallback_warned:
            warnings.warn(
                "numpy unavailable: batch carve falling back to the scalar "
                "python kernel (results are identical, only slower)",
                RuntimeWarning,
                stacklevel=2,
            )
            _batch_fallback_warned = True
    if _np is None or len(instances) < _BATCH_MIN:
        return [
            _carve_fast(
                tuples,
                dict(counts_key),
                rack_of,
                nvlink_group_size,
                speed_of,
                family_speed_of,
            )
            for tuples, counts_key in instances
        ]
    # Width routing: the lockstep pass replaces the scalar kernel's
    # per-grab linear machine scan with one masked argmax, so it can
    # only pay its per-iteration numpy overhead back on *wide* rows
    # (many machines per bundle).  Narrow rows — the overwhelming case
    # for post-move re-score candidates, whose bundles are one app's
    # holdings plus a single-machine step — are measurably faster
    # through the scalar kernel, so they are carved row-by-row here
    # and only the wide tail goes lockstep.  Pure routing: both sides
    # produce identical bytes for every instance.
    narrow: list[int] = []
    wide: list[int] = []
    for i, (_tuples, counts_key) in enumerate(instances):
        rowlen = sum(1 for _m, c in counts_key if c > 0)
        (narrow if rowlen < _LOCKSTEP_MIN_WIDTH else wide).append(i)
    results: list = [None] * len(instances)
    for i in narrow:
        tuples, counts_key = instances[i]
        results[i] = _carve_fast(
            tuples,
            dict(counts_key),
            rack_of,
            nvlink_group_size,
            speed_of,
            family_speed_of,
        )
    if wide:
        if len(wide) == len(instances):
            wide_results = _carve_batch_numpy(
                instances, rack_of, nvlink_group_size, speed_of, family_speed_of
            )
            return wide_results
        wide_results = _carve_batch_numpy(
            [instances[i] for i in wide],
            rack_of,
            nvlink_group_size,
            speed_of,
            family_speed_of,
        )
        for i, res in zip(wide, wide_results):
            results[i] = res
    return results


def _carve_batch_numpy(
    instances: Sequence[_CarveInstance],
    rack_of: Mapping[int, int],
    nvlink_group_size: int,
    speed_of: Optional[Mapping[int, float]],
    family_speed_of: FamilySpeedFn,
) -> list[tuple[list[_Carved], int]]:
    """Numpy lockstep edition of :func:`_carve_fast` over many instances.

    Data layout: machines live in padded ``(B, Mmax)`` arrays (counts,
    rack ids, per-row speeds), one row per instance, columns ordered by
    machine id (the canonical key order) so ``argmax`` — which returns
    the *first* maximum — reproduces the scalar kernel's lower-id
    tie-break exactly.  Every float is produced by the same IEEE-754
    operation sequence as the scalar kernel (``count * speed`` products,
    one ``grab * speed`` accumulation per grab in grab order), so rates
    are byte-identical, not merely close.  Job transitions (locality
    classification, sensitivity lookup) stay in python — they touch
    profile objects and happen once per *served job*, not per grab.
    """
    np = _np
    num = len(instances)
    rows: list[list[tuple[int, int]]] = [
        [(m, c) for m, c in counts_key if c > 0] for _tuples, counts_key in instances
    ]
    width = max((len(row) for row in rows), default=0)
    results: list[Optional[tuple[list[_Carved], int]]] = [None] * num
    if width == 0:
        for i, (tuples, _counts_key) in enumerate(instances):
            results[i] = ([], 0 if tuples else 1)
        return results  # type: ignore[return-value]
    scalar_mode = family_speed_of is None
    cnt = np.zeros((num, width), dtype=np.int64)
    rid = np.full((num, width), -1, dtype=np.int64)
    spd = np.ones((num, width), dtype=np.float64)
    for i, row in enumerate(rows):
        for j, (machine_id, count) in enumerate(row):
            cnt[i, j] = count
            rid[i, j] = rack_of[machine_id]
            if scalar_mode and speed_of is not None:
                spd[i, j] = speed_of.get(machine_id, 1.0)
    fam_cache: list[dict[str, object]] = [{} for _ in range(num)]

    need = np.zeros(num, dtype=np.int64)
    effective = np.zeros(num, dtype=np.float64)
    taken = np.zeros(num, dtype=np.int64)
    first_cnt = np.zeros(num, dtype=np.int64)
    nracks = np.zeros(num, dtype=np.int64)
    rack_used = np.zeros((num, width), dtype=bool)
    active = np.zeros(num, dtype=bool)
    jidx = [0] * num
    cap = [0] * num
    out: list[list[_Carved]] = [[] for _ in range(num)]

    def finalize(i: int) -> bool:
        """Close out row ``i``'s current job; True if it got GPUs."""
        total = cap[i] - int(need[i])
        if total <= 0:
            return False
        job = instances[i][0][jidx[i]]
        if int(taken[i]) == 1:
            level = (
                LocalityLevel.SLOT
                if int(first_cnt[i]) <= nvlink_group_size
                else LocalityLevel.MACHINE
            )
        elif int(nracks[i]) == 1:
            level = LocalityLevel.RACK
        else:
            level = LocalityLevel.CLUSTER
        eff = float(effective[i])
        factor = 1.0 if total <= 1 else job[2].at(level)
        out[i].append((job, total, level, eff * factor, eff))
        return True

    def setup(i: int) -> None:
        """Start row ``i``'s next job, or record its final result."""
        tuples = instances[i][0]
        j = jidx[i]
        if j >= len(tuples):
            active[i] = False
            results[i] = (out[i], len(tuples) if tuples else 1)
            return
        if not cnt[i].any():
            active[i] = False
            results[i] = (out[i], j)
            return
        job = tuples[j]
        job_cap = job[1]
        if job_cap <= 0:
            active[i] = False
            results[i] = (out[i], j)
            return
        cap[i] = job_cap
        need[i] = job_cap
        taken[i] = 0
        first_cnt[i] = 0
        effective[i] = 0.0
        nracks[i] = 0
        rack_used[i, :] = False
        if not scalar_mode:
            fam = job[4]
            vec = fam_cache[i].get(fam)
            if vec is None:
                speed_map = family_speed_of(fam)
                padded = [speed_map.get(m, 1.0) for m, _c in rows[i]]
                padded.extend([1.0] * (width - len(padded)))
                vec = np.asarray(padded, dtype=np.float64)
                fam_cache[i][fam] = vec
            spd[i] = vec
        active[i] = True

    def advance(i: int) -> None:
        """Scalar-kernel job boundary: append, step, or stop the row."""
        if finalize(i):
            jidx[i] += 1
            setup(i)
        else:
            active[i] = False
            results[i] = (out[i], jidx[i])

    for i in range(num):
        setup(i)

    while True:
        act = np.nonzero(active)[0]
        if act.size == 0:
            break
        sub_cnt = cnt[act]
        eff = sub_cnt * spd[act]
        valid = sub_cnt > 0
        pref = valid & rack_used[act]
        has_pref = pref.any(axis=1)
        mask = np.where(has_pref[:, None], pref, valid)
        eff = np.where(mask, eff, -1.0)
        best = eff.argmax(axis=1)
        lanes = np.arange(act.size)
        grabbed = mask[lanes, best]
        for i in act[~grabbed]:
            # Pool drained mid-job: the scalar kernel breaks, closes the
            # partial job, then stops at the next index.
            advance(int(i))
        if not grabbed.any():
            continue
        hit = act[grabbed]
        col = best[grabbed]
        grab = np.minimum(need[hit], cnt[hit, col])
        cnt[hit, col] -= grab
        effective[hit] += grab * spd[hit, col]
        taken[hit] += 1
        first = taken[hit] == 1
        first_cnt[hit[first]] = grab[first]
        grabbed_rack = rid[hit, col]
        nracks[hit] += ~rack_used[hit, col]
        rack_used[hit] = rack_used[hit] | (rid[hit] == grabbed_rack[:, None])
        need[hit] -= grab
        for i in hit[need[hit] == 0]:
            advance(int(i))
    return results  # type: ignore[return-value]


def _job_tuples(jobs: Sequence[Job]) -> list[_JobTuple]:
    """Sorted job descriptors for active jobs (shortest remaining first)."""
    tuples = []
    for job in jobs:
        if job.is_active:
            profile = job.model_profile
            tuples.append(
                (
                    job.remaining_work,
                    job.max_parallelism,
                    profile.sensitivity,
                    job.job_id,
                    profile.family,
                )
            )
    tuples.sort(key=lambda item: (item[0], item[3]))
    return tuples


def carve_allotments(
    jobs: Sequence[Job],
    machine_counts: Mapping[int, int],
    rack_of: Mapping[int, int],
    nvlink_group_size: int = 2,
    speed_of: Optional[Mapping[int, float]] = None,
    family_speed_of: FamilySpeedFn = None,
) -> list[JobAllotment]:
    """Greedily split per-machine GPU counts across jobs (Section 5.2, step 4).

    Jobs are served shortest-remaining-work first; each takes up to its
    ``max_parallelism`` GPUs, draining the machines with the most
    effective free compute — family-relative when ``family_speed_of``
    carries a throughput matrix — before spilling across racks.  Returns
    one allotment per *active* job, including zero-GPU allotments once
    the pool is drained.
    """
    tuples = _job_tuples(jobs)
    carved, next_index = _carve_fast(
        tuples, machine_counts, rack_of, nvlink_group_size, speed_of, family_speed_of
    )
    allotments = [
        JobAllotment(
            job_id=job[3],
            gpus=gpus,
            level=level,
            slowdown=rate / effective if effective else 1.0,
            rate=rate,
            remaining_work=job[0],
            effective=effective,
        )
        for job, gpus, level, rate, effective in carved
    ]
    # Jobs from next_index on received nothing (the pool drained).
    for job in tuples[next_index:]:
        allotments.append(
            JobAllotment(
                job_id=job[3],
                gpus=0,
                level=LocalityLevel.SLOT,
                slowdown=1.0,
                rate=0.0,
                remaining_work=job[0],
            )
        )
    return allotments


def job_tuples_of(jobs: Sequence[Job]) -> list[_JobTuple]:
    """Public accessor for the sorted job descriptors used by carves.

    Baseline schedulers (Gandiva) snapshot these once per scheduling
    round instead of re-deriving them on every utility probe.
    """
    return _job_tuples(jobs)


def packing_utility(
    job_tuples: Sequence[_JobTuple],
    machine_counts: Mapping[int, int],
    rack_of: Mapping[int, int],
    nvlink_group_size: int = 2,
    speed_of: Optional[Mapping[int, float]] = None,
    family_speed_of: FamilySpeedFn = None,
) -> float:
    """Gandiva's social objective: effective compute times placement score.

    Carves the counts across the jobs exactly like the valuation path
    and scores each allocated job by the 4-level placement score of its
    spread, weighted by the speed of the GPUs packed — family-relative
    under a throughput matrix — the quantity Gandiva's introspective
    migration maximises (``gpus * score`` on a homogeneous cluster).
    """
    from repro.cluster.placement import PLACEMENT_SCORES

    carved, _ = _carve_fast(
        job_tuples, machine_counts, rack_of, nvlink_group_size, speed_of, family_speed_of
    )
    return sum(
        effective * PLACEMENT_SCORES[level]
        for _job, _gpus, level, _rate, effective in carved
    )


@dataclass(frozen=True)
class AppSnapshot:
    """An app's state frozen for the duration of one auction.

    Sorting the job list and summing remaining work happen once here
    instead of once per valuation probe.
    """

    app_id: str
    arrival_time: float
    job_tuples: tuple[_JobTuple, ...]
    total_remaining: float
    t_ideal: float

    @cached_property
    def family(self) -> Optional[str]:
        """The single model family of all jobs, or ``None`` when mixed.

        Selects the app's throughput-matrix row for speed-class
        tie-breaks; computed once per snapshot rather than once per bid
        (a starved app's snapshot survives many rounds).
        """
        families = {job_tuple[4] for job_tuple in self.job_tuples}
        return next(iter(families)) if len(families) == 1 else None


class FairnessEstimator:
    """Computes ``rho`` for current and hypothetical allocations.

    One estimator is shared per simulation; it is stateless apart from
    the cluster topology and the app-completion semantics it mirrors.
    """

    def __init__(
        self,
        cluster: Cluster,
        semantics: CompletionSemantics = CompletionSemantics.ALL_JOBS,
        nvlink_group_size: int = 2,
        perf_model: Optional[PerfModel] = None,
    ) -> None:
        self.cluster = cluster
        self.semantics = semantics
        self.nvlink_group_size = nvlink_group_size
        self.perf_model = perf_model if perf_model is not None else DEFAULT_PERF_MODEL
        self._rack_of = {
            machine.machine_id: machine.rack_id for machine in cluster.machines
        }
        self._speed_of = cluster.machine_speeds()
        #: Per-family machine speed lookup, or ``None`` under the scalar
        #: model (the carve then keeps its single shared speed map).
        self._family_speed_fn: FamilySpeedFn = self.perf_model.machine_speed_index(
            cluster
        )
        #: Shared ClusterCapacity (scalar) or per-family PerfCapacity.
        self.capacity = self.perf_model.capacity_for(cluster)
        #: Carve computations performed through this estimator — the
        #: honest "rho probe" count the sim macro-benchmark reports
        #: (cache hits in :class:`AppValuationState` don't increment it).
        self.carve_count = 0
        #: Observability hook; the simulator rewires this at bind time.
        #: Guarded on ``enabled`` so the carve hot path pays nothing by
        #: default.
        self.profiler = NULL_PROFILER

    @property
    def rack_map(self) -> dict[int, int]:
        """Cached machine id -> rack id mapping for carve calls."""
        return self._rack_of

    @property
    def speed_map(self) -> dict[int, float]:
        """Cached machine id -> GPU speed factor mapping for carve calls."""
        return self._speed_of

    @property
    def family_speed_fn(self) -> FamilySpeedFn:
        """Per-family machine-speed lookup (``None`` = scalar model)."""
        return self._family_speed_fn

    def machine_speed(self, machine_id: int) -> float:
        """Scalar speed factor of one machine's GPUs (1.0 when unknown)."""
        return self._speed_of.get(machine_id, 1.0)

    def machine_speed_for(self, family: Optional[str], machine_id: int) -> float:
        """Speed of one machine as seen by one model family.

        Falls back to the scalar speed under a scalar model or when the
        caller has no single family (mixed-family apps).
        """
        if family is None or self._family_speed_fn is None:
            return self._speed_of.get(machine_id, 1.0)
        return self._family_speed_fn(family).get(machine_id, 1.0)

    # ------------------------------------------------------------------
    # Snapshots (hot path)
    # ------------------------------------------------------------------
    def snapshot(self, app: App) -> AppSnapshot:
        """Freeze the app's active-job state for repeated valuation probes."""
        tuples = _job_tuples(app.jobs)
        return AppSnapshot(
            app_id=app.app_id,
            arrival_time=app.arrival_time,
            job_tuples=tuple(tuples),
            total_remaining=sum(item[0] for item in tuples),
            t_ideal=app.ideal_running_time(self.capacity),
        )

    def aggregate_rate_from_snapshot(
        self, snap: AppSnapshot, machine_counts: Mapping[int, int]
    ) -> float:
        """Aggregate placement-adjusted rate of the carved counts.

        The ``ALL_JOBS`` valuation kernel: which job gets which GPUs —
        and therefore every per-job rate — depends on the *order* of the
        snapshot's job tuples (caps, sensitivity profiles, ids), not on
        the remaining-work magnitudes, so
        :class:`AppValuationState` caches this sum across rounds under a
        rate-signature key even while the app's jobs drain.
        """
        if not machine_counts:
            return 0.0
        carved = self._carved(snap, machine_counts)
        return sum(rate for *_, rate, _effective in carved)

    def _carved(
        self, snap: AppSnapshot, machine_counts: Mapping[int, int]
    ) -> list[_Carved]:
        """One counted, profiled carve — the single ``.enabled`` guard
        shared by both valuation kernels (the obs overhead gate asserts
        the disabled-profiler path costs nothing)."""
        self.carve_count += 1
        if self.profiler.enabled:
            with self.profiler.phase("carve"):
                carved, _ = _carve_fast(
                    snap.job_tuples,
                    machine_counts,
                    self._rack_of,
                    self.nvlink_group_size,
                    self._speed_of,
                    self._family_speed_fn,
                )
            return carved
        carved, _ = _carve_fast(
            snap.job_tuples,
            machine_counts,
            self._rack_of,
            self.nvlink_group_size,
            self._speed_of,
            self._family_speed_fn,
        )
        return carved

    def carve_pairs_from_snapshot(
        self, snap: AppSnapshot, machine_counts: Mapping[int, int]
    ) -> tuple[tuple[str, float], ...]:
        """Per-job ``(job_id, rate)`` pairs of one carve (rate > 0 only).

        The ``FIRST_WINNER`` valuation kernel: like the aggregate rate,
        which job receives which GPUs — and hence each job's rate —
        depends only on the snapshot's job *order signature*, never on
        the remaining-work magnitudes, so
        :class:`AppValuationState` caches these pairs across rounds and
        re-divides by the current remaining work in O(pairs).
        """
        carved = self._carved(snap, machine_counts)
        return tuple(
            (job[3], rate)
            for job, _gpus, _level, rate, _effective in carved
            if rate > 0
        )

    def batch_prime(
        self,
        pairs: Sequence[tuple["AppValuationState", tuple[tuple[int, int], ...]]],
    ) -> tuple[int, int]:
        """Pre-fill many states' kernel caches in one vectorized carve.

        ``pairs`` holds ``(state, canonical_total_key)`` bundles about to
        be probed — round-start base rhos, the auction's initial heap
        candidates, and the solver's post-move re-score candidates
        (arbitrary *compound* multi-machine bundles: each key is a full
        trajectory-dependent holding plus a step extension, not just a
        single-machine probe).  Bundles already cached are skipped; the
        misses run
        through :func:`_carve_batch` in one numpy pass and land in the
        exact cache slot :meth:`AppValuationState.delta_of` would have
        filled scalar-ly — same floats, same ``carve_count`` accounting —
        so every later probe is a pure cache hit.  Returns
        ``(carves, cache_hits)``: bundles carved fresh versus bundles
        already warm from an earlier round (or earlier in this batch).
        """
        first_winner = self.semantics is CompletionSemantics.FIRST_WINNER
        todo: list[tuple[AppValuationState, tuple[tuple[int, int], ...], AppSnapshot]] = []
        seen: set[tuple[int, tuple]] = set()
        hits = 0
        for state, key in pairs:
            snap = state.snapshot
            if snap is None or not key or not snap.job_tuples:
                continue
            if first_winner:
                if key in state._fw_pair_cache or key in state._delta_cache:
                    hits += 1
                    continue
            else:
                if snap.total_remaining <= 0 or key in state._rate_cache:
                    hits += 1
                    continue
            handle = (id(state), key)
            if handle in seen:
                hits += 1
                continue
            seen.add(handle)
            todo.append((state, key, snap))
        if not todo:
            return 0, hits
        instances = [(snap.job_tuples, key) for _state, key, snap in todo]
        if self.profiler.enabled:
            with self.profiler.phase("batch_carve"):
                carved_all = _carve_batch(
                    instances,
                    self._rack_of,
                    self.nvlink_group_size,
                    self._speed_of,
                    self._family_speed_fn,
                )
        else:
            carved_all = _carve_batch(
                instances,
                self._rack_of,
                self.nvlink_group_size,
                self._speed_of,
                self._family_speed_fn,
            )
        self.carve_count += len(todo)
        for (state, key, _snap), (carved, _next_index) in zip(todo, carved_all):
            if first_winner:
                fw_pairs = tuple(
                    (job[3], rate)
                    for job, _gpus, _level, rate, _effective in carved
                    if rate > 0
                )
                if len(state._fw_pair_cache) >= _DELTA_CACHE_LIMIT:
                    state._fw_pair_cache.clear()
                state._fw_pair_cache[key] = fw_pairs
            else:
                aggregate = sum(rate for *_, rate, _effective in carved)
                if len(state._rate_cache) >= _DELTA_CACHE_LIMIT:
                    state._rate_cache.clear()
                state._rate_cache[key] = aggregate
        return len(todo), hits

    def shared_delta_from_snapshot(
        self, snap: AppSnapshot, machine_counts: Mapping[int, int]
    ) -> float:
        """Elapsed-independent part of T_sh: minutes from *now* to finish.

        ``shared_time(now) = elapsed(now) + delta`` — the carve (the
        expensive part) depends only on the snapshot and the
        hypothetical per-machine counts, never on the clock, so this is
        the quantity :class:`AppValuationState` caches *across rounds*:
        a starved app probing the same bundle in round after round pays
        for one carve total.  Under ``FIRST_WINNER`` semantics the delta
        is the paper's ``min_j W'_j / (G_j * S_j)``; under ``ALL_JOBS``
        it is total remaining work over the aggregate placement-adjusted
        rate.  ``inf`` when the counts sustain no progress — the
        unbounded metric that guarantees starved apps win future
        auctions.
        """
        if not snap.job_tuples:
            return 0.0
        if self.semantics is CompletionSemantics.FIRST_WINNER:
            if not machine_counts:
                return math.inf
            remaining = {job[3]: job[0] for job in snap.job_tuples}
            finish = math.inf
            for job_id, rate in self.carve_pairs_from_snapshot(snap, machine_counts):
                per_job = remaining[job_id] / rate
                if per_job < finish:
                    finish = per_job
            return finish
        if snap.total_remaining <= 0:
            return 0.0
        aggregate_rate = self.aggregate_rate_from_snapshot(snap, machine_counts)
        if aggregate_rate <= 0:
            return math.inf
        return snap.total_remaining / aggregate_rate

    def shared_time_from_snapshot(
        self, snap: AppSnapshot, now: float, machine_counts: Mapping[int, int]
    ) -> float:
        """T_sh — estimated completion under a hypothetical allocation.

        ``elapsed + shared_delta``; see :meth:`shared_delta_from_snapshot`
        for the semantics of the delta term.
        """
        elapsed = max(0.0, now - snap.arrival_time)
        return elapsed + self.shared_delta_from_snapshot(snap, machine_counts)

    def rho_from_snapshot(
        self, snap: AppSnapshot, now: float, machine_counts: Mapping[int, int]
    ) -> float:
        """rho given a snapshot and the app's full per-machine counts."""
        if snap.t_ideal <= 0:
            raise ValueError(
                f"app {snap.app_id} has non-positive ideal time {snap.t_ideal}"
            )
        return self.shared_time_from_snapshot(snap, now, machine_counts) / snap.t_ideal

    # ------------------------------------------------------------------
    # Convenience (non-hot) API
    # ------------------------------------------------------------------
    def ideal_time(self, app: App) -> float:
        """T_id — running time alone on the whole cluster (Section 5.2 step 5)."""
        return app.ideal_running_time(self.capacity)

    def shared_time(
        self, app: App, now: float, machine_counts: Mapping[int, int]
    ) -> float:
        """T_sh for an app's hypothetical total per-machine counts."""
        return self.shared_time_from_snapshot(self.snapshot(app), now, machine_counts)

    def rho(
        self,
        app: App,
        now: float,
        extra_counts: Optional[Mapping[int, int]] = None,
    ) -> float:
        """Finish-time fairness with the current plus ``extra_counts`` GPUs.

        ``rho`` close to (and below) the number of contending apps means
        the app is receiving its sharing-incentive due; ``inf`` means it
        is fully starved.
        """
        counts = dict(app.allocation().per_machine_counts())
        if extra_counts:
            for machine_id, count in extra_counts.items():
                if count < 0:
                    raise ValueError(f"negative GPU count for machine {machine_id}")
                counts[machine_id] = counts.get(machine_id, 0) + count
        return self.rho_from_snapshot(self.snapshot(app), now, counts)

    def rho_current(self, app: App, now: float) -> float:
        """rho with the allocation the app holds right now."""
        return self.rho(app, now, extra_counts=None)

    def value(
        self,
        app: App,
        now: float,
        extra_counts: Optional[Mapping[int, int]] = None,
    ) -> float:
        """Auction valuation ``V = 1 / rho`` (higher is better, 0 = starved).

        ``1/rho`` is homogeneous of degree one under the paper's linear
        scaling assumption, which the PA mechanism's truthfulness
        argument requires (Section 5.1).
        """
        return value_from_rho(self.rho(app, now, extra_counts))


#: Entries kept in one app's cross-round delta cache before it is
#: dropped wholesale.  Purely a memory bound: cache contents never
#: change computed values, so the clear is invisible to results.
_DELTA_CACHE_LIMIT = 131072


class AppValuationState:
    """Cross-round valuation cache for one app (the incremental pipeline).

    Holds the app's frozen :class:`AppSnapshot`, its base per-machine
    counts, and two caches of elapsed-independent valuation kernels
    keyed by canonical total-counts bundles.  :meth:`refresh` applies
    the dirty-tracking contract at two levels:

    * **snapshot reuse** — while the app's epoch is unchanged *and* it
      holds no GPUs (a fully starved app), nothing about it can drift
      between rounds, so snapshot, base counts and every cache survive
      verbatim;
    * **rate-cache reuse** — an app that *does* hold GPUs drains work
      continuously, so its snapshot rebuilds each round; but the
      carve's per-job GPU split depends only on the job *order
      signature* (parallelism caps, sensitivity profiles, families,
      ids — not the remaining-work magnitudes), so as long as the drain
      has not reordered the jobs the cached kernels stay valid: under
      ``ALL_JOBS`` each bundle's aggregate carve rate (delta is one
      division), under ``FIRST_WINNER`` each bundle's per-job
      ``(job_id, rate)`` pairs (delta is a min over one division per
      served job against the *current* remaining work).

    Any discrete change (allocation install, job finish/kill, tuner
    step, failure revocation) bumps the app epoch and invalidates both
    levels.  With ``reuse=False`` every refresh rebuilds everything —
    the cold path the ``repro bench sim`` macro-benchmark times and the
    equivalence suite proves byte-identical.  Values are the same
    either way: the caches store pure functions of (snapshot, counts).
    """

    __slots__ = (
        "app",
        "estimator",
        "reuse",
        "epoch",
        "snapshot",
        "base_counts",
        "base_key",
        "rebuilds",
        "rate_signature",
        "_rate_cache",
        "_delta_cache",
        "_fw_pair_cache",
        "_remaining_by_id",
        "_statics_epoch",
        "_job_statics",
        "_base_alloc",
        "_refresh_token",
        "_sorted_jobs",
        "cache_generation",
        "primed_generation",
        "base_primed",
    )

    def __init__(
        self, app: App, estimator: FairnessEstimator, reuse: bool = True
    ) -> None:
        self.app = app
        self.estimator = estimator
        self.reuse = reuse
        self.epoch = -1
        self.snapshot: Optional[AppSnapshot] = None
        self.base_counts: dict[int, int] = {}
        self.base_key: tuple[tuple[int, int], ...] = ()
        self.rebuilds = 0
        self.rate_signature: Optional[tuple] = None
        self._rate_cache: dict[tuple[tuple[int, int], ...], float] = {}
        self._delta_cache: dict[tuple[tuple[int, int], ...], float] = {}
        #: FIRST_WINNER kernel cache: bundle -> ((job_id, rate), ...)
        #: pairs, valid while the rate signature is (like _rate_cache).
        self._fw_pair_cache: dict[
            tuple[tuple[int, int], ...], tuple[tuple[str, float], ...]
        ] = {}
        #: job_id -> remaining work of the current snapshot (FIRST_WINNER
        #: deltas divide cached rates by *current* work).
        self._remaining_by_id: dict[str, float] = {}
        self._statics_epoch = -1
        self._job_statics: Optional[list] = None
        self._base_alloc = None
        #: Round token of the last refresh — the ARBITER stamps each
        #: scheduling round so the repeated refreshes within one round
        #: (rho probe, then bid preparation, then auction probes) cost
        #: one comparison instead of a snapshot walk.
        self._refresh_token: Optional[int] = None
        #: Job objects aligned with ``snapshot.job_tuples`` — the drift
        #: fast path re-reads each job's remaining work along this order.
        self._sorted_jobs: Optional[list[Job]] = None
        #: Bumped whenever the kernel caches are invalidated (rate
        #: signature change).  The auction's heap warm start compares it
        #: against ``primed_generation`` to prime a state's candidate
        #: bundles exactly once per cache lifetime instead of
        #: re-enumerating them every round.  ``base_primed`` plays the
        #: same role for the arbiter's round-start base-bundle prime:
        #: the ``(generation, base_key)`` pair last submitted, so an
        #: app whose holdings and rates are unchanged is not re-probed.
        self.cache_generation = 0
        self.primed_generation = -1
        self.base_primed: Optional[tuple] = None

    def refresh(self, token: Optional[int] = None) -> AppSnapshot:
        """Rebuild the snapshot and caches when dirty; no-op when clean.

        ``token`` identifies the scheduling round: within one round an
        app cannot drift (jobs advance, allocations install and tuners
        step strictly *between* rounds), so a repeat refresh under the
        same token returns the snapshot outright.  Only honoured with
        ``reuse=True`` — the cold baseline stays a full rebuild.
        """
        app = self.app
        if (
            token is not None
            and self.reuse
            and token == self._refresh_token
            and self.snapshot is not None
        ):
            return self.snapshot
        if not self.reuse:
            # Cold baseline: rebuild everything from the live app.
            self.rebuilds += 1
            self.epoch = app.epoch
            snap = self.estimator.snapshot(app)
            self.snapshot = snap
            self.base_counts = dict(app.allocation().per_machine_counts())
            self.base_key = tuple(
                sorted((m, c) for m, c in self.base_counts.items() if c > 0)
            )
            self._rate_cache = {}
            self._delta_cache = {}
            self._fw_pair_cache = {}
            self._refresh_remaining(snap)
            return snap
        if self.snapshot is not None and self.epoch == app.epoch:
            if not self.base_counts:
                self._refresh_token = token
                return self.snapshot
            # Held app, clean epoch: only remaining work has drained
            # (every discrete change bumps the epoch).  While the drain
            # has not reordered the jobs, the snapshot survives with a
            # re-summed total — the carve kernels and the ALL_JOBS delta
            # never read the per-job remaining-work magnitudes.
            if (
                self._sorted_jobs is not None
                and self.estimator.semantics is CompletionSemantics.ALL_JOBS
            ):
                drifted = self._refresh_drift()
                if drifted is not None:
                    self._refresh_token = token
                    return drifted
        self.rebuilds += 1
        self.epoch = app.epoch
        snap = self._rebuild_snapshot(app)
        self.snapshot = snap
        alloc = app.allocation()
        if alloc is not self._base_alloc:
            # The allocation object is epoch-memoised on the app, so a
            # clean app holding GPUs keeps the identical object between
            # rounds and the canonical base key survives with it.
            self._base_alloc = alloc
            self.base_counts = dict(alloc.per_machine_counts())
            self.base_key = tuple(
                sorted((m, c) for m, c in self.base_counts.items() if c > 0)
            )
        if self._delta_cache:
            self._delta_cache = {}
        self._refresh_remaining(snap)
        self._refresh_token = token
        return snap

    def _refresh_drift(self) -> Optional[AppSnapshot]:
        """Drift-only snapshot update for a clean-epoch held app.

        Walks the jobs in snapshot order re-reading remaining work: if
        the sequence is still sorted (the usual case — proportional
        drains rarely reorder), the snapshot is reused with a freshly
        summed ``total_remaining`` — summed along the *current* sorted
        order, so the float matches a cold rebuild bit-for-bit.  The
        per-job magnitudes inside ``job_tuples`` are left stale: under
        ``ALL_JOBS`` semantics no consumer reads them (the carve uses
        caps, profiles and families; the delta divides the fresh total
        by the cached aggregate rate).  ``t_ideal`` is epoch-memoised on
        the app, so it cannot have moved.  Returns ``None`` when a
        reorder forces the full rebuild.
        """
        snap = self.snapshot
        assert snap is not None and self._sorted_jobs is not None
        total = 0.0
        prev_work = -math.inf
        prev_id = ""
        for job in self._sorted_jobs:
            work = job.remaining_work
            if work < prev_work or (work == prev_work and job.job_id < prev_id):
                return None
            total += work
            prev_work = work
            prev_id = job.job_id
        if total != snap.total_remaining:
            snap = AppSnapshot(
                app_id=snap.app_id,
                arrival_time=snap.arrival_time,
                job_tuples=snap.job_tuples,
                total_remaining=total,
                t_ideal=snap.t_ideal,
            )
            self.snapshot = snap
        return snap

    def _refresh_remaining(self, snap: AppSnapshot) -> None:
        """Rebuild the job_id -> remaining-work view (FIRST_WINNER only)."""
        if self.estimator.semantics is CompletionSemantics.FIRST_WINNER:
            self._remaining_by_id = {job[3]: job[0] for job in snap.job_tuples}

    def _rebuild_snapshot(self, app: App) -> AppSnapshot:
        """Snapshot rebuild reusing per-job statics across rounds.

        Only ``remaining_work`` drifts between epochs (active set,
        parallelism caps and sensitivity profiles change exclusively on
        epoch bumps), so the per-job static triples are cached — and the
        rate cache invalidated on signature change — only when the epoch
        moves; every other rebuild re-reads one float per job.  The sort
        key and the total-remaining summation order match
        :meth:`FairnessEstimator.snapshot` exactly, so the snapshots
        are byte-identical to cold-built ones.
        """
        statics = self._job_statics
        if statics is None or self._statics_epoch != app.epoch:
            statics = []
            for job in app.jobs:
                if job.is_active:
                    profile = job.model_profile
                    statics.append(
                        (
                            job,
                            job.max_parallelism,
                            profile.sensitivity,
                            job.job_id,
                            profile.family,
                        )
                    )
            self._job_statics = statics
            self._statics_epoch = app.epoch
        decorated = [
            ((job.remaining_work, cap, profile, job_id, family), job)
            for job, cap, profile, job_id, family in statics
        ]
        decorated.sort(key=lambda item: (item[0][0], item[0][3]))
        tuples = [item[0] for item in decorated]
        # Aligned Job objects let the drift fast path re-read remaining
        # work in snapshot order without rebuilding these tuples.
        self._sorted_jobs = [item[1] for item in decorated]
        # The carve hands machines out in *sorted* job order, so the
        # rate/pair caches are keyed to that sequence — including each
        # job's family (its matrix row): a drain-induced reorder (not
        # just an epoch bump) must invalidate them.
        signature = tuple(item[1:] for item in tuples)
        if signature != self.rate_signature:
            self.rate_signature = signature
            self._rate_cache = {}
            self._fw_pair_cache = {}
            self.cache_generation += 1
        return AppSnapshot(
            app_id=app.app_id,
            arrival_time=app.arrival_time,
            job_tuples=tuple(tuples),
            total_remaining=sum(item[0] for item in tuples),
            t_ideal=app.ideal_running_time(self.estimator.capacity),
        )

    @property
    def cached_deltas(self) -> int:
        """Number of bundle kernels currently memoised (introspection)."""
        return len(self._rate_cache) + len(self._delta_cache) + len(
            self._fw_pair_cache
        )

    def delta_of(self, total_key: tuple[tuple[int, int], ...]) -> float:
        """Shared-time delta for a canonical total-counts bundle, memoised.

        ``total_key`` is the canonical sorted ``(machine, count)`` tuple
        — the caller (:class:`~repro.core.bids.Bid`) maintains bundles
        in that form, so no re-canonicalising happens on the hot path,
        and the counts mapping is only materialised on a cache miss.
        Mirrors :meth:`FairnessEstimator.shared_delta_from_snapshot`
        exactly, with the carve kernel served from the cross-round
        caches: the aggregate rate under ``ALL_JOBS``, the per-job
        ``(job_id, rate)`` pairs under ``FIRST_WINNER`` (both survive
        work drains; only a reorder or epoch bump rebuilds them).
        """
        snap = self.snapshot
        assert snap is not None, "refresh() before delta_of()"
        estimator = self.estimator
        if estimator.semantics is CompletionSemantics.FIRST_WINNER:
            cached = self._delta_cache.get(total_key)
            if cached is not None:
                return cached
            if not snap.job_tuples:
                return 0.0
            if not total_key:
                return math.inf
            pairs = self._fw_pair_cache.get(total_key)
            if pairs is None:
                pairs = estimator.carve_pairs_from_snapshot(snap, dict(total_key))
                if len(self._fw_pair_cache) >= _DELTA_CACHE_LIMIT:
                    self._fw_pair_cache.clear()
                self._fw_pair_cache[total_key] = pairs
            remaining = self._remaining_by_id
            delta = math.inf
            for job_id, rate in pairs:
                per_job = remaining[job_id] / rate
                if per_job < delta:
                    delta = per_job
            if len(self._delta_cache) >= _DELTA_CACHE_LIMIT:
                self._delta_cache.clear()
            self._delta_cache[total_key] = delta
            return delta
        if not snap.job_tuples or snap.total_remaining <= 0:
            return 0.0
        rate = self._rate_cache.get(total_key)
        if rate is None:
            rate = estimator.aggregate_rate_from_snapshot(snap, dict(total_key))
            if len(self._rate_cache) >= _DELTA_CACHE_LIMIT:
                self._rate_cache.clear()
            self._rate_cache[total_key] = rate
        if rate <= 0:
            return math.inf
        return snap.total_remaining / rate

    def rho_at(self, now: float, total_key: tuple[tuple[int, int], ...]) -> float:
        """Noise-free rho for a canonical total-counts bundle at ``now``."""
        snap = self.snapshot
        assert snap is not None, "refresh() before rho_at()"
        if snap.t_ideal <= 0:
            raise ValueError(
                f"app {snap.app_id} has non-positive ideal time {snap.t_ideal}"
            )
        elapsed = now - snap.arrival_time
        if elapsed < 0.0:
            elapsed = 0.0
        return (elapsed + self.delta_of(total_key)) / snap.t_ideal

    def current_rho(self, now: float, token: Optional[int] = None) -> float:
        """rho with the allocation the app holds right now (cheap when clean)."""
        self.refresh(token)
        return self.rho_at(now, self.base_key)
