"""Themis core: finish-time fairness, bids, auctions, AGENT and ARBITER.

This package implements the paper's primary contribution:

* :mod:`repro.core.fairness` — the finish-time fairness metric
  ``rho = T_sh / T_id`` and the placement-aware estimators behind bid
  valuations (Section 5.2),
* :mod:`repro.core.bids` — bid tables / valuation functions,
* :mod:`repro.core.auction` — the partial-allocation mechanism with
  hidden payments (Section 5.1, Pseudocode 2),
* :mod:`repro.core.leases` — GPU leases (Section 3),
* :mod:`repro.core.agent` — the per-app AGENT (Section 5.2),
* :mod:`repro.core.arbiter` — the central ARBITER (Pseudocode 1).
"""

from repro.core.agent import Agent
from repro.core.arbiter import Arbiter, ArbiterConfig
from repro.core.auction import (
    AuctionOutcome,
    PartialAllocationAuction,
    exhaustive_nash_allocation,
)
from repro.core.bids import Bid, BidEntry, build_bid
from repro.core.fairness import FairnessEstimator, JobAllotment, carve_allotments
from repro.core.leases import Lease, LeaseManager
from repro.core.policy import OfflineSolution, solve_offline_max_min

__all__ = [
    "Agent",
    "Arbiter",
    "ArbiterConfig",
    "AuctionOutcome",
    "Bid",
    "BidEntry",
    "FairnessEstimator",
    "JobAllotment",
    "Lease",
    "LeaseManager",
    "OfflineSolution",
    "PartialAllocationAuction",
    "solve_offline_max_min",
    "build_bid",
    "carve_allotments",
    "exhaustive_nash_allocation",
]
