"""The per-app AGENT (Section 5.2).

"To minimize changes in the ML app scheduler to participate in
auctions, THEMIS introduces an AGENT that is co-located with each ML
app scheduler.  The AGENT serves as an intermediary between the ML app
and the ARBITER."

The AGENT exposes exactly the two RPCs of Figure 3: answering a rho
probe (step 1) and turning a resource offer into a bid (step 3).  All
app-specific knowledge — work left, max parallelism, placement
sensitivity — flows through the :class:`~repro.workload.app.App` it
wraps, mirroring the narrow app-scheduler-to-AGENT API of the paper.

The bid-valuation error of Figure 11 is injected here (``noise_theta``):
apps "can make errors (not willingly) in computing a new estimate of
rho due to error in estimation of work (W) or placement-sensitivity (S)".
"""

from __future__ import annotations

import math

from repro.core.bids import Bid, _noise_factor
from repro.core.fairness import AppValuationState, FairnessEstimator
from repro.workload.app import App


class Agent:
    """Intermediary between one app's scheduler and the ARBITER.

    The AGENT owns its app's cross-round
    :class:`~repro.core.fairness.AppValuationState`: as long as the app
    is dirty-free (epoch unchanged, nothing allocated) the snapshot,
    rho kernel and delta caches survive verbatim between scheduling
    rounds, so the many starved apps at high contention answer rho
    probes and rebuild bid tables without recomputing a single carve.
    ``incremental=False`` rebuilds everything every round — the honest
    cold baseline the sim macro-benchmark compares against.
    """

    def __init__(
        self,
        app: App,
        estimator: FairnessEstimator,
        noise_theta: float = 0.0,
        incremental: bool = True,
    ) -> None:
        if not 0.0 <= noise_theta < 1.0:
            raise ValueError(f"noise_theta must be in [0, 1), got {noise_theta}")
        self.app = app
        self.estimator = estimator
        self.noise_theta = noise_theta
        self.state = AppValuationState(app, estimator, reuse=incremental)
        self.bids_prepared = 0
        self.auctions_won = 0

    @property
    def app_id(self) -> str:
        """The wrapped app's identifier."""
        return self.app.app_id

    def report_rho(
        self, now: float, salt: int = 0, refresh_token: int | None = None
    ) -> float:
        """Answer the ARBITER's probe with the current (noisy) rho estimate.

        Starved apps report ``inf`` — the unbounded metric that keeps
        them in every subsequent auction until they win (Section 5.1).
        ``refresh_token`` stamps the scheduling round so repeat
        refreshes within it are free (incremental pipeline only).
        """
        rho = self.state.current_rho(now, refresh_token)
        if math.isinf(rho):
            return rho
        return rho * _noise_factor(salt, self.app_id, ("probe",), self.noise_theta)

    def prepare_bid(
        self,
        now: float,
        offered_counts: dict[int, int],
        salt: int = 0,
        refresh_token: int | None = None,
    ) -> Bid:
        """Turn a resource offer into a bid (PREPAREBIDS of Pseudocode 1)."""
        self.bids_prepared += 1
        return Bid(
            app=self.app,
            estimator=self.estimator,
            now=now,
            offered_counts=offered_counts,
            noise_theta=self.noise_theta,
            noise_salt=salt,
            state=self.state,
            refresh_token=refresh_token,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Agent(app={self.app_id}, bids={self.bids_prepared})"
