"""Shared assignment helpers: pool grouping, counts -> GPUs, greedy fill.

Both the Themis ARBITER and the emulated baseline schedulers (Gandiva,
Tiresias, SLAQ — Section 8's comparison points are all modelled "to fit
into an auction-based fair market scheme") work with per-machine GPU
counts and need the same two conversions:

* grouping a concrete GPU pool by machine, slot-sorted, and
* concretising per-machine count assignments back into GPU grants.

:func:`greedy_utility_assign` is the additive-utility counterpart of
the auction's Nash-welfare solver, used by baselines that maximise a
sum (placement score for Gandiva, loss reduction for SLAQ).
"""

from __future__ import annotations

from typing import Callable, Mapping, Optional, Sequence

from repro.cluster.topology import Gpu


def group_pool(pool: Sequence[Gpu]) -> dict[int, list[Gpu]]:
    """Group pooled GPUs by machine, slot-sorted within each machine."""
    grouped: dict[int, list[Gpu]] = {}
    for gpu in sorted(pool, key=lambda g: (g.machine_id, g.slot_id, g.gpu_id)):
        grouped.setdefault(gpu.machine_id, []).append(gpu)
    return grouped


def pool_counts(pool: Sequence[Gpu]) -> dict[int, int]:
    """Per-machine free GPU counts — the paper's offer vector R."""
    counts: dict[int, int] = {}
    for gpu in pool:
        counts[gpu.machine_id] = counts.get(gpu.machine_id, 0) + 1
    return counts


def concretise(
    assignments: Mapping[str, Mapping[int, int]],
    pool_by_machine: Mapping[int, Sequence[Gpu]],
) -> dict[str, list[Gpu]]:
    """Turn per-machine count assignments into concrete GPU grants.

    Within a machine the pooled GPUs are slot-sorted and each app takes
    a contiguous run (largest bundles first, id tie-breaks), preserving
    NVLink-slot packing for the biggest consumer on every machine.
    Raises when assignments exceed the pooled supply.
    """
    result: dict[str, list[Gpu]] = {}
    cursors: dict[int, int] = {machine_id: 0 for machine_id in pool_by_machine}
    per_machine_orders: dict[int, list[tuple[str, int]]] = {}
    for app_id, bundle in assignments.items():
        for machine_id, count in bundle.items():
            if count < 0:
                raise ValueError(f"negative count for app {app_id!r} on machine {machine_id}")
            if count > 0:
                per_machine_orders.setdefault(machine_id, []).append((app_id, count))
    for machine_id, orders in per_machine_orders.items():
        gpus = list(pool_by_machine.get(machine_id, ()))
        orders.sort(key=lambda item: (-item[1], item[0]))
        for app_id, count in orders:
            start = cursors.get(machine_id, 0)
            granted = gpus[start : start + count]
            if len(granted) < count:
                raise RuntimeError(
                    f"assignment exceeds pooled GPUs on machine {machine_id}: "
                    f"wanted {count}, had {len(gpus) - start}"
                )
            cursors[machine_id] = start + count
            result.setdefault(app_id, []).extend(granted)
    return result


def greedy_utility_assign(
    pool: Mapping[int, int],
    utilities: Mapping[str, Callable[[Mapping[int, int]], float]],
    caps: Mapping[str, int],
    chunk_size: int = 4,
) -> dict[str, dict[int, int]]:
    """Greedy maximisation of an *additive* social objective.

    Repeatedly applies the single (app, machine, step) move with the
    largest marginal utility per GPU until no move improves.  Utilities
    are absolute (utility of the app's cumulative bundle); marginal
    gain is the difference.  Deterministic via sorted tie-breaks.
    """
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be > 0, got {chunk_size}")
    remaining = {m: c for m, c in pool.items() if c > 0}
    assignment: dict[str, dict[int, int]] = {a: {} for a in utilities}
    granted = {a: 0 for a in utilities}
    cache: dict[tuple, float] = {}

    def evaluate(app_id: str, bundle: Mapping[int, int]) -> float:
        # Only one app's bundle grows per move, so most probes repeat
        # across iterations; memoise on (app, canonical bundle).
        key = (app_id, tuple(sorted(bundle.items())))
        if key not in cache:
            cache[key] = utilities[app_id](bundle)
        return cache[key]

    current = {a: evaluate(a, {}) for a in utilities}
    while remaining:
        best_key = None
        best_move = None
        for app_id in sorted(utilities):
            headroom = caps.get(app_id, 0) - granted[app_id]
            if headroom <= 0:
                continue
            for machine_id in sorted(remaining):
                free = remaining[machine_id]
                for step in sorted({1, min(chunk_size, free, headroom)}):
                    if step <= 0:
                        continue
                    bundle = dict(assignment[app_id])
                    bundle[machine_id] = bundle.get(machine_id, 0) + step
                    gain = (evaluate(app_id, bundle) - current[app_id]) / step
                    if gain <= 1e-12:
                        continue
                    key = (-gain, step, app_id, machine_id)
                    if best_key is None or key < best_key:
                        best_key = key
                        best_move = (app_id, machine_id, step, bundle)
        if best_move is None:
            break
        app_id, machine_id, step, bundle = best_move
        assignment[app_id] = bundle
        granted[app_id] += step
        current[app_id] = evaluate(app_id, bundle)
        remaining[machine_id] -= step
        if remaining[machine_id] <= 0:
            del remaining[machine_id]
    return {a: b for a, b in assignment.items() if b}


def take_packed(
    pool_by_machine: dict[int, list[Gpu]],
    count: int,
    preferred_machines: Sequence[int] = (),
    speed_of: Optional[Mapping[int, float]] = None,
) -> list[Gpu]:
    """Remove up to ``count`` GPUs from the pool, packing tightly.

    Drains preferred machines first (where the requester already has
    GPUs), then machines with the most *effective* free compute
    (count x GPU speed class when ``speed_of`` is given, plain count
    otherwise) — the straightforward placement- and generation-aware
    fill used by the non-auction baselines.  Mutates
    ``pool_by_machine``.
    """
    taken: list[Gpu] = []
    preferred = [m for m in preferred_machines if pool_by_machine.get(m)]
    weight = (lambda m: speed_of.get(m, 1.0)) if speed_of else (lambda m: 1.0)
    rest = sorted(
        (m for m in pool_by_machine if m not in set(preferred)),
        key=lambda m: (-len(pool_by_machine[m]) * weight(m), m),
    )
    for machine_id in list(preferred) + rest:
        if count <= 0:
            break
        gpus = pool_by_machine.get(machine_id)
        if not gpus:
            continue
        grab = min(count, len(gpus))
        taken.extend(gpus[:grab])
        del gpus[:grab]
        if not gpus:
            del pool_by_machine[machine_id]
        count -= grab
    return taken
