"""The partial-allocation (PA) auction of Section 5.1 / Pseudocode 2.

Three stages:

1. **Proportional-fair winner determination** — find the assignment of
   offered GPUs to bidding apps maximising the Nash product of
   valuations ``prod_i V_i(R_i)``.  The paper solves this with Gurobi;
   we use a greedy marginal-log-gain solver (with an exhaustive
   reference solver for small instances, used in tests).  Apps with
   zero current value (starved, unbounded rho) are rescued first —
   matching max-Nash-welfare semantics, where any assignment giving a
   zero-value app something dominates all assignments that do not.

2. **Hidden payments** — each winner ``i`` keeps only a fraction
   ``c_i = prod_{j != i} V_j(R_j,pf) / prod_{j != i} V_j(R_-i_j,pf)``
   of its proportional-fair bundle, where the denominator re-solves the
   market without ``i``.  This is what makes truthful reporting of V a
   dominant strategy (Cole, Gkatzelis, Goel 2013).

3. **Leftovers** — GPUs withheld as payments are reported back to the
   caller; the ARBITER hands them to non-participating apps in a
   placement-sensitive, work-conserving way (Section 5.1, "Leftover
   Allocation").

Solver complexity and the lazy heap
-----------------------------------

The original winner determination was a full rescan: every greedy step
re-scored every ``(app, machine, step)`` move, i.e. ``O(A x M)``
valuation probes per applied move and ``O(G/chunk x A x M)`` per solve
(``A`` apps, ``M`` machines with free GPUs, ``G`` pool GPUs).  With
hidden payments on, the market is re-solved once per winner, so one
auction round cost ``O(A)`` solves — ``O(G/chunk x A^2 x M)`` probes.

The default solver (:meth:`PartialAllocationAuction._solve_lazy`) is a
CELF-style lazy-greedy over a max-heap of candidate moves.  Each heap
entry caches the score of the best move for one ``(app, machine)``
pair.  The **staleness invariant** that makes the heap exact is:

    a cached score for pair ``(a, m)`` depends *only* on app ``a``'s
    current bundle (and therefore its current value and headroom) and
    on machine ``m``'s free-GPU count.  Applying a move by app ``A``
    on machine ``Q`` therefore invalidates exactly the entries of row
    ``A`` and column ``Q``; every other cached score is still exact.

After each applied move only the ``O(A + M)`` invalidated pairs are
re-scored (version counters mark the remaining heap entries stale, and
stale entries are discarded lazily on pop), so the heap minimum is
always a freshly scored, exact argmin — the solver replays the full
rescan's choice sequence *byte-identically*, including tie-breaks,
without relying on submodularity of the marginal gains.  Per-solve cost
drops to ``O(A x M)`` initial scores plus ``O(G/chunk x (A + M))``
maintenance.

Bound-gated, vector-batched re-scoring (``rescore="gated"``)
------------------------------------------------------------

The ``O(A + M)`` post-move re-scores are *precise* scalar valuation
probes over trajectory-dependent compound bundles — identical work in
incremental and cold modes, unprimeable by any cross-round cache, and
the dominant cost at ``sim-xl`` scale.  Plain lazy-CELF stale-heap
re-validation is NOT exact here: Themis marginal gains are non-monotone
(a shrinking machine can *raise* a pair's normalized gain — see
tests/test_rescore_exactness.py for a pinned counterexample), so the
default ``"gated"`` mode instead applies two *provably exact*
reductions; ``rescore="eager"`` keeps the plain re-score loop as the
oracle the equivalence suite compares against.

**Skip rule (the invalidation algebra).**  :meth:`_score_pair`'s result
is a pure function of a key narrower than its argument list:

* on the gain path (``current_value > 0``) the probed bundles are
  ``current_key + {machine: step}`` for ``step in {1, chunk}`` with
  ``chunk = min(chunk_size, free, headroom)``; ``current_value`` is
  itself ``bid.value_from_key(current_key)`` and the heap key
  ``(1, -gain, step, app_id, machine_id)`` never reads ``free`` — so
  the score is pure in ``(machine_id, current_key, chunk)``.  A column
  shrink that leaves ``min(chunk_size, free, headroom)`` unchanged
  therefore *cannot* have changed the score and is served from the
  memo (the pre-PR-10 memo keyed on raw ``free`` and missed on every
  shrink);
* on the rescue path (``current_value <= 0`` — itself pure in
  ``current_key``) the step is always 1 and ``new_value`` is pure in
  ``(machine_id, current_key)``; only the tie-break term
  ``-free * speed`` reads ``free``, so the memo stores ``new_value``
  and rebuilds the heap key from the live ``free`` with the identical
  float expression.

**Batch rule.**  The candidates a move by ``(A, Q)`` forces — row
``A x remaining`` and column ``apps x Q``, minus the memo/value-cache
hits — are all known the moment the move applies.  The re-score pass
scores cache-warm pairs immediately and *parks* the rest, keying each
pair exactly once; the parked pairs' missing bundles run through
:meth:`FairnessEstimator.batch_prime` in one pass (same IEEE-754 op
sequence as the scalar kernel, so the floats are byte-identical;
scalar fallback under ``REPRO_NO_NUMPY``), and the finish pass scores
them against the warm caches.  Both reductions change *where* a float
is computed, never *which* float.

Payment re-solves are warm-started: the greedy state of the
``without_i`` market evolves identically to the full market until the
first move the full solve awarded to ``i`` (removing ``i``'s candidate
entries cannot change any earlier argmin), so that move prefix is
replayed without any probing and only the suffix is solved.  All
solves share each :class:`~repro.core.bids.Bid`'s rho/valuation cache,
so suffix probes of bundles already seen by the full solve are cache
hits.  The pre-refactor full-rescan solver is kept as
:func:`rescan_fair_allocation` — the reference implementation the
equivalence tests and ``repro bench`` compare against.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from repro.core.bids import Bid
from repro.obs.profiler import NULL_PROFILER

#: Floor used when taking logs of zero valuations in payment ratios.
_VALUE_EPSILON = 1e-12


def _merge(base: Mapping[int, int], machine_id: int, extra: int) -> dict[int, int]:
    """Bundle ``base`` with ``extra`` more GPUs on ``machine_id``."""
    bundle = dict(base)
    bundle[machine_id] = bundle.get(machine_id, 0) + extra
    return bundle


def _bundle_total(bundle: Mapping[int, int]) -> int:
    return sum(bundle.values())


#: Canonical bundle key: sorted ((machine, count), ...) tuple.
_BundleKey = tuple[tuple[int, int], ...]


def _merged_key(base: _BundleKey, machine_id: int, extra: int) -> _BundleKey:
    """``base`` with ``extra`` more GPUs on ``machine_id``, staying sorted.

    The lazy solver's probe path: extending an already-canonical key is
    O(len(bundle)) with no dict build or re-sort (bundles are tiny —
    a handful of machines per app).
    """
    out: list[tuple[int, int]] = []
    inserted = False
    for machine, count in base:
        if machine == machine_id:
            out.append((machine, count + extra))
            inserted = True
        elif not inserted and machine > machine_id:
            out.append((machine_id, extra))
            out.append((machine, count))
            inserted = True
        else:
            out.append((machine, count))
    if not inserted:
        out.append((machine_id, extra))
    return tuple(out)


@dataclass
class AuctionOutcome:
    """Everything the ARBITER needs from one auction round."""

    winners: dict[str, dict[int, int]]
    proportional_fair: dict[str, dict[int, int]]
    payments: dict[str, float]
    leftover: dict[int, int]
    participants: tuple[str, ...]
    nash_log_welfare: float = 0.0

    def won_gpus(self, app_id: str) -> int:
        """Total GPUs app ``app_id`` won after payments."""
        return _bundle_total(self.winners.get(app_id, {}))

    @property
    def total_allocated(self) -> int:
        """GPUs handed to auction winners (excluding leftovers)."""
        return sum(_bundle_total(bundle) for bundle in self.winners.values())

    @property
    def total_leftover(self) -> int:
        """GPUs withheld by hidden payments (to be given to non-participants)."""
        return _bundle_total(self.leftover)


@dataclass
class AuctionSolveStats:
    """Instrumentation for one :meth:`PartialAllocationAuction.run` call.

    ``pair_scores`` counts candidate (app, machine) scorings — each is
    at most two valuation probes — and is the quantity the lazy heap
    exists to minimise; ``replayed_moves`` counts warm-start moves the
    payment re-solves applied without any scoring at all.

    When warm starts are enabled, ``warm_hits`` counts candidate work
    satisfied from warm state (pair-score memo hits plus initial-heap
    bundles already in the kernel caches) and ``warm_misses`` the
    candidates that had to be computed fresh (memo misses plus batch
    carves).  Both stay zero on the cold path.

    The ``rescore_*`` trio instruments the post-move re-scoring wall
    (active in *both* incremental and cold modes): ``rescore_carves``
    counts precise scalar kernel carves the row/column re-scores after
    applied moves still performed — the quantity the gated mode exists
    to minimise, and what the ``sim-xl`` CI gate holds a per-move
    ceiling on; ``rescore_skipped`` counts post-move pair scores served
    whole from the bound-gated memo (no probe at all); and
    ``rescore_batched`` counts kernel carves the vectorized post-move
    prime performed instead of the scalar loop.  Under
    ``rescore="eager"`` no batch prime runs (``rescore_batched`` is
    zero; ``rescore_skipped`` only counts the warm-start memo's hits)
    and ``rescore_carves`` reports the full eager-invalidation cost,
    so the two modes' counters are directly comparable.
    """

    solves: int = 0
    moves: int = 0
    replayed_moves: int = 0
    pair_scores: int = 0
    warm_hits: int = 0
    warm_misses: int = 0
    rescore_carves: int = 0
    rescore_skipped: int = 0
    rescore_batched: int = 0


#: One applied greedy move: (app_id, machine_id, step, value after move).
_Move = tuple[str, int, int, float]

#: Sentinel distinguishing "memoised as None" from "not memoised".
_MEMO_MISS = object()

#: Sentinel returned by :meth:`PartialAllocationAuction._score_pair`
#: when a ``defer`` list was supplied and the pair's probe bundles are
#: not all cache-warm: the pair is parked for the post-prime finish
#: pass instead of carving on demand.
_DEFERRED = object()

#: Smallest candidate batch worth sending to the vector carve kernel
#: from the heap warm start.  Below this the per-call numpy overhead
#: loses to the scalar on-demand path, so the prime skips the carve
#: entirely (the candidates stay byte-identical either way — they are
#: simply computed lazily instead of eagerly).
_HEAP_PRIME_MIN = 64

#: Smallest post-move missing-bundle batch worth one prime pass.
#: Below this the deferred pairs' finish pass simply carves on demand
#: (counted in ``rescore_carves``), byte-identically — like
#: :data:`_HEAP_PRIME_MIN` this is purely a perf knob.
_RESCORE_BATCH_MIN = 16


class PartialAllocationAuction:
    """Greedy-Nash-welfare implementation of the PA mechanism.

    ``chunk_size`` bounds how many co-located GPUs a single greedy step
    may hand to one app (defaults to 4 — one typical gang of the
    trace); smaller steps trade solve time for solution quality.

    ``solver`` selects the winner-determination implementation:
    ``"lazy"`` (default) is the CELF-style heap solver, ``"rescan"``
    the pre-refactor full rescan.  Both produce identical assignments
    (see the module docstring); ``"rescan"`` exists for equivalence
    tests and as the ``repro bench`` reference.

    ``rescore`` selects how the lazy solver re-scores the row/column a
    move invalidates: ``"gated"`` (default) applies the bound-gated
    memo skips and the vectorized post-move batch prime (module
    docstring, "Bound-gated, vector-batched re-scoring"), ``"eager"``
    the plain precise re-score loop.  Both are byte-identical — eager
    is the oracle tests/test_rescore_exactness.py sweeps against.
    """

    def __init__(
        self, chunk_size: int = 4, solver: str = "lazy", rescore: str = "gated"
    ) -> None:
        if chunk_size <= 0:
            raise ValueError(f"chunk_size must be > 0, got {chunk_size}")
        if solver not in ("lazy", "rescan"):
            raise ValueError(f"solver must be 'lazy' or 'rescan', got {solver!r}")
        if rescore not in ("gated", "eager"):
            raise ValueError(f"rescore must be 'gated' or 'eager', got {rescore!r}")
        self.chunk_size = chunk_size
        self.solver = solver
        self.rescore = rescore
        self.last_stats = AuctionSolveStats()
        # Observability hook; the simulator rewires this at bind time.
        self.profiler = NULL_PROFILER
        #: Warm starts (set by the scheduler at bind time alongside the
        #: incremental valuation pipeline).  Raw heap entries cannot
        #: survive a round — scores embed elapsed-dependent values — but
        #: two elapsed-invariant layers can: (1) the initial heap
        #: build's candidate bundles are batch-primed through
        #: ``estimator.batch_prime`` (one vectorized carve; bundles a
        #: previous round already carved are free), and (2) each bid
        #: memoises whole scored pairs, so every re-solve of the round
        #: (one per winner for hidden payments) rebuilds its heap from
        #: dict hits instead of re-probing valuations.  Both layers
        #: reproduce the cold path byte-identically.
        self.warm_enabled = False
        self.estimator = None

    # ------------------------------------------------------------------
    # Stage 1: proportional-fair (max Nash welfare) assignment
    # ------------------------------------------------------------------
    def proportional_fair_allocation(
        self,
        pool: Mapping[int, int],
        bids: Mapping[str, Bid],
        exclude: Optional[str] = None,
    ) -> dict[str, dict[int, int]]:
        """Greedy max-Nash-welfare assignment of the pool to bidders.

        Each step applies the move with the best marginal log-valuation
        among every app grabbing 1 or ``chunk_size`` GPUs on any machine
        with free GPUs.  Rescue moves (taking an app from zero to
        positive value) always dominate, largest new value first, which
        is the lexicographic max-Nash-welfare rule.
        """
        assignment, _ = self._solve(pool, bids, exclude=exclude)
        return assignment

    def _solve(
        self,
        pool: Mapping[int, int],
        bids: Mapping[str, Bid],
        exclude: Optional[str] = None,
        prefix: Sequence[_Move] = (),
        stats: Optional[AuctionSolveStats] = None,
    ) -> tuple[dict[str, dict[int, int]], list[_Move]]:
        """Dispatch to the configured solver; returns (assignment, moves)."""
        if stats is not None:
            stats.solves += 1
        if self.solver == "rescan":
            assignment = rescan_fair_allocation(
                pool, bids, chunk_size=self.chunk_size, exclude=exclude
            )
            return assignment, []
        return self._solve_lazy(pool, bids, exclude, prefix, stats)

    def _score_pair(
        self,
        bid: Bid,
        app_id: str,
        machine_id: int,
        free: int,
        current_key: _BundleKey,
        current_value: float,
        headroom: int,
        stats: Optional[AuctionSolveStats] = None,
        rescore: bool = False,
        defer: Optional[list] = None,
        prime: Optional[list] = None,
    ) -> Optional[tuple[tuple, _Move]]:
        """Best (key, move) for one (app, machine) pair, or ``None``.

        Keys order rescues before gains (leading 0/1) and reproduce the
        rescan solver's tie-breaks exactly; they are unique per entry
        because they embed (step, app_id, machine_id).

        Results are memoised per bid under the *exact purity key* of
        the score (module docstring, "Skip rule"):

        * gain path — ``(machine_id, current_key, chunk)`` with
          ``chunk = min(chunk_size, free, headroom)``: the probed
          bundles and the heap key read ``free``/``headroom`` only
          through ``chunk``, so a column shrink that leaves ``chunk``
          unchanged is a guaranteed hit;
        * rescue path — ``(machine_id, current_key)``: the single
          step-1 probe never reads ``free``; only the heap key's
          tie-break term does, so the memo stores ``new_value`` (or
          ``None`` for "no improving move", equally free-independent)
          and the key is rebuilt from the live ``free`` with the same
          float expression the miss path uses.

        Whether a pair *is* a rescue is pure in ``current_key`` (it is
        ``bid.value_from_key(current_key) <= 0``), and the two key
        shapes differ in length, so the paths cannot collide.  The memo
        is consulted under ``rescore="gated"`` in both warm and cold
        modes; ``rescore="eager"`` preserves the earlier behaviour of
        memoising only when warm starts are on.  ``rescore=True`` marks
        a post-move re-score call (counter attribution only).

        With ``defer``/``prime`` lists supplied (the gated re-score's
        batched pass), a pair whose probe bundles are not all warm in
        the bid's value/rho caches is *parked*: its missing kernel
        bundles go on ``prime``, its already-derived keys go on
        ``defer``, and :data:`_DEFERRED` is returned.  After one
        vectorized ``batch_prime`` the caller finishes the parked pairs
        via :meth:`_finish_deferred` — the same
        :meth:`_score_probes` floats, each pair keyed exactly once.
        """
        rescue = current_value <= 0.0
        memo: Optional[dict[tuple, object]] = None
        memo_key: Optional[tuple] = None
        if self.warm_enabled or self.rescore == "gated":
            memo = bid._pair_memo
            if rescue:
                memo_key: tuple = (machine_id, current_key)
            else:
                memo_key = (
                    machine_id,
                    current_key,
                    min(self.chunk_size, free, headroom),
                )
            cached = memo.get(memo_key, _MEMO_MISS)
            if cached is not _MEMO_MISS:
                if stats is not None:
                    if self.warm_enabled:
                        stats.warm_hits += 1
                    if rescore:
                        stats.rescore_skipped += 1
                if not rescue:
                    return cached  # type: ignore[return-value]
                if cached is None:
                    return None
                new_value: float = cached  # type: ignore[assignment]
                key = (
                    0,
                    -new_value,
                    1,
                    -free * bid.machine_speed(machine_id),
                    app_id,
                    machine_id,
                )
                return (key, (app_id, machine_id, 1, new_value))
            if stats is not None and self.warm_enabled:
                stats.warm_misses += 1
        if rescue:
            # Rescue with the smallest possible grab: one GPU already
            # makes the app's value positive, and lexicographic
            # max-Nash-welfare maximises the number of positive-value
            # apps before the product.
            step_sizes: tuple[int, ...] = (1,)
        else:
            chunk = min(self.chunk_size, free, headroom)
            step_sizes = (1,) if chunk <= 1 else (1, chunk)
        probes = tuple(
            (step, _merged_key(current_key, machine_id, step))
            for step in step_sizes
        )
        if defer is not None:
            value_cache = bid._value_cache
            rho_cache = bid._rho_cache
            missing = [
                extra
                for _step, extra in probes
                if extra not in value_cache and extra not in rho_cache
            ]
            if missing:
                for extra in missing:
                    prime.append((bid.state, bid.total_key_of(extra)))
                defer.append(
                    (bid, app_id, machine_id, free, current_value,
                     rescue, memo, memo_key, probes)
                )
                return _DEFERRED  # type: ignore[return-value]
        best = self._score_probes(
            bid, app_id, machine_id, free, current_value, rescue, probes
        )
        if memo is not None:
            if rescue:
                memo[memo_key] = None if best is None else best[1][3]
            else:
                memo[memo_key] = best
        return best

    def _score_probes(
        self,
        bid: Bid,
        app_id: str,
        machine_id: int,
        free: int,
        current_value: float,
        rescue: bool,
        probes: tuple[tuple[int, _BundleKey], ...],
    ) -> Optional[tuple[tuple, _Move]]:
        """Score pre-keyed ``(step, extra_key)`` probes for one pair.

        The single scoring loop shared by the on-demand path and the
        deferred finish pass — both produce their floats here, so
        batching changes *when* a bundle is carved, never the score.
        """
        best: Optional[tuple[tuple, _Move]] = None
        for step, extra in probes:
            new_value = bid.value_from_key(extra)
            if new_value <= current_value:
                continue
            move = (app_id, machine_id, step, new_value)
            if rescue:
                # Rescue: infinite log gain; prefer highest new value,
                # then machines with the most *effective* free compute
                # (count x speed class — so the rescued app can grow
                # co-located on fast GPUs), deterministic ties.
                key = (
                    0,
                    -new_value,
                    step,
                    -free * bid.machine_speed(machine_id),
                    app_id,
                    machine_id,
                )
            else:
                gain = (math.log(new_value) - math.log(current_value)) / step
                key = (1, -gain, step, app_id, machine_id)
            if best is None or key < best[0]:
                best = (key, move)
        return best

    def _finish_deferred(
        self, record: tuple
    ) -> Optional[tuple[tuple, _Move]]:
        """Finish one pair parked by :meth:`_score_pair`'s defer path.

        Runs after the batch prime warmed the missing bundles: the
        probes (already keyed once) now resolve from caches, and the
        memo store mirrors the on-demand path exactly.  No memo lookup
        happens here — the defer path already took (and counted) the
        miss.
        """
        (bid, app_id, machine_id, free, current_value,
         rescue, memo, memo_key, probes) = record
        best = self._score_probes(
            bid, app_id, machine_id, free, current_value, rescue, probes
        )
        if memo is not None:
            if rescue:
                memo[memo_key] = None if best is None else best[1][3]
            else:
                memo[memo_key] = best
        return best

    def _solve_lazy(
        self,
        pool: Mapping[int, int],
        bids: Mapping[str, Bid],
        exclude: Optional[str],
        prefix: Sequence[_Move],
        stats: Optional[AuctionSolveStats],
    ) -> tuple[dict[str, dict[int, int]], list[_Move]]:
        """Lazy-greedy solver (see module docstring for the invariant)."""
        remaining = {m: c for m, c in pool.items() if c > 0}
        apps = [a for a in sorted(bids) if a != exclude]
        assignment: dict[str, dict[int, int]] = {a: {} for a in apps}
        bundle_keys: dict[str, _BundleKey] = {a: () for a in apps}
        values = {a: bids[a].value_of({}) for a in apps}
        granted = {a: 0 for a in apps}
        moves: list[_Move] = list(prefix)

        # Warm start: replay an already-validated move sequence without
        # re-scoring anything (see _payment_fraction).
        for app_id, machine_id, step, new_value in prefix:
            assignment[app_id] = _merge(assignment[app_id], machine_id, step)
            bundle_keys[app_id] = _merged_key(bundle_keys[app_id], machine_id, step)
            values[app_id] = new_value
            granted[app_id] += step
            remaining[machine_id] -= step
            if remaining[machine_id] <= 0:
                del remaining[machine_id]
        if stats is not None:
            stats.replayed_moves += len(prefix)

        app_version = {a: 0 for a in apps}
        machine_version = {m: 0 for m in remaining}
        heap: list[tuple] = []
        gated = self.rescore == "gated"
        # Carve accounting (and the gated batch prime) need the shared
        # estimator; the scheduler binds it on the auction, ad-hoc
        # callers reach it through any bid (all of an auction's bids
        # share one).  Purely instrumentation + perf — never values.
        estimator = self.estimator
        if estimator is None and bids:
            estimator = next(iter(bids.values()))._estimator

        def push_pair(
            app_id: str,
            machine_id: int,
            rescore: bool = False,
            defer: Optional[list] = None,
            prime: Optional[list] = None,
        ) -> None:
            free = remaining.get(machine_id, 0)
            if free <= 0:
                return
            bid = bids[app_id]
            headroom = bid.demand - granted[app_id]
            if headroom <= 0:
                return
            if stats is not None:
                stats.pair_scores += 1
            scored = self._score_pair(
                bid,
                app_id,
                machine_id,
                free,
                bundle_keys[app_id],
                values[app_id],
                headroom,
                stats,
                rescore,
                defer,
                prime,
            )
            if scored is None or scored is _DEFERRED:
                return
            key, move = scored
            token = (app_version[app_id], machine_version[machine_id])
            heapq.heappush(heap, (key, app_id, machine_id, token, move))

        def rescore_after_move(app_id: str, machine_id: int) -> None:
            """Re-score row ``app_id`` and column ``machine_id``.

            Under ``"gated"`` this is a three-pass flow: pairs whose
            probe bundles are cache-warm score immediately, the rest
            park on a pending list (each pair keyed exactly once) while
            their missing kernel bundles collect for one vectorized
            ``batch_prime``; the finish pass then scores the parked
            pairs against warm caches.  Under ``"eager"`` every pair
            carves on demand.  Either way every float comes from the
            same kernel on the same bundle — byte-identical.
            """
            carves_before = (
                estimator.carve_count
                if stats is not None and estimator is not None
                else 0
            )
            batched = 0
            if gated and estimator is not None:
                pending: list = []
                prime: list = []
                if machine_id in remaining:
                    for other_app in apps:
                        if other_app != app_id:
                            push_pair(other_app, machine_id, True, pending, prime)
                for other_machine in remaining:
                    push_pair(app_id, other_machine, True, pending, prime)
                if len(prime) >= _RESCORE_BATCH_MIN:
                    batched, _hits = estimator.batch_prime(prime)
                    if stats is not None:
                        stats.rescore_batched += batched
                for record in pending:
                    scored = self._finish_deferred(record)
                    if scored is None:
                        continue
                    key, move = scored
                    rec_app, rec_machine = record[1], record[2]
                    token = (app_version[rec_app], machine_version[rec_machine])
                    heapq.heappush(
                        heap, (key, rec_app, rec_machine, token, move)
                    )
            else:
                if machine_id in remaining:
                    for other_app in apps:
                        if other_app != app_id:
                            push_pair(other_app, machine_id, True)
                for other_machine in remaining:
                    push_pair(app_id, other_machine, True)
            if stats is not None and estimator is not None:
                stats.rescore_carves += (
                    estimator.carve_count - carves_before - batched
                )

        for app_id in apps:
            for machine_id in remaining:
                push_pair(app_id, machine_id)

        profiler = self.profiler
        while heap:
            key, app_id, machine_id, token, move = heapq.heappop(heap)
            if token != (app_version[app_id], machine_version[machine_id]):
                continue  # stale: a fresher entry for this pair was pushed
            _, _, step, new_value = move
            assignment[app_id] = _merge(assignment[app_id], machine_id, step)
            bundle_keys[app_id] = _merged_key(bundle_keys[app_id], machine_id, step)
            values[app_id] = new_value
            granted[app_id] += step
            remaining[machine_id] -= step
            if remaining[machine_id] <= 0:
                del remaining[machine_id]
            moves.append(move)
            if stats is not None:
                stats.moves += 1
            # Precise invalidation: only row app_id and column machine_id
            # scores changed; re-score them now so every live heap entry
            # stays exact.
            app_version[app_id] += 1
            machine_version[machine_id] += 1
            if profiler.enabled:
                with profiler.phase("rescore"):
                    rescore_after_move(app_id, machine_id)
            else:
                rescore_after_move(app_id, machine_id)
        return assignment, moves

    def _prime_heap(
        self,
        pool: Mapping[int, int],
        bids: Mapping[str, Bid],
        stats: Optional[AuctionSolveStats],
    ) -> None:
        """Batch-prime the kernel caches for the initial heap build.

        Enumerates the single-machine candidate bundles the round's
        solves will probe and carves their total keys in one vectorized
        pass.  For each pool machine every step up to
        ``min(chunk_size, free, headroom)`` is covered — free counts
        only drain during a solve, so this closes over the initial heap
        build *and* every later re-score and payment-re-solve rebuild
        at smaller frees.  (Compound bundles — an app extending a
        multi-machine holding mid-solve — are trajectory-dependent and
        stay on the scalar path.)

        Two gates keep the prime from ever costing more than it saves
        (both are pure perf knobs — priming never changes a value):

        * only bids whose kernel caches were invalidated since their
          last prime are enumerated (``cache_generation`` vs
          ``primed_generation``) — a stable starved app re-bidding the
          same book round after round costs one integer compare;
        * the batch is only carved when it is large enough for the
          vector kernel to beat the scalar path
          (:data:`_HEAP_PRIME_MIN`); a trickle of candidates falls
          through to on-demand scalar carves, byte-identically.  Small
          clusters rarely clear the bar; ``sim-xl``-sized pools do.
        """
        estimator = self.estimator
        if estimator is None:
            return
        pairs = []
        for app_id in sorted(bids):
            bid = bids[app_id]
            headroom = bid.demand
            if headroom <= 0:
                continue
            state = bid.state
            if state.primed_generation == state.cache_generation:
                continue
            state.primed_generation = state.cache_generation
            max_step = self.chunk_size if bid.value_from_key(()) > 0.0 else 1
            for machine_id, free in pool.items():
                top = min(max_step, free, headroom)
                for step in range(1, top + 1):
                    pairs.append((state, bid.total_key_of(((machine_id, step),))))
        if len(pairs) < _HEAP_PRIME_MIN:
            return
        carves, hits = estimator.batch_prime(pairs)
        if stats is not None:
            stats.warm_misses += carves
            stats.warm_hits += hits

    # ------------------------------------------------------------------
    # Stage 2: hidden payments
    # ------------------------------------------------------------------
    def _log_value(self, value: float) -> float:
        return math.log(max(value, _VALUE_EPSILON))

    def _payment_fraction(
        self,
        app_id: str,
        pool: Mapping[int, int],
        bids: Mapping[str, Bid],
        pf_allocation: Mapping[str, Mapping[int, int]],
        full_moves: Sequence[_Move] = (),
        stats: Optional[AuctionSolveStats] = None,
        pf_values: Optional[Mapping[str, float]] = None,
    ) -> float:
        """``c_i`` of Pseudocode 2: the externality app ``i`` imposes.

        The Cole-Gkatzelis-Goel ratio is defined over divisible goods
        where valuations are strictly positive.  Our indivisible-GPU
        setting admits exactly-zero values (a starved app holding
        nothing), and a 0 -> positive transition between the two
        markets would turn the ratio into an unbounded artefact of the
        zero floor rather than a meaningful externality.  We therefore
        aggregate the ratio over competitors with positive value in
        *both* markets — for everyone else the externality is already
        expressed through the allocation itself.

        ``full_moves`` (the full market's greedy move sequence) lets the
        ``without_i`` re-solve replay every move before ``i``'s first
        win for free: up to that point the two markets' greedy states
        are identical, and dropping ``i``'s candidate moves cannot
        change an argmin ``i`` did not win.
        """
        others = [a for a in bids if a != app_id]
        if not others:
            return 1.0
        prefix: Sequence[_Move] = ()
        if full_moves:
            first_win = next(
                (i for i, move in enumerate(full_moves) if move[0] == app_id),
                len(full_moves),
            )
            prefix = full_moves[:first_win]
        without_i, _ = self._solve(
            pool, bids, exclude=app_id, prefix=prefix, stats=stats
        )
        log_ratio = 0.0
        for other in others:
            if pf_values is not None:
                v_with = pf_values[other]
            else:
                v_with = bids[other].value_of(pf_allocation.get(other, {}))
            v_without = bids[other].value_of(without_i.get(other, {}))
            if v_with > 0.0 and v_without > 0.0:
                log_ratio += math.log(v_with) - math.log(v_without)
        fraction = math.exp(log_ratio)
        return max(0.0, min(1.0, fraction))

    @staticmethod
    def _shrink_bundle(bundle: Mapping[int, int], keep: int) -> dict[int, int]:
        """Drop GPUs down to ``keep``, removing from the most fragmented
        machines first so the surviving bundle stays tightly packed."""
        total = _bundle_total(bundle)
        drop = total - keep
        if drop <= 0:
            return dict(bundle)
        shrunk = dict(bundle)
        # Smallest per-machine counts are the placement-stragglers.
        for machine_id in sorted(shrunk, key=lambda m: (shrunk[m], m)):
            if drop <= 0:
                break
            removed = min(shrunk[machine_id], drop)
            shrunk[machine_id] -= removed
            drop -= removed
            if shrunk[machine_id] == 0:
                del shrunk[machine_id]
        return shrunk

    # ------------------------------------------------------------------
    # Full mechanism
    # ------------------------------------------------------------------
    def run(
        self,
        pool: Mapping[int, int],
        bids: Mapping[str, Bid],
        apply_hidden_payments: bool = True,
    ) -> AuctionOutcome:
        """Run the PA mechanism over ``pool`` with the given bids.

        ``apply_hidden_payments=False`` disables stage 2 (pure
        proportional fairness) — used by the ablation benchmark that
        quantifies what truthfulness protection costs.
        """
        pool = {m: c for m, c in pool.items() if c > 0}
        participants = tuple(sorted(bids))
        stats = AuctionSolveStats()
        self.last_stats = stats
        if not pool or not participants:
            return AuctionOutcome(
                winners={},
                proportional_fair={},
                payments={},
                leftover=dict(pool),
                participants=participants,
            )
        if self.warm_enabled:
            with self.profiler.phase("heap_warm_start"):
                self._prime_heap(pool, bids, stats)
        with self.profiler.phase("auction_solve"):
            pf_allocation, full_moves = self._solve(pool, bids, stats=stats)
        payments: dict[str, float] = {}
        winners: dict[str, dict[int, int]] = {}
        with self.profiler.phase("payment_resolves"):
            # The proportional-fair values are fixed for the round; every
            # ``without_i`` ratio reads the same numerators.
            pf_values = {
                app_id: bids[app_id].value_of(pf_allocation.get(app_id, {}))
                for app_id in participants
            }
            for app_id in participants:
                bundle = pf_allocation.get(app_id, {})
                if not bundle:
                    payments[app_id] = 1.0
                    continue
                if apply_hidden_payments:
                    fraction = self._payment_fraction(
                        app_id, pool, bids, pf_allocation, full_moves, stats,
                        pf_values,
                    )
                else:
                    fraction = 1.0
                payments[app_id] = fraction
                keep = math.floor(fraction * _bundle_total(bundle) + 1e-9)
                shrunk = self._shrink_bundle(bundle, keep)
                if shrunk:
                    winners[app_id] = shrunk
        leftover = dict(pool)
        for bundle in winners.values():
            for machine_id, count in bundle.items():
                leftover[machine_id] = leftover.get(machine_id, 0) - count
        leftover = {m: c for m, c in leftover.items() if c > 0}
        if any(c < 0 for c in leftover.values()):
            raise RuntimeError("auction over-allocated a machine; invariant violated")
        welfare = sum(
            self._log_value(bids[a].value_of(winners.get(a, {}))) for a in participants
        )
        return AuctionOutcome(
            winners=winners,
            proportional_fair={a: dict(b) for a, b in pf_allocation.items() if b},
            payments=payments,
            leftover=leftover,
            participants=participants,
            nash_log_welfare=welfare,
        )


def rescan_fair_allocation(
    pool: Mapping[int, int],
    bids: Mapping[str, Bid],
    chunk_size: int = 4,
    exclude: Optional[str] = None,
) -> dict[str, dict[int, int]]:
    """Pre-refactor full-rescan greedy solver (reference implementation).

    Every greedy step re-scores every ``(app, machine, step)`` move —
    ``O(apps x machines)`` valuation probes per applied move.  Kept
    verbatim as the ground truth the lazy solver is tested against and
    the baseline ``repro bench`` measures speedups over.
    """
    remaining = {m: c for m, c in pool.items() if c > 0}
    apps = [a for a in sorted(bids) if a != exclude]
    assignment: dict[str, dict[int, int]] = {a: {} for a in apps}
    values = {a: bids[a].value_of({}) for a in apps}
    granted = {a: 0 for a in apps}

    while remaining:
        best_rescue: Optional[tuple] = None  # (key, move)
        best_gain: Optional[tuple] = None
        for app_id in apps:
            bid = bids[app_id]
            headroom = bid.demand - granted[app_id]
            if headroom <= 0:
                continue
            current = assignment[app_id]
            current_value = values[app_id]
            for machine_id in sorted(remaining):
                free = remaining[machine_id]
                if current_value <= 0.0:
                    step_sizes = {1}
                else:
                    step_sizes = {1, min(chunk_size, free, headroom)}
                for step in sorted(step_sizes):
                    if step <= 0:
                        continue
                    bundle = _merge(current, machine_id, step)
                    new_value = bid.value_of(bundle)
                    if new_value <= current_value:
                        continue
                    move = (app_id, machine_id, step, new_value)
                    if current_value <= 0.0:
                        key = (
                            -new_value,
                            step,
                            -free * bid.machine_speed(machine_id),
                            app_id,
                            machine_id,
                        )
                        if best_rescue is None or key < best_rescue[0]:
                            best_rescue = (key, move)
                    else:
                        gain = (math.log(new_value) - math.log(current_value)) / step
                        key = (-gain, step, app_id, machine_id)
                        if best_gain is None or key < best_gain[0]:
                            best_gain = (key, move)
        chosen = best_rescue or best_gain
        if chosen is None:
            break
        app_id, machine_id, step, new_value = chosen[1]
        assignment[app_id] = _merge(assignment[app_id], machine_id, step)
        values[app_id] = new_value
        granted[app_id] += step
        remaining[machine_id] -= step
        if remaining[machine_id] <= 0:
            del remaining[machine_id]
    return assignment


def exhaustive_nash_allocation(
    pool: Mapping[int, int],
    bids: Mapping[str, Bid],
    max_states: int = 200_000,
) -> dict[str, dict[int, int]]:
    """Brute-force max-Nash-welfare assignment (reference for tests).

    Enumerates every split of each machine's free GPUs across apps.
    Zero-value apps are handled lexicographically: first maximise how
    many apps get positive value, then the product of positive values.
    Only feasible for tiny instances; guarded by ``max_states``.
    """
    pool = {m: c for m, c in pool.items() if c > 0}
    apps = sorted(bids)
    if not apps:
        return {}
    machines = sorted(pool)

    def splits(count: int, ways: int):
        """All tuples of ``ways`` non-negative ints summing to <= count."""
        if ways == 1:
            for take in range(count + 1):
                yield (take,)
            return
        for take in range(count + 1):
            for rest in splits(count - take, ways - 1):
                yield (take,) + rest

    per_machine_options = [list(splits(pool[m], len(apps))) for m in machines]
    total_states = 1
    for options in per_machine_options:
        total_states *= len(options)
        if total_states > max_states:
            raise ValueError(
                f"instance too large for exhaustive search ({total_states} states)"
            )

    best_key = None
    best_assignment: dict[str, dict[int, int]] = {a: {} for a in apps}
    for combo in itertools.product(*per_machine_options):
        assignment: dict[str, dict[int, int]] = {a: {} for a in apps}
        feasible = True
        for machine_index, split in enumerate(combo):
            machine_id = machines[machine_index]
            for app_index, take in enumerate(split):
                if take > 0:
                    assignment[apps[app_index]][machine_id] = take
        for app_id in apps:
            if _bundle_total(assignment[app_id]) > bids[app_id].demand:
                feasible = False
                break
        if not feasible:
            continue
        values = [bids[a].value_of(assignment[a]) for a in apps]
        positive = sum(1 for v in values if v > 0)
        log_product = sum(math.log(v) for v in values if v > 0)
        key = (positive, log_product)
        if best_key is None or key > best_key:
            best_key = key
            best_assignment = assignment
    return {a: bundle for a, bundle in best_assignment.items() if bundle}
