"""The central ARBITER (Section 5, Pseudocode 1).

One scheduling round, triggered whenever GPUs are available:

1. probe every active app's AGENT for its current rho,
2. sort apps by rho (worst first; starved apps with unbounded rho lead)
   and keep the top ``1 - f`` fraction — the fairness knob,
3. offer the pooled GPUs to those apps and collect bids,
4. run the partial-allocation auction to pick winning bundles,
5. hand hidden-payment leftovers to *non-participating* apps in a
   placement-sensitive, work-conserving way,
6. concretise per-machine GPU counts into actual GPUs (slot-packed).

The ARBITER is scheduler-policy only: leases, job state and event
bookkeeping belong to the simulator driving it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

import numpy as np

from repro.cluster.topology import Cluster, Gpu
from repro.core.agent import Agent
from repro.core.assignment import concretise, group_pool
from repro.core.auction import AuctionOutcome, PartialAllocationAuction
from repro.obs import NULL_PROFILER, NULL_TRACER


@dataclass(frozen=True)
class ArbiterConfig:
    """Tunables of the ARBITER.

    ``fairness_knob`` is the paper's ``f``: available GPUs are visible
    to the worst ``1 - f`` fraction of apps; higher f gives stronger
    fairness, lower f more placement flexibility (Figure 4a/4b sweeps
    it; the paper settles on 0.8).  ``hidden_payments`` and
    ``leftover_allocation`` exist for the ablation benchmarks.
    """

    fairness_knob: float = 0.8
    chunk_size: int = 4
    noise_theta: float = 0.0
    hidden_payments: bool = True
    leftover_allocation: bool = True
    #: Post-move re-scoring mode of the auction solver: "gated"
    #: (bound-gated memo skips + vectorized batch prime, the default)
    #: or "eager" (the plain precise re-score loop, kept as the oracle
    #: of the equivalence suite).  Byte-identical either way.
    rescore: str = "gated"

    def __post_init__(self) -> None:
        if not 0.0 <= self.fairness_knob <= 1.0:
            raise ValueError(f"fairness_knob must be in [0, 1], got {self.fairness_knob}")
        if not 0.0 <= self.noise_theta < 1.0:
            raise ValueError(f"noise_theta must be in [0, 1), got {self.noise_theta}")
        if self.rescore not in ("gated", "eager"):
            raise ValueError(f"rescore must be 'gated' or 'eager', got {self.rescore!r}")


@dataclass
class RoundStats:
    """Instrumentation for one scheduling round (overhead benchmarks).

    The ``solver_*`` fields expose the auction's winner-determination
    cost: greedy moves applied across all solves, candidate pairs
    scored by the lazy heap, warm-start moves the payment re-solves
    replayed for free, and the number of distinct rho computations
    (valuation-cache misses) the round's bids performed.

    The ``rescore_*`` trio breaks down the post-move re-scoring wall
    (see :class:`~repro.core.auction.AuctionSolveStats`): scalar kernel
    carves the re-scores still performed, pair scores the bound-gated
    memo skipped whole, and carves the vectorized post-move prime did
    instead of the scalar loop.  Unlike the warm counters these are
    live in cold mode too — the gated re-score is mode-independent.
    """

    now: float
    pool_size: int
    num_active: int
    num_participants: int
    leftover_after_payments: int
    leftover_unassigned: int
    solver_moves: int = 0
    solver_pair_scores: int = 0
    solver_replayed_moves: int = 0
    valuation_probes: int = 0
    heap_warm_hits: int = 0
    heap_warm_misses: int = 0
    rescore_carves: int = 0
    rescore_skipped: int = 0
    rescore_batched: int = 0


class Arbiter:
    """Implements OFFERRESOURCES of Pseudocode 1 over live app AGENTs."""

    def __init__(
        self,
        cluster: Cluster,
        config: ArbiterConfig | None = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.cluster = cluster
        self.config = config or ArbiterConfig()
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self._speed_of = cluster.machine_speeds()
        self.auction = PartialAllocationAuction(
            chunk_size=self.config.chunk_size, rescore=self.config.rescore
        )
        self.rounds = 0
        self.last_outcome: Optional[AuctionOutcome] = None
        self.history: list[RoundStats] = []
        # Observability hooks; the simulator rewires these at bind time.
        self.tracer = NULL_TRACER
        self.profiler = NULL_PROFILER
        #: Set by the scheduler at bind time when the incremental
        #: valuation pipeline is on: enables the per-round refresh token
        #: and the batched round-start rho priming.  ``estimator`` is the
        #: shared FairnessEstimator the batch prime runs through.
        self.incremental = False
        self.estimator = None
        self._refresh_token = 0

    # ------------------------------------------------------------------
    # Participant selection (fairness knob)
    # ------------------------------------------------------------------
    def select_participants(
        self, rhos: Mapping[str, float], eligible: Sequence[str]
    ) -> list[str]:
        """Worst ``1 - f`` fraction of eligible apps by reported rho.

        At least one app always participates (otherwise the pool could
        never drain); ties break on app id for determinism.  ``inf``
        rhos (starved apps) sort first.
        """
        if not eligible:
            return []
        ordered = sorted(eligible, key=lambda a: (-rhos[a], a))
        count = max(1, math.ceil((1.0 - self.config.fairness_knob) * len(ordered)))
        return ordered[:count]

    # ------------------------------------------------------------------
    # The full round
    # ------------------------------------------------------------------
    def offer_resources(
        self,
        now: float,
        pool: Sequence[Gpu],
        agents: Mapping[str, Agent],
    ) -> dict[str, list[Gpu]]:
        """Run one auction round; returns app_id -> concrete GPUs won.

        ``pool`` is the set of available GPUs (unleased + expired
        leases).  GPUs the round leaves unassigned (no demand anywhere)
        are simply absent from the result.
        """
        self.rounds += 1
        salt = self.rounds
        if not pool:
            return {}
        pool_by_machine = group_pool(pool)
        pool_counts = {m: len(gpus) for m, gpus in pool_by_machine.items()}

        # Step 1: probe all apps for rho; only apps that still want GPUs
        # are eligible bidders.  Under the incremental pipeline the
        # round is stamped with a refresh token (repeat refreshes within
        # it are one comparison) and every agent's base-bundle carve is
        # primed in a single batch before the scalar probes — which then
        # all hit the kernel caches.
        token: Optional[int] = None
        with self.profiler.phase("valuation"):
            if self.incremental and self.estimator is not None:
                self._refresh_token += 1
                token = self._refresh_token
                prime = []
                for agent in agents.values():
                    state = agent.state
                    state.refresh(token)
                    marker = (state.cache_generation, state.base_key)
                    if state.base_primed != marker:
                        state.base_primed = marker
                        prime.append((state, state.base_key))
                if prime:
                    self.estimator.batch_prime(prime)
            rhos = {
                app_id: agent.report_rho(now, salt, token)
                for app_id, agent in agents.items()
            }
        eligible = [
            app_id for app_id, agent in agents.items() if agent.app.unmet_demand() > 0
        ]
        if not eligible:
            return {}

        # Step 2: fairness knob — visibility limited to worst 1-f apps.
        participants = self.select_participants(rhos, eligible)
        if self.tracer.enabled:
            self.tracer.emit(
                "apps_filtered",
                now,
                round=self.tracer.round,
                eligible=len(eligible),
                participants=sorted(participants),
            )

        # Step 3: offers out, bids back.
        with self.profiler.phase("valuation"):
            # ``Bid.__init__`` copies (and >0-filters) the offer counts,
            # so the shared dict can be passed as-is.
            bids = {
                app_id: agents[app_id].prepare_bid(now, pool_counts, salt, token)
                for app_id in participants
            }
        if self.tracer.enabled:
            for app_id in sorted(bids):
                rho = rhos[app_id]
                self.tracer.emit(
                    "bid_submitted",
                    now,
                    round=self.tracer.round,
                    app=app_id,
                    rho=None if math.isinf(rho) else rho,
                    demand=agents[app_id].app.unmet_demand(),
                )

        # Step 4: partial-allocation auction.
        outcome = self.auction.run(
            pool_counts, bids, apply_hidden_payments=self.config.hidden_payments
        )
        self.last_outcome = outcome
        for app_id in outcome.winners:
            agents[app_id].auctions_won += 1

        # Step 5: leftover GPUs to non-participants, placement-sensitively.
        assignments: dict[str, dict[int, int]] = {
            app_id: dict(bundle) for app_id, bundle in outcome.winners.items()
        }
        leftover_unassigned = 0
        if self.config.leftover_allocation:
            with self.profiler.phase("leftovers"):
                leftover_unassigned = self._assign_leftovers(
                    outcome.leftover, participants, agents, assignments
                )
        else:
            leftover_unassigned = sum(outcome.leftover.values())

        solve_stats = self.auction.last_stats
        self.history.append(
            RoundStats(
                now=now,
                pool_size=len(pool),
                num_active=len(agents),
                num_participants=len(participants),
                leftover_after_payments=outcome.total_leftover,
                leftover_unassigned=leftover_unassigned,
                solver_moves=solve_stats.moves,
                solver_pair_scores=solve_stats.pair_scores,
                solver_replayed_moves=solve_stats.replayed_moves,
                valuation_probes=sum(bid.rho_probes for bid in bids.values()),
                heap_warm_hits=solve_stats.warm_hits,
                heap_warm_misses=solve_stats.warm_misses,
                rescore_carves=solve_stats.rescore_carves,
                rescore_skipped=solve_stats.rescore_skipped,
                rescore_batched=solve_stats.rescore_batched,
            )
        )
        return concretise(assignments, pool_by_machine)

    # ------------------------------------------------------------------
    # Leftover allocation (Section 5.1, stage 3)
    # ------------------------------------------------------------------
    def _assign_leftovers(
        self,
        leftover: Mapping[int, int],
        participants: Sequence[str],
        agents: Mapping[str, Agent],
        assignments: dict[str, dict[int, int]],
    ) -> int:
        """Hand withheld GPUs to non-participants, one GPU at a time.

        Machines are drained fastest GPU generation first, so the most
        valuable leftovers reach non-participants before the stragglers.
        Preference order per GPU: a non-participating app that already
        occupies the GPU's machine (the paper's placement-sensitive
        rule, random among candidates), then any app with unmet demand
        (work conservation), else the GPU stays unassigned.  Returns
        the number of GPUs nobody wanted.
        """
        participant_set = set(participants)
        headroom: dict[str, int] = {}
        for app_id, agent in agents.items():
            won = sum(assignments.get(app_id, {}).values())
            headroom[app_id] = max(0, agent.app.unmet_demand() - won)
        machines_of: dict[str, set[int]] = {
            app_id: set(agent.app.allocation().per_machine_counts())
            for app_id, agent in agents.items()
        }
        unassigned = 0
        # One sort for the whole round; the per-GPU loops only filter.
        # Non-participants are a round constant, so hoist that check
        # out of the per-GPU candidate scans too.  Total headroom gates
        # the whole scan: once nobody wants another GPU, every further
        # leftover is unassigned by definition (the fallback candidate
        # list is exactly "apps with headroom"), so idle rounds on a
        # mostly-free cluster cost O(machines), not O(GPUs x apps).
        # The rng stream is untouched by the early exit — draws only
        # ever happened when some app still had headroom.
        total_headroom = sum(headroom.values())
        ordered_apps = sorted(agents)
        ordered_non_participants = [
            app_id for app_id in ordered_apps if app_id not in participant_set
        ]
        machine_order = sorted(
            leftover, key=lambda m: (-self._speed_of.get(m, 1.0), m)
        )
        for machine_id in machine_order:
            count = leftover[machine_id]
            if total_headroom <= 0:
                unassigned += count
                continue
            for seen in range(count):
                if total_headroom <= 0:
                    unassigned += count - seen
                    break
                candidates = [
                    app_id
                    for app_id in ordered_non_participants
                    if headroom[app_id] > 0 and machine_id in machines_of[app_id]
                ]
                if not candidates:
                    candidates = [
                        app_id for app_id in ordered_apps if headroom[app_id] > 0
                    ]
                choice = candidates[int(self.rng.integers(len(candidates)))]
                bundle = assignments.setdefault(choice, {})
                bundle[machine_id] = bundle.get(machine_id, 0) + 1
                headroom[choice] -= 1
                total_headroom -= 1
                machines_of[choice].add(machine_id)
        return unassigned

