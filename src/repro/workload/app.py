"""An ML application: a set of related hyper-parameter exploration jobs.

Section 2.1: an app is "a collection of one or more ML model training
jobs", submitted together, sharing an arrival time, and finished when
the best model has been identified.  The reproduction supports both
completion semantics the paper's text admits:

* ``ALL_JOBS`` — trace-replay mode (the default for the macro
  experiments): each job's work embeds its clairvoyant kill point, the
  app completes when every job has consumed its work.  This matches the
  simulator the paper describes in Section 8.1.
* ``FIRST_WINNER`` — target-accuracy mode: the app completes when its
  first job reaches its own work target (the winner); remaining jobs are
  killed.  This matches the ``min_j`` in Section 5.2's estimator and is
  used together with the live HyperBand / HyperDrive schedulers.

The app also owns the default *intra-app* GPU distribution: the paper's
AGENT hands an app-level allocation to the app scheduler, which splits
it among constituent jobs "in a placement sensitive manner" with stable
assignments (Section 5.2, step 4).
"""

from __future__ import annotations

import enum
import math
from typing import Iterable, Optional, Sequence

from repro.cluster.allocation import Allocation
from repro.cluster.topology import CapacityLike, Gpu, as_capacity
from repro.workload.job import Job, JobState
from repro.workload.perf import PerfCapacity


class AppState(enum.Enum):
    """Lifecycle of an app."""

    PENDING = "pending"
    RUNNING = "running"
    FINISHED = "finished"


class CompletionSemantics(enum.Enum):
    """When does an app count as finished (see module docstring)."""

    ALL_JOBS = "all_jobs"
    FIRST_WINNER = "first_winner"


class App:
    """Runtime state of one ML application."""

    def __init__(
        self,
        app_id: str,
        arrival_time: float,
        jobs: Sequence[Job],
        semantics: CompletionSemantics = CompletionSemantics.ALL_JOBS,
    ) -> None:
        if not jobs:
            raise ValueError(f"app {app_id!r} must contain at least one job")
        self.app_id = app_id
        self.arrival_time = float(arrival_time)
        self.jobs: tuple[Job, ...] = tuple(jobs)
        self.semantics = semantics
        self.state = AppState.PENDING
        self.finished_at: Optional[float] = None
        #: Optional intra-app hyper-parameter scheduler (HyperBand /
        #: HyperDrive); when set, the simulator consults it for kills
        #: at every scheduling round.
        self.tuner = None
        self._jobs_by_id = {job.job_id: job for job in self.jobs}
        if len(self._jobs_by_id) != len(self.jobs):
            raise ValueError(f"app {app_id!r} has duplicate job ids")
        #: Dirty-tracking epoch: bumped whenever a constituent job's
        #: discrete state changes (allocation installs, finish, kill) or
        #: an external writer calls :meth:`invalidate`.  The aggregate
        #: queries below and the cross-round valuation pipeline
        #: (:class:`~repro.core.fairness.AppValuationState`) memoise on
        #: it instead of rescanning the job list every call.
        self._epoch = 0
        self._cache_enabled = True
        self._alloc_cache: Optional[tuple[int, Allocation]] = None
        self._demand_cache: Optional[tuple[int, int, int]] = None
        self._ideal_epoch = -1
        self._ideal_cache: dict = {}
        for job in self.jobs:
            job.on_mutate = self.invalidate

    # ------------------------------------------------------------------
    # Dirty tracking
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """Monotonic counter of discrete state changes (see :meth:`invalidate`)."""
        return self._epoch

    def invalidate(self) -> None:
        """Bump the dirty-tracking epoch, dropping every memoised aggregate.

        Fired automatically by job mutators (``set_allocation`` /
        ``finish`` / ``kill``); callers that mutate job state through
        any other channel (e.g. a tuner rewriting ``parallelism_limit``)
        must invoke it themselves — that is the dirty-tracking contract
        the simulator honours after every tuner step.
        """
        self._epoch += 1

    def set_cache_enabled(self, enabled: bool) -> None:
        """Toggle epoch-memoised aggregates (cold baseline rescans every call).

        Part of the incremental layer, so the ``repro bench sim`` cold
        path can reproduce the rebuild-everything behaviour honestly;
        results are identical either way because the caches only
        memoise pure functions of job state.
        """
        self._cache_enabled = enabled

    # ------------------------------------------------------------------
    # Job views
    # ------------------------------------------------------------------
    def job(self, job_id: str) -> Job:
        """Look a constituent job up by id."""
        return self._jobs_by_id[job_id]

    def active_jobs(self) -> list[Job]:
        """Jobs still able to consume GPUs, in submission order."""
        return [job for job in self.jobs if job.is_active]

    @property
    def num_jobs(self) -> int:
        """Total number of constituent jobs."""
        return len(self.jobs)

    # ------------------------------------------------------------------
    # Aggregates used by schedulers
    # ------------------------------------------------------------------
    def allocation(self) -> Allocation:
        """Union of all constituent jobs' current GPU allocations.

        Memoised on the dirty-tracking :attr:`epoch` — the result is an
        immutable :class:`Allocation`, so sharing it across callers
        within one epoch is safe.
        """
        cached = self._alloc_cache
        if cached is not None and cached[0] == self._epoch and self._cache_enabled:
            return cached[1]
        gpus: list[Gpu] = []
        for job in self.jobs:
            if job.allocation:
                gpus.extend(job.allocation.gpus)
        combined = Allocation(gpus)
        self._alloc_cache = (self._epoch, combined)
        return combined

    def demand(self) -> int:
        """Total GPUs the app could use right now (sum of job caps)."""
        return self._demand_pair()[0]

    def unmet_demand(self) -> int:
        """GPUs the app wants beyond what it currently holds."""
        pair = self._demand_pair()
        return max(0, pair[0] - pair[1])

    def _demand_pair(self) -> tuple[int, int]:
        """(total demand, held-toward-demand) memoised on the epoch."""
        cached = self._demand_cache
        if cached is not None and cached[0] == self._epoch and self._cache_enabled:
            return cached[1], cached[2]
        demand = 0
        held = 0
        for job in self.jobs:
            if job.is_active:
                cap = job.max_parallelism
                demand += cap
                size = job.allocation.size
                held += size if size < cap else cap
        self._demand_cache = (self._epoch, demand, held)
        return demand, held

    def total_work(self) -> float:
        """Sum of serial work across all jobs (the paper's W vector, aggregated)."""
        return sum(job.spec.serial_work for job in self.jobs)

    def remaining_work(self) -> float:
        """Serial work left across active jobs."""
        return sum(job.remaining_work for job in self.active_jobs())

    def gpu_time(self) -> float:
        """Total GPU-minutes consumed by all jobs so far (efficiency metric)."""
        return sum(job.gpu_time for job in self.jobs)

    def gpu_time_by_type(self) -> dict[str, float]:
        """GPU-minutes per GPU-generation name, aggregated over jobs."""
        totals: dict[str, float] = {}
        for job in self.jobs:
            for type_name, minutes in job.gpu_time_by_type.items():
                totals[type_name] = totals.get(type_name, 0.0) + minutes
        return dict(sorted(totals.items()))

    def attained_service(self) -> float:
        """Total attained GPU service (Tiresias' LAS metric)."""
        return sum(job.attained_service for job in self.jobs)

    def elapsed(self, now: float) -> float:
        """Wall-clock minutes since arrival."""
        return max(0.0, now - self.arrival_time)

    def mean_placement_score(self) -> float:
        """Time-weighted placement score over jobs that ever held GPUs."""
        scored = [job for job in self.jobs if job.allocated_time > 0.0]
        if not scored:
            return 0.0
        total_time = sum(job.allocated_time for job in scored)
        return sum(job.score_integral for job in scored) / total_time

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def is_complete(self) -> bool:
        """Check the configured completion semantics against job states."""
        if self.semantics is CompletionSemantics.ALL_JOBS:
            return all(not job.is_active for job in self.jobs)
        return any(job.state == JobState.FINISHED for job in self.jobs)

    def ideal_running_time(self, capacity: CapacityLike) -> float:
        """T_id: running time alone on the whole cluster, ideal placement.

        ``capacity`` is a plain GPU count (the homogeneous model), a
        :class:`~repro.cluster.topology.ClusterCapacity`, or a
        per-family :class:`~repro.workload.perf.PerfCapacity`; running
        alone on a mixed fleet means running on the GPUs fastest *for
        each job's model family*, so each job's ideal rate is the summed
        family speedup of its top ``max_parallelism`` GPUs.  For
        ``FIRST_WINNER`` this is the paper's ``min_j W_j / G_ideal_j``
        (Section 5.2, step 5).  For ``ALL_JOBS`` the app finishes with
        its last job, and running alone it is limited both by its
        largest job and by total work over cluster capacity — under a
        matrix, the capacity with each GPU priced at its *best* speedup
        across the app's families (a mixed-family app alone would give
        each family the GPUs it runs fastest on), hence the max of the
        two lower bounds.
        """
        if self._ideal_epoch != self._epoch:
            self._ideal_cache.clear()
            self._ideal_epoch = self._epoch
        cached = self._ideal_cache.get(capacity) if self._cache_enabled else None
        if cached is not None:
            return cached
        if isinstance(capacity, PerfCapacity):
            views = [capacity.view(job.family) for job in self.jobs]
        else:
            cap = as_capacity(capacity)
            views = [cap] * len(self.jobs)
        per_job = [
            job.spec.serial_work
            / view.fastest(min(job.max_parallelism, view.num_gpus))
            for job, view in zip(self.jobs, views)
        ]
        if self.semantics is CompletionSemantics.FIRST_WINNER:
            result = min(per_job)
        else:
            bound_job = max(per_job)
            if isinstance(capacity, PerfCapacity):
                total = capacity.best_total(job.family for job in self.jobs)
            else:
                total = views[0].total
            bound_capacity = self.total_work() / total
            result = max(bound_job, bound_capacity)
        self._ideal_cache[capacity] = result
        return result

    def finish_time_fairness(self, now: float, capacity: CapacityLike) -> float:
        """Realised rho for a finished app, estimated rho otherwise.

        For finished apps this is the evaluation metric of Figure 5a:
        actual shared running time over ideal running time.
        """
        t_id = self.ideal_running_time(capacity)
        if self.state is AppState.FINISHED and self.finished_at is not None:
            return (self.finished_at - self.arrival_time) / t_id
        return self.elapsed(now) / t_id if t_id > 0 else math.inf

    # ------------------------------------------------------------------
    # Intra-app GPU distribution (Section 5.2, step 4)
    # ------------------------------------------------------------------
    def distribute(self, granted: Allocation) -> dict[str, Allocation]:
        """Split an app-level allocation among active jobs, stably.

        The distribution keeps existing job->GPU bindings whenever the
        GPU is still granted (minimising checkpoint churn), caps each
        job at its ``max_parallelism`` and assigns the remaining GPUs
        greedily to the job whose placement-adjusted rate ``G * S``
        improves the most.  A GPU that would *slow* every job down
        (e.g. a cross-rack straggler joining an NVLink pair of a
        placement-sensitive model) is declined — a rational app
        scheduler never accepts an allocation that hurts it, which is
        precisely the placement sensitivity the paper's bids express.
        Declined GPUs are absent from the returned mapping and should
        be released by the caller.
        """
        active = self.active_jobs()
        assigned: dict[str, list[Gpu]] = {job.job_id: [] for job in active}
        granted_ids = granted.gpu_ids
        taken: set[int] = set()
        for job in active:
            for gpu in job.allocation:
                if gpu.gpu_id in granted_ids and len(assigned[job.job_id]) < job.max_parallelism:
                    assigned[job.job_id].append(gpu)
                    taken.add(gpu.gpu_id)
        pool = [gpu for gpu in granted if gpu.gpu_id not in taken]
        # Group the pool machine-by-machine so gang-scheduled jobs pick up
        # co-located GPUs; iterate machines with the most *effective*
        # compute first (count x speed — machines are internally
        # homogeneous), so faster generations are handed out before
        # slower ones of equal size.
        by_machine: dict[int, list[Gpu]] = {}
        for gpu in pool:
            by_machine.setdefault(gpu.machine_id, []).append(gpu)
        machine_order = sorted(
            by_machine,
            key=lambda m: (-len(by_machine[m]) * by_machine[m][0].speed, m),
        )
        for machine_id in machine_order:
            for gpu in sorted(by_machine[machine_id], key=lambda g: g.gpu_id):
                best_job = self._pick_job_for_gpu(active, assigned, gpu)
                if best_job is not None:
                    assigned[best_job].append(gpu)
        return {job_id: Allocation(gpus) for job_id, gpus in assigned.items()}

    @staticmethod
    def _rate_of(job: Job, gpus: list[Gpu]) -> float:
        """Placement-adjusted progress rate of a hypothetical GPU set.

        Delegates to the job's perf-model-aware rate kernel with the
        runtime parallelism cap, so distribution decisions and actual
        progress always agree about generation speedups.
        """
        return job.rate_of(gpus, cap=job.max_parallelism)

    @classmethod
    def _pick_job_for_gpu(
        cls,
        active: Iterable[Job],
        assigned: dict[str, list[Gpu]],
        gpu: Gpu,
    ) -> Optional[str]:
        """Choose the job that should absorb one more GPU.

        Jobs whose rate would *drop* are filtered out (the decline);
        among the rest, jobs whose GPU-type affinity matches this GPU's
        generation win, then machine-local fills, then rack-local, then
        the emptiest job — which reassembles whole-machine gangs from
        machine-grouped grants instead of interleaving slot pairs.
        Returns ``None`` when every job declines.
        """
        best_key = None
        best_job = None
        for job in active:
            current = assigned[job.job_id]
            if len(current) >= job.max_parallelism:
                continue
            gain = cls._rate_of(job, current + [gpu]) - cls._rate_of(job, current)
            if gain <= 1e-12:
                continue
            affinity = job.spec.gpu_type
            mismatch = 0 if affinity is None or gpu.gpu_type.name == affinity else 1
            same_machine = any(g.machine_id == gpu.machine_id for g in current)
            same_rack = any(g.rack_id == gpu.rack_id for g in current)
            key = (
                mismatch,
                0 if same_machine else (1 if same_rack else 2),
                len(current),
                job.job_id,
            )
            if best_key is None or key < best_key:
                best_key = key
                best_job = job.job_id
        return best_job

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"App({self.app_id}, {self.state.value}, jobs={self.num_jobs}, "
            f"arrived={self.arrival_time:.1f})"
        )
