"""Model zoo with placement-sensitivity profiles.

Figure 2 of the paper measures throughput for five architectures under
two placements of 4 P100 GPUs: all four on one server versus a 2x2
split across two servers.  VGG-family models lose roughly half their
throughput when split (strict machine-locality preference) while the
ResNet family is essentially placement-insensitive.  The zoo below
encodes profiles with that shape: a single-GPU throughput plus a
:class:`~repro.cluster.placement.SensitivityProfile` giving the slowdown
at each locality level.

Absolute numbers are calibrated to the magnitudes visible in Figure 2
(hundreds of images/second for 4 GPUs); what the reproduction relies on
is the *relative* shape — which models collapse when spread out — since
that is what drives every placement-related result in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.cluster.placement import SensitivityProfile, slowdown
from repro.cluster.topology import Gpu


@dataclass(frozen=True)
class ModelProfile:
    """Static description of one trainable model architecture.

    ``single_gpu_throughput`` is in images (or samples) per second on one
    GPU.  ``network_intensive`` tags models whose gradient exchange
    dominates (large dense layers), i.e. the paper's "placement
    sensitive" class; the microbenchmark of Figure 9 sweeps the fraction
    of such models in the workload.
    """

    name: str
    family: str
    params_million: float
    single_gpu_throughput: float
    sensitivity: SensitivityProfile
    network_intensive: bool

    def __post_init__(self) -> None:
        if self.params_million <= 0:
            raise ValueError(f"params_million must be > 0, got {self.params_million}")
        if self.single_gpu_throughput <= 0:
            raise ValueError(
                f"single_gpu_throughput must be > 0, got {self.single_gpu_throughput}"
            )


def _profile(
    name: str,
    family: str,
    params_million: float,
    single_gpu_throughput: float,
    machine: float,
    rack: float,
    cluster: float,
    network_intensive: bool,
) -> ModelProfile:
    return ModelProfile(
        name=name,
        family=family,
        params_million=params_million,
        single_gpu_throughput=single_gpu_throughput,
        sensitivity=SensitivityProfile(machine=machine, rack=rack, cluster=cluster),
        network_intensive=network_intensive,
    )


#: All models known to the workload generator.  The sensitive half
#: (VGG/AlexNet/language models — large parameter or activation traffic)
#: degrades sharply past machine locality; the insensitive half
#: (ResNet/Inception family — compute bound) barely notices spread.
MODEL_ZOO: dict[str, ModelProfile] = {
    profile.name: profile
    for profile in (
        # --- placement sensitive (network intensive) -------------------
        _profile("vgg16", "vgg", 138.0, 62.0, machine=0.90, rack=0.45, cluster=0.25, network_intensive=True),
        _profile("vgg19", "vgg", 144.0, 52.0, machine=0.90, rack=0.44, cluster=0.24, network_intensive=True),
        _profile("alexnet", "alexnet", 61.0, 130.0, machine=0.85, rack=0.55, cluster=0.35, network_intensive=True),
        _profile("lstm-lm", "rnn", 66.0, 45.0, machine=0.88, rack=0.50, cluster=0.30, network_intensive=True),
        _profile("gnmt", "rnn", 160.0, 28.0, machine=0.86, rack=0.48, cluster=0.28, network_intensive=True),
        _profile("transformer", "attention", 65.0, 35.0, machine=0.92, rack=0.55, cluster=0.35, network_intensive=True),
        _profile("bert-base", "attention", 110.0, 30.0, machine=0.90, rack=0.52, cluster=0.32, network_intensive=True),
        # --- placement insensitive (compute bound) ---------------------
        _profile("resnet50", "resnet", 25.6, 97.0, machine=0.98, rack=0.96, cluster=0.92, network_intensive=False),
        _profile("resnet101", "resnet", 44.5, 60.0, machine=0.98, rack=0.95, cluster=0.91, network_intensive=False),
        _profile("resnet152", "resnet", 60.2, 42.0, machine=0.97, rack=0.95, cluster=0.90, network_intensive=False),
        _profile("inceptionv3", "inception", 23.8, 80.0, machine=0.97, rack=0.93, cluster=0.88, network_intensive=False),
        _profile("inceptionv4", "inception", 42.7, 55.0, machine=0.97, rack=0.92, cluster=0.87, network_intensive=False),
        _profile("googlenet", "inception", 6.6, 110.0, machine=0.97, rack=0.94, cluster=0.90, network_intensive=False),
        _profile("dcgan", "gan", 3.5, 220.0, machine=0.98, rack=0.96, cluster=0.93, network_intensive=False),
    )
}


def get_model(name: str) -> ModelProfile:
    """Look a model profile up by name (case-insensitive).

    Raises ``KeyError`` listing available names for unknown models, so
    trace files with typos fail loudly.
    """
    key = name.lower()
    if key not in MODEL_ZOO:
        raise KeyError(f"unknown model {name!r}; available: {sorted(MODEL_ZOO)}")
    return MODEL_ZOO[key]


def list_models() -> tuple[str, ...]:
    """All model names in the zoo, sorted."""
    return tuple(sorted(MODEL_ZOO))


def models_by_family(network_intensive: bool) -> tuple[ModelProfile, ...]:
    """Profiles filtered by the network-intensive flag, in stable order."""
    return tuple(
        MODEL_ZOO[name]
        for name in sorted(MODEL_ZOO)
        if MODEL_ZOO[name].network_intensive == network_intensive
    )


#: Distinct model families of the zoo, sorted — the row keys a
#: per-family throughput matrix (:mod:`repro.workload.perf`) may use.
MODEL_FAMILIES: tuple[str, ...] = tuple(
    sorted({profile.family for profile in MODEL_ZOO.values()})
)


def family_of(model_name: str) -> str:
    """The architecture family of a model (the throughput-matrix row key)."""
    return get_model(model_name).family


def effective_gpus(gpus: Iterable[Gpu], cap: Optional[int] = None) -> float:
    """Speed-weighted GPU count of an allocation, optionally capped.

    With a ``cap`` (a job's max parallelism) only the fastest ``cap``
    GPUs count — a rational gang drops its slowest stragglers first.
    On an all-speed-1.0 cluster this is exactly ``min(len(gpus), cap)``.
    """
    speeds = [gpu.speed for gpu in gpus]
    if cap is not None and len(speeds) > cap:
        speeds.sort(reverse=True)
        speeds = speeds[: max(cap, 0)]
    return sum(speeds)


def throughput(profile: ModelProfile, gpus: Iterable[Gpu]) -> float:
    """Aggregate training throughput of ``profile`` on a GPU allocation.

    Implements the paper's scaling model (Section 5.2), generalised to
    mixed GPU generations: throughput is ``single_gpu * E * S(placement)``
    where ``E`` is the speed-weighted GPU count and ``S`` the slowdown at
    the worst locality boundary spanned.  On a homogeneous cluster
    ``E = G`` and this reproduces Figure 2 exactly: e.g. vgg16 on 4
    co-located GPUs runs at ~0.90 scaling but collapses to ~0.45 when
    split 2x2 across two machines.
    """
    gpus = list(gpus)
    if not gpus:
        return 0.0
    return (
        profile.single_gpu_throughput
        * effective_gpus(gpus)
        * slowdown(profile.sensitivity, gpus)
    )
