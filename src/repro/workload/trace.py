"""Trace schema: serialisable descriptions of apps and jobs.

The paper replays "workloads from a large enterprise trace" (Section 1).
That trace is proprietary, so this module defines the neutral on-disk
format our generator targets: one JSON object per app (JSONL), each
carrying its arrival time and per-job model / work / parallelism /
loss-curve parameters.  Traces round-trip losslessly, which the tests
verify, and instantiate into runtime :class:`~repro.workload.app.App`
objects for simulation.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields as dataclass_fields
from pathlib import Path
from typing import Iterable, Optional, Union

from repro.hyperparam.curves import LossCurve
from repro.workload.app import App, CompletionSemantics
from repro.workload.job import Job, JobSpec
from repro.workload.models import get_model


@dataclass(frozen=True)
class TraceJob:
    """One job's static description inside a trace.

    ``duration_minutes`` is the job's running time at full parallelism
    with ideal placement — the quantity whose distribution Figure 1
    plots; ``serial_work = duration * max_parallelism``.
    """

    job_id: str
    model: str
    duration_minutes: float
    max_parallelism: int
    total_iterations: int = 1000
    loss_initial: float = 5.0
    loss_floor: float = 0.0
    loss_alpha: float = 0.5
    loss_knee: float = 100.0
    #: Optional GPU-generation affinity (a type name, e.g. "v100"): a
    #: soft preference the intra-app distributor honours on mixed
    #: clusters.  ``None`` (the default) means any generation.
    gpu_type: Optional[str] = None

    def __post_init__(self) -> None:
        if self.duration_minutes <= 0:
            raise ValueError(f"duration_minutes must be > 0, got {self.duration_minutes}")
        if self.max_parallelism <= 0:
            raise ValueError(f"max_parallelism must be > 0, got {self.max_parallelism}")
        if self.gpu_type is not None and not self.gpu_type:
            raise ValueError("gpu_type affinity must be None or a non-empty name")
        get_model(self.model)  # validate the model exists

    @property
    def serial_work(self) -> float:
        """Serial GPU-minutes of work (duration at ideal full parallelism)."""
        return self.duration_minutes * self.max_parallelism

    def loss_curve(self) -> LossCurve:
        """Materialise the job's loss curve from the stored parameters."""
        return LossCurve(
            initial=self.loss_initial,
            floor=self.loss_floor,
            alpha=self.loss_alpha,
            knee=self.loss_knee,
        )

    def to_job(self) -> Job:
        """Instantiate the runtime job."""
        spec = JobSpec(
            job_id=self.job_id,
            model=self.model,
            serial_work=self.serial_work,
            max_parallelism=self.max_parallelism,
            total_iterations=self.total_iterations,
            loss_curve=self.loss_curve(),
            gpu_type=self.gpu_type,
        )
        return Job(spec=spec)


@dataclass(frozen=True)
class TraceApp:
    """One app's static description inside a trace."""

    app_id: str
    arrival_minutes: float
    jobs: tuple[TraceJob, ...]

    def __post_init__(self) -> None:
        if self.arrival_minutes < 0:
            raise ValueError(f"arrival_minutes must be >= 0, got {self.arrival_minutes}")
        if not self.jobs:
            raise ValueError(f"trace app {self.app_id!r} has no jobs")

    def to_app(
        self, semantics: CompletionSemantics = CompletionSemantics.ALL_JOBS
    ) -> App:
        """Instantiate the runtime app with fresh job state."""
        return App(
            app_id=self.app_id,
            arrival_time=self.arrival_minutes,
            jobs=[job.to_job() for job in self.jobs],
            semantics=semantics,
        )


@dataclass
class Trace:
    """A complete replayable workload plus provenance metadata.

    ``perf_matrix`` optionally carries measured per-model-family x
    per-GPU-generation throughput factors (canonical tuple form, see
    :mod:`repro.workload.perf`): the matrix is workload+hardware data,
    so it travels with the trace and the simulator picks it up
    automatically.  Empty means the scalar speed model.
    """

    apps: tuple[TraceApp, ...]
    name: str = "synthetic"
    seed: Optional[int] = None
    metadata: dict = field(default_factory=dict)
    perf_matrix: tuple = ()

    def __post_init__(self) -> None:
        self.apps = tuple(sorted(self.apps, key=lambda app: (app.arrival_minutes, app.app_id)))
        ids = [app.app_id for app in self.apps]
        if len(set(ids)) != len(ids):
            raise ValueError("trace contains duplicate app ids")
        if self.perf_matrix:
            from repro.workload.perf import canonical_matrix

            self.perf_matrix = canonical_matrix(self.perf_matrix)

    def perf_model(self):
        """The trace's performance model (scalar default when no matrix)."""
        from repro.workload.perf import resolve_perf_model

        return resolve_perf_model(self.perf_matrix)

    # ------------------------------------------------------------------
    # Aggregate views
    # ------------------------------------------------------------------
    @property
    def num_apps(self) -> int:
        """Number of apps in the trace."""
        return len(self.apps)

    @property
    def num_jobs(self) -> int:
        """Number of jobs across all apps."""
        return sum(len(app.jobs) for app in self.apps)

    def task_durations(self) -> list[float]:
        """All job durations in minutes — the distribution of Figure 1."""
        return [job.duration_minutes for app in self.apps for job in app.jobs]

    def jobs_per_app(self) -> list[int]:
        """Job count per app — Section 8.1's 1..98 / median-23 statistic."""
        return [len(app.jobs) for app in self.apps]

    def total_serial_work(self) -> float:
        """Total serial GPU-minutes in the trace."""
        return sum(job.serial_work for app in self.apps for job in app.jobs)

    def peak_gpu_demand(self) -> int:
        """Sum of max parallelism over all jobs (upper bound on demand)."""
        return sum(job.max_parallelism for app in self.apps for job in app.jobs)

    def instantiate(
        self, semantics: CompletionSemantics = CompletionSemantics.ALL_JOBS
    ) -> list[App]:
        """Fresh runtime apps (safe to call repeatedly; state is new each time)."""
        return [app.to_app(semantics) for app in self.apps]

    def scaled(self, duration_factor: float, name: Optional[str] = None) -> "Trace":
        """A copy with every job duration multiplied by ``duration_factor``.

        The paper scales durations down 5x for the 50-GPU testbed runs
        (Section 8.3, footnote 3); arrival times are preserved, exactly
        as the footnote describes ("retain the same inter-arrival
        distribution").
        """
        if duration_factor <= 0:
            raise ValueError(f"duration_factor must be > 0, got {duration_factor}")
        apps = tuple(
            TraceApp(
                app_id=app.app_id,
                arrival_minutes=app.arrival_minutes,
                jobs=tuple(
                    TraceJob(
                        job_id=job.job_id,
                        model=job.model,
                        duration_minutes=job.duration_minutes * duration_factor,
                        max_parallelism=job.max_parallelism,
                        total_iterations=job.total_iterations,
                        loss_initial=job.loss_initial,
                        loss_floor=job.loss_floor,
                        loss_alpha=job.loss_alpha,
                        loss_knee=job.loss_knee,
                        gpu_type=job.gpu_type,
                    )
                    for job in app.jobs
                ),
            )
            for app in self.apps
        )
        return Trace(
            apps=apps,
            name=name or f"{self.name}-x{duration_factor:g}",
            seed=self.seed,
            metadata=dict(self.metadata, duration_factor=duration_factor),
            perf_matrix=self.perf_matrix,
        )

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_jsonl(self, path: Union[str, Path]) -> None:
        """Write the trace as JSON lines: one header line, one line per app."""
        path = Path(path)
        with path.open("w", encoding="utf-8") as handle:
            header = {"name": self.name, "seed": self.seed, "metadata": self.metadata}
            if self.perf_matrix:
                header["perf_matrix"] = {
                    family: dict(cells) for family, cells in self.perf_matrix
                }
            handle.write(json.dumps({"trace_header": header}) + "\n")
            for app in self.apps:
                handle.write(json.dumps(asdict(app)) + "\n")

    @classmethod
    def from_jsonl(cls, path: Union[str, Path]) -> "Trace":
        """Read a trace previously written with :meth:`to_jsonl`."""
        path = Path(path)
        name = "unnamed"
        seed: Optional[int] = None
        metadata: dict = {}
        perf_matrix: tuple = ()
        apps: list[TraceApp] = []
        with path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                if "trace_header" in record:
                    header = record["trace_header"]
                    name = header.get("name", name)
                    seed = header.get("seed")
                    metadata = header.get("metadata", {})
                    raw_matrix = header.get("perf_matrix")
                    if raw_matrix:
                        from repro.workload.perf import canonical_matrix

                        perf_matrix = canonical_matrix(raw_matrix)
                    continue
                # Tolerate unknown keys written by newer builds (the
                # same forward-compatibility rule the result cache uses).
                known = {f.name for f in dataclass_fields(TraceJob)}
                jobs = tuple(
                    TraceJob(**{k: v for k, v in job.items() if k in known})
                    for job in record["jobs"]
                )
                apps.append(
                    TraceApp(
                        app_id=record["app_id"],
                        arrival_minutes=record["arrival_minutes"],
                        jobs=jobs,
                    )
                )
        return cls(
            apps=tuple(apps),
            name=name,
            seed=seed,
            metadata=metadata,
            perf_matrix=perf_matrix,
        )


def merge_traces(traces: Iterable[Trace], name: str = "merged") -> Trace:
    """Concatenate several traces into one workload.

    App ids are prefixed with the source trace name when collisions
    would otherwise occur.
    """
    traces = list(traces)
    # A perf matrix is measured workload+hardware data travelling with
    # its trace: merging may never silently rebind apps to a different
    # rate model, so *all* inputs must agree — including agreeing that
    # there is no matrix at all (scalar speeds).
    matrices = {trace.perf_matrix for trace in traces}
    if len(matrices) > 1:
        raise ValueError(
            "cannot merge traces with differing perf matrices (including "
            "matrix-less scalar traces mixed with matrix-carrying ones); "
            "rebase them onto one measured matrix first"
        )
    seen: set[str] = set()
    apps: list[TraceApp] = []
    for trace in traces:
        for app in trace.apps:
            app_id = app.app_id
            if app_id in seen:
                app_id = f"{trace.name}:{app.app_id}"
            if app_id in seen:
                raise ValueError(f"cannot disambiguate duplicate app id {app.app_id!r}")
            seen.add(app_id)
            apps.append(
                TraceApp(app_id=app_id, arrival_minutes=app.arrival_minutes, jobs=app.jobs)
            )
    return Trace(
        apps=tuple(apps),
        name=name,
        perf_matrix=next(iter(matrices)) if traces else (),
    )
