"""Pluggable performance models: how fast does *this* model run on *that* GPU?

PR 3 collapsed every GPU generation to a single scalar speed factor
(:attr:`~repro.cluster.topology.GpuType.speed`).  Real ML models scale
very differently across generations — an attention-heavy model may see
3x going K80 -> V100 while a small CNN sees 1.3x — and
heterogeneity-aware schedulers (Gavel, OEF) model that with measured
per-workload per-device throughput matrices.  This module is the seam:

* :class:`PerfModel` — the abstraction that owns the mapping from a
  (model family, GPU generation) pair to a per-GPU throughput factor.
  Everything downstream (job progress rates, carve scoring, ideal-time
  capacity, baseline fills, the migration policy) asks the model
  instead of reading ``gpu.speed`` directly.
* :class:`ScalarSpeedModel` — the default: ``speedup == gpu_type.speed``
  for every family, reproducing the PR 3 scalar behaviour *exactly*
  (every scalar fast path stays byte-identical; ``is_scalar`` lets hot
  paths keep their single shared speed map).
* :class:`ThroughputMatrixModel` — an explicit ``family x generation``
  matrix.  Missing rows/cells fall back to the generation's scalar
  speed, so a partial matrix degrades gracefully and an *all-scalar*
  matrix is provably byte-identical to :class:`ScalarSpeedModel`
  (``tests/test_hetero_equivalence.py`` pins this for every scheduler).
* :class:`PerfCapacity` — per-family "fastest N GPUs" capacity views,
  the heterogeneous generalisation of
  :class:`~repro.cluster.topology.ClusterCapacity`: running alone on a
  mixed fleet means running on the GPUs fastest *for your model*.

The matrix rides on the workload: traces carry an optional
``perf_matrix`` in their header (see :class:`~repro.workload.trace.Trace`),
the generator has a knob, and the CLI accepts ``--perf-matrix`` (a
preset name, a JSON file, or an inline spec).
"""

from __future__ import annotations

import abc
import math
from typing import Callable, Iterable, Mapping, Optional, Sequence, Union

from repro.cluster.topology import (
    DEFAULT_GPU_TYPE,
    GPU_TYPES,
    Cluster,
    ClusterCapacity,
    Gpu,
    GpuType,
)

#: Canonical matrix form: sorted ((family, ((generation, speedup), ...)), ...).
MatrixTuple = tuple[tuple[str, tuple[tuple[str, float], ...]], ...]

#: Raw matrix forms accepted by :func:`canonical_matrix`.
MatrixLike = Union[MatrixTuple, Mapping[str, Mapping[str, float]], Sequence]


class PerfModelError(ValueError):
    """A malformed performance-model specification (actionable message)."""


def known_generation_names() -> tuple[str, ...]:
    """Generation names a matrix may reference: the presets + default."""
    return tuple(sorted(GPU_TYPES)) + (DEFAULT_GPU_TYPE.name,)


def known_families() -> tuple[str, ...]:
    """Model families of the zoo (the valid matrix row keys)."""
    from repro.workload.models import MODEL_FAMILIES

    return MODEL_FAMILIES


def canonical_matrix(matrix: MatrixLike) -> MatrixTuple:
    """Normalise any accepted matrix form into the canonical sorted tuple.

    Accepts a mapping of mappings (``{"vgg": {"v100": 1.0}}``), an
    items-style nested sequence, or an already-canonical tuple.  The
    canonical form is hashable (frozen-dataclass friendly) and sorts
    deterministically, so equal matrices fingerprint equally in the
    sweep cache.  Raises :class:`PerfModelError` on malformed input.
    """
    rows: dict[str, dict[str, float]] = {}
    items: Iterable
    if isinstance(matrix, Mapping):
        items = matrix.items()
    else:
        items = matrix
    for entry in items:
        try:
            family, cells = entry
        except (TypeError, ValueError):
            raise PerfModelError(
                f"matrix rows must be (family, cells) pairs, got {entry!r}"
            )
        if not isinstance(family, str) or not family:
            raise PerfModelError(
                f"matrix family keys must be non-empty strings, got {family!r}"
            )
        cell_items = cells.items() if isinstance(cells, Mapping) else cells
        row: dict[str, float] = {}
        for cell in cell_items:
            try:
                generation, speedup = cell
            except (TypeError, ValueError):
                raise PerfModelError(
                    f"matrix cells must be (generation, speedup) pairs, "
                    f"got {cell!r} in family {family!r}"
                )
            try:
                value = float(speedup)
            except (TypeError, ValueError):
                raise PerfModelError(
                    f"speedup for ({family!r}, {generation!r}) must be a "
                    f"number, got {speedup!r}"
                )
            # NaN compares False against everything, so `value <= 0`
            # alone would let NaN (and inf) corrupt every downstream
            # rate comparison instead of failing here.
            if not math.isfinite(value) or value <= 0:
                raise PerfModelError(
                    f"speedup for ({family!r}, {generation!r}) must be a "
                    f"finite number > 0, got {value}"
                )
            row[str(generation)] = value
        if family in rows:
            raise PerfModelError(f"duplicate matrix row for family {family!r}")
        rows[family] = row
    return tuple(
        (family, tuple(sorted(rows[family].items()))) for family in sorted(rows)
    )


def validate_matrix_names(
    matrix: MatrixTuple,
    generations: Optional[Sequence[str]] = None,
    families: Optional[Sequence[str]] = None,
) -> None:
    """Reject unknown family / generation names with actionable errors.

    Used by the CLI and the generator so a typo'd matrix fails at parse
    time (listing the valid names) instead of silently falling back to
    scalar speeds at simulation time.
    """
    valid_generations = tuple(generations) if generations else known_generation_names()
    valid_families = tuple(families) if families else known_families()
    for family, cells in matrix:
        if family not in valid_families:
            raise PerfModelError(
                f"unknown model family {family!r} in perf matrix; "
                f"known families: {sorted(valid_families)}"
            )
        for generation, _speedup in cells:
            if generation not in valid_generations:
                raise PerfModelError(
                    f"unknown GPU generation {generation!r} in perf matrix row "
                    f"{family!r}; known generations: {sorted(valid_generations)}"
                )


class PerfModel(abc.ABC):
    """Maps (model family, GPU generation) to a per-GPU throughput factor.

    A job's progress rate is ``sum_g speedup(family, g.gpu_type)`` over
    its held GPUs (capped at its parallelism, fastest first) times the
    placement slowdown — :meth:`effective_gpus` is that sum.  Subclasses
    only implement :meth:`speedup`; everything else derives.
    """

    name: str = "base"

    @abc.abstractmethod
    def speedup(self, family: str, gpu_type: GpuType) -> float:
        """Per-GPU throughput factor of one generation for one family."""

    @property
    def is_scalar(self) -> bool:
        """True when ``speedup == gpu_type.speed`` for every family.

        Hot paths branch on this: a scalar model keeps the single shared
        machine-speed map (and every PR 4 fast path) exactly as before;
        only genuinely family-dependent models pay for per-family views.
        """
        return False

    def gpu_speedup(self, family: str, gpu: Gpu) -> float:
        """Per-GPU throughput factor for a concrete GPU."""
        return self.speedup(family, gpu.gpu_type)

    def effective_gpus(
        self, family: str, gpus: Iterable[Gpu], cap: Optional[int] = None
    ) -> float:
        """Family-weighted GPU count of an allocation, optionally capped.

        The per-family generalisation of
        :func:`repro.workload.models.effective_gpus`: with a ``cap`` only
        the ``cap`` fastest-for-this-family GPUs count (a rational gang
        drops its slowest stragglers first).
        """
        speeds = [self.speedup(family, gpu.gpu_type) for gpu in gpus]
        if cap is not None and len(speeds) > cap:
            speeds.sort(reverse=True)
            speeds = speeds[: max(cap, 0)]
        return sum(speeds)

    def _per_cluster_memo(self, slot: str, cluster: Cluster, build):
        """Identity-keyed per-cluster memo for derived cluster views.

        The simulator, the fairness estimator and the schedulers all
        derive views from the same (model, cluster) pair within one run;
        sharing them matters both for cost and because per-app
        ideal-time caches key capacity objects by identity.  Keyed by
        ``id`` with the cluster itself retained, so a recycled id can
        never alias a dead cluster.  Bounded: a long-lived model reused
        across many distinct clusters (sweep loops, notebooks) must not
        pin every cluster it ever saw, so the memo is cleared when it
        outgrows a handful of entries.
        """
        cache = getattr(self, slot, None)
        if cache is None:
            cache = {}
            setattr(self, slot, cache)
        got = cache.get(id(cluster))
        if got is None or got[0] is not cluster:
            if len(cache) >= 8:
                cache.clear()
            got = (cluster, build())
            cache[id(cluster)] = got
        return got[1]

    def capacity_for(self, cluster: Cluster):
        """The cluster's capacity under this model.

        Scalar models return the cluster's shared
        :class:`~repro.cluster.topology.ClusterCapacity` object
        unchanged (identity matters: it keys per-app ideal-time caches);
        family-dependent models return one shared :class:`PerfCapacity`
        per cluster with lazily-built per-family views.
        """
        if self.is_scalar:
            return cluster.capacity
        return self._per_cluster_memo(
            "_capacity_memo",
            cluster,
            lambda: PerfCapacity(tuple(gpu.gpu_type for gpu in cluster.gpus), self),
        )

    def machine_speed_index(
        self, cluster: Cluster
    ) -> Optional[Callable[[str], Mapping[int, float]]]:
        """Per-family machine-speed maps, or ``None`` for scalar models.

        Machines are internally homogeneous, so a per-machine count
        implies a generation; the returned callable maps a family to a
        ``machine_id -> speedup`` dict (cached per family, one shared
        index per cluster).  Scalar models return ``None`` so callers
        keep their single shared map — the carve kernel's original fast
        path.
        """
        if self.is_scalar:
            return None

        def build() -> Callable[[str], Mapping[int, float]]:
            types = {m.machine_id: m.gpu_type for m in cluster.machines}
            cache: dict[str, dict[int, float]] = {}

            def for_family(family: str) -> Mapping[int, float]:
                got = cache.get(family)
                if got is None:
                    got = {
                        machine_id: self.speedup(family, gpu_type)
                        for machine_id, gpu_type in types.items()
                    }
                    cache[family] = got
                return got

            return for_family

        return self._per_cluster_memo("_speed_index_memo", cluster, build)

    def to_json(self) -> dict:
        """JSON-safe description (see :func:`perf_model_from_json`)."""
        return {"kind": self.name}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class ScalarSpeedModel(PerfModel):
    """The default model: every family sees the generation's scalar speed.

    This *is* the PR 3 behaviour — the model exists so the rate path has
    one seam, not so scalar clusters change.  Every scalar fast path
    (shared machine-speed map, ``Allocation.effective_size`` memos, the
    flat-array carve) runs unchanged under it.
    """

    name = "scalar"

    def speedup(self, family: str, gpu_type: GpuType) -> float:
        return gpu_type.speed

    @property
    def is_scalar(self) -> bool:
        return True


class ThroughputMatrixModel(PerfModel):
    """Per-family x per-generation measured throughput factors.

    ``matrix`` maps a model family to per-generation speedups.  Lookups
    for a family or generation the matrix does not mention fall back to
    the generation's scalar ``speed`` — a partial matrix refines only
    what it measures.  This is what makes *rate inversions* expressible:
    family A can prefer generation X while family B prefers Y, which no
    single scalar ordering can encode.
    """

    name = "matrix"

    def __init__(self, matrix: MatrixLike) -> None:
        self._matrix: MatrixTuple = canonical_matrix(matrix)
        self._rows: dict[str, dict[str, float]] = {
            family: dict(cells) for family, cells in self._matrix
        }

    @property
    def matrix(self) -> MatrixTuple:
        """The canonical matrix tuple (hashable, sorted)."""
        return self._matrix

    def speedup(self, family: str, gpu_type: GpuType) -> float:
        row = self._rows.get(family)
        if row is None:
            return gpu_type.speed
        value = row.get(gpu_type.name)
        if value is None:
            return gpu_type.speed
        return value

    def to_json(self) -> dict:
        return {
            "kind": self.name,
            "matrix": {family: dict(cells) for family, cells in self._matrix},
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ThroughputMatrixModel(families={[f for f, _ in self._matrix]})"


#: The shared default: scalar speeds, byte-identical to pre-matrix builds.
DEFAULT_PERF_MODEL = ScalarSpeedModel()


def perf_model_from_json(data: Optional[Mapping]) -> PerfModel:
    """Rebuild a model from :meth:`PerfModel.to_json` output.

    ``None`` / missing / unknown kinds fall back to the scalar default,
    mirroring the forward-compatible ``from_json`` discipline of the
    result cache: payloads written by newer builds must still load.
    """
    if not data:
        return DEFAULT_PERF_MODEL
    kind = data.get("kind")
    if kind == ThroughputMatrixModel.name:
        return ThroughputMatrixModel(data.get("matrix", {}))
    return DEFAULT_PERF_MODEL


def resolve_perf_model(matrix: Optional[MatrixLike]) -> PerfModel:
    """``None``/empty -> the scalar default; else a matrix model."""
    if not matrix:
        return DEFAULT_PERF_MODEL
    return ThroughputMatrixModel(matrix)


class PerfCapacity:
    """Per-family fastest-N capacity views of one cluster.

    The ideal running time of Section 5.2 divides work by the summed
    speed of the fastest N GPUs; under a throughput matrix "fastest" is
    family-relative, so each family gets its own
    :class:`~repro.cluster.topology.ClusterCapacity` prefix-sum view,
    built lazily and cached (a trace has a handful of families).
    Hashable by identity, so per-app ideal-time caches key on it the
    same way they key on a shared ``ClusterCapacity``.
    """

    __slots__ = ("_types", "_model", "_views", "_best_totals")

    def __init__(self, gpu_types: Sequence[GpuType], model: PerfModel) -> None:
        if not gpu_types:
            raise ValueError("capacity needs at least one GPU")
        self._types: tuple[GpuType, ...] = tuple(gpu_types)
        self._model = model
        self._views: dict[str, ClusterCapacity] = {}
        self._best_totals: dict[tuple[str, ...], float] = {}

    @property
    def num_gpus(self) -> int:
        """Number of GPUs backing every view."""
        return len(self._types)

    def view(self, family: str) -> ClusterCapacity:
        """The fastest-N prefix sums as seen by one model family."""
        got = self._views.get(family)
        if got is None:
            got = ClusterCapacity(
                self._model.speedup(family, gpu_type) for gpu_type in self._types
            )
            self._views[family] = got
        return got

    def best_total(self, families: Iterable[str]) -> float:
        """Max aggregate compute achievable by a set of families.

        Each GPU contributes its best speedup over the given families —
        the tight capacity bound for an app whose jobs span families
        with *inverted* preferences: running alone, job A takes the
        GPUs fast for A while job B takes those fast for B, so no
        single family's :meth:`view` total bounds the aggregate rate.
        Summed fastest-first so a degenerate (all-scalar) matrix
        reproduces ``view(f).total`` bit-for-bit.
        """
        key = tuple(sorted(set(families)))
        if not key:
            raise ValueError("best_total needs at least one family")
        if len(key) == 1:
            return self.view(key[0]).total
        got = self._best_totals.get(key)
        if got is None:
            model = self._model
            best = sorted(
                (
                    max(model.speedup(family, gpu_type) for family in key)
                    for gpu_type in self._types
                ),
                reverse=True,
            )
            total = 0.0
            for speed in best:
                total += speed
            self._best_totals[key] = got = total
        return got

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PerfCapacity(gpus={self.num_gpus}, model={self._model.name})"


# ----------------------------------------------------------------------
# Presets and app-level helpers
# ----------------------------------------------------------------------
#: Named matrix presets for the CLI / bench profiles.  ``rate-inversion``
#: is the scenario the scalar model cannot express: network-heavy
#: families (vgg/rnn/attention — bandwidth-starved on older parts)
#: strongly prefer v100, while the small compute-bound families
#: (inception/gan) run *better* on p100 than the scalar ordering says,
#: so the two classes disagree about which generation to queue for.
PERF_MATRIX_PRESETS: dict[str, MatrixTuple] = {
    "rate-inversion": canonical_matrix(
        {
            "vgg": {"v100": 1.0, "p100": 0.25, "k80": 0.1},
            "rnn": {"v100": 1.0, "p100": 0.3, "k80": 0.12},
            "attention": {"v100": 1.0, "p100": 0.3, "k80": 0.12},
            "alexnet": {"v100": 1.0, "p100": 0.4, "k80": 0.2},
            "resnet": {"v100": 0.7, "p100": 0.9, "k80": 0.45},
            "inception": {"v100": 0.65, "p100": 1.0, "k80": 0.5},
            "gan": {"v100": 0.6, "p100": 1.0, "k80": 0.55},
        }
    ),
    "gavel-like": canonical_matrix(
        {
            "vgg": {"v100": 1.0, "p100": 0.45, "k80": 0.2},
            "rnn": {"v100": 1.0, "p100": 0.5, "k80": 0.22},
            "attention": {"v100": 1.0, "p100": 0.48, "k80": 0.18},
            "alexnet": {"v100": 1.0, "p100": 0.55, "k80": 0.3},
            "resnet": {"v100": 1.0, "p100": 0.7, "k80": 0.42},
            "inception": {"v100": 1.0, "p100": 0.72, "k80": 0.45},
            "gan": {"v100": 1.0, "p100": 0.75, "k80": 0.5},
        }
    ),
}


def resolve_matrix_spec(spec) -> MatrixTuple:
    """Resolve a matrix spec: empty, a preset name, or matrix data.

    The generator / scenario configs accept any of the three; the
    result is always the canonical validated tuple.  Unknown preset
    names and unknown family/generation names raise
    :class:`PerfModelError` with the valid alternatives listed.
    """
    if not spec:
        return ()
    if isinstance(spec, str):
        preset = PERF_MATRIX_PRESETS.get(spec)
        if preset is None:
            raise PerfModelError(
                f"unknown perf-matrix preset {spec!r}; "
                f"available presets: {sorted(PERF_MATRIX_PRESETS)}"
            )
        return preset
    matrix = canonical_matrix(spec)
    validate_matrix_names(matrix)
    return matrix


def app_family(app) -> Optional[str]:
    """The single model family of an app's active jobs, or ``None``.

    Generated traces give every job of an app the same architecture
    (Section 5.2: jobs of an app share a model structure); hand-built
    apps may mix, in which case family-specific shortcuts fall back to
    scalar speeds.
    """
    families = {job.family for job in app.jobs if job.is_active}
    if len(families) == 1:
        return next(iter(families))
    return None


def app_effective_compute(app, model: PerfModel) -> float:
    """Speed-weighted compute an app currently holds, under ``model``.

    Scalar models read the memoised
    :attr:`~repro.cluster.allocation.Allocation.effective_size` exactly
    as before; matrix models weight each held GPU by its *holder job's*
    family row (a K80 held by a K80-tolerant model is worth more than
    the same K80 under a bandwidth-starved one).  The sum runs in the
    union allocation's gpu_id order — the same order ``effective_size``
    uses — so an all-scalar matrix produces bit-identical floats.
    """
    union = app.allocation()
    if model.is_scalar:
        return union.effective_size
    family_of: dict[int, str] = {}
    for job in app.jobs:
        if job.allocation:
            family = job.family
            for gpu in job.allocation:
                family_of[gpu.gpu_id] = family
    return union.effective_size_weighted(
        lambda gpu: model.speedup(
            family_of.get(gpu.gpu_id, ""), gpu.gpu_type
        )
        if gpu.gpu_id in family_of
        else gpu.speed
    )
