"""Workload model: ML models, jobs, apps, traces and the trace generator.

This package substitutes for the paper's proprietary enterprise trace
(Section 8.1).  :mod:`repro.workload.models` carries a model zoo with
placement-sensitivity profiles shaped after Figure 2;
:mod:`repro.workload.generator` samples synthetic traces matching every
distribution statistic the paper quotes (jobs per app, task durations,
GPU demands, arrival process, sensitive/insensitive mix).
"""

from repro.workload.app import App, AppState
from repro.workload.job import Job, JobState
from repro.workload.models import (
    MODEL_ZOO,
    ModelProfile,
    get_model,
    list_models,
    models_by_family,
    throughput,
)
from repro.workload.perf import (
    PERF_MATRIX_PRESETS,
    PerfModel,
    ScalarSpeedModel,
    ThroughputMatrixModel,
)
from repro.workload.trace import Trace, TraceApp, TraceJob
from repro.workload.generator import GeneratorConfig, generate_trace

__all__ = [
    "App",
    "AppState",
    "GeneratorConfig",
    "Job",
    "JobState",
    "MODEL_ZOO",
    "ModelProfile",
    "PERF_MATRIX_PRESETS",
    "PerfModel",
    "ScalarSpeedModel",
    "ThroughputMatrixModel",
    "Trace",
    "TraceApp",
    "TraceJob",
    "generate_trace",
    "get_model",
    "list_models",
    "models_by_family",
    "throughput",
]
