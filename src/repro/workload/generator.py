"""Synthetic enterprise-trace generator.

Section 8.1 summarises the production trace the authors replay:

* jobs per app range 1..98 with median 23,
* "most tasks within the application require 4 GPUs, but a few of them
  require just 2 GPUs",
* task durations are mostly short (median 59 minutes) with a long tail
  (median 123 minutes),
* arrivals are Poisson with mean inter-arrival 20 minutes,
* the model mix is 60:40 placement-insensitive : placement-sensitive.

The generator samples from distributions matching each quoted statistic
(log-normal bodies calibrated so the medians land on the paper's
numbers), producing a :class:`~repro.workload.trace.Trace` that stands
in for the proprietary trace.  All sampling goes through named
:class:`~repro.simulation.rng.RandomStreams`, so a seed pins the entire
workload and every scheduler under comparison replays the same apps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.simulation.rng import RandomStreams
from repro.workload.models import models_by_family
from repro.workload.trace import Trace, TraceApp, TraceJob


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs of the synthetic trace, defaulting to Section 8.1's numbers.

    ``network_intensive_fraction`` is the share of placement-sensitive
    apps (0.4 in the paper's 60:40 mixture); Figure 9 sweeps it.
    ``mean_interarrival_minutes`` controls contention; Figure 10 divides
    it by the contention factor.  ``duration_scale`` shrinks job
    durations (the paper uses 1/5 for testbed runs).
    """

    num_apps: int = 60
    seed: int = 0
    mean_interarrival_minutes: float = 20.0
    network_intensive_fraction: float = 0.4
    duration_scale: float = 1.0
    # Jobs per app: log-normal with the paper's median 23, clipped 1..98.
    jobs_per_app_median: float = 23.0
    jobs_per_app_sigma: float = 0.85
    jobs_per_app_max: int = 98
    # Task durations: short/long log-normal mixture, medians 59 / 123 min.
    short_duration_median: float = 59.0
    long_duration_median: float = 123.0
    long_task_fraction: float = 0.2
    duration_sigma: float = 0.55
    # GPU demand per job: "most require 4 GPUs, a few just 2".
    four_gpu_fraction: float = 0.8
    # Optional GPU-generation affinity: with probability
    # ``gpu_type_affinity_fraction`` an app pins all its jobs to one
    # generation drawn uniformly from ``gpu_type_affinities`` (jobs of
    # an app share a model structure, so they share the affinity too).
    # Disabled by default — the affinity RNG stream is only consumed
    # when enabled, so default traces are byte-identical.
    gpu_type_affinities: tuple[str, ...] = ()
    gpu_type_affinity_fraction: float = 0.0
    # Loss-curve sampling (good vs poor hyper-parameter draws).
    loss_initial_range: tuple[float, float] = (3.0, 8.0)
    loss_alpha_range: tuple[float, float] = (0.3, 1.2)
    iterations_per_minute: float = 10.0
    # Optional measured throughput matrix embedded into the generated
    # trace: either a preset name from
    # :data:`repro.workload.perf.PERF_MATRIX_PRESETS` or a matrix in any
    # form :func:`repro.workload.perf.canonical_matrix` accepts.  The
    # empty default keeps the scalar speed model (and byte-identical
    # traces).  Sampling is unaffected — the matrix only changes how
    # fast each sampled model runs per GPU generation at replay time.
    perf_matrix: object = ()

    def __post_init__(self) -> None:
        if self.num_apps <= 0:
            raise ValueError(f"num_apps must be > 0, got {self.num_apps}")
        if self.mean_interarrival_minutes <= 0:
            raise ValueError("mean_interarrival_minutes must be > 0")
        if not 0.0 <= self.network_intensive_fraction <= 1.0:
            raise ValueError("network_intensive_fraction must be in [0, 1]")
        if not 0.0 <= self.long_task_fraction <= 1.0:
            raise ValueError("long_task_fraction must be in [0, 1]")
        if not 0.0 <= self.four_gpu_fraction <= 1.0:
            raise ValueError("four_gpu_fraction must be in [0, 1]")
        if self.duration_scale <= 0:
            raise ValueError("duration_scale must be > 0")
        if not 0.0 <= self.gpu_type_affinity_fraction <= 1.0:
            raise ValueError("gpu_type_affinity_fraction must be in [0, 1]")
        if self.gpu_type_affinity_fraction > 0.0 and not self.gpu_type_affinities:
            raise ValueError(
                "gpu_type_affinity_fraction > 0 requires gpu_type_affinities"
            )
        # Validate preset names up front: a typo'd affinity would never
        # match any GPU and silently rank those jobs last in every
        # distribution instead of expressing a preference.
        from repro.cluster.topology import resolve_gpu_type

        for name in self.gpu_type_affinities:
            resolve_gpu_type(name)
        # Same discipline for the throughput matrix: fail at config time
        # with the valid names listed, not at replay time.
        from repro.workload.perf import resolve_matrix_spec

        resolve_matrix_spec(self.perf_matrix)

    def with_contention(self, factor: float) -> "GeneratorConfig":
        """Config with arrivals compressed by ``factor`` (Figure 10's 1X/2X/4X)."""
        if factor <= 0:
            raise ValueError(f"contention factor must be > 0, got {factor}")
        return self.replace(mean_interarrival_minutes=self.mean_interarrival_minutes / factor)

    def replace(self, **changes) -> "GeneratorConfig":
        """Functional update returning a new config."""
        from dataclasses import replace as dc_replace

        return dc_replace(self, **changes)


def _sample_jobs_per_app(config: GeneratorConfig, rng: np.random.Generator) -> int:
    """Log-normal job count with the paper's median, clipped to [1, max]."""
    mu = math.log(config.jobs_per_app_median)
    count = int(round(rng.lognormal(mean=mu, sigma=config.jobs_per_app_sigma)))
    return max(1, min(config.jobs_per_app_max, count))


def _sample_duration(config: GeneratorConfig, rng: np.random.Generator) -> float:
    """Short/long mixture of log-normal durations (minutes)."""
    if rng.random() < config.long_task_fraction:
        median = config.long_duration_median
    else:
        median = config.short_duration_median
    duration = rng.lognormal(mean=math.log(median), sigma=config.duration_sigma)
    return max(1.0, duration * config.duration_scale)


def _sample_model(
    config: GeneratorConfig, rng: np.random.Generator
) -> tuple[str, bool]:
    """Pick an architecture; apps are sensitive or insensitive wholesale.

    The paper notes all jobs within an app share a model structure and
    thus have correlated placement sensitivity (Section 5.2), so the
    sensitive/insensitive coin is flipped per app, not per job.
    """
    intensive = bool(rng.random() < config.network_intensive_fraction)
    family = models_by_family(network_intensive=intensive)
    profile = family[int(rng.integers(len(family)))]
    return profile.name, intensive


def generate_trace(config: GeneratorConfig) -> Trace:
    """Sample a complete synthetic workload trace.

    Deterministic in ``config.seed``; independent draws use separate
    named streams so changing, say, the duration model does not perturb
    the arrival process.
    """
    streams = RandomStreams(seed=config.seed)
    arrivals_rng = streams.get("arrivals")
    jobs_rng = streams.get("jobs-per-app")
    duration_rng = streams.get("durations")
    demand_rng = streams.get("gpu-demand")
    model_rng = streams.get("models")
    loss_rng = streams.get("loss-curves")

    affinity_enabled = (
        config.gpu_type_affinity_fraction > 0.0 and bool(config.gpu_type_affinities)
    )
    affinity_rng = streams.get("gpu-affinity") if affinity_enabled else None

    apps: list[TraceApp] = []
    clock = 0.0
    for app_index in range(config.num_apps):
        clock += float(arrivals_rng.exponential(config.mean_interarrival_minutes))
        model_name, _ = _sample_model(config, model_rng)
        num_jobs = _sample_jobs_per_app(config, jobs_rng)
        affinity = None
        if affinity_rng is not None:
            if affinity_rng.random() < config.gpu_type_affinity_fraction:
                affinity = config.gpu_type_affinities[
                    int(affinity_rng.integers(len(config.gpu_type_affinities)))
                ]
        jobs: list[TraceJob] = []
        for job_index in range(num_jobs):
            duration = _sample_duration(config, duration_rng)
            max_parallelism = 4 if demand_rng.random() < config.four_gpu_fraction else 2
            loss_initial = float(
                loss_rng.uniform(*config.loss_initial_range)
            )
            loss_alpha = float(loss_rng.uniform(*config.loss_alpha_range))
            total_iterations = max(10, int(duration * config.iterations_per_minute))
            jobs.append(
                TraceJob(
                    job_id=f"app{app_index:04d}-job{job_index:03d}",
                    model=model_name,
                    duration_minutes=duration,
                    max_parallelism=max_parallelism,
                    total_iterations=total_iterations,
                    loss_initial=loss_initial,
                    loss_floor=0.0,
                    loss_alpha=loss_alpha,
                    loss_knee=100.0,
                    gpu_type=affinity,
                )
            )
        apps.append(
            TraceApp(
                app_id=f"app{app_index:04d}",
                arrival_minutes=round(clock, 4),
                jobs=tuple(jobs),
            )
        )
    metadata = {
        "mean_interarrival_minutes": config.mean_interarrival_minutes,
        "network_intensive_fraction": config.network_intensive_fraction,
        "duration_scale": config.duration_scale,
    }
    if affinity_enabled:
        metadata["gpu_type_affinities"] = list(config.gpu_type_affinities)
        metadata["gpu_type_affinity_fraction"] = config.gpu_type_affinity_fraction
    from repro.workload.perf import resolve_matrix_spec

    perf_matrix = resolve_matrix_spec(config.perf_matrix)
    if perf_matrix and isinstance(config.perf_matrix, str):
        metadata["perf_matrix_preset"] = config.perf_matrix
    return Trace(
        apps=tuple(apps),
        name=f"synthetic-seed{config.seed}",
        seed=config.seed,
        metadata=metadata,
        perf_matrix=perf_matrix,
    )
