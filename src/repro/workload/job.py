"""Runtime state of one ML training job.

A job is the paper's unit of gang-scheduled work: a set of synchronous
SGD tasks that collectively need ``max_parallelism`` GPUs at most.  We
measure work in *serial GPU-minutes* (Section 5.2 measures it in
GPU-hours): with ``G`` GPUs placed with slowdown ``S`` the paper's
running time ``serial / (G * S)`` is equivalent to a progress rate of
``G * S`` work-units per minute.

The job tracks everything the schedulers and metrics need:

* remaining work and completion estimates,
* attained GPU service (Tiresias' LAS metric and the GPU-time metric of
  Figures 4b/9b — GPU-time accrues during checkpoint/restore overhead
  too, which is how short leases cost efficiency),
* a time-weighted placement-score integral (Figure 7),
* loss-curve position (SLAQ's and HyperDrive's signal).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.cluster.allocation import Allocation
from repro.cluster.placement import slowdown
from repro.hyperparam.curves import LossCurve
from repro.workload.models import ModelProfile, effective_gpus, get_model


class JobState(enum.Enum):
    """Lifecycle of a job."""

    PENDING = "pending"
    RUNNING = "running"
    FINISHED = "finished"
    KILLED = "killed"


@dataclass(frozen=True)
class JobSpec:
    """Immutable description of a job, as read from a trace.

    ``serial_work`` is the total serial GPU-minutes to the job's end
    point — either convergence to target or the clairvoyant kill point
    the trace embeds (Section 8.1's simulator assumes clairvoyance of
    the number of iterations each exploration runs).
    """

    job_id: str
    model: str
    serial_work: float
    max_parallelism: int
    total_iterations: int = 1000
    loss_curve: Optional[LossCurve] = None
    #: Optional GPU-generation affinity (a :class:`~repro.cluster.topology.GpuType`
    #: name).  A soft preference: the intra-app distributor steers
    #: matching GPUs to this job first, but any GPU still works (at its
    #: own speed).
    gpu_type: Optional[str] = None

    def __post_init__(self) -> None:
        if self.serial_work <= 0:
            raise ValueError(f"serial_work must be > 0, got {self.serial_work}")
        if self.max_parallelism <= 0:
            raise ValueError(f"max_parallelism must be > 0, got {self.max_parallelism}")
        if self.total_iterations <= 0:
            raise ValueError(f"total_iterations must be > 0, got {self.total_iterations}")


@dataclass
class Job:
    """Mutable runtime state; progress is integrated between events.

    The simulator is the only writer: it calls :meth:`advance_to` before
    every state change and :meth:`set_allocation` whenever the GPU set
    changes.  All other components read.
    """

    spec: JobSpec
    state: JobState = JobState.PENDING
    remaining_work: float = field(default=0.0)
    allocation: Allocation = field(default_factory=Allocation)
    last_update: float = 0.0
    overhead_remaining: float = 0.0
    gpu_time: float = 0.0
    attained_service: float = 0.0
    score_integral: float = 0.0
    allocated_time: float = 0.0
    #: GPU-minutes accrued per GPU-generation name (device time, like
    #: :attr:`gpu_time`, split by type for the heterogeneity reports).
    gpu_time_by_type: dict = field(default_factory=dict)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: Optional tighter parallelism cap set by the app scheduler
    #: (HyperDrive's priority mechanism); ``None`` means the spec cap.
    parallelism_limit: Optional[int] = None
    #: Dirty-tracking hook, wired by the owning :class:`~repro.workload.app.App`:
    #: fired whenever the job's *discrete* state changes (allocation set,
    #: finish, kill) so epoch-cached app aggregates and cross-round
    #: valuation snapshots invalidate automatically.  Continuous progress
    #: (:meth:`advance_to`) deliberately does not fire it — a job that can
    #: progress holds GPUs, and a non-empty allocation already excludes
    #: its app from snapshot reuse (see ``docs`` in README: the
    #: dirty-tracking contract).
    on_mutate: Optional[Callable[[], None]] = field(
        default=None, repr=False, compare=False
    )
    #: The performance model governing this job's progress rate.  Wired
    #: by the simulator at setup (all jobs of a run share one model);
    #: ``None`` means the scalar default.  With a scalar model the rate
    #: path is byte-identical to the pre-matrix build; a
    #: :class:`~repro.workload.perf.ThroughputMatrixModel` makes the
    #: rate depend on the job's model *family* x GPU generation.
    perf_model: Optional[object] = field(default=None, repr=False, compare=False)
    #: Memoised (allocation, parallelism_limit, rate) triple — the rate
    #: is a pure function of the (immutable) allocation, the cap and the
    #: (run-constant) perf model, and it is re-read every simulated
    #: round the job holds GPUs.
    _rate_memo: Optional[tuple] = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.remaining_work == 0.0:
            self.remaining_work = self.spec.serial_work

    # ------------------------------------------------------------------
    # Static lookups
    # ------------------------------------------------------------------
    @property
    def job_id(self) -> str:
        """The job's trace identifier."""
        return self.spec.job_id

    @property
    def model_profile(self) -> ModelProfile:
        """The model profile describing this job's placement sensitivity."""
        return get_model(self.spec.model)

    @property
    def family(self) -> str:
        """The job's architecture family (the throughput-matrix row key)."""
        return get_model(self.spec.model).family

    @property
    def max_parallelism(self) -> int:
        """Upper bound on GPUs the job can use (the paper's G_ideal).

        The app scheduler may lower it at runtime via
        :attr:`parallelism_limit` (HyperDrive demotes "promising" jobs).
        """
        if self.parallelism_limit is None:
            return self.spec.max_parallelism
        return max(1, min(self.spec.max_parallelism, self.parallelism_limit))

    @property
    def is_active(self) -> bool:
        """True while the job can still consume GPUs."""
        return self.state in (JobState.PENDING, JobState.RUNNING)

    # ------------------------------------------------------------------
    # Progress model
    # ------------------------------------------------------------------
    def rate(self) -> float:
        """Work units consumed per minute with the current allocation.

        The paper's placement-sensitive scaling generalised to mixed
        GPU generations: ``E * S(placement)`` where ``E`` is the
        speed-weighted count of the fastest ``max_parallelism`` GPUs
        held (``= G`` on a homogeneous cluster).  Under a throughput
        matrix the per-GPU weights come from the job's *family* row, so
        two jobs holding the same GPUs can progress at different rates.
        """
        allocation = self.allocation
        if allocation.size == 0:
            return 0.0
        memo = self._rate_memo
        if (
            memo is not None
            and memo[0] is allocation
            and memo[1] == self.parallelism_limit
        ):
            return memo[2]
        rate = self.rate_of(allocation.gpus)
        self._rate_memo = (allocation, self.parallelism_limit, rate)
        return rate

    def rate_of(self, gpus, cap: Optional[int] = None) -> float:
        """Progress rate of a hypothetical GPU set (pure, unmemoised).

        The single rate kernel shared by :meth:`rate` (``cap=None`` —
        the spec's parallelism), the intra-app distributor's
        marginal-gain probes and the migration policy's candidate
        scoring (both pass the runtime :attr:`max_parallelism`), so all
        three always agree on what the perf model says.
        """
        gpus = list(gpus)
        if not gpus:
            return 0.0
        if cap is None:
            cap = self.spec.max_parallelism
        model = self.perf_model
        if model is None or model.is_scalar:
            effective = effective_gpus(gpus, cap=cap)
        else:
            effective = model.effective_gpus(self.family, gpus, cap=cap)
        if effective <= 0.0:
            return 0.0
        return effective * slowdown(self.model_profile.sensitivity, gpus)

    def current_slowdown(self) -> float:
        """Slowdown factor S of the current allocation (1.0 when idle)."""
        return slowdown(self.model_profile.sensitivity, self.allocation.gpus)

    def advance_to(self, now: float) -> None:
        """Integrate progress, GPU-time and score from ``last_update`` to ``now``.

        Checkpoint/restore overhead is consumed first: during overhead
        the job holds (and bills) its GPUs but makes no progress, which
        is how lease churn shows up in the GPU-time efficiency metric.
        """
        last = self.last_update
        if now < last - 1e-9:
            raise ValueError(
                f"job {self.job_id}: time moved backwards "
                f"({last:.4f} -> {now:.4f})"
            )
        dt = max(0.0, now - last)
        self.last_update = now
        if dt == 0.0 or self.state not in (JobState.PENDING, JobState.RUNNING):
            return
        allocation = self.allocation
        held = allocation.size
        if held > 0:
            self.gpu_time += held * dt
            # Attained service is measured in *effective* compute so the
            # LAS baseline (Tiresias) ranks a K80-hour below a V100-hour;
            # identical to held * dt on homogeneous clusters.
            self.attained_service += allocation.effective_size * dt
            self.score_integral += allocation.score() * dt
            self.allocated_time += dt
            by_type = self.gpu_time_by_type
            for type_name, count in allocation.type_count_items():
                by_type[type_name] = by_type.get(type_name, 0.0) + count * dt
        productive = dt
        if self.overhead_remaining > 0.0:
            consumed = min(self.overhead_remaining, productive)
            self.overhead_remaining -= consumed
            productive -= consumed
        if productive > 0.0 and held > 0:
            self.remaining_work = max(0.0, self.remaining_work - self.rate() * productive)

    def set_allocation(self, now: float, allocation: Allocation, overhead: float = 0.0) -> None:
        """Replace the GPU set; caller must have advanced the job to ``now``.

        ``overhead`` minutes of checkpoint/restore penalty are charged
        only when the GPU set actually changes, so a lease renewed to
        the same job is seamless (Section 5's lease semantics).
        """
        if abs(now - self.last_update) > 1e-9:
            raise ValueError(
                f"job {self.job_id}: set_allocation at t={now} but job advanced to "
                f"t={self.last_update}; call advance_to(now) first"
            )
        if allocation == self.allocation:
            return
        self.allocation = allocation
        if overhead > 0.0:
            self.overhead_remaining = overhead
        if allocation.size > 0 and self.state == JobState.PENDING:
            self.state = JobState.RUNNING
            if self.started_at is None:
                self.started_at = now
        if self.on_mutate is not None:
            self.on_mutate()

    def eta(self, now: float) -> float:
        """Absolute completion time under the current allocation.

        ``inf`` when the job holds no GPUs — which is what makes a
        starved app's finish-time fairness metric unbounded (Section 5.1).
        """
        if self.remaining_work <= 0.0:
            return now
        rate = self.rate()
        if rate <= 0.0:
            return math.inf
        return now + self.overhead_remaining + self.remaining_work / rate

    def finish(self, now: float) -> None:
        """Mark the job finished (all work consumed)."""
        if self.remaining_work > 1e-6:
            raise ValueError(
                f"job {self.job_id} finished with {self.remaining_work:.4f} work left"
            )
        self.remaining_work = 0.0
        self.state = JobState.FINISHED
        self.finished_at = now
        self.allocation = Allocation()
        if self.on_mutate is not None:
            self.on_mutate()

    def kill(self, now: float) -> None:
        """Terminate the job early (hyper-parameter exploration pruning)."""
        if not self.is_active:
            raise ValueError(f"job {self.job_id} is already {self.state.value}")
        self.state = JobState.KILLED
        self.finished_at = now
        self.allocation = Allocation()
        if self.on_mutate is not None:
            self.on_mutate()

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def work_done(self) -> float:
        """Serial GPU-minutes of work completed so far."""
        return self.spec.serial_work - self.remaining_work

    @property
    def fraction_done(self) -> float:
        """Completed fraction of the job's total work, in [0, 1]."""
        return self.work_done / self.spec.serial_work

    @property
    def iterations_done(self) -> float:
        """Iterations completed (work maps linearly onto iterations)."""
        return self.spec.total_iterations * self.fraction_done

    def current_loss(self) -> float:
        """Training loss at the current iteration (SLAQ / HyperDrive signal)."""
        curve = self.spec.loss_curve
        if curve is None:
            raise ValueError(f"job {self.job_id} has no loss curve attached")
        return curve.loss_at(self.iterations_done)

    def loss_after_work(self, extra_work: float) -> float:
        """Loss the job would reach after ``extra_work`` more serial GPU-minutes."""
        curve = self.spec.loss_curve
        if curve is None:
            raise ValueError(f"job {self.job_id} has no loss curve attached")
        done = min(self.spec.serial_work, self.work_done + max(0.0, extra_work))
        fraction = done / self.spec.serial_work
        return curve.loss_at(self.spec.total_iterations * fraction)

    def mean_placement_score(self) -> float:
        """Time-weighted average placement score while holding GPUs (Figure 7)."""
        if self.allocated_time <= 0.0:
            return 0.0
        return self.score_integral / self.allocated_time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Job({self.job_id}, {self.state.value}, model={self.spec.model}, "
            f"left={self.remaining_work:.1f}/{self.spec.serial_work:.1f}, "
            f"gpus={self.allocation.size})"
        )
