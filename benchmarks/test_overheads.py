"""Section 8.3.2: AGENT and ARBITER latency microbenchmarks.

The paper measures 29 ms (median) / 334 ms (p95) for bid preparation
and 354 ms / 1398 ms for the Gurobi partial-allocation solve.  These
benchmarks time the same two operations in this reproduction on a
contended 256-GPU market; pytest-benchmark reports the distribution.
Absolute numbers differ (pure Python vs JVM + Gurobi) but should stay
well under the 20-minute lease, which is the paper's operative claim.
"""

import pytest

from repro.cluster.topology import themis_sim_cluster
from repro.core.agent import Agent
from repro.core.arbiter import Arbiter, ArbiterConfig
from repro.core.auction import PartialAllocationAuction
from repro.core.fairness import FairnessEstimator
from repro.workload.generator import GeneratorConfig, generate_trace

_CLUSTER = themis_sim_cluster()


def _market(num_apps: int, elapsed: float = 45.0):
    """A contended market: apps fresh off the generator, nothing placed."""
    estimator = FairnessEstimator(_CLUSTER)
    trace = generate_trace(
        GeneratorConfig(num_apps=num_apps, seed=11, duration_scale=0.4)
    )
    agents = {
        app.app_id: Agent(app, estimator) for app in trace.instantiate()
    }
    # Half the cluster's GPUs are up for auction.
    pool = list(_CLUSTER.gpus[: _CLUSTER.num_gpus // 2])
    offered = {}
    for gpu in pool:
        offered[gpu.machine_id] = offered.get(gpu.machine_id, 0) + 1
    return estimator, agents, pool, offered, elapsed


def test_agent_bid_preparation_latency(benchmark):
    """AGENT: turn a 128-GPU offer into a bid with a valuation table."""
    _, agents, _, offered, elapsed = _market(num_apps=8)
    agent = next(iter(agents.values()))

    def prepare():
        bid = agent.prepare_bid(elapsed, dict(offered), salt=agent.bids_prepared)
        return bid.table(max_entries=64)

    table = benchmark(prepare)
    assert len(table) >= 2


def test_arbiter_partial_allocation_latency(benchmark):
    """ARBITER: solve the PA mechanism over 8 bidding apps."""
    estimator, agents, _, offered, elapsed = _market(num_apps=8)
    auction = PartialAllocationAuction()
    bids = {
        app_id: agent.prepare_bid(elapsed, dict(offered), salt=1)
        for app_id, agent in agents.items()
    }

    outcome = benchmark(lambda: auction.run(offered, bids))
    assert outcome.total_allocated + outcome.total_leftover == sum(offered.values())


def test_arbiter_full_round_latency(benchmark):
    """ARBITER: a complete OFFERRESOURCES round (probe, filter, auction,
    leftovers, concretise) over 16 active apps."""
    _, agents, pool, _, elapsed = _market(num_apps=16)
    arbiter = Arbiter(_CLUSTER, ArbiterConfig(fairness_knob=0.8))

    grants = benchmark(lambda: arbiter.offer_resources(elapsed, pool, agents))
    granted = sum(len(g) for g in grants.values())
    assert 0 < granted <= len(pool)
