"""Figures 4a/4b/4c: sensitivity to the fairness knob and lease time."""

from conftest import run_once

from repro.experiments.config import sim_scenario
from repro.experiments.figures import fig04_knob_sweep, fig04c_lease_sweep

_SCENARIO = sim_scenario(num_apps=14, seed=42, duration_scale=0.35)


def test_fig04ab_fairness_knob_sweep(benchmark, record_figure):
    figure = run_once(
        benchmark, fig04_knob_sweep, _SCENARIO, knobs=(0.0, 0.2, 0.4, 0.6, 0.8, 1.0)
    )
    record_figure(figure)
    by_knob = {row["fairness_knob"]: row for row in figure.rows}
    # Paper shape (4a): strong fairness (f >= 0.8) keeps max rho at or
    # below the efficiency extreme (f = 0); diminishing returns after 0.8.
    assert by_knob[0.8]["max_rho"] <= by_knob[0.0]["max_rho"] * 1.10
    # rho spreads are internally consistent.
    for row in figure.rows:
        assert row["min_rho"] <= row["median_rho"] <= row["max_rho"]
    # 4b: GPU time stays within a plausible band across the sweep (the
    # paper sees higher GPU time at high f; exact shape is workload
    # dependent at this scale).
    gpu_times = [row["gpu_time"] for row in figure.rows]
    assert max(gpu_times) / min(gpu_times) < 1.6


def test_fig04c_lease_time_sweep(benchmark, record_figure):
    figure = run_once(
        benchmark, fig04c_lease_sweep, _SCENARIO, leases=(5.0, 10.0, 20.0, 30.0, 40.0)
    )
    record_figure(figure)
    rows = figure.rows
    # Shorter leases reallocate more often...
    assert rows[0]["rounds"] > rows[-1]["rounds"]
    # ...and are no less fair than the longest lease (paper: fairness
    # improves as leases shrink).
    assert rows[0]["max_rho"] <= rows[-1]["max_rho"] * 1.10
