"""Figure 11: robustness of max fairness to bid-valuation errors."""

from conftest import run_once

from repro.experiments.config import sim_scenario
from repro.experiments.figures import fig11_bid_error_sweep

_SCENARIO = sim_scenario(num_apps=14, seed=42, duration_scale=0.35)


def test_fig11_bid_error_sweep(benchmark, record_figure):
    figure = run_once(
        benchmark, fig11_bid_error_sweep, _SCENARIO, thetas=(0.0, 0.05, 0.10, 0.20)
    )
    record_figure(figure)
    rows = {row["theta"]: row for row in figure.rows}
    exact = rows[0.0]["max_rho"]
    # Paper shape: "Even with theta = 0.2 the change in max finish-time
    # fairness is not significant."  At 5-10% error we match that; at
    # 20% our small-sample (14-app) max statistic is swingier than the
    # paper's larger simulation, so allow up to 2x (see EXPERIMENTS.md).
    for theta in (0.05, 0.10):
        assert rows[theta]["max_rho"] <= exact * 1.35, theta
    assert rows[0.20]["max_rho"] <= exact * 2.0
    assert rows[0.20]["max_rho"] >= exact * 0.65
