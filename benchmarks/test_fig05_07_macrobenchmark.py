"""Figures 5a/5b/6/7: the scheduler macrobenchmark on the testbed cluster.

One comparison run yields all four figures: max finish-time fairness
(5a), Jain's index (5b), the app-completion-time CDF (6) and the
placement-score CDF (7).
"""

from conftest import run_once

from repro.experiments.figures import fig05_to_07_macrobenchmark

_SCHEDULERS = ("themis", "gandiva", "slaq", "tiresias")


def test_fig05_to_07_macrobenchmark(benchmark, record_figure, bench_testbed_scenario):
    figure = run_once(
        benchmark, fig05_to_07_macrobenchmark, bench_testbed_scenario, _SCHEDULERS
    )
    record_figure(figure)
    rows = {row["scheduler"]: row for row in figure.rows}

    # Figure 5a shape: Themis has the best (lowest) max fairness of the
    # comparison set.
    themis_max = rows["themis"]["max_fairness"]
    for name in ("slaq", "tiresias"):
        assert themis_max <= rows[name]["max_fairness"] * 1.05, name

    # Figure 5b shape: Themis' Jain index is at or near the top.
    best_jain = max(row["jain_index"] for row in figure.rows)
    assert rows["themis"]["jain_index"] >= best_jain - 0.05

    # Figure 6 shape: Themis' average JCT beats the placement-blind
    # schedulers.
    assert rows["themis"]["avg_jct"] <= rows["tiresias"]["avg_jct"] * 1.05
    assert rows["themis"]["avg_jct"] <= rows["slaq"]["avg_jct"] * 1.05

    # Figure 7 shape: placement-aware schedulers (Themis, Gandiva) pack
    # better than placement-blind ones (Tiresias, SLAQ).
    for aware in ("themis", "gandiva"):
        for blind in ("tiresias", "slaq"):
            assert (
                rows[aware]["mean_placement_score"]
                > rows[blind]["mean_placement_score"]
            ), (aware, blind)

    # Efficiency: Themis uses no more GPU time than the blind schedulers.
    assert rows["themis"]["gpu_time"] <= rows["tiresias"]["gpu_time"] * 1.02
