"""Ablations of Themis' design choices (beyond the paper's figures).

* **auction vs strawman** — Section 4 argues the one-app-at-a-time
  strawman wastes placement opportunities; compare it head-to-head.
* **hidden payments on/off** — what truthfulness protection costs.
* **leftover allocation on/off** — the work-conservation stage.
* **fairness metric vs instantaneous fairness** — Themis vs DRF.
"""

import pytest

from conftest import run_once

from repro.experiments.config import testbed_scenario as _testbed_scenario
from repro.experiments.figures import FigureResult
from repro.experiments.runner import run_scenario
from repro.metrics.fairness import jain_index, max_fairness
from repro.metrics.jct import average_jct

_SCENARIO = _testbed_scenario(num_apps=20, seed=42)


def _summarise(result):
    rhos = result.rhos()
    return {
        "max_fairness": max_fairness(rhos),
        "jain_index": jain_index(rhos),
        "avg_jct": average_jct(result.completion_times()),
        "gpu_time": result.total_gpu_time,
    }


def test_ablation_strawman_vs_auction(benchmark, record_figure):
    def run():
        rows = []
        for name in ("themis", "strawman"):
            summary = _summarise(run_scenario(_SCENARIO, name))
            rows.append({"scheduler": name, **summary})
        return FigureResult(
            figure_id="ablation-strawman",
            title="Auction (Themis) vs Section-4 strawman",
            rows=rows,
        )

    figure = run_once(benchmark, run)
    record_figure(figure)
    rows = {row["scheduler"]: row for row in figure.rows}
    # The strawman is pure greedy max-min on rho, so it can undercut the
    # auction on raw max fairness in small settings; its documented
    # weaknesses (gameable self-reports, single-app placement) do not
    # show in this metric.  The auction must stay in the same ballpark
    # on fairness while matching the strawman's efficiency.
    assert rows["themis"]["max_fairness"] <= rows["strawman"]["max_fairness"] * 1.5
    assert rows["themis"]["gpu_time"] <= rows["strawman"]["gpu_time"] * 1.10
    assert rows["themis"]["avg_jct"] <= rows["strawman"]["avg_jct"] * 1.15


def test_ablation_hidden_payments(benchmark, record_figure):
    def run():
        rows = []
        for enabled in (True, False):
            result = run_scenario(
                _SCENARIO, "themis", {"hidden_payments": enabled}
            )
            rows.append({"hidden_payments": enabled, **_summarise(result)})
        return FigureResult(
            figure_id="ablation-hidden-payments",
            title="Hidden payments (truth-telling incentive) on vs off",
            rows=rows,
        )

    figure = run_once(benchmark, run)
    record_figure(figure)
    on, off = figure.rows
    # Truthfulness protection should be cheap (paper keeps it always on).
    assert on["max_fairness"] <= off["max_fairness"] * 1.3
    assert on["gpu_time"] <= off["gpu_time"] * 1.15


def test_ablation_leftover_allocation(benchmark, record_figure):
    def run():
        rows = []
        for enabled in (True, False):
            result = run_scenario(
                _SCENARIO, "themis", {"leftover_allocation": enabled}
            )
            rows.append({"leftover_allocation": enabled, **_summarise(result)})
        return FigureResult(
            figure_id="ablation-leftover",
            title="Work-conserving leftover allocation on vs off",
            rows=rows,
        )

    figure = run_once(benchmark, run)
    record_figure(figure)
    on, off = figure.rows
    # Work conservation should help (or at least not hurt) completion times.
    assert on["avg_jct"] <= off["avg_jct"] * 1.10


def test_ablation_vs_instantaneous_fairness(benchmark, record_figure):
    """Section 2.2's motivation: finish-time fairness vs DRF."""

    def run():
        rows = []
        for name in ("themis", "drf", "fifo"):
            summary = _summarise(run_scenario(_SCENARIO, name))
            rows.append({"scheduler": name, **summary})
        return FigureResult(
            figure_id="ablation-drf",
            title="Finish-time fairness vs instantaneous fairness (DRF) vs FIFO",
            rows=rows,
        )

    figure = run_once(benchmark, run)
    record_figure(figure)
    rows = {row["scheduler"]: row for row in figure.rows}
    # FIFO ignores fairness entirely; Themis should beat it on max rho.
    assert rows["themis"]["max_fairness"] <= rows["fifo"]["max_fairness"]
