"""Figure 10: Jain's fairness index under growing cluster contention."""

from conftest import run_once

from repro.experiments.config import sim_scenario
from repro.experiments.figures import fig10_contention_sweep

_SCENARIO = sim_scenario(num_apps=14, seed=42, duration_scale=0.35)


def test_fig10_contention_sweep(benchmark, record_figure):
    figure = run_once(
        benchmark,
        fig10_contention_sweep,
        _SCENARIO,
        factors=(1.0, 2.0, 4.0),
        schedulers=("themis", "tiresias"),
    )
    record_figure(figure)
    rows = {row["contention_factor"]: row for row in figure.rows}

    # Paper shape: at every contention level Themis' Jain index is at
    # least competitive with Tiresias, and at high contention (4X) the
    # gap favours Themis.
    for factor in (1.0, 2.0, 4.0):
        assert rows[factor]["jain:themis"] >= rows[factor]["jain:tiresias"] - 0.06
    assert rows[4.0]["jain:themis"] >= rows[4.0]["jain:tiresias"]
    # Fairness degrades (or at best holds) as contention rises.
    assert rows[4.0]["jain:themis"] <= rows[1.0]["jain:themis"] + 0.05
