"""Figures 9a/9b: impact of the network-intensive app fraction."""

from conftest import run_once

from repro.experiments.config import sim_scenario
from repro.experiments.figures import fig09_network_sweep

_SCENARIO = sim_scenario(num_apps=14, seed=42, duration_scale=0.35)
_FRACTIONS = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)


def test_fig09_network_intensive_sweep(benchmark, record_figure):
    figure = run_once(
        benchmark,
        fig09_network_sweep,
        _SCENARIO,
        fractions=_FRACTIONS,
        schedulers=("themis", "gandiva", "slaq", "tiresias"),
    )
    record_figure(figure)
    rows = {row["network_intensive_fraction"]: row for row in figure.rows}

    # 9a shape: placement awareness matters more as the workload gets
    # network-heavy — the improvement factor over Tiresias grows from
    # ~1x at 0% to clearly >1x at 100%.
    assert 0.75 <= rows[0.0]["improvement_over_tiresias"] <= 1.35
    assert rows[1.0]["improvement_over_tiresias"] > 1.05
    assert (
        rows[1.0]["improvement_over_tiresias"]
        > rows[0.0]["improvement_over_tiresias"]
    )

    # 9b shape: with only compute-bound apps all schedulers burn about
    # the same GPU time; at 100% network-intensive the placement-blind
    # schedulers inflate GPU time over Themis.
    base = rows[0.0]
    spread_at_zero = max(
        base[f"gpu_time:{s}"] for s in ("themis", "gandiva", "slaq", "tiresias")
    ) / min(base[f"gpu_time:{s}"] for s in ("themis", "gandiva", "slaq", "tiresias"))
    assert spread_at_zero < 1.2
    heavy = rows[1.0]
    assert heavy["gpu_time:tiresias"] > heavy["gpu_time:themis"]
    assert heavy["gpu_time:slaq"] > heavy["gpu_time:themis"]
