"""Shared benchmark fixtures and result recording.

Every figure benchmark renders its regenerated table with
:func:`repro.experiments.report.format_figure` and records it under
``benchmarks/results/<figure_id>.txt`` so the reproduced numbers are
inspectable after a ``pytest benchmarks/ --benchmark-only`` run (pytest
captures stdout; the files are the canonical output).  EXPERIMENTS.md
summarises paper-vs-measured values from these tables.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.config import ScenarioConfig, sim_scenario, testbed_scenario
from repro.experiments.figures import FigureResult
from repro.experiments.report import format_figure

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def record_figure():
    """Write a FigureResult's rendered table to benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(figure: FigureResult, suffix: str = "") -> str:
        text = format_figure(figure)
        name = figure.figure_id + (f"-{suffix}" if suffix else "")
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
        print(f"\n{text}\n")
        return text

    return _record


@pytest.fixture(scope="session")
def bench_sim_scenario() -> ScenarioConfig:
    """256-GPU simulation scenario sized for benchmark wall-clock."""
    return sim_scenario(num_apps=20, seed=42, duration_scale=0.4)


@pytest.fixture(scope="session")
def bench_testbed_scenario() -> ScenarioConfig:
    """50-GPU testbed scenario (fast; used by the macrobenchmark)."""
    return testbed_scenario(num_apps=25, seed=42)


def run_once(benchmark, fn, *args, **kwargs):
    """Run an expensive experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
