"""Figure 2: throughput vs GPU placement for five architectures."""

from conftest import run_once

from repro.experiments.figures import fig02_placement_throughput


def test_fig02_placement_throughput(benchmark, record_figure):
    figure = run_once(benchmark, fig02_placement_throughput)
    record_figure(figure)
    rows = {row["model"]: row for row in figure.rows}
    # Paper shape: VGG-family halves when split 2x2, ResNet family and
    # Inception barely move.
    assert rows["vgg16"]["slowdown"] < 0.6
    assert rows["vgg19"]["slowdown"] < 0.6
    assert rows["alexnet"]["slowdown"] < 0.75
    assert rows["inceptionv3"]["slowdown"] > 0.9
    assert rows["resnet50"]["slowdown"] > 0.9
    # Magnitudes in the paper's range (hundreds of images/sec at 4 GPUs).
    assert 100 <= rows["resnet50"]["one_server_4gpu"] <= 500
