"""Figure 1: distribution of task durations in the replayed trace."""

from conftest import run_once

from repro.experiments.config import sim_scenario
from repro.experiments.figures import fig01_task_duration_cdf


def test_fig01_task_duration_cdf(benchmark, record_figure):
    scenario = sim_scenario(num_apps=120, seed=42)
    figure = run_once(benchmark, fig01_task_duration_cdf, scenario)
    record_figure(figure)
    rows = {row["percentile"]: row["duration_minutes"] for row in figure.rows}
    # Paper shape: mostly short tasks (median tens of minutes) with a
    # long tail below ~1000 minutes.
    assert 40 <= rows[50] <= 110
    assert rows[99] <= 1000
    assert rows[10] < rows[50] < rows[90]
