"""Figure 8: GPU allocation timeline for a short and a long app."""

from conftest import run_once

from repro.experiments.figures import fig08_timeline
from repro.metrics.timeline import sample_series


def test_fig08_timeline(benchmark, record_figure):
    figure = run_once(benchmark, fig08_timeline)
    record_figure(figure)
    rows = {row["app"]: row for row in figure.rows}
    # The short app is preferentially completed...
    assert rows["short-app"]["finished_at"] < rows["long-app"]["finished_at"]
    # ...without starving the long app (bounded rho, it completes).
    assert rows["long-app"]["completion_time"] is not None
    assert rows["long-app"]["rho"] < 6.0

    # The long app is displaced at some point (new arrivals win) but
    # holds GPUs again afterwards — the lease-expiry recovery dynamics.
    series = figure.series["long_app"]
    finished = rows["long-app"]["finished_at"]
    probes = [t for t in range(40, int(finished), 5)]
    values = sample_series(series, [float(t) for t in probes])
    assert 0 in values  # displaced at least once
    assert values[-1] > 0 or values[-2] > 0  # holding GPUs near the end
