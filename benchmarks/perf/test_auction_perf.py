"""Auction hot-path microbenchmarks (``pytest benchmarks/perf``).

Runs the tracked :mod:`repro.perf.bench` auction profiles, asserts the
lazy solver reproduces the rescan reference byte-identically, and
records the measured table under ``benchmarks/results/perf_auction.txt``
so the perf trajectory is inspectable per checkout.  Wall-clock
assertions are deliberately loose (the hard regression gate is the CI
``repro bench --quick --check`` job, which compares the
machine-independent speedup ratio against the committed
``BENCH_auction.json`` baseline).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.perf.bench import AUCTION_PROFILES, run_auction_bench

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="module")
def perf_records():
    """Run the small and medium profiles once, reference included."""
    records = {
        name: run_auction_bench(AUCTION_PROFILES[name], repeats=1)
        for name in ("small", "medium")
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    lines = ["profile gpus contention fast_s ref_s speedup probes"]
    for name, record in records.items():
        lines.append(
            f"{name} {record['gpus']} {record['contention']} "
            f"{record['fast']['seconds']:.4f} "
            f"{record['reference']['seconds']:.4f} "
            f"{record['speedup']:.2f} {record['fast']['rho_probes']}"
        )
    text = "\n".join(lines)
    (RESULTS_DIR / "perf_auction.txt").write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}\n")
    return records


def test_lazy_solver_matches_reference(perf_records):
    for name, record in perf_records.items():
        assert record["identical_outcomes"], f"{name}: solvers diverged"


def test_lazy_solver_is_faster(perf_records):
    # The committed baseline shows >5x on medium; >1.5x here tolerates a
    # heavily loaded benchmark machine without going flaky.
    assert perf_records["medium"]["speedup"] > 1.5


def test_probe_counts_recorded(perf_records):
    for record in perf_records.values():
        assert record["fast"]["rho_probes"] > 0
        assert record["fast"]["solver_pair_scores"] > 0
