"""Whole-trace macro-benchmarks (``pytest benchmarks/perf``).

Runs the tracked :mod:`repro.perf.bench` sim profile(s), asserts the
incremental and cold-rebuild paths produce byte-identical results, and
records the measured table under ``benchmarks/results/perf_sim.txt`` so
the perf trajectory is inspectable per checkout.  Wall-clock assertions
are deliberately loose (the hard regression gate is the CI
``repro bench sim --quick --check`` job, which compares the
machine-independent incremental-over-cold speedup ratio against the
committed ``BENCH_sim.json`` baseline).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.perf.bench import SIM_PROFILES, run_sim_bench

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="module")
def sim_records():
    """Run the small sim profiles (scalar + throughput-matrix) once per mode."""
    records = {
        name: run_sim_bench(SIM_PROFILES[name], repeats=1)
        for name in ("sim-small", "sim-matrix")
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    lines = ["profile gpus peak_contention rounds inc_s cold_s speedup events_per_s probes"]
    for name, record in records.items():
        lines.append(
            f"{name} {record['gpus']} {record['peak_contention']:.2f} "
            f"{record['rounds']} {record['incremental']['seconds']:.3f} "
            f"{record['cold']['seconds']:.3f} {record['speedup']:.2f} "
            f"{record['incremental']['events_per_sec']:.1f} "
            f"{record['incremental']['rho_probes']}"
        )
    text = "\n".join(lines)
    (RESULTS_DIR / "perf_sim.txt").write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}\n")
    return records


def test_incremental_matches_cold(sim_records):
    for name, record in sim_records.items():
        assert record["identical_results"], f"{name}: incremental diverged from cold"


def test_incremental_is_faster(sim_records):
    # The committed baseline shows >1.6x on sim-small (and >2x on
    # sim-medium); >1.05x here tolerates a heavily loaded benchmark
    # machine without going flaky.
    assert sim_records["sim-small"]["speedup"] > 1.05


def test_incremental_does_less_valuation_work(sim_records):
    record = sim_records["sim-small"]
    assert record["incremental"]["rho_probes"] > 0
    assert record["incremental"]["rho_probes"] < record["cold"]["rho_probes"]


def test_matrix_profile_reuses_valuation_state_too(sim_records):
    # The per-family carve kernel must not defeat the cross-round caches.
    record = sim_records["sim-matrix"]
    assert record["incremental"]["rho_probes"] > 0
    assert record["incremental"]["rho_probes"] < record["cold"]["rho_probes"]


def test_throughput_metrics_recorded(sim_records):
    record = sim_records["sim-small"]
    for mode in ("incremental", "cold"):
        assert record[mode]["events_per_sec"] > 0
        assert record[mode]["rounds_per_sec"] > 0
