#!/usr/bin/env python3
"""Orchestrating a scheduler x seed x knob matrix with repro.sweep.

Reproducing a figure of the paper means running the same trace under
many schedulers and knob settings.  This study concatenates two
matrices — a 2-scheduler x 3-seed comparison and a Themis-only
fairness-knob sweep (12 cells total) — executes them across a worker
pool with a warm content-addressed cache, and aggregates max
finish-time fairness per cell.  (Two matrices because ``fairness_knob``
is a Themis-specific kwarg: expanded task lists are plain lists, so
heterogeneous studies are just concatenation.)

Run:  python examples/sweep_study.py

The second invocation completes near-instantly: every cell is served
from ``.sweep-cache/`` (delete the directory to recompute).
"""

from repro.experiments.config import testbed_scenario
from repro.metrics.fairness import jain_index, max_fairness
from repro.sweep import SweepMatrix, run_sweep

CACHE_DIR = ".sweep-cache"


def main() -> None:
    base = testbed_scenario(num_apps=6)
    comparison = SweepMatrix(
        base=base,
        schedulers=("themis", "tiresias"),
        seeds=(1, 2, 3),
    )
    knob_sweep = SweepMatrix(
        base=base,
        schedulers=("themis",),
        seeds=(1, 2, 3),
        scheduler_axes={"fairness_knob": [0.2, 0.8]},
    )
    tasks = comparison.expand() + knob_sweep.expand()
    print(f"matrix expands to {len(tasks)} cells; cache: {CACHE_DIR}/")

    report = run_sweep(tasks, workers=4, cache=CACHE_DIR, progress=print)
    report.raise_on_failure()

    print()
    print(f"{'cell':<50} {'max_rho':>8} {'jain':>6}")
    for task in tasks:
        result = report.result_for(task.task_id)
        rhos = result.rhos()
        print(f"{task.task_id:<50} {max_fairness(rhos):>8.3f} {jain_index(rhos):>6.3f}")

    print()
    print(report.summary())


if __name__ == "__main__":
    main()
