#!/usr/bin/env python3
"""The fairness knob f: trading short-term efficiency for fairness.

Sweeps Themis' fairness knob over a contended 256-GPU cluster (the
Figure 4a/4b experiment at reduced scale) and prints the trade-off:
higher f restricts resource visibility to the worst-off apps, lowering
the worst finish-time fairness at the cost of GPU time.

Run:  python examples/fairness_knob_study.py   (takes a few minutes)
"""

from repro.experiments.config import sim_scenario
from repro.experiments.figures import fig04_knob_sweep
from repro.experiments.report import format_figure


def main() -> None:
    scenario = sim_scenario(num_apps=12, seed=2, duration_scale=0.3)
    figure = fig04_knob_sweep(scenario, knobs=(0.0, 0.4, 0.8, 1.0))
    print(format_figure(figure))
    rows = figure.rows
    best = min(rows, key=lambda row: row["max_rho"])
    print(
        f"\nmost fair setting here: f={best['fairness_knob']} "
        f"(max rho {best['max_rho']:.2f}); the paper selects f=0.8 as the "
        "knee of this trade-off."
    )


if __name__ == "__main__":
    main()
