"""Mixed-generation fleet sweep: the heterogeneity scenario end to end.

Replays the same synthetic workload on the paper-shaped 256-GPU cluster
under three fleet compositions — all-V100, the default 50/25/25
V100/P100/K80 mix, and a half-obsolete 25/25/50 fleet — across two
workload seeds and three schedulers.  Shows:

* the ``gpu_mix`` heterogeneity-ratio sweep axis on ``ScenarioConfig``,
* cross-seed mean/CI aggregation computed by ``SweepReport.aggregate``,
* the per-GPU-type rho/JCT/placement breakdown from
  ``repro.metrics.hetero.per_type_rows``.

Run from the repo root:

    PYTHONPATH=src python examples/hetero_sweep.py
"""

import dataclasses

from repro.experiments.config import hetero_scenario
from repro.experiments.report import format_table
from repro.metrics.hetero import is_heterogeneous, per_type_rows
from repro.sweep import SweepMatrix, run_sweep

MIXES = {
    "all-v100": (("v100", 1.0),),
    "half-new": (("v100", 0.5), ("p100", 0.25), ("k80", 0.25)),
    "mostly-old": (("v100", 0.25), ("p100", 0.25), ("k80", 0.5)),
}


def main() -> None:
    tasks = []
    for label, mix in MIXES.items():
        matrix = SweepMatrix(
            # cluster_scale=0.25 shrinks the fleet to ~64 GPUs so the
            # whole example stays interactive; drop it for paper scale.
            base=hetero_scenario(
                num_apps=4, duration_scale=0.06, gpu_mix=mix, cluster_scale=0.25
            ),
            schedulers=("themis", "gandiva", "tiresias"),
            seeds=(1, 2),
        )
        for task in matrix.expand():
            tasks.append(
                dataclasses.replace(task, tags=task.tags + (("mix", label),))
            )
    report = run_sweep(tasks, workers=2, cache=".sweep-cache")
    report.raise_on_failure()
    print(report.summary())

    print("\ncross-seed aggregation (mean +/- 95% CI):")
    rows = report.aggregate(tasks)
    headers = list(rows[0].keys())
    print(format_table(headers, [[row.get(h) for h in headers] for row in rows]))

    print("\nper-GPU-type breakdown of one mixed cell per scheduler:")
    seen = set()
    type_rows = []
    for task in tasks:
        key = (task.scheduler, dict(task.tags).get("mix"))
        result = report.results.get(task.task_id)
        if result is None or key in seen or not is_heterogeneous(result):
            continue
        seen.add(key)
        for row in per_type_rows(result):
            type_rows.append([
                task.scheduler,
                dict(task.tags)["mix"],
                row["gpu_type"],
                row["gpus"],
                row["gpu_time"],
                row["utilization"],
                row["weighted_rho"],
                row["weighted_jct"],
            ])
    print(format_table(
        ["scheduler", "mix", "gpu_type", "gpus", "gpu_time", "util", "rho", "jct"],
        type_rows,
    ))


if __name__ == "__main__":
    main()
