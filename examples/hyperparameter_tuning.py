#!/usr/bin/env python3
"""Hyper-parameter exploration with a live HyperBand app scheduler.

The paper's two-level design lets each app run its own tuner (Section
5.2).  This example builds one app with eight exploration jobs whose
loss curves converge at different speeds, attaches a HyperBand tuner,
and runs it under Themis with FIRST_WINNER semantics: the app finishes
when the best configuration trains to target, and HyperBand kills the
losers along the way — freeing GPUs that the auction immediately
reassigns.

Run:  python examples/hyperparameter_tuning.py
"""

from repro import ClusterSimulator, SimulationConfig, make_scheduler, testbed_cluster
from repro.hyperparam.hyperband import HyperBand
from repro.workload.app import CompletionSemantics
from repro.workload.trace import Trace, TraceApp, TraceJob


def build_exploration_app() -> TraceApp:
    """Eight configurations of a VGG16 sweep with varying convergence."""
    jobs = tuple(
        TraceJob(
            job_id=f"sweep-lr{i}",
            model="vgg16",
            duration_minutes=60.0,
            max_parallelism=4,
            total_iterations=600,
            loss_initial=5.0,
            loss_alpha=0.3 + 0.15 * i,  # higher alpha converges faster
        )
        for i in range(8)
    )
    return TraceApp(app_id="vgg-sweep", arrival_minutes=0.0, jobs=jobs)


def main() -> None:
    trace = Trace(apps=(build_exploration_app(),), name="hyperband-demo")
    simulator = ClusterSimulator(
        cluster=testbed_cluster(),
        workload=trace,
        scheduler=make_scheduler("themis"),
        config=SimulationConfig(
            lease_minutes=10.0,
            semantics=CompletionSemantics.FIRST_WINNER,
        ),
    )
    app = simulator.apps[0]
    app.tuner = HyperBand(app, min_iterations=75.0, eta=2.0)

    result = simulator.run()
    stats = result.stats_by_app()["vgg-sweep"]
    print(f"app finished at t={stats.finished_at:.1f} min "
          f"(rho={stats.rho:.2f}, gpu-time={stats.gpu_time:.0f} GPU-min)\n")
    print("per-configuration outcome:")
    for job in app.jobs:
        marker = "<- winner" if job.state.value == "finished" else ""
        print(
            f"  {job.job_id}: {job.state.value:8s} "
            f"ran {job.work_done / job.spec.serial_work * 100:5.1f}% of its work "
            f"{marker}"
        )
    killed = sum(1 for job in app.jobs if job.state.value == "killed")
    print(f"\nHyperBand pruned {killed} of {app.num_jobs} configurations early, "
          "returning their GPUs to the cluster.")


if __name__ == "__main__":
    main()
