#!/usr/bin/env python3
"""Machine failures under Themis (Section 6's future-work study).

Injects a machine outage into a running cluster and shows the recovery
dynamics the paper anticipates: the victim app stalls, its finish-time
fairness metric deteriorates, and the next auctions route GPUs back to
it — possibly displacing other apps — until fairness recovers.

Run:  python examples/failure_injection.py
"""

from repro import ClusterSimulator, SimulationConfig, make_scheduler
from repro.cluster.topology import ClusterSpec, MachineSpec, build_cluster
from repro.metrics.timeline import allocation_series, sample_series
from repro.simulation.failures import FailureInjector, MachineFailure
from repro.workload.trace import Trace, TraceApp, TraceJob


def main() -> None:
    cluster = build_cluster(
        ClusterSpec(
            machine_specs=(MachineSpec(count=3, gpus_per_machine=4),),
            num_racks=1,
            name="demo-12gpu",
        )
    )

    def app(app_id, minutes):
        return TraceApp(
            app_id,
            0.0,
            (TraceJob(job_id=f"{app_id}-j0", model="vgg16",
                      duration_minutes=minutes, max_parallelism=4),),
        )

    trace = Trace(apps=(app("victim", 80.0), app("peer-a", 80.0), app("peer-b", 80.0)))
    sim = ClusterSimulator(
        cluster=cluster,
        workload=trace,
        scheduler=make_scheduler("themis"),
        config=SimulationConfig(lease_minutes=10.0, record_timeline=True),
    )
    # Machine 0 (the victim's machine) dies at t=30 and is repaired at t=70.
    injector = FailureInjector([MachineFailure(machine_id=0, at=30.0, duration=40.0)])
    injector.install(sim)

    result = sim.run()
    print(f"completed={result.completed}; failure+repair events applied: "
          f"{injector.events_applied}\n")

    probes = [0.0, 20.0, 35.0, 50.0, 75.0, 100.0, 140.0]
    print("GPUs held over time (machine 0 down during t=30..70):")
    print("  t(min):   " + "  ".join(f"{t:5.0f}" for t in probes))
    for app_id in ("victim", "peer-a", "peer-b"):
        series = allocation_series(result, app_id)
        values = sample_series(series, probes)
        print(f"  {app_id:8s}: " + "  ".join(f"{v:5d}" for v in values))

    print("\nfinal finish-time fairness (rho):")
    for stats in result.app_stats:
        print(f"  {stats.app_id}: rho={stats.rho:.2f}  "
              f"finished at t={stats.finished_at:.0f} min")
    print("\nno app starves: the victim's unbounded rho after the outage wins"
          "\nit GPUs in the very next auctions.")


if __name__ == "__main__":
    main()
