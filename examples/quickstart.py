#!/usr/bin/env python3
"""Quickstart: run Themis over a synthetic trace and read the metrics.

Generates a small enterprise-style workload (Poisson arrivals,
hyper-parameter exploration apps), schedules it with Themis on the
paper's 50-GPU testbed cluster, and prints the evaluation metrics of
Section 8.1.

Run:  python examples/quickstart.py
"""

from repro import (
    ClusterSimulator,
    GeneratorConfig,
    SimulationConfig,
    generate_trace,
    make_scheduler,
    testbed_cluster,
)
from repro.metrics import jain_index, jct_summary, max_fairness, score_summary, utilization


def main() -> None:
    cluster = testbed_cluster()
    trace = generate_trace(
        GeneratorConfig(
            num_apps=12,
            seed=1,
            duration_scale=0.1,
            jobs_per_app_median=6.0,
            jobs_per_app_max=16,
        )
    )
    print(f"cluster : {cluster.num_gpus} GPUs / {cluster.num_machines} machines")
    print(f"workload: {trace.num_apps} apps, {trace.num_jobs} jobs, "
          f"peak demand {trace.peak_gpu_demand()} GPUs")

    simulator = ClusterSimulator(
        cluster=cluster,
        workload=trace,
        scheduler=make_scheduler("themis", fairness_knob=0.8),
        config=SimulationConfig(lease_minutes=20.0),
    )
    result = simulator.run()

    rhos = result.rhos()
    print(f"\ncompleted       : {result.completed} "
          f"(makespan {result.makespan:.0f} min, {result.num_rounds} auctions)")
    print(f"peak contention : {result.peak_contention:.2f}x cluster capacity")
    print(f"max fairness    : {max_fairness(rhos):.2f}  (ideal ~= contention)")
    print(f"jain index      : {jain_index(rhos):.3f}")
    print(f"avg completion  : {jct_summary(result.completion_times())['mean']:.1f} min")
    print(f"placement score : {score_summary(result.placement_scores())['mean']:.3f}")
    print(f"utilization     : {utilization(result):.2f}")

    print("\nper-app finish-time fairness (rho = shared time / ideal time):")
    for stats in sorted(result.app_stats, key=lambda s: s.rho, reverse=True)[:5]:
        print(f"  {stats.app_id}: rho={stats.rho:5.2f}  "
              f"jct={stats.completion_time:7.1f} min  jobs={stats.num_jobs}")


if __name__ == "__main__":
    main()
