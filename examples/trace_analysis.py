#!/usr/bin/env python3
"""Decision-trace analysis: observe *why* the scheduler did what it did.

Runs one Themis simulation with full observability on — structured
decision tracing, the phase profiler, and the per-round
fragmentation/starvation series — then analyses the artifacts:

* validates the event stream against the typed, versioned schema,
* reconstructs per-app GPU time purely from ``job_state_change``
  events and reconciles it against the engine's own accounting,
* ranks the auction's winners by wins and GPUs granted,
* prints the phase profile (where the wall-clock actually went).

Run:  PYTHONPATH=src python examples/trace_analysis.py
"""

import tempfile
from collections import Counter
from pathlib import Path

from repro import ClusterSimulator, make_scheduler
from repro.experiments.config import sim_scenario
from repro.obs import ObsConfig, read_trace, summarize_events, validate_events


def gpu_time_from_trace(events):
    """Integrate held GPUs per app from the job_state_change stream.

    Allocations are piecewise-constant between events, so the exact
    per-app GPU time is recoverable from the trace alone — no access to
    the simulator needed.  (The engine guarantees a terminal event with
    ``gpus=0`` for every job.)
    """
    last = {}      # (app, job) -> (t, gpus)
    totals = {}    # app -> GPU-minutes
    for event in events:
        if event["kind"] != "job_state_change":
            continue
        key = (event["app"], event["job"])
        if key in last:
            t0, gpus0 = last[key]
            totals[event["app"]] = (
                totals.get(event["app"], 0.0) + gpus0 * (event["t"] - t0)
            )
        last[key] = (event["t"], event["gpus"])
    return totals


def main() -> None:
    scenario = sim_scenario(num_apps=8, duration_scale=0.05, seed=3)
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "decisions.jsonl"
        simulator = ClusterSimulator(
            cluster=scenario.build_cluster(),
            workload=scenario.build_trace(),
            scheduler=make_scheduler("themis"),
            config=scenario.build_sim_config(),
            obs=ObsConfig(trace_path=str(trace_path), profile=True),
        )
        result = simulator.run()
        simulator.obs.close()
        header, events = read_trace(str(trace_path))

    problems = validate_events(events, header)
    summary = summarize_events(events)
    print(f"trace: {summary['events']} events over {summary['rounds']} rounds, "
          f"schema {header['schema']}, "
          f"{'VALID' if not problems else f'{len(problems)} PROBLEMS'}")
    for kind, count in summary["by_kind"].items():
        print(f"  {kind:<18} {count:>6}")

    print("\nGPU time: trace integral vs engine accounting")
    from_trace = gpu_time_from_trace(events)
    for stats in sorted(result.app_stats, key=lambda s: -s.gpu_time)[:5]:
        integrated = from_trace.get(stats.app_id, 0.0)
        drift = abs(integrated - stats.gpu_time)
        print(f"  {stats.app_id}: {integrated:10.1f} vs {stats.gpu_time:10.1f} "
              f"GPU-min (drift {drift:.2e})")

    wins = Counter(e["app"] for e in events if e["kind"] == "auction_win")
    gpus_won = Counter()
    for event in events:
        if event["kind"] == "auction_win":
            gpus_won[event["app"]] += event["gpus"]
    print("\nauction winners (wins / total GPUs granted):")
    for app, count in wins.most_common(5):
        print(f"  {app}: {count} wins, {gpus_won[app]} GPUs")

    if result.fragmentation_samples:
        peak_t, peak = max(result.fragmentation_samples, key=lambda tv: tv[1])
        print(f"\nfragmentation peaks at {peak:.3f} (t={peak_t:.0f} min); "
              f"starvation p99 peaks at "
              f"{max(v for _, v in result.starvation_samples)} rounds")

    print("\nphase profile (inclusive wall time):")
    total = sum(rec["seconds"] for rec in result.profile.values()) or 1.0
    for name, rec in result.profile.items():
        print(f"  {name:<16} {rec['seconds']:8.4f}s  {rec['calls']:>6} calls  "
              f"{100.0 * rec['seconds'] / total:5.1f}%")


if __name__ == "__main__":
    main()
