#!/usr/bin/env python3
"""Working with traces: generate, inspect, persist, scale, replay.

Shows the workload substrate on its own: sampling a trace matching the
paper's enterprise-trace statistics (Section 8.1), writing it to JSONL,
reading it back, scaling durations for testbed-sized clusters
(footnote 3), and replaying it on a custom cluster.

Run:  python examples/trace_tools.py
"""

import statistics
import tempfile
from pathlib import Path

from repro import ClusterSimulator, GeneratorConfig, SimulationConfig, Trace, generate_trace, make_scheduler
from repro.cluster.topology import ClusterSpec, MachineSpec, build_cluster


def main() -> None:
    trace = generate_trace(GeneratorConfig(num_apps=30, seed=7))
    durations = trace.task_durations()
    print("generated trace (paper-scale distributions):")
    print(f"  apps={trace.num_apps} jobs={trace.num_jobs}")
    print(f"  jobs/app median   : {statistics.median(trace.jobs_per_app()):.0f} (paper: 23)")
    print(f"  task duration med : {statistics.median(durations):.0f} min (paper: 59 short / 123 long)")
    print(f"  total serial work : {trace.total_serial_work():,.0f} GPU-minutes")

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "trace.jsonl"
        trace.to_jsonl(path)
        loaded = Trace.from_jsonl(path)
        print(f"\nround-trip through {path.name}: {loaded.num_apps} apps, "
              f"identical={loaded.apps == trace.apps}")

    testbed_sized = loaded.scaled(0.05, name="replay-scaled")
    print(f"scaled durations 20x down for a small replay "
          f"({testbed_sized.total_serial_work():,.0f} GPU-minutes)")

    cluster = build_cluster(
        ClusterSpec(
            machine_specs=(
                MachineSpec(count=4, gpus_per_machine=4),
                MachineSpec(count=4, gpus_per_machine=2),
            ),
            num_racks=2,
            name="custom-24gpu",
        )
    )
    result = ClusterSimulator(
        cluster=cluster,
        workload=testbed_sized,
        scheduler=make_scheduler("themis"),
        config=SimulationConfig(lease_minutes=10.0),
    ).run()
    print(f"\nreplay on {cluster.name}: completed={result.completed}, "
          f"makespan={result.makespan:.0f} min, "
          f"peak contention={result.peak_contention:.2f}x")


if __name__ == "__main__":
    main()
