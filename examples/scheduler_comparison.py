#!/usr/bin/env python3
"""Scheduler shoot-out: Themis vs Gandiva vs SLAQ vs Tiresias.

Replays the same workload under the paper's four schedulers (Section
8.3's macrobenchmark) plus the Section-4 strawman, and prints the
comparison table of Figures 5-7: max finish-time fairness, Jain's
index, average completion time, placement score and GPU time.

Run:  python examples/scheduler_comparison.py
"""

from repro.experiments.config import testbed_scenario
from repro.experiments.figures import fig05_to_07_macrobenchmark
from repro.experiments.report import format_figure


def main() -> None:
    scenario = testbed_scenario(num_apps=16, seed=3)
    print(f"scenario: {scenario.name} on a 50-GPU testbed cluster\n")
    figure = fig05_to_07_macrobenchmark(
        scenario,
        schedulers=("themis", "gandiva", "slaq", "tiresias", "strawman"),
    )
    print(format_figure(figure))
    print(
        "\nreading guide: lower max_fairness and higher jain_index are "
        "fairer;\nlower gpu_time is more efficient; placement scores near "
        "1.0 mean tight packing."
    )


if __name__ == "__main__":
    main()
