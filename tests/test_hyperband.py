"""Unit tests for the HyperBand app scheduler."""

import pytest

from repro.cluster.allocation import Allocation
from repro.hyperparam.curves import LossCurve
from repro.hyperparam.hyperband import HyperBand
from repro.workload.app import App, CompletionSemantics
from repro.workload.job import Job, JobSpec


def build_app(alphas, serial_work=100.0):
    """App whose jobs converge at different speeds (higher alpha = better)."""
    jobs = []
    for i, alpha in enumerate(alphas):
        jobs.append(
            Job(
                spec=JobSpec(
                    job_id=f"j{i}",
                    model="resnet50",
                    serial_work=serial_work,
                    max_parallelism=2,
                    total_iterations=1000,
                    loss_curve=LossCurve(initial=5.0, floor=0.0, alpha=alpha),
                )
            )
        )
    return App("hb", 0.0, jobs, semantics=CompletionSemantics.FIRST_WINNER)


def run_all_to_iterations(app, cluster, iterations):
    """Drive every active job to a given iteration count."""
    for job in app.active_jobs():
        minutes = (iterations / job.spec.total_iterations) * job.spec.serial_work
        job.set_allocation(job.last_update, Allocation(cluster.gpus[:1]))
        job.advance_to(job.last_update + minutes)
        job.set_allocation(job.last_update, Allocation())


def test_validation():
    app = build_app([0.5, 0.6])
    with pytest.raises(ValueError):
        HyperBand(app, min_iterations=0)
    with pytest.raises(ValueError):
        HyperBand(app, eta=1.0)


def test_no_kills_before_rung(one_machine_cluster):
    app = build_app([0.3, 0.6, 0.9, 1.2])
    hyperband = HyperBand(app, min_iterations=100.0)
    run_all_to_iterations(app, one_machine_cluster, 50)
    assert hyperband.step(0.0) == []


def test_kills_bottom_half_at_rung(one_machine_cluster):
    app = build_app([0.3, 0.6, 0.9, 1.2])
    hyperband = HyperBand(app, min_iterations=100.0, eta=2.0)
    run_all_to_iterations(app, one_machine_cluster, 120)
    victims = hyperband.step(0.0)
    # Slowest convergers (smallest alpha -> highest loss) die.
    assert sorted(v.job_id for v in victims) == ["j0", "j1"]
    assert hyperband.rung_index == 1


def test_successive_rungs_until_one_survivor(one_machine_cluster):
    app = build_app([0.3, 0.6, 0.9, 1.2])
    hyperband = HyperBand(app, min_iterations=100.0, eta=2.0)
    run_all_to_iterations(app, one_machine_cluster, 120)
    for victim in hyperband.step(0.0):
        victim.kill(0.0)
    run_all_to_iterations(app, one_machine_cluster, 250)
    second = hyperband.step(0.0)
    assert len(second) == 1
    second[0].kill(0.0)
    assert len(app.active_jobs()) == 1
    # With a single survivor HyperBand never kills again.
    assert hyperband.step(0.0) == []


def test_current_rung_grows_geometrically():
    app = build_app([0.5, 0.6])
    hyperband = HyperBand(app, min_iterations=50.0, eta=3.0)
    assert hyperband.current_rung() == 50.0
    hyperband.rung_index = 2
    assert hyperband.current_rung() == 450.0


def test_observe_records_samples(one_machine_cluster):
    app = build_app([0.5, 0.9])
    hyperband = HyperBand(app, min_iterations=1000.0)
    run_all_to_iterations(app, one_machine_cluster, 100)
    hyperband.step(0.0)
    samples = hyperband.samples_of(app.jobs[0])
    assert len(samples) == 1
    assert samples[0][0] == pytest.approx(100.0)
