"""Unit tests for the partial-allocation auction mechanism."""

import math

import pytest

from repro.core.auction import (
    PartialAllocationAuction,
    exhaustive_nash_allocation,
)
from repro.core.bids import build_bid
from repro.core.fairness import FairnessEstimator

from helpers import make_app


@pytest.fixture
def estimator(small_cluster):
    return FairnessEstimator(small_cluster)


def bids_for(estimator, offered, specs):
    """Build bids for apps described as (app_id, num_jobs, elapsed)."""
    out = {}
    for app_id, num_jobs, elapsed in specs:
        app = make_app(app_id=app_id, num_jobs=num_jobs, max_parallelism=2)
        out[app_id] = build_bid(app, estimator, now=elapsed, offered_counts=offered)
    return out


def assert_within_pool(outcome, pool):
    used: dict[int, int] = {}
    for bundle in outcome.winners.values():
        for machine_id, count in bundle.items():
            used[machine_id] = used.get(machine_id, 0) + count
    for machine_id, count in used.items():
        assert count <= pool.get(machine_id, 0)


def test_empty_pool_or_no_bids():
    auction = PartialAllocationAuction()
    outcome = auction.run({}, {})
    assert outcome.winners == {}
    assert outcome.total_leftover == 0


def test_single_bidder_keeps_whole_allocation(estimator):
    pool = {0: 4}
    bids = bids_for(estimator, pool, [("a", 2, 10.0)])
    outcome = PartialAllocationAuction().run(pool, bids)
    # No competitors: c = 1, no hidden payment.
    assert outcome.payments["a"] == pytest.approx(1.0)
    assert outcome.won_gpus("a") == 4
    assert outcome.total_leftover == 0


def test_allocations_are_disjoint_and_within_pool(estimator):
    pool = {0: 4, 1: 2, 2: 4}
    bids = bids_for(
        estimator, pool, [("a", 3, 30.0), ("b", 2, 20.0), ("c", 2, 10.0)]
    )
    outcome = PartialAllocationAuction().run(pool, bids)
    assert_within_pool(outcome, pool)
    allocated = outcome.total_allocated + outcome.total_leftover
    assert allocated == sum(pool.values())


def test_payments_between_zero_and_one(estimator):
    pool = {0: 4, 2: 2}
    bids = bids_for(estimator, pool, [("a", 2, 30.0), ("b", 2, 30.0)])
    outcome = PartialAllocationAuction().run(pool, bids)
    for c in outcome.payments.values():
        assert 0.0 <= c <= 1.0


def test_hidden_payments_withhold_gpus(estimator):
    # Two symmetric contenders on a contended pool: each imposes an
    # externality on the other, so c < 1 and some GPUs are withheld.
    pool = {0: 4}
    bids = bids_for(estimator, pool, [("a", 2, 30.0), ("b", 2, 30.0)])
    outcome = PartialAllocationAuction().run(pool, bids)
    assert outcome.total_leftover > 0
    for app_id, c in outcome.payments.items():
        if outcome.proportional_fair.get(app_id):
            assert c < 1.0


def test_disable_hidden_payments(estimator):
    pool = {0: 4}
    bids = bids_for(estimator, pool, [("a", 2, 30.0), ("b", 2, 30.0)])
    outcome = PartialAllocationAuction().run(pool, bids, apply_hidden_payments=False)
    assert outcome.total_leftover == 0
    assert all(c == 1.0 for c in outcome.payments.values())


def test_leftover_fraction_bounded(estimator):
    """PA guarantees at most 1/e of resources withheld in the worst case;
    the paper observes much less in practice.  Allow the theoretical bound."""
    pool = {0: 4, 1: 2, 2: 4, 3: 2}
    bids = bids_for(
        estimator, pool, [("a", 3, 40.0), ("b", 3, 30.0), ("c", 2, 20.0)]
    )
    outcome = PartialAllocationAuction().run(pool, bids)
    assert outcome.total_leftover <= math.ceil(sum(pool.values()) / math.e) + 1


def test_starved_apps_win_first(estimator):
    # App "starving" has been waiting 100 minutes with nothing; app
    # "fresh" just arrived.  Max-Nash-welfare rescues the starved app.
    pool = {0: 2}
    bids = bids_for(estimator, pool, [("starving", 1, 100.0), ("fresh", 1, 0.1)])
    pf = PartialAllocationAuction().proportional_fair_allocation(pool, bids)
    assert sum(pf.get("starving", {}).values()) >= 1


def test_demand_caps_respected(estimator):
    pool = {0: 4, 1: 2, 2: 4, 3: 2}
    bids = bids_for(estimator, pool, [("a", 1, 10.0)])  # demand = 2
    outcome = PartialAllocationAuction().run(pool, bids)
    assert outcome.won_gpus("a") <= 2


def test_greedy_matches_exhaustive_on_small_instance(estimator):
    pool = {0: 2, 2: 2}
    bids = bids_for(estimator, pool, [("a", 1, 20.0), ("b", 1, 20.0)])
    greedy = PartialAllocationAuction(chunk_size=2).proportional_fair_allocation(
        pool, bids
    )
    exact = exhaustive_nash_allocation(pool, bids)

    def welfare(assignment):
        positive = 0
        log_product = 0.0
        for app_id, bid in bids.items():
            value = bid.value_of(assignment.get(app_id, {}))
            if value > 0:
                positive += 1
                log_product += math.log(value)
        return positive, log_product

    g_pos, g_log = welfare(greedy)
    e_pos, e_log = welfare(exact)
    assert g_pos == e_pos
    assert g_log >= e_log - 0.05  # within 5% log-welfare of optimal


def test_exhaustive_guards_state_explosion(estimator):
    pool = {m: 4 for m in range(10)}
    bids = bids_for(estimator, pool, [("a", 2, 1.0), ("b", 2, 1.0), ("c", 2, 1.0)])
    with pytest.raises(ValueError):
        exhaustive_nash_allocation(pool, bids, max_states=100)


def test_shrink_bundle_drops_fragmented_machines_first():
    auction = PartialAllocationAuction()
    bundle = {0: 4, 1: 1, 2: 2}
    shrunk = auction._shrink_bundle(bundle, keep=5)
    # The singleton machine goes first, then the pair.
    assert shrunk == {0: 4, 2: 1}
    assert sum(shrunk.values()) == 5


def test_shrink_bundle_noop_when_keep_covers():
    auction = PartialAllocationAuction()
    bundle = {0: 3}
    assert auction._shrink_bundle(bundle, keep=3) == {0: 3}
    assert auction._shrink_bundle(bundle, keep=5) == {0: 3}


def test_chunk_size_validation():
    with pytest.raises(ValueError):
        PartialAllocationAuction(chunk_size=0)
