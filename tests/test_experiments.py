"""Tests for the experiment harness on tiny scenarios."""

import pytest

from repro.experiments.config import ScenarioConfig, tiny_scenario
from repro.experiments.config import sim_scenario as _sim_scenario
from repro.experiments.config import testbed_scenario as _testbed_scenario
from repro.experiments.figures import (
    fig01_task_duration_cdf,
    fig02_placement_throughput,
    fig04_knob_sweep,
    fig04c_lease_sweep,
    fig05_to_07_macrobenchmark,
    fig08_timeline,
    fig09_network_sweep,
    fig10_contention_sweep,
    fig11_bid_error_sweep,
)
from repro.experiments.report import format_figure, format_table
from repro.experiments.runner import compare_schedulers, run_scenario


def test_scenario_builders():
    sim = _sim_scenario(num_apps=5)
    assert sim.build_cluster().num_gpus == 256
    testbed = _testbed_scenario(num_apps=5)
    assert testbed.build_cluster().num_gpus == 50
    with pytest.raises(ValueError):
        ScenarioConfig(name="x", generator=sim.generator, cluster_kind="bogus").build_cluster()


def test_scenario_trace_is_deterministic():
    scenario = tiny_scenario()
    assert scenario.build_trace().apps == scenario.build_trace().apps


def test_run_scenario_returns_result():
    result = run_scenario(tiny_scenario(), "fifo")
    assert result.completed
    assert result.scheduler_name == "fifo"


def test_compare_schedulers_same_workload():
    results = compare_schedulers(tiny_scenario(), ["fifo", "tiresias"])
    assert set(results) == {"fifo", "tiresias"}
    totals = {name: r.total_gpu_time for name, r in results.items()}
    assert all(v > 0 for v in totals.values())


def test_fig01_rows_and_series():
    figure = fig01_task_duration_cdf(tiny_scenario(num_apps=20))
    assert figure.column("percentile") == [10, 25, 50, 75, 90, 99]
    durations = figure.column("duration_minutes")
    assert durations == sorted(durations)
    assert figure.series["cdf"]


def test_fig02_vgg_collapses_resnet_does_not():
    figure = fig02_placement_throughput()
    rows = {row["model"]: row for row in figure.rows}
    assert rows["vgg16"]["slowdown"] < 0.6
    assert rows["resnet50"]["slowdown"] > 0.9


def test_fig04_knob_sweep_shape():
    figure = fig04_knob_sweep(tiny_scenario(), knobs=(0.0, 1.0))
    assert [row["fairness_knob"] for row in figure.rows] == [0.0, 1.0]
    for row in figure.rows:
        assert row["min_rho"] <= row["median_rho"] <= row["max_rho"]


def test_fig04c_lease_sweep_shape():
    figure = fig04c_lease_sweep(tiny_scenario(), leases=(10.0, 40.0))
    assert [row["lease_minutes"] for row in figure.rows] == [10.0, 40.0]
    # Shorter leases mean more scheduling rounds.
    assert figure.rows[0]["rounds"] >= figure.rows[1]["rounds"]


def test_fig05_macrobenchmark_rows():
    figure = fig05_to_07_macrobenchmark(tiny_scenario(), schedulers=("themis", "fifo"))
    names = {row["scheduler"] for row in figure.rows}
    assert names == {"themis", "fifo"}
    for row in figure.rows:
        assert row["max_fairness"] > 0
        assert 0.0 < row["jain_index"] <= 1.0
    assert "jct_cdf:themis" in figure.series
    assert "placement_cdf:fifo" in figure.series


def test_fig08_short_app_finishes_first():
    figure = fig08_timeline()
    rows = {row["app"]: row for row in figure.rows}
    assert rows["short-app"]["finished_at"] < rows["long-app"]["finished_at"]
    # The long app is not starved: it eventually completes.
    assert rows["long-app"]["completion_time"] is not None
    assert figure.series["short_app"]
    assert figure.series["long_app"]


def test_fig09_rows_have_improvement_factor():
    figure = fig09_network_sweep(
        tiny_scenario(), fractions=(0.0, 1.0), schedulers=("themis", "tiresias")
    )
    for row in figure.rows:
        assert "improvement_over_tiresias" in row
        assert row["improvement_over_tiresias"] > 0


def test_fig10_contention_rows():
    figure = fig10_contention_sweep(
        tiny_scenario(), factors=(1.0, 2.0), schedulers=("themis", "tiresias")
    )
    assert [row["contention_factor"] for row in figure.rows] == [1.0, 2.0]
    for row in figure.rows:
        assert 0.0 <= row["jain:themis"] <= 1.0


def test_fig11_error_sweep_rows():
    figure = fig11_bid_error_sweep(tiny_scenario(), thetas=(0.0, 0.2))
    assert [row["theta"] for row in figure.rows] == [0.0, 0.2]
    assert all(row["max_rho"] > 0 for row in figure.rows)


def test_format_table_and_figure():
    table = format_table(["a", "b"], [[1.0, "x"], [123456.0, "y"]])
    assert "a" in table and "123,456" in table
    figure = fig02_placement_throughput(models=("vgg16",))
    text = format_figure(figure)
    assert "fig02" in text
    assert "vgg16" in text
