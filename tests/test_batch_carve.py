"""The vectorized batch valuation path and the warm-started auction heap.

Three layers of guarantees:

* :func:`~repro.core.fairness._carve_batch` — the numpy lockstep kernel
  the round-start prime and the heap warm start run through — replays
  :func:`~repro.core.fairness._carve_fast` *and* the pre-refactor
  heap-backed :func:`~repro.core.fairness._carve_reference` byte-for-byte
  on randomised instances: mixed model families, speed-weighted fleets,
  zero-demand rows, empty pools, and batches below ``_BATCH_MIN``;
* without numpy the batch degrades to the scalar kernel with a single
  ``RuntimeWarning`` (results identical, only slower), and
  :meth:`FairnessEstimator.batch_prime` fills exactly the cache slots
  the scalar probes would have filled — same floats, same
  ``carve_count`` accounting;
* the warm-started :class:`~repro.core.auction.PartialAllocationAuction`
  (pair-score memo + size-gated heap prime) reproduces the cold solver's
  winners, payments and leftovers byte-identically, on a single auction
  instance and across a whole trace replay.
"""

from __future__ import annotations

import random
import warnings

import pytest

import repro.core.fairness as fairness
from repro.cluster.topology import ClusterSpec, MachineSpec, build_cluster
from repro.core.auction import PartialAllocationAuction
from repro.core.fairness import (
    _BATCH_MIN,
    VALUE_CEILING,
    AppValuationState,
    FairnessEstimator,
    _carve_batch,
    _carve_fast,
    _carve_reference,
    value_from_rho,
)
from repro.workload.job import Job, JobSpec
from repro.workload.models import MODEL_FAMILIES

from helpers import make_app

MODELS = ("resnet50", "vgg16", "transformer", "inceptionv3", "lstm-lm")


# ----------------------------------------------------------------------
# Instance generators
# ----------------------------------------------------------------------
def random_world(rng: random.Random):
    """One shared machine universe (all batch rows must agree on it)."""
    num_machines = rng.randint(3, 10)
    rack_of = {m: rng.randint(0, 2) for m in range(num_machines)}
    speed_of = None
    if rng.random() < 0.5:
        speed_of = {m: rng.choice((0.33, 0.66, 1.0)) for m in range(num_machines)}
    nvlink = rng.choice((1, 2, 4))
    return rack_of, speed_of, nvlink


def random_family_fn(rng: random.Random, machines):
    table = {
        family: {m: rng.choice((0.2, 0.5, 0.8, 1.0)) for m in machines}
        for family in MODEL_FAMILIES
    }
    return lambda family: table[family]


def random_instance(rng: random.Random, rack_of):
    """One (job_tuples, canonical counts key) batch row.

    Deliberately includes the degenerate shapes the kernel must share
    with the scalar path: empty pools, rows with no jobs, zero counts.
    """
    counts = {
        m: rng.randint(0, 4) for m in rack_of if rng.random() < 0.7
    }
    key = tuple(sorted((m, c) for m, c in counts.items() if c > 0))
    jobs = [
        Job(
            spec=JobSpec(
                job_id=f"j{i}",
                model=rng.choice(MODELS),
                serial_work=rng.uniform(1.0, 300.0),
                max_parallelism=rng.randint(1, 6),
            )
        )
        for i in range(rng.randint(0, 5))
    ]
    tuples = [
        (
            job.remaining_work,
            job.max_parallelism,
            job.model_profile.sensitivity,
            job.job_id,
            job.model_profile.family,
        )
        for job in jobs
    ]
    tuples.sort(key=lambda item: (item[0], item[3]))
    return tuple(tuples), key


def scalar_oracle(instances, rack_of, nvlink, speed_of, family_fn=None):
    return [
        _carve_fast(tuples, dict(key), rack_of, nvlink, speed_of, family_fn)
        for tuples, key in instances
    ]


# ----------------------------------------------------------------------
# Batch kernel vs scalar kernel vs reference
# ----------------------------------------------------------------------
def test_carve_batch_matches_scalar_and_reference():
    rng = random.Random(20260808)
    for _ in range(40):
        rack_of, speed_of, nvlink = random_world(rng)
        instances = [
            random_instance(rng, rack_of)
            for _ in range(rng.randint(_BATCH_MIN, _BATCH_MIN + 20))
        ]
        batch = _carve_batch(instances, rack_of, nvlink, speed_of)
        assert batch == scalar_oracle(instances, rack_of, nvlink, speed_of)
        for (tuples, key), got in zip(instances, batch):
            assert got == _carve_reference(
                tuples, dict(key), rack_of, nvlink, speed_of
            )


def test_carve_batch_matches_scalar_mixed_families():
    rng = random.Random(424242)
    for _ in range(40):
        rack_of, _speed_of, nvlink = random_world(rng)
        family_fn = random_family_fn(rng, list(rack_of))
        instances = [
            random_instance(rng, rack_of)
            for _ in range(rng.randint(_BATCH_MIN, _BATCH_MIN + 20))
        ]
        batch = _carve_batch(instances, rack_of, nvlink, None, family_fn)
        assert batch == scalar_oracle(instances, rack_of, nvlink, None, family_fn)


def test_carve_batch_all_degenerate_rows():
    """A batch of only empty pools / job-less rows takes the width-0 path."""
    rack_of = {0: 0, 1: 0}
    jobless = ((), ((0, 2), (1, 1)))
    poolless, _ = random_instance(random.Random(5), rack_of)
    instances = [jobless, (poolless, ()), ((), ())] * _BATCH_MIN
    batch = _carve_batch(instances, rack_of, 2, None)
    assert batch == scalar_oracle(instances, rack_of, 2, None)


def test_carve_batch_below_min_uses_scalar_path():
    rng = random.Random(9)
    rack_of, speed_of, nvlink = random_world(rng)
    instances = [random_instance(rng, rack_of) for _ in range(_BATCH_MIN - 1)]
    batch = _carve_batch(instances, rack_of, nvlink, speed_of)
    assert batch == scalar_oracle(instances, rack_of, nvlink, speed_of)


def test_value_from_rho_clamps_degenerate_rho():
    # rho <= 0 (estimated shared finish not ahead of now) must clamp to
    # the finite ceiling, never inf — the solver's log-gain keys and
    # nash_log_welfare stay totally ordered.
    assert value_from_rho(0.0) == VALUE_CEILING
    assert value_from_rho(-3.5) == VALUE_CEILING
    assert value_from_rho(1e-15) == VALUE_CEILING
    assert value_from_rho(float("inf")) == 0.0
    assert value_from_rho(2.0) == 0.5


# ----------------------------------------------------------------------
# numpy-free degradation
# ----------------------------------------------------------------------
def test_no_numpy_fallback_warns_once_and_matches(monkeypatch):
    rng = random.Random(31337)
    rack_of, speed_of, nvlink = random_world(rng)
    instances = [random_instance(rng, rack_of) for _ in range(_BATCH_MIN + 4)]
    expected = scalar_oracle(instances, rack_of, nvlink, speed_of)
    monkeypatch.setattr(fairness, "_np", None)
    monkeypatch.setattr(fairness, "_batch_fallback_warned", False)
    with pytest.warns(RuntimeWarning, match="numpy unavailable"):
        got = _carve_batch(instances, rack_of, nvlink, speed_of)
    assert got == expected
    # The warning is one-time: a second batch stays silent.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        got_again = _carve_batch(instances, rack_of, nvlink, speed_of)
    assert got_again == expected


# ----------------------------------------------------------------------
# batch_prime cache equivalence
# ----------------------------------------------------------------------
def prime_cluster():
    return build_cluster(
        ClusterSpec(
            machine_specs=(MachineSpec(count=6, gpus_per_machine=4),),
            num_racks=2,
            name="prime",
        )
    )


def prime_keys(rng: random.Random, machines, count):
    keys = []
    for _ in range(count):
        chosen = rng.sample(machines, rng.randint(1, min(3, len(machines))))
        keys.append(tuple(sorted((m, rng.randint(1, 4)) for m in chosen)))
    return keys


def test_batch_prime_fills_exact_cache_slots():
    rng = random.Random(77)
    cluster = prime_cluster()
    machines = [m.machine_id for m in cluster.machines]
    estimator = FairnessEstimator(cluster)
    apps = [make_app(f"a{i}", num_jobs=2 + i % 3) for i in range(4)]
    states = [AppValuationState(app, estimator) for app in apps]
    for state in states:
        state.refresh()
    pairs = [
        (state, key)
        for state in states
        for key in prime_keys(rng, machines, 4)
    ]
    # Duplicates inside one batch count as hits, not extra carves.
    pairs.append(pairs[0])
    before = estimator.carve_count
    carves, hits = estimator.batch_prime(pairs)
    assert carves == len(pairs) - 1
    assert hits == 1
    assert estimator.carve_count == before + carves
    # Every primed slot holds exactly the float the scalar kernel
    # produces for the same snapshot and bundle.
    for state, key in pairs:
        assert state._rate_cache[key] == estimator.aggregate_rate_from_snapshot(
            state.snapshot, dict(key)
        )
    # Re-priming the same bundles is all hits, zero carves.
    carves_again, hits_again = estimator.batch_prime(pairs)
    assert carves_again == 0
    assert hits_again == len(pairs)
    # Scalar probes after the prime are pure cache hits.
    before = estimator.carve_count
    for state, key in pairs:
        state.rho_at(10.0, key)
    assert estimator.carve_count == before


# ----------------------------------------------------------------------
# Warm-started heap vs cold solve
# ----------------------------------------------------------------------
def run_auction(profile_name: str, warm: bool):
    from repro.perf.bench import AUCTION_PROFILES, build_auction_instance

    profile = AUCTION_PROFILES[profile_name]
    pool, bids = build_auction_instance(profile)
    auction = PartialAllocationAuction(chunk_size=profile.chunk_size)
    if warm:
        auction.warm_enabled = True
        auction.estimator = next(iter(bids.values())).state.estimator
    outcome = auction.run(pool, bids, apply_hidden_payments=True)
    return outcome, auction.last_stats, bids


@pytest.mark.parametrize("profile_name", ["small", "medium", "hetero-medium"])
def test_warm_started_auction_matches_cold(profile_name):
    from repro.perf.bench import _outcome_digest

    cold_outcome, cold_stats, _cold_bids = run_auction(profile_name, warm=False)
    warm_outcome, warm_stats, warm_bids = run_auction(profile_name, warm=True)
    # Byte-equal winners, payments, leftovers and welfare.
    assert _outcome_digest(warm_outcome) == _outcome_digest(cold_outcome)
    # The cold path never touches the warm counters; the warm path's
    # payment re-solves rebuild their heaps from the pair memo.
    assert cold_stats.warm_hits == 0 and cold_stats.warm_misses == 0
    assert warm_stats.warm_hits > 0
    # Probe accounting stays honest under warmth: every carve the bids
    # observed is a real kernel cache miss of the shared estimator.
    estimator = next(iter(warm_bids.values())).state.estimator
    assert sum(b.rho_probes for b in warm_bids.values()) <= estimator.carve_count


def test_full_sim_warm_heap_matches_cold_rebuild():
    """Whole trace replay: warm + incremental vs cold, byte-identical."""
    from repro.perf.bench import SimBenchProfile, run_sim_once

    # Contended enough that auctions see several bidders — the hidden-
    # payment re-solves then rebuild their heaps from the pair memo,
    # which is what populates the warm-hit counters.
    profile = SimBenchProfile(
        name="t-batch-xs",
        gpus=16,
        contention=4.0,
        num_apps=10,
        duration_scale=0.15,
        interarrival_minutes=3.0,
        downsample=64,
        jobs_per_app_median=3.0,
        jobs_per_app_max=6,
    )
    inc = run_sim_once(profile, incremental=True)
    cold = run_sim_once(profile, incremental=False)
    assert inc["digest"] == cold["digest"]
    # The incremental run records its warm-start accounting per round
    # and in the aggregated totals.
    stats = inc["result"].round_stats
    assert stats["rounds"] > 0
    assert all(
        "heap_warm_hits" in row and "heap_warm_misses" in row
        for row in stats["per_round"]
    )
    assert stats["totals"]["heap_warm_hits"] > 0
    # Cold rounds never report warm work.
    cold_totals = cold["result"].round_stats["totals"]
    assert cold_totals["heap_warm_hits"] == 0
    assert cold_totals["heap_warm_misses"] == 0
