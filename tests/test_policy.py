"""Tests for the exact offline max-min fairness solver (Section 4)."""

import math

import pytest

from repro.core.auction import PartialAllocationAuction
from repro.core.bids import build_bid
from repro.core.fairness import FairnessEstimator
from repro.core.policy import solve_offline_max_min

from helpers import make_app


@pytest.fixture
def estimator(small_cluster):
    return FairnessEstimator(small_cluster)


def test_single_app_gets_everything_useful(estimator):
    app = make_app("solo", num_jobs=1, max_parallelism=4)
    solution = solve_offline_max_min([app], {0: 4}, estimator, now=10.0)
    assert sum(solution.allocation["solo"].values()) == 4
    assert not math.isinf(solution.max_rho)


def test_symmetric_apps_split_evenly(estimator):
    apps = [make_app(f"a{i}", num_jobs=1, max_parallelism=2) for i in range(2)]
    solution = solve_offline_max_min(apps, {0: 2, 2: 2}, estimator, now=10.0)
    sizes = sorted(sum(b.values()) for b in solution.allocation.values())
    assert sizes == [2, 2]
    rhos = list(solution.rhos.values())
    assert rhos[0] == pytest.approx(rhos[1], rel=1e-9)


def test_minimises_the_maximum(estimator):
    # A long-waiting app and a fresh one: the solver must not leave the
    # waiter starved even if serving the fresh app alone yields a
    # better product.
    waiter = make_app("waiter", num_jobs=1, arrival=0.0, max_parallelism=2)
    fresh = make_app("fresh", num_jobs=1, arrival=99.0, max_parallelism=2)
    solution = solve_offline_max_min(
        [waiter, fresh], {0: 2}, estimator, now=100.0
    )
    assert sum(solution.allocation.get("waiter", {}).values()) >= 1
    assert not math.isinf(solution.max_rho)


def test_online_auction_close_to_offline_optimum(estimator):
    """The PA auction's max rho stays near the exact offline solution."""
    apps = [
        make_app("x", num_jobs=1, arrival=0.0, max_parallelism=2),
        make_app("y", num_jobs=2, arrival=20.0, max_parallelism=2),
    ]
    pool = {0: 2, 2: 2}
    offline = solve_offline_max_min(apps, pool, estimator, now=50.0)
    bids = {
        app.app_id: build_bid(app, estimator, now=50.0, offered_counts=pool)
        for app in apps
    }
    outcome = PartialAllocationAuction().run(pool, bids, apply_hidden_payments=False)
    online_rhos = []
    for app in apps:
        bundle = outcome.winners.get(app.app_id, {})
        online_rhos.append(estimator.rho(app, 50.0, bundle))
    assert max(online_rhos) <= offline.max_rho * 1.3


def test_eps_max_property(estimator):
    apps = [make_app(f"a{i}", num_jobs=1, max_parallelism=2) for i in range(2)]
    solution = solve_offline_max_min(apps, {0: 4}, estimator, now=10.0)
    assert solution.eps_max == pytest.approx(solution.max_rho - 2)


def test_state_explosion_guard(estimator):
    apps = [make_app(f"a{i}", num_jobs=1) for i in range(4)]
    with pytest.raises(ValueError):
        solve_offline_max_min(
            apps, {m: 4 for m in range(4)}, estimator, max_states=50
        )


def test_no_apps_rejected(estimator):
    with pytest.raises(ValueError):
        solve_offline_max_min([], {0: 2}, estimator)
