"""The incremental valuation pipeline: carve oracle + cross-round caches.

Two layers of guarantees:

* the flat-array :func:`~repro.core.fairness._carve_fast` replays the
  pre-refactor heap-backed :func:`~repro.core.fairness._carve_reference`
  byte-for-byte on randomised instances (homogeneous and speed-weighted);
* :class:`~repro.core.fairness.AppValuationState` honours the
  dirty-tracking contract — verbatim reuse only while the app is clean
  and unallocated, rate-cache retention across drains that preserve the
  carve order, invalidation on every discrete state change — and always
  returns exactly what a cold rebuild returns.
"""

from __future__ import annotations

import math
import random

from repro.cluster.allocation import Allocation
from repro.cluster.topology import ClusterSpec, MachineSpec, build_cluster
from repro.core.fairness import (
    AppValuationState,
    FairnessEstimator,
    _carve_fast,
    _carve_reference,
)
from repro.workload.job import Job, JobSpec

from helpers import make_app, make_job

MODELS = ("resnet50", "vgg16", "transformer", "inceptionv3", "lstm-lm")


def small_cluster(machines=3, gpus=4, racks=1):
    return build_cluster(
        ClusterSpec(
            machine_specs=(MachineSpec(count=machines, gpus_per_machine=gpus),),
            num_racks=racks,
            name="inc",
        )
    )


# ----------------------------------------------------------------------
# Carve oracle
# ----------------------------------------------------------------------
def random_carve_instance(rng: random.Random):
    num_machines = rng.randint(1, 8)
    rack_of = {m: rng.randint(0, 2) for m in range(num_machines)}
    counts = {m: rng.randint(0, 6) for m in range(num_machines)}
    speed_of = None
    if rng.random() < 0.5:
        speed_of = {m: rng.choice((0.33, 0.66, 1.0)) for m in range(num_machines)}
    jobs = [
        Job(
            spec=JobSpec(
                job_id=f"j{i}",
                model=rng.choice(MODELS),
                serial_work=rng.uniform(1.0, 300.0),
                max_parallelism=rng.randint(1, 6),
            )
        )
        for i in range(rng.randint(1, 6))
    ]
    tuples = [
        (
            job.remaining_work,
            job.max_parallelism,
            job.model_profile.sensitivity,
            job.job_id,
            job.model_profile.family,
        )
        for job in jobs
    ]
    tuples.sort(key=lambda item: (item[0], item[3]))
    nvlink = rng.choice((1, 2, 4))
    return tuples, counts, rack_of, nvlink, speed_of


def test_carve_fast_matches_reference_on_random_instances():
    rng = random.Random(1234)
    for _ in range(400):
        tuples, counts, rack_of, nvlink, speed_of = random_carve_instance(rng)
        fast = _carve_fast(tuples, counts, rack_of, nvlink, speed_of)
        reference = _carve_reference(tuples, counts, rack_of, nvlink, speed_of)
        assert fast == reference


def random_family_speeds(rng: random.Random, machines):
    """A per-family machine-speed index over random families."""
    from repro.workload.models import MODEL_FAMILIES

    table = {
        family: {m: rng.choice((0.2, 0.5, 0.8, 1.0)) for m in machines}
        for family in MODEL_FAMILIES
    }
    return lambda family: table[family]


def test_family_carve_matches_reference_on_random_instances():
    """The per-family kernel against the independent dict-scan oracle."""
    rng = random.Random(4321)
    for _ in range(400):
        tuples, counts, rack_of, nvlink, _speed_of = random_carve_instance(rng)
        family_fn = random_family_speeds(rng, list(rack_of))
        fast = _carve_fast(tuples, counts, rack_of, nvlink, None, family_fn)
        reference = _carve_reference(tuples, counts, rack_of, nvlink, None, family_fn)
        assert fast == reference


def test_degenerate_family_carve_equals_scalar_carve():
    """Family speeds that ignore the family reproduce the scalar kernel."""
    rng = random.Random(99)
    for _ in range(200):
        tuples, counts, rack_of, nvlink, speed_of = random_carve_instance(rng)
        if speed_of is None:
            speed_of = {m: 1.0 for m in rack_of}
        family_fn = lambda family, table=speed_of: table  # noqa: E731
        scalar = _carve_fast(tuples, counts, rack_of, nvlink, speed_of)
        family = _carve_fast(tuples, counts, rack_of, nvlink, None, family_fn)
        assert scalar == family


def test_carve_fast_matches_reference_multi_rack_spill():
    # Deterministic case exercising the racks-already-used preference.
    rack_of = {0: 0, 1: 0, 2: 1, 3: 1}
    counts = {0: 2, 1: 1, 2: 3, 3: 1}
    jobs = [make_job("a", max_parallelism=5), make_job("b", max_parallelism=4)]
    tuples = [
        (
            j.remaining_work,
            j.max_parallelism,
            j.model_profile.sensitivity,
            j.job_id,
            j.model_profile.family,
        )
        for j in jobs
    ]
    fast = _carve_fast(tuples, counts, rack_of, 2)
    reference = _carve_reference(tuples, counts, rack_of, 2)
    assert fast == reference


# ----------------------------------------------------------------------
# AppValuationState
# ----------------------------------------------------------------------
def test_state_reuses_snapshot_while_clean_and_unallocated():
    cluster = small_cluster()
    estimator = FairnessEstimator(cluster)
    app = make_app("a0", num_jobs=2)
    state = AppValuationState(app, estimator, reuse=True)
    first = state.refresh()
    assert state.rebuilds == 1
    assert state.refresh() is first  # verbatim reuse
    assert state.rebuilds == 1


def test_state_rebuilds_on_epoch_bump():
    cluster = small_cluster()
    estimator = FairnessEstimator(cluster)
    app = make_app("a0", num_jobs=2)
    state = AppValuationState(app, estimator, reuse=True)
    state.refresh()
    app.invalidate()
    snap = state.refresh()
    assert state.rebuilds == 2
    assert state.refresh() is snap  # clean again afterwards


def test_state_drift_path_skips_rebuild_while_holding_gpus():
    # A held app's remaining work drains between rounds without an epoch
    # bump (advance_to never calls on_mutate).  As long as the
    # shortest-remaining-first job order is intact, the drift fast path
    # re-sums the total instead of rebuilding the snapshot.
    cluster = small_cluster()
    estimator = FairnessEstimator(cluster)
    app = make_app("a0", num_jobs=1)
    job = app.jobs[0]
    job.set_allocation(0.0, Allocation(cluster.machines[0].gpus[:2]))
    state = AppValuationState(app, estimator, reuse=True)
    first = state.refresh()
    assert state.refresh() is first  # nothing drained: verbatim reuse
    assert state.rebuilds == 1
    job.remaining_work -= 7.0
    drifted = state.refresh()
    assert drifted is not first  # total re-summed into a fresh snapshot
    assert drifted.total_remaining == job.remaining_work
    assert state.rebuilds == 1  # ...but no full rebuild


def test_state_matches_cold_rebuild_values_everywhere():
    cluster = small_cluster(machines=4, racks=2)
    estimator = FairnessEstimator(cluster)
    app = make_app("a0", num_jobs=3, max_parallelism=3)
    app.jobs[0].set_allocation(0.0, Allocation(cluster.machines[0].gpus[:2]))
    warm = AppValuationState(app, estimator, reuse=True)
    cold = AppValuationState(app, estimator, reuse=False)
    rng = random.Random(7)
    for round_index in range(30):
        now = 5.0 * round_index
        warm.refresh()
        cold.refresh()
        assert warm.current_rho(now) == cold.current_rho(now)
        bundle = tuple(
            sorted(
                (m, rng.randint(1, 4))
                for m in rng.sample(range(4), rng.randint(1, 3))
            )
        )
        assert warm.rho_at(now, bundle) == cold.rho_at(now, bundle)
        if round_index % 7 == 3:
            # Drain some work (simulates progress between rounds).
            app.jobs[0].remaining_work = max(0.5, app.jobs[0].remaining_work - 11.0)
        if round_index % 11 == 5:
            app.invalidate()


def test_state_rate_cache_survives_order_preserving_drain():
    cluster = small_cluster()
    estimator = FairnessEstimator(cluster)
    app = make_app("a0", num_jobs=2)
    app.jobs[0].set_allocation(0.0, Allocation(cluster.machines[0].gpus[:1]))
    state = AppValuationState(app, estimator, reuse=True)
    state.refresh()
    bundle = ((1, 2),)
    state.rho_at(10.0, bundle)
    carves = estimator.carve_count
    # Same order, less work: the cached aggregate rate must be reused.
    app.jobs[0].remaining_work -= 1.0
    state.refresh()
    state.rho_at(20.0, bundle)
    assert estimator.carve_count == carves


def test_state_rate_cache_invalidated_when_job_order_flips():
    cluster = small_cluster()
    estimator = FairnessEstimator(cluster)
    app = make_app("a0", num_jobs=2)
    jobs = sorted(app.jobs, key=lambda j: j.job_id)
    jobs[0].set_allocation(0.0, Allocation(cluster.machines[0].gpus[:1]))
    state = AppValuationState(app, estimator, reuse=True)
    state.refresh()
    bundle = ((1, 2),)
    state.rho_at(10.0, bundle)
    carves = estimator.carve_count
    # Flip the shortest-remaining-first order: j1 drops below j0.
    jobs[1].remaining_work = jobs[0].remaining_work - 50.0
    state.refresh()
    state.rho_at(20.0, bundle)
    assert estimator.carve_count == carves + 1  # cache was dropped


def test_starved_app_pays_one_carve_across_rounds():
    cluster = small_cluster()
    estimator = FairnessEstimator(cluster)
    app = make_app("a0", num_jobs=2)  # holds nothing
    state = AppValuationState(app, estimator, reuse=True)
    state.refresh()
    bundle = ((0, 2), (1, 1))
    state.rho_at(10.0, bundle)
    carves = estimator.carve_count
    for now in (20.0, 30.0, 40.0):
        state.refresh()
        rho = state.rho_at(now, bundle)
        assert not math.isinf(rho)
    assert estimator.carve_count == carves


def test_cold_state_never_reuses():
    cluster = small_cluster()
    estimator = FairnessEstimator(cluster)
    app = make_app("a0", num_jobs=2)
    state = AppValuationState(app, estimator, reuse=False)
    state.refresh()
    state.refresh()
    assert state.rebuilds == 2


# ----------------------------------------------------------------------
# FIRST_WINNER rate-signature cache (per-job pair kernels)
# ----------------------------------------------------------------------
def first_winner_app(serial_works=(40.0, 120.0)):
    from repro.workload.app import App, CompletionSemantics

    jobs = [
        make_job(f"fw-j{i}", serial_work=work, max_parallelism=3)
        for i, work in enumerate(serial_works)
    ]
    return App(
        app_id="fw0",
        arrival_time=0.0,
        jobs=jobs,
        semantics=CompletionSemantics.FIRST_WINNER,
    )


def test_first_winner_pair_cache_survives_order_preserving_drain():
    from repro.workload.app import CompletionSemantics

    cluster = small_cluster()
    estimator = FairnessEstimator(
        cluster, semantics=CompletionSemantics.FIRST_WINNER
    )
    app = first_winner_app()
    app.jobs[0].set_allocation(0.0, Allocation(cluster.machines[0].gpus[:1]))
    state = AppValuationState(app, estimator, reuse=True)
    state.refresh()
    bundle = ((1, 2),)
    first = state.rho_at(10.0, bundle)
    carves = estimator.carve_count
    # Same order, less work: the cached (job_id, rate) pairs are reused
    # and the delta is re-derived from the *current* remaining work.
    app.jobs[0].remaining_work -= 5.0
    state.refresh()
    second = state.rho_at(20.0, bundle)
    assert estimator.carve_count == carves
    assert second != first  # the delta moved with the drain


def test_first_winner_pair_cache_invalidated_on_reorder():
    from repro.workload.app import CompletionSemantics

    cluster = small_cluster()
    estimator = FairnessEstimator(
        cluster, semantics=CompletionSemantics.FIRST_WINNER
    )
    app = first_winner_app()
    app.jobs[0].set_allocation(0.0, Allocation(cluster.machines[0].gpus[:1]))
    state = AppValuationState(app, estimator, reuse=True)
    state.refresh()
    bundle = ((1, 2),)
    state.rho_at(10.0, bundle)
    carves = estimator.carve_count
    # Flip shortest-remaining-first: the longer job drops below the
    # shorter one, so the cached pairs no longer describe the carve.
    app.jobs[1].remaining_work = app.jobs[0].remaining_work - 30.0
    state.refresh()
    state.rho_at(20.0, bundle)
    assert estimator.carve_count == carves + 1


def test_first_winner_state_matches_cold_everywhere():
    from repro.workload.app import CompletionSemantics

    cluster = small_cluster(machines=4, racks=2)
    estimator = FairnessEstimator(
        cluster, semantics=CompletionSemantics.FIRST_WINNER
    )
    app = first_winner_app(serial_works=(60.0, 90.0, 150.0))
    app.jobs[0].set_allocation(0.0, Allocation(cluster.machines[0].gpus[:2]))
    warm = AppValuationState(app, estimator, reuse=True)
    cold = AppValuationState(app, estimator, reuse=False)
    rng = random.Random(13)
    for round_index in range(30):
        now = 5.0 * round_index
        warm.refresh()
        cold.refresh()
        assert warm.current_rho(now) == cold.current_rho(now)
        bundle = tuple(
            sorted(
                (m, rng.randint(1, 4))
                for m in rng.sample(range(4), rng.randint(1, 3))
            )
        )
        assert warm.rho_at(now, bundle) == cold.rho_at(now, bundle)
        if round_index % 5 == 2:
            app.jobs[0].remaining_work = max(
                0.5, app.jobs[0].remaining_work - 9.0
            )
        if round_index % 11 == 6:
            app.invalidate()
