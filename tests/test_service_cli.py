"""Tests for the service CLI verbs and the HTTP API layer."""

import json
import threading

import pytest

from repro.cli import build_parser, main
from repro.service.api import (
    ENDPOINT_FILE,
    ServiceClient,
    ServiceServer,
    serve_forever,
)
from repro.service.chaos import FakeClock, ScriptedExecutor
from repro.service.daemon import ControlPlane
from repro.service.errors import (
    AdmissionError,
    ServiceError,
    ServiceUnavailable,
    UnknownJobError,
)
from repro.service.admission import AdmissionController, TenantPolicy
from repro.service.retry import RetryPolicy
from repro.service.store import DurableStore


# ----------------------------------------------------------------------
# Parser wiring
# ----------------------------------------------------------------------
def test_serve_parser_defaults():
    args = build_parser().parse_args(["serve", "--dir", "/tmp/x"])
    assert args.dir == "/tmp/x"
    assert args.port == 0
    assert args.host == "127.0.0.1"
    assert args.max_seconds is None
    assert args.idle_exit is None
    assert not args.fsync


def test_submit_parser_spec_and_knobs():
    args = build_parser().parse_args([
        "submit", "--dir", "d", "--kind", "sim", "--spec", '{"apps": 4}',
        "--tenant", "acme", "--gpus", "2", "--priority", "5",
    ])
    assert args.kind == "sim"
    assert json.loads(args.spec) == {"apps": 4}
    assert args.tenant == "acme"
    assert args.gpus == 2
    assert args.priority == 5


def test_status_and_cancel_parsers():
    args = build_parser().parse_args(["status", "--dir", "d"])
    assert args.job is None
    args = build_parser().parse_args(["status", "--dir", "d", "job-1"])
    assert args.job == "job-1"
    args = build_parser().parse_args(["cancel", "--dir", "d", "job-1"])
    assert args.job == "job-1"


def test_sweep_retries_flag():
    args = build_parser().parse_args(["sweep", "--retries", "2"])
    assert args.retries == 2


def test_submit_rejects_bad_spec(tmp_path, capsys):
    code = main(["submit", "--dir", str(tmp_path), "--spec", "not json"])
    assert code == 2
    assert "bad --spec" in capsys.readouterr().err


def test_client_without_endpoint_file(tmp_path):
    with pytest.raises(ServiceUnavailable) as excinfo:
        ServiceClient.from_dir(tmp_path)
    assert excinfo.value.reason == "no_endpoint"


# ----------------------------------------------------------------------
# HTTP round trip (in-process server, manual ticks)
# ----------------------------------------------------------------------
@pytest.fixture()
def service(tmp_path):
    admission = AdmissionController()
    admission.set_policy(TenantPolicy(tenant="limited", max_queued_jobs=1))
    plane = ControlPlane(
        DurableStore(tmp_path / "store"),
        executor=ScriptedExecutor(),
        admission=admission,
        retry=RetryPolicy(base_delay=0.5, jitter=0.0),
        clock=FakeClock(),
    )
    server = ServiceServer(plane)
    server.write_endpoint_file(tmp_path)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient.from_dir(tmp_path)
    try:
        yield plane, server, client
    finally:
        server.shutdown()
        plane.close()


def test_http_submit_status_cancel_round_trip(service, tmp_path):
    plane, server, client = service
    job_id = client.submit({"kind": "noop"}, tenant="acme", gpus=2)
    assert client.status(job_id)["state"] == "queued"
    with server.lock:
        plane.tick()
    assert client.status(job_id)["state"] == "finished"
    # Cancel is idempotent on the terminal job.
    assert client.cancel(job_id) == "finished"
    # Health and filtered listings.
    health = client.health()
    assert health["epoch"] == 1
    assert health["jobs"] == {"finished": 1}
    assert [j["job_id"] for j in client.jobs(tenant="acme")] == [job_id]
    assert client.jobs(state="queued") == []


def test_http_error_mapping(service):
    plane, server, client = service
    with pytest.raises(UnknownJobError):
        client.status("nope")
    with pytest.raises(UnknownJobError):
        client.cancel("nope")
    # Admission rejection surfaces as AdmissionError through HTTP 429.
    client.submit({}, tenant="limited")
    with pytest.raises(AdmissionError) as excinfo:
        client.submit({}, tenant="limited")
    assert excinfo.value.reason == "max_queued_jobs"
    # Duplicate ids map through 409.
    job_id = client.submit({}, job_id="dup")
    assert job_id == "dup"
    with pytest.raises(ServiceError) as excinfo:
        client.submit({}, job_id="dup")
    assert excinfo.value.reason == "duplicate_job"


def test_http_unknown_paths(service):
    plane, server, client = service
    with pytest.raises(ServiceError):
        client._request("GET", "/not-a-path")
    with pytest.raises(ServiceError):
        client._request("POST", "/also-not-a-path", {})


def test_serve_forever_idle_exit(tmp_path):
    """The daemon loop drains work and exits once idle."""
    plane = ControlPlane(
        DurableStore(tmp_path),
        executor=ScriptedExecutor(),
        retry=RetryPolicy(base_delay=0.01, jitter=0.0),
    )
    server = ServiceServer(plane)
    # The endpoint file lives in the store dir (as `repro serve` does),
    # which is where serve_forever removes it from on exit.
    endpoint = server.write_endpoint_file(tmp_path)
    plane.submit({}, job_id="j")
    serve_forever(
        plane, server, poll_interval=0.01, max_seconds=10.0, idle_exit=0.05
    )
    assert plane.jobs["j"].state.value == "finished"
    assert not endpoint.exists()  # cleaned up on the way out


def test_endpoint_file_contents(tmp_path):
    plane = ControlPlane(
        DurableStore(tmp_path / "store"), executor=ScriptedExecutor()
    )
    server = ServiceServer(plane)
    path = server.write_endpoint_file(tmp_path)
    assert path.name == ENDPOINT_FILE
    meta = json.loads(path.read_text(encoding="utf-8"))
    assert meta["host"] == "127.0.0.1"
    assert meta["port"] == server.endpoint[1]
    assert meta["port"] > 0
    server.server_close()
    plane.close()
