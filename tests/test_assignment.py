"""Unit tests for shared assignment helpers."""

import pytest

from repro.core.assignment import (
    concretise,
    greedy_utility_assign,
    group_pool,
    pool_counts,
    take_packed,
)


def test_group_pool_sorted_by_slot(small_cluster):
    grouped = group_pool(list(reversed(small_cluster.gpus)))
    assert sorted(grouped) == [0, 1, 2, 3]
    slots = [gpu.slot_id for gpu in grouped[0]]
    assert slots == sorted(slots)


def test_pool_counts(small_cluster):
    counts = pool_counts(small_cluster.gpus)
    assert counts == {0: 4, 1: 4, 2: 2, 3: 2}


def test_concretise_grants_match_counts(small_cluster):
    grouped = group_pool(small_cluster.gpus)
    grants = concretise({"a": {0: 2}, "b": {0: 2, 2: 1}}, grouped)
    assert len(grants["a"]) == 2
    assert len(grants["b"]) == 3
    ids_a = {gpu.gpu_id for gpu in grants["a"]}
    ids_b = {gpu.gpu_id for gpu in grants["b"]}
    assert not ids_a & ids_b


def test_concretise_largest_bundle_gets_contiguous_slots(small_cluster):
    grouped = group_pool(small_cluster.gpus)
    grants = concretise({"big": {0: 2}, "small": {0: 1}}, grouped)
    big_slots = {gpu.slot_id for gpu in grants["big"]}
    assert len(big_slots) == 1  # an intact NVLink pair


def test_concretise_overdraw_raises(small_cluster):
    grouped = group_pool(small_cluster.gpus)
    with pytest.raises(RuntimeError):
        concretise({"a": {0: 5}}, grouped)


def test_concretise_negative_raises(small_cluster):
    grouped = group_pool(small_cluster.gpus)
    with pytest.raises(ValueError):
        concretise({"a": {0: -1}}, grouped)


def test_greedy_utility_respects_caps():
    pool = {0: 4}
    utilities = {"a": lambda b: float(sum(b.values()))}
    result = greedy_utility_assign(pool, utilities, caps={"a": 2})
    assert sum(result["a"].values()) == 2


def test_greedy_utility_prefers_higher_marginal():
    pool = {0: 2}
    utilities = {
        "low": lambda b: 1.0 * sum(b.values()),
        "high": lambda b: 5.0 * sum(b.values()),
    }
    result = greedy_utility_assign(pool, utilities, caps={"low": 2, "high": 2})
    assert sum(result.get("high", {}).values()) == 2
    assert "low" not in result


def test_greedy_utility_stops_at_zero_marginal():
    pool = {0: 4}
    utilities = {"a": lambda b: min(2.0, float(sum(b.values())))}
    result = greedy_utility_assign(pool, utilities, caps={"a": 4})
    assert sum(result["a"].values()) == 2  # marginal drops to zero after 2


def test_greedy_utility_chunk_validation():
    with pytest.raises(ValueError):
        greedy_utility_assign({0: 1}, {}, {}, chunk_size=0)


def test_take_packed_prefers_preferred_machines(small_cluster):
    pool = group_pool(small_cluster.gpus)
    taken = take_packed(pool, 2, preferred_machines=[2])
    assert all(gpu.machine_id == 2 for gpu in taken)


def test_take_packed_drains_biggest_first(small_cluster):
    pool = group_pool(small_cluster.gpus)
    taken = take_packed(pool, 4)
    assert {gpu.machine_id for gpu in taken} == {0}


def test_take_packed_mutates_pool(small_cluster):
    pool = group_pool(small_cluster.gpus)
    take_packed(pool, 4)
    assert 0 not in pool
    remaining = sum(len(gpus) for gpus in pool.values())
    assert remaining == small_cluster.num_gpus - 4


def test_take_packed_partial_when_pool_small(small_cluster):
    pool = group_pool(small_cluster.gpus[:3])
    taken = take_packed(pool, 10)
    assert len(taken) == 3
    assert not pool
