"""Edge-case and failure-injection tests for the simulator."""

import pytest

from repro.cluster.allocation import Allocation
from repro.cluster.topology import ClusterSpec, MachineSpec, build_cluster
from repro.schedulers.base import InterAppScheduler
from repro.schedulers.registry import make_scheduler
from repro.simulation.engine import SimulationError
from repro.simulation.simulator import ClusterSimulator, SimulationConfig
from repro.workload.trace import Trace, TraceApp, TraceJob

from helpers import make_app


def pair_cluster():
    return build_cluster(
        ClusterSpec(
            machine_specs=(MachineSpec(count=2, gpus_per_machine=4),),
            num_racks=2,
            name="pair",
        )
    )


def trace_of(*apps):
    return Trace(apps=tuple(apps))


def app_spec(app_id, arrival, minutes, parallelism=4, model="resnet50", jobs=1):
    return TraceApp(
        app_id,
        arrival,
        tuple(
            TraceJob(
                job_id=f"{app_id}-j{i}",
                model=model,
                duration_minutes=minutes,
                max_parallelism=parallelism,
            )
            for i in range(jobs)
        ),
    )


class _RogueScheduler(InterAppScheduler):
    """Deliberately misbehaving scheduler used to test validation."""

    name = "rogue"

    def __init__(self, mode: str) -> None:
        super().__init__()
        self.mode = mode

    def assign(self, now, pool):
        apps = list(self.active_apps())
        if not apps or not pool:
            return {}
        if self.mode == "outside-pool":
            all_gpus = list(self.sim.cluster.gpus)
            outside = [g for g in all_gpus if g.gpu_id not in {p.gpu_id for p in pool}]
            if outside:
                return {apps[0]: [outside[0]]}
            # First round: lease part of the pool so a later round sees
            # GPUs outside its (smaller) pool and tries to steal one.
            return {apps[0]: list(pool)[:4]}
        if self.mode == "double-assign":
            if len(apps) >= 2:
                return {apps[0]: [pool[0]], apps[1]: [pool[0]]}
            return {}
        if self.mode == "unknown-app":
            return {"ghost-app": [pool[0]]}
        raise AssertionError(f"unknown mode {self.mode}")


@pytest.mark.parametrize("mode", ["double-assign", "unknown-app"])
def test_rogue_scheduler_rejected(mode):
    trace = trace_of(app_spec("a", 0.0, 30.0), app_spec("b", 0.0, 30.0))
    sim = ClusterSimulator(
        cluster=pair_cluster(),
        workload=trace,
        scheduler=_RogueScheduler(mode),
        config=SimulationConfig(),
    )
    with pytest.raises(SimulationError):
        sim.run()


def test_rogue_outside_pool_rejected():
    # Outside-pool grabbing only fails once some GPUs are leased (the
    # first round offers the whole cluster), so use two rounds.
    trace = trace_of(app_spec("a", 0.0, 60.0), app_spec("b", 5.0, 60.0))
    sim = ClusterSimulator(
        cluster=pair_cluster(),
        workload=trace,
        scheduler=_RogueScheduler("outside-pool"),
        config=SimulationConfig(lease_minutes=100.0),
    )
    with pytest.raises(SimulationError):
        sim.run()


def test_simultaneous_arrivals_share_cluster():
    trace = trace_of(
        app_spec("a", 0.0, 30.0, parallelism=4),
        app_spec("b", 0.0, 30.0, parallelism=4),
    )
    result = ClusterSimulator(
        cluster=pair_cluster(),
        workload=trace,
        scheduler=make_scheduler("themis"),
        config=SimulationConfig(restart_overhead_minutes=0.0),
    ).run()
    assert result.completed
    stats = result.stats_by_app()
    # 8 GPUs, 2 apps wanting 4 each: both run immediately at full speed.
    for app_id in ("a", "b"):
        assert stats[app_id].completion_time == pytest.approx(30.0 / 0.98, rel=1e-6)


def test_preemption_transfers_gpus_between_apps():
    """A starved newcomer takes GPUs from the incumbent at lease expiry."""
    trace = trace_of(
        app_spec("incumbent", 0.0, 200.0, parallelism=4, jobs=2),  # wants all 8
        app_spec("newcomer", 5.0, 30.0, parallelism=4),
    )
    result = ClusterSimulator(
        cluster=pair_cluster(),
        workload=trace,
        scheduler=make_scheduler("themis"),
        config=SimulationConfig(lease_minutes=10.0),
    ).run()
    assert result.completed
    stats = result.stats_by_app()
    # The newcomer did not wait for the incumbent's 200-minute jobs.
    assert stats["newcomer"].finished_at < stats["incumbent"].finished_at
    # And the incumbent still finished (no starvation).
    assert stats["incumbent"].rho < 10.0


def test_distribute_declines_harmful_spread():
    """A VGG app refuses a cross-rack straggler GPU that would slow it."""
    cluster = pair_cluster()
    app = make_app("vgg", num_jobs=1, model="vgg16", max_parallelism=4)
    # Job holds an NVLink pair on machine 0 (rate 2.0); a lone GPU on
    # machine 1 (other rack) would drop the rate to 3 * 0.24 = 0.72.
    app.jobs[0].set_allocation(0.0, Allocation(cluster.gpus_on_machine(0)[:2]))
    granted = Allocation(
        list(cluster.gpus_on_machine(0)[:2]) + [cluster.gpus_on_machine(1)[0]]
    )
    result = app.distribute(granted)
    assert result[app.jobs[0].job_id].size == 2  # straggler declined


def test_distribute_accepts_helpful_spread_for_insensitive_model():
    """A ResNet app takes the same straggler: 3 * 0.92 > 2 * 1.0."""
    cluster = pair_cluster()
    app = make_app("resnet", num_jobs=1, model="resnet50", max_parallelism=4)
    app.jobs[0].set_allocation(0.0, Allocation(cluster.gpus_on_machine(0)[:2]))
    granted = Allocation(
        list(cluster.gpus_on_machine(0)[:2]) + [cluster.gpus_on_machine(1)[0]]
    )
    result = app.distribute(granted)
    assert result[app.jobs[0].job_id].size == 3


def test_declined_gpus_return_to_free_pool():
    """GPUs an app declines become schedulable for other apps."""
    trace = trace_of(
        app_spec("vgg-app", 0.0, 60.0, parallelism=4, model="vgg16", jobs=2),
        app_spec("resnet-app", 1.0, 30.0, parallelism=4, model="resnet50"),
    )
    result = ClusterSimulator(
        cluster=pair_cluster(),
        workload=trace,
        scheduler=make_scheduler("themis"),
        config=SimulationConfig(lease_minutes=10.0),
    ).run()
    assert result.completed


def test_zero_overhead_and_tiny_lease():
    trace = trace_of(app_spec("a", 0.0, 20.0))
    result = ClusterSimulator(
        cluster=pair_cluster(),
        workload=trace,
        scheduler=make_scheduler("fifo"),
        config=SimulationConfig(lease_minutes=0.5, restart_overhead_minutes=0.0),
    ).run()
    assert result.completed
    # Many lease renewals, all seamless.
    assert result.stats_by_app()["a"].completion_time == pytest.approx(
        20.0 / 0.98, rel=1e-6
    )


def test_app_arriving_after_everything_finished():
    trace = trace_of(
        app_spec("first", 0.0, 10.0),
        app_spec("straggler", 500.0, 10.0),
    )
    result = ClusterSimulator(
        cluster=pair_cluster(),
        workload=trace,
        scheduler=make_scheduler("themis"),
    ).run()
    assert result.completed
    stats = result.stats_by_app()
    # The straggler had the idle cluster to itself: rho ~= 1.
    assert stats["straggler"].rho < 1.3
