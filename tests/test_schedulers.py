"""Unit tests for the baseline scheduler policies."""

import pytest

from repro.cluster.topology import ClusterSpec, MachineSpec, build_cluster
from repro.schedulers.registry import SCHEDULER_NAMES, make_scheduler
from repro.schedulers.tiresias import take_scattered
from repro.core.assignment import group_pool
from repro.simulation.simulator import ClusterSimulator, SimulationConfig
from repro.workload.trace import Trace, TraceApp, TraceJob


def two_app_trace(model="resnet50"):
    def app(app_id, arrival, minutes):
        return TraceApp(
            app_id,
            arrival,
            (
                TraceJob(
                    job_id=f"{app_id}-j0",
                    model=model,
                    duration_minutes=minutes,
                    max_parallelism=4,
                ),
            ),
        )

    return Trace(apps=(app("early", 0.0, 30.0), app("late", 5.0, 30.0)))


def small_cluster():
    return build_cluster(
        ClusterSpec(
            machine_specs=(MachineSpec(count=2, gpus_per_machine=4),),
            num_racks=2,
            name="pair",
        )
    )


def bound_scheduler(name, trace=None, **kwargs):
    """Scheduler bound to a live simulator mid-flight (after arrivals)."""
    sim = ClusterSimulator(
        cluster=small_cluster(),
        workload=trace or two_app_trace(),
        scheduler=make_scheduler(name, **kwargs),
        config=SimulationConfig(lease_minutes=10.0),
    )
    return sim


def test_registry_knows_all_names():
    assert set(SCHEDULER_NAMES) == {
        "themis",
        "gandiva",
        "tiresias",
        "slaq",
        "optimus",
        "strawman",
        "drf",
        "fifo",
    }
    with pytest.raises(KeyError):
        make_scheduler("nope")


@pytest.mark.parametrize("name", SCHEDULER_NAMES)
def test_every_scheduler_completes_the_trace(name):
    sim = bound_scheduler(name)
    result = sim.run()
    assert result.completed
    assert all(stats.finished_at is not None for stats in result.app_stats)


@pytest.mark.parametrize("name", SCHEDULER_NAMES)
def test_assignments_stay_within_pool(name):
    sim = bound_scheduler(name)
    # Run to completion; the simulator itself raises on any assignment
    # outside the pool or double-assignment.
    result = sim.run()
    assert result.num_rounds > 0


def test_fifo_serves_earliest_first():
    sim = bound_scheduler("fifo")
    result = sim.run()
    stats = result.stats_by_app()
    assert stats["early"].finished_at <= stats["late"].finished_at


def test_tiresias_orders_by_attained_service():
    sim = ClusterSimulator(
        cluster=small_cluster(),
        workload=two_app_trace(),
        scheduler=make_scheduler("tiresias"),
        config=SimulationConfig(lease_minutes=10.0, max_minutes=6.0),
    )
    sim.run()
    apps = sim.scheduler.active_apps()
    assert len(apps) == 2
    # "early" accumulated service since t=0; "late" has none yet.
    assert apps["early"].attained_service() > 0
    assert apps["early"].attained_service() > apps["late"].attained_service()


def test_take_scattered_round_robins():
    cluster = small_cluster()
    pool = group_pool(cluster.gpus)
    taken = take_scattered(pool, 4)
    machines = [gpu.machine_id for gpu in taken]
    # Alternating across the two machines.
    assert machines[:4] == [0, 1, 0, 1]


def test_strawman_single_winner():
    sim = bound_scheduler("strawman")
    scheduler = sim.scheduler
    sim.engine.run(until=5.0)  # both apps arrived, cluster contended
    pool = sim.leases.pool_for_auction(sim.engine.now, sim.cluster.gpus)
    if pool:
        grants = scheduler.assign(sim.engine.now, pool)
        assert len(grants) <= 1


def test_drf_waterfills_equally():
    sim = bound_scheduler("drf")
    result = sim.run()
    # Both apps demanded 4 on an 8-GPU cluster: DRF should never let one
    # app starve while the other holds everything.
    stats = result.stats_by_app()
    assert stats["early"].gpu_time > 0
    assert stats["late"].gpu_time > 0


def test_themis_kwargs_forwarded():
    scheduler = make_scheduler("themis", fairness_knob=0.5, noise_theta=0.1)
    assert scheduler.config.fairness_knob == 0.5
    assert scheduler.config.noise_theta == 0.1


def test_gandiva_packs_sensitive_jobs():
    sim = bound_scheduler("gandiva", trace=two_app_trace(model="vgg16"))
    result = sim.run()
    # Each 4-GPU job fits one machine; Gandiva should keep placement
    # scores at machine locality or better most of the time.
    for stats in result.app_stats:
        assert stats.mean_placement_score >= 0.7
