"""Tests for the sharing-incentive metrics."""

import math

import pytest

from repro.experiments.config import tiny_scenario
from repro.experiments.runner import run_scenario
from repro.metrics.sharing import (
    sharing_incentive_fraction,
    violators,
    worst_violation,
)


def test_all_satisfied():
    assert sharing_incentive_fraction([1.0, 2.0, 3.0], contention=3.0) == 1.0
    assert worst_violation([1.0, 2.0], contention=3.0) == 0.0
    assert violators([1.0, 2.0], contention=3.0) == []


def test_partial_violation():
    rhos = [1.0, 4.5, 3.0]
    assert sharing_incentive_fraction(rhos, contention=3.0) == pytest.approx(2 / 3)
    assert worst_violation(rhos, contention=3.0) == pytest.approx(0.5)
    assert violators(rhos, contention=3.0) == [1]


def test_unbounded_rho():
    assert math.isinf(worst_violation([1.0, math.inf], contention=2.0))


def test_validation():
    with pytest.raises(ValueError):
        sharing_incentive_fraction([1.0], contention=0.0)
    with pytest.raises(ValueError):
        sharing_incentive_fraction([], contention=1.0)
    with pytest.raises(ValueError):
        worst_violation([1.0], contention=0.0)
    with pytest.raises(ValueError):
        violators([1.0], contention=-1.0)


def test_themis_provides_sharing_incentive_end_to_end():
    """On a small contended run, most apps satisfy rho <= max(1, N).

    The bound is the peak contention (the paper's operative N), floored
    at 1 plus a small overhead allowance since even an uncontended app
    pays checkpoint/placement costs.
    """
    scenario = tiny_scenario(num_apps=6, seed=4).with_generator(
        mean_interarrival_minutes=5.0
    )
    result = run_scenario(scenario, "themis")
    assert result.peak_contention > 1.0
    bound = max(1.2, result.peak_contention)
    fraction = sharing_incentive_fraction(result.rhos(), bound)
    assert fraction >= 0.5
