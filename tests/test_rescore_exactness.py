"""The bound-gated, vector-batched post-move re-scoring is exact.

The lazy solver's post-move invalidation re-scores its full row and
column with precise scalar carves after every applied move — the
``sim-xl`` wall.  ``rescore="gated"`` (the default) attacks it two
ways, and this suite holds both to the eager oracle byte-for-byte:

* **bound-gated skips** — :meth:`PartialAllocationAuction._score_pair`
  memoises under the exact purity key of the score (gain path:
  ``(machine, current_key, min(chunk, free, headroom))``; rescue path:
  ``(machine, current_key)`` with the free-dependent tie-break rebuilt
  from the live ``free``), so a column shrink that leaves the step
  bound unchanged re-uses the memoised score;
* **vector-batched re-scoring** — the row/column candidates a move
  forces are batch-primed through ``FairnessEstimator.batch_prime``
  (compound multi-machine bundles, one lockstep numpy pass) before the
  scalar loop runs, so the loop hits warm kernel caches.

The sweep covers 200+ seeded markets x homogeneous / heterogeneous
fleets x scalar / throughput-matrix perf models x warm (incremental)
and cold solves, asserting *move sequences* and full outcome digests of
the gated solver equal ``rescore="eager"``'s.  The adversarial test
pins the non-monotone-gain counterexample (a shrinking machine RAISES
a pair's normalized gain) that rules out plain lazy-CELF stale-heap
re-validation and motivates proven skips instead.  The fallback test
re-runs the sweep core with numpy gated off (the batched re-score
degrades to the scalar kernel, results identical).
"""

from __future__ import annotations

import math
import random

import pytest

import repro.core.fairness as fairness
from repro.cluster.topology import GPU_TYPES, ClusterSpec, MachineSpec, build_cluster
from repro.core.auction import _MEMO_MISS, PartialAllocationAuction, _merged_key
from repro.core.bids import build_bid
from repro.core.fairness import FairnessEstimator
from repro.perf.bench import _outcome_digest
from repro.workload.perf import PERF_MATRIX_PRESETS, ThroughputMatrixModel

from helpers import make_app

#: Mixed model families so valuations (and matrix speed rows) differ.
MODELS = ("resnet50", "vgg16", "transformer", "inceptionv3", "lstm-lm")


# ----------------------------------------------------------------------
# Market generator
# ----------------------------------------------------------------------
def random_market(rng: random.Random, hetero: bool, perf_matrix: bool):
    """One seeded (pool, bids-factory) market.

    Some apps already hold GPUs (gain-path scores over compound
    multi-machine bundles), the rest are starved (rescue path); the
    factory returns fresh bids per call so compared solvers never share
    warmed valuation caches.
    """
    num_machines = rng.randint(2, 8)
    gpus_per = rng.randint(2, 6)
    if hetero:
        kinds = ("v100", "p100", "k80")
        split = [num_machines // 3] * 3
        for i in range(num_machines - sum(split)):
            split[i % 3] += 1
        specs = tuple(
            MachineSpec(count=count, gpus_per_machine=gpus_per, gpu_type=GPU_TYPES[kind])
            for kind, count in zip(kinds, split)
            if count > 0
        )
    else:
        specs = (MachineSpec(count=num_machines, gpus_per_machine=gpus_per),)
    cluster = build_cluster(
        ClusterSpec(
            machine_specs=specs,
            num_racks=rng.randint(1, 3),
            name="rescore",
        )
    )
    perf_model = (
        ThroughputMatrixModel(PERF_MATRIX_PRESETS["rate-inversion"])
        if perf_matrix
        else None
    )
    estimator = FairnessEstimator(cluster, perf_model=perf_model)

    num_apps = rng.randint(2, 6)
    apps = []
    for i in range(num_apps):
        apps.append(
            make_app(
                app_id=f"a{i}",
                num_jobs=rng.randint(1, 4),
                model=rng.choice(MODELS),
                serial_work=rng.uniform(20.0, 400.0),
                max_parallelism=rng.randint(1, 4),
            )
        )
    # Hand a random slice of the fleet to a random subset of apps, so
    # their bids score gain moves on top of non-empty base bundles.
    machines = list(cluster.machines)
    held = machines[: rng.randint(0, max(0, len(machines) - 1))]
    for slot, machine in enumerate(held):
        app = apps[slot % len(apps)]
        job = app.jobs[slot % len(app.jobs)]
        take = machine.gpus[: rng.randint(1, machine.num_gpus)]
        job.set_allocation(0.0, job.allocation.union(take), overhead=0.0)
    pool = {
        machine.machine_id: rng.randint(1, machine.num_gpus)
        for machine in machines[len(held):]
    }
    now = rng.uniform(10.0, 200.0)

    def bids_factory():
        return {
            app.app_id: build_bid(app, estimator, now, pool)
            for app in apps
            if app.unmet_demand() > 0
        }

    return pool, bids_factory, estimator


def solve_both(pool, bids_factory, estimator, warm: bool, chunk_size: int = 4):
    """(moves, digest, stats) for the gated solver and the eager oracle."""
    results = {}
    for mode in ("gated", "eager"):
        auction = PartialAllocationAuction(chunk_size=chunk_size, rescore=mode)
        if warm:
            auction.warm_enabled = True
            auction.estimator = estimator
        bids = bids_factory()
        if not bids:
            return None
        _assignment, moves = auction._solve(pool, bids, stats=auction.last_stats)
        outcome = PartialAllocationAuction(
            chunk_size=chunk_size, rescore=mode
        ).run(pool, bids_factory(), apply_hidden_payments=True)
        results[mode] = (moves, _outcome_digest(outcome), auction.last_stats)
    return results


# ----------------------------------------------------------------------
# The 200+ instance sweep: gated == eager, move-for-move
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "hetero,perf_matrix,seed",
    [(False, False, 20260808), (True, False, 977), (True, True, 31415)],
    ids=["homo", "hetero", "hetero-matrix"],
)
@pytest.mark.parametrize("warm", [False, True], ids=["cold", "warm"])
def test_gated_matches_eager_sweep(hetero, perf_matrix, seed, warm):
    """>= 35 markets per config x 6 configs: 200+ instances in all."""
    rng = random.Random(seed + int(warm))
    checked = 0
    while checked < 35:
        pool, bids_factory, estimator = random_market(rng, hetero, perf_matrix)
        if not pool:
            continue
        results = solve_both(pool, bids_factory, estimator, warm)
        if results is None:
            continue
        checked += 1
        gated_moves, gated_digest, gated_stats = results["gated"]
        eager_moves, eager_digest, _eager_stats = results["eager"]
        # Same greedy trajectory (every move, in order, including the
        # float values), then same winners/payments/leftovers/welfare.
        assert gated_moves == eager_moves
        assert gated_digest == eager_digest
        # The gate actually engages: markets with enough moves see
        # memo skips during the post-move re-scores.
        if gated_stats.moves > 10:
            assert gated_stats.rescore_skipped > 0


def test_gated_matches_eager_small_chunks():
    """chunk_size=1 (every move is one GPU) and 2 stay byte-identical."""
    rng = random.Random(4242)
    for chunk_size in (1, 2):
        checked = 0
        while checked < 15:
            pool, bids_factory, estimator = random_market(rng, False, False)
            if not pool:
                continue
            results = solve_both(
                pool, bids_factory, estimator, warm=True, chunk_size=chunk_size
            )
            if results is None:
                continue
            checked += 1
            assert results["gated"][0] == results["eager"][0]
            assert results["gated"][1] == results["eager"][1]


# ----------------------------------------------------------------------
# The non-monotone counterexample (why stale-heap CELF is out)
# ----------------------------------------------------------------------
def test_shrinking_machine_raises_gain_yet_gated_stays_exact():
    """A column shrink RAISES a pair's best normalized gain.

    Three ALL_JOBS vgg16 jobs capped at ``max_parallelism=2``, each
    holding one GPU on the *other* machine, so unmet headroom is 3 and
    a job's second GPU lands cross-machine on a network-intensive
    model (a lone extra GPU is worth so little the step-1 move can
    even be value-negative).  At ``free=4`` the candidate steps are
    {1, 3}: the 3-GPU grab's per-GPU log gain is diluted by the jobs'
    communication penalty.  At ``free=2`` the steps are {1, 2} and the
    2-GPU grab concentrates the jump over a smaller step — a strictly
    better (smaller) heap key.  Lazy-CELF would trust the stale
    ``free=4`` score and pop a wrong argmin; the bound-gated memo
    instead keys on ``min(chunk, free, headroom)``, which *changed*
    (3 -> 2), so the pair is re-scored precisely.
    """
    cluster = build_cluster(
        ClusterSpec(
            machine_specs=(MachineSpec(count=2, gpus_per_machine=4),),
            num_racks=1,
            name="nonmono",
        )
    )
    estimator = FairnessEstimator(cluster)
    app = make_app(app_id="capped", num_jobs=3, model="vgg16", max_parallelism=2)
    # Each job holds one GPU elsewhere: value positive (gain path).
    other = cluster.machines[1]
    for job, gpu in zip(app.jobs, other.gpus[:3]):
        job.set_allocation(0.0, job.allocation.union((gpu,)))
    machine_id = cluster.machines[0].machine_id
    pool = {machine_id: 4}
    bid = build_bid(app, estimator, now=50.0, offered_counts=pool)
    auction = PartialAllocationAuction(chunk_size=4, rescore="gated")
    current_value = bid.value_from_key(())
    assert current_value > 0.0

    def score_at(free: int):
        return auction._score_pair(
            bid, app.app_id, machine_id, free, (), current_value,
            headroom=bid.demand,
        )

    wide = score_at(4)
    narrow = score_at(2)
    assert wide is not None and narrow is not None
    # Non-monotone: fewer free GPUs, strictly better (smaller) key —
    # the normalized gain went UP when the machine shrank.
    assert narrow[0] < wide[0]
    gain_wide = -wide[0][1]
    gain_narrow = -narrow[0][1]
    assert gain_narrow > gain_wide
    # The memo keyed the two scorings separately (chunk 3 vs chunk 2):
    # both live side by side, neither is served stale for the other.
    memo = bid._pair_memo
    assert memo.get((machine_id, (), 3), _MEMO_MISS) is not _MEMO_MISS
    assert memo.get((machine_id, (), 2), _MEMO_MISS) is not _MEMO_MISS

    # And a full market built around the same shape still solves
    # byte-identically to the eager oracle.
    rng = random.Random(8)
    for _ in range(10):
        pool2, bids_factory, est2 = random_market(rng, False, False)
        if not pool2:
            continue
        results = solve_both(pool2, bids_factory, est2, warm=False)
        if results is None:
            continue
        assert results["gated"][0] == results["eager"][0]
        assert results["gated"][1] == results["eager"][1]


# ----------------------------------------------------------------------
# Satellite: refined memo key strictly beats the raw-free key
# ----------------------------------------------------------------------
class LegacyMemoAuction(PartialAllocationAuction):
    """The pre-PR-10 ``_score_pair``: memo keyed on raw ``free``.

    Verbatim re-implementation of the old warm-start memo (key
    ``(machine, current_key, free, min(headroom, chunk))``, whole
    result stored, warm-gated) so the hit-rate comparison below runs
    the refined and legacy keys over identical solves.
    """

    def _score_pair(
        self, bid, app_id, machine_id, free, current_key, current_value,
        headroom, stats=None, rescore=False, defer=None, prime=None,
    ):
        memo = None
        if self.warm_enabled:
            memo = bid._pair_memo
            memo_key = (machine_id, current_key, free, min(headroom, self.chunk_size))
            cached = memo.get(memo_key, _MEMO_MISS)
            if cached is not _MEMO_MISS:
                if stats is not None:
                    stats.warm_hits += 1
                return cached
            if stats is not None:
                stats.warm_misses += 1
        if current_value <= 0.0:
            step_sizes = (1,)
        else:
            chunk = min(self.chunk_size, free, headroom)
            step_sizes = (1,) if chunk <= 1 else (1, chunk)
        best = None
        for step in step_sizes:
            new_value = bid.value_from_key(_merged_key(current_key, machine_id, step))
            if new_value <= current_value:
                continue
            move = (app_id, machine_id, step, new_value)
            if current_value <= 0.0:
                key = (
                    0, -new_value, step,
                    -free * bid.machine_speed(machine_id), app_id, machine_id,
                )
            else:
                gain = (math.log(new_value) - math.log(current_value)) / step
                key = (1, -gain, step, app_id, machine_id)
            if best is None or key < best[0]:
                best = (key, move)
        if memo is not None:
            memo[memo_key] = best
        return best


def test_refined_memo_key_strictly_improves_hit_rate():
    """Same seeded solves, digests unchanged, hit-rate strictly up.

    Both solvers run warm with ``rescore="eager"`` so the *only*
    difference is the memo key: refined (effective step bound) vs
    legacy (raw ``free``).  Every column shrink that leaves
    ``min(chunk, free, headroom)`` unchanged is a refined-key hit the
    legacy key misses.
    """
    rng = random.Random(20260808)
    improved = 0
    compared = 0
    while compared < 12:
        pool, bids_factory, estimator = random_market(rng, False, False)
        if not pool:
            continue
        rates = {}
        digests = {}
        for cls in (PartialAllocationAuction, LegacyMemoAuction):
            auction = cls(chunk_size=4, rescore="eager")
            auction.warm_enabled = True
            auction.estimator = estimator
            outcome = auction.run(pool, bids_factory(), apply_hidden_payments=True)
            stats = auction.last_stats
            lookups = stats.warm_hits + stats.warm_misses
            if lookups == 0:
                rates[cls] = None
            else:
                rates[cls] = stats.warm_hits / lookups
            digests[cls] = _outcome_digest(outcome)
        if rates[PartialAllocationAuction] is None or rates[LegacyMemoAuction] is None:
            continue
        compared += 1
        assert digests[PartialAllocationAuction] == digests[LegacyMemoAuction]
        assert rates[PartialAllocationAuction] >= rates[LegacyMemoAuction]
        if rates[PartialAllocationAuction] > rates[LegacyMemoAuction]:
            improved += 1
    # Strict improvement on the clear majority of seeded solves (ties
    # possible only on degenerate tiny markets with no column shrinks).
    assert improved >= compared * 0.75


# ----------------------------------------------------------------------
# numpy-free degradation of the batched re-score
# ----------------------------------------------------------------------
def test_gated_matches_eager_without_numpy(monkeypatch):
    """The post-move batch prime falls back to the scalar kernel."""
    monkeypatch.setattr(fairness, "_np", None)
    monkeypatch.setattr(fairness, "_batch_fallback_warned", True)
    rng = random.Random(1337)
    checked = 0
    while checked < 10:
        pool, bids_factory, estimator = random_market(rng, True, False)
        if not pool:
            continue
        results = solve_both(pool, bids_factory, estimator, warm=True)
        if results is None:
            continue
        checked += 1
        assert results["gated"][0] == results["eager"][0]
        assert results["gated"][1] == results["eager"][1]


# ----------------------------------------------------------------------
# Counters thread through RoundStats into serialized round_stats
# ----------------------------------------------------------------------
def test_rescore_counters_reach_round_stats():
    from repro.perf.bench import SimBenchProfile, run_sim_once

    profile = SimBenchProfile(
        name="t-rescore-xs",
        gpus=16,
        contention=4.0,
        num_apps=10,
        duration_scale=0.15,
        interarrival_minutes=3.0,
        downsample=64,
        jobs_per_app_median=3.0,
        jobs_per_app_max=6,
    )
    inc = run_sim_once(profile, incremental=True)
    cold = run_sim_once(profile, incremental=False)
    assert inc["digest"] == cold["digest"]
    for run in (inc, cold):
        stats = run["result"].round_stats
        totals = stats["totals"]
        for key in ("rescore_carves", "rescore_skipped", "rescore_batched"):
            assert key in totals
            assert all(key in row for row in stats["per_round"])
        # The gate engages in BOTH modes — the re-score wall is
        # mode-independent, which is exactly why it needed its own
        # treatment beyond the cross-round caches.
        assert totals["rescore_skipped"] > 0


def test_sim_level_gated_matches_eager():
    """Whole trace replay with the solver flipped to the eager oracle."""
    from dataclasses import replace as dc_replace

    from repro.perf.bench import (
        SimBenchProfile,
        canonical_result_json,
        sim_scenario_for,
    )
    from repro.schedulers.registry import make_scheduler
    from repro.simulation.simulator import ClusterSimulator

    profile = SimBenchProfile(
        name="t-rescore-sim",
        gpus=16,
        contention=4.0,
        num_apps=8,
        duration_scale=0.12,
        interarrival_minutes=3.0,
        downsample=64,
        jobs_per_app_median=3.0,
        jobs_per_app_max=6,
    )

    def run(rescore: str) -> str:
        scenario = sim_scenario_for(profile)
        scheduler = make_scheduler(profile.scheduler)
        simulator = ClusterSimulator(
            cluster=scenario.build_cluster(),
            workload=scenario.build_trace(),
            scheduler=scheduler,
            config=dc_replace(scenario.build_sim_config(), incremental=True),
            perf_model=scenario.build_perf_model(),
        )
        assert scheduler.arbiter is not None
        scheduler.arbiter.auction.rescore = rescore
        return canonical_result_json(simulator.run())

    assert run("gated") == run("eager")


def test_rescore_mode_validation():
    with pytest.raises(ValueError, match="rescore"):
        PartialAllocationAuction(rescore="stale-heap")
    from repro.core.arbiter import ArbiterConfig

    with pytest.raises(ValueError, match="rescore"):
        ArbiterConfig(rescore="approximate")
