"""Unit tests for the model zoo and the Figure-2 throughput model."""

import pytest

from repro.workload.models import (
    MODEL_ZOO,
    get_model,
    list_models,
    models_by_family,
    throughput,
)


def test_zoo_has_both_families():
    sensitive = models_by_family(network_intensive=True)
    insensitive = models_by_family(network_intensive=False)
    assert len(sensitive) >= 3
    assert len(insensitive) >= 3


def test_get_model_case_insensitive():
    assert get_model("VGG16") is get_model("vgg16")


def test_get_model_unknown_raises_with_names():
    with pytest.raises(KeyError) as excinfo:
        get_model("not-a-model")
    assert "resnet50" in str(excinfo.value)


def test_list_models_sorted():
    names = list_models()
    assert list(names) == sorted(names)
    assert "vgg16" in names


def test_paper_families_flagged_correctly():
    # Section 8.1: VGG family is placement sensitive, ResNet is not.
    assert get_model("vgg16").network_intensive
    assert get_model("vgg19").network_intensive
    assert not get_model("resnet50").network_intensive
    assert not get_model("inceptionv3").network_intensive


def test_throughput_zero_without_gpus():
    assert throughput(get_model("vgg16"), []) == 0.0


def test_throughput_scales_linearly_when_colocated(one_machine_cluster):
    profile = get_model("resnet50")
    one = throughput(profile, one_machine_cluster.gpus[:1])
    two = throughput(profile, one_machine_cluster.gpus[:2])
    # Same NVLink slot: perfect scaling.
    assert two == pytest.approx(2 * one)


def test_fig2_shape_vgg_halves_resnet_does_not(small_cluster):
    """The headline of Figure 2: VGG collapses 2x2, ResNet does not."""
    one_server = small_cluster.gpus_on_machine(0)
    split = small_cluster.gpus_on_machine(0)[:2] + small_cluster.gpus_on_machine(2)[:2]
    vgg = get_model("vgg16")
    resnet = get_model("resnet50")
    vgg_ratio = throughput(vgg, split) / throughput(vgg, one_server)
    resnet_ratio = throughput(resnet, split) / throughput(resnet, one_server)
    assert vgg_ratio < 0.6
    assert resnet_ratio > 0.9


def test_sensitive_models_degrade_more_than_insensitive(small_cluster):
    cross_rack = [small_cluster.gpu(0), small_cluster.gpu(4)]
    for sensitive in models_by_family(True):
        for insensitive in models_by_family(False):
            s_ratio = throughput(sensitive, cross_rack) / (
                2 * sensitive.single_gpu_throughput
            )
            i_ratio = throughput(insensitive, cross_rack) / (
                2 * insensitive.single_gpu_throughput
            )
            assert s_ratio < i_ratio


def test_zoo_profiles_are_valid():
    for name, profile in MODEL_ZOO.items():
        assert profile.name == name
        assert profile.params_million > 0
        assert profile.single_gpu_throughput > 0
        assert 0 < profile.sensitivity.cluster <= profile.sensitivity.machine <= 1.0
