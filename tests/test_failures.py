"""Tests for machine-failure injection (the Section 6 extension)."""

import math

import pytest

from repro.cluster.topology import ClusterSpec, MachineSpec, build_cluster
from repro.schedulers.registry import make_scheduler
from repro.simulation.failures import FailureInjector, MachineFailure
from repro.simulation.simulator import ClusterSimulator, SimulationConfig
from repro.workload.trace import Trace, TraceApp, TraceJob


def pair_cluster():
    return build_cluster(
        ClusterSpec(
            machine_specs=(MachineSpec(count=2, gpus_per_machine=4),),
            num_racks=2,
            name="pair",
        )
    )


def solo_trace(minutes=60.0):
    return Trace(
        apps=(
            TraceApp(
                "solo",
                0.0,
                (
                    TraceJob(
                        job_id="solo-j0",
                        model="resnet50",
                        duration_minutes=minutes,
                        max_parallelism=4,
                    ),
                ),
            ),
        )
    )


def build_sim(trace, failures, **config_kwargs):
    sim = ClusterSimulator(
        cluster=pair_cluster(),
        workload=trace,
        scheduler=make_scheduler("themis"),
        config=SimulationConfig(**config_kwargs),
    )
    injector = FailureInjector(failures)
    injector.install(sim)
    return sim, injector


def test_failure_validation():
    with pytest.raises(ValueError):
        MachineFailure(machine_id=0, at=-1.0)
    with pytest.raises(ValueError):
        MachineFailure(machine_id=0, at=0.0, duration=0.0)


def test_unknown_machine_rejected():
    sim = ClusterSimulator(
        cluster=pair_cluster(),
        workload=solo_trace(),
        scheduler=make_scheduler("themis"),
    )
    injector = FailureInjector([MachineFailure(machine_id=99, at=1.0)])
    with pytest.raises(ValueError):
        injector.install(sim)


def test_job_survives_machine_failure():
    """The app loses its machine mid-run, reschedules, and completes."""
    sim, injector = build_sim(
        solo_trace(minutes=60.0),
        [MachineFailure(machine_id=0, at=20.0)],  # permanent
        restart_overhead_minutes=1.0,
    )
    result = sim.run()
    assert result.completed
    assert injector.events_applied == 1
    stats = result.stats_by_app()["solo"]
    # It had to migrate to machine 1 and pay overhead: slower than the
    # failure-free ideal but bounded.
    assert stats.completion_time > 60.0 / 0.98
    assert stats.completion_time < 200.0


def test_permanent_failure_shrinks_capacity():
    sim, _ = build_sim(solo_trace(), [MachineFailure(machine_id=0, at=5.0)])
    result = sim.run()
    assert result.completed
    assert sim.down_gpu_count == 4


def test_repair_restores_capacity():
    sim, injector = build_sim(
        solo_trace(minutes=60.0),
        [MachineFailure(machine_id=0, at=10.0, duration=15.0)],
    )
    result = sim.run()
    assert result.completed
    assert injector.events_applied == 2
    assert sim.down_gpu_count == 0
    assert not injector.down_machines


def test_failed_gpus_not_rescheduled_while_down():
    """During the outage no lease may exist on the failed machine."""
    sim, _ = build_sim(
        solo_trace(minutes=200.0),
        [MachineFailure(machine_id=0, at=10.0, duration=500.0)],
        lease_minutes=5.0,
    )
    sim.engine.schedule(
        50.0,
        lambda engine, event: _assert_no_leases_on_machine(sim, 0),
        label="probe",
    )
    result = sim.run()
    assert result.completed


def _assert_no_leases_on_machine(sim, machine_id):
    for gpu in sim.cluster.gpus_on_machine(machine_id):
        assert sim.leases.lease_of(gpu) is None


def test_failure_displaces_and_fairness_recovers():
    """Two apps; one loses its machine; it must still finish (no starvation)."""
    trace = Trace(
        apps=(
            TraceApp(
                "victim",
                0.0,
                (
                    TraceJob(job_id="victim-j0", model="vgg16",
                             duration_minutes=50.0, max_parallelism=4),
                ),
            ),
            TraceApp(
                "other",
                0.0,
                (
                    TraceJob(job_id="other-j0", model="vgg16",
                             duration_minutes=50.0, max_parallelism=4),
                ),
            ),
        )
    )
    sim, _ = build_sim(
        trace,
        [MachineFailure(machine_id=0, at=15.0, duration=30.0)],
        lease_minutes=10.0,
    )
    result = sim.run()
    assert result.completed
    for stats in result.app_stats:
        assert stats.rho < 8.0, stats.app_id


def test_contention_divides_by_in_service_gpus():
    """Satellite fix: outage shrinks the denominator, not just the pool."""
    trace = solo_trace(minutes=60.0)
    sim, _ = build_sim(
        trace, [MachineFailure(machine_id=0, at=10.0)], lease_minutes=10.0
    )
    result = sim.run()
    samples = list(result.contention_samples)
    before = [ratio for now, ratio in samples if now < 10.0]
    after = [ratio for now, ratio in samples if now >= 10.0 and ratio > 0.0]
    # 8 in-service GPUs before the outage, 4 after; app demand is 4.
    assert before and max(before) == pytest.approx(4 / 8)
    assert after and max(after) == pytest.approx(4 / 4)
    assert result.peak_contention == pytest.approx(1.0)


def test_contention_with_every_gpu_down_is_unbounded():
    trace = solo_trace(minutes=60.0)
    sim, _ = build_sim(
        trace,
        [MachineFailure(machine_id=0, at=10.0), MachineFailure(machine_id=1, at=10.0)],
        lease_minutes=10.0,
        max_minutes=50.0,  # nothing can finish with the cluster gone
    )
    result = sim.run()
    assert math.isinf(result.peak_contention)
