"""Unit tests for the HyperDrive app scheduler."""

import pytest

from repro.cluster.allocation import Allocation
from repro.hyperparam.base import JobClass
from repro.hyperparam.hyperdrive import HyperDrive
from repro.hyperparam.curves import LossCurve
from repro.workload.app import App, CompletionSemantics
from repro.workload.job import Job, JobSpec


def build_app(alphas):
    jobs = [
        Job(
            spec=JobSpec(
                job_id=f"j{i}",
                model="resnet50",
                serial_work=100.0,
                max_parallelism=4,
                total_iterations=1000,
                loss_curve=LossCurve(initial=5.0, floor=0.0, alpha=alpha),
            )
        )
        for i, alpha in enumerate(alphas)
    ]
    return App("hd", 0.0, jobs, semantics=CompletionSemantics.FIRST_WINNER)


def drive(app, cluster, tuner, checkpoints):
    """Advance all jobs through several observation points, applying kills."""
    for iterations in checkpoints:
        for job in app.active_jobs():
            minutes = (iterations / 1000) * 100.0 - (
                job.fraction_done * 100.0
            )
            job.set_allocation(job.last_update, Allocation(cluster.gpus[:1]))
            job.advance_to(job.last_update + minutes)
            job.set_allocation(job.last_update, Allocation())
        for victim in tuner.step(0.0):
            victim.kill(victim.last_update)


def test_validation():
    app = build_app([0.5])
    with pytest.raises(ValueError):
        HyperDrive(app, good_factor=1.0)
    with pytest.raises(ValueError):
        HyperDrive(app, good_factor=2.0, poor_factor=1.5)


def test_no_decision_before_warmup(one_machine_cluster):
    app = build_app([0.3, 1.2])
    tuner = HyperDrive(app, target_loss=0.5, warmup_iterations=500.0)
    drive(app, one_machine_cluster, tuner, [100])
    assert all(job.is_active for job in app.jobs)


def test_poor_jobs_killed_good_jobs_full_priority(one_machine_cluster):
    # alpha 0.25 converges far slower than 1.2 -> projected iterations
    # explode past poor_factor * best.
    app = build_app([0.25, 1.1, 1.2])
    tuner = HyperDrive(app, target_loss=0.4, warmup_iterations=50.0, poor_factor=3.0)
    drive(app, one_machine_cluster, tuner, [60, 120, 200])
    victims = [job for job in app.jobs if not job.is_active]
    assert [v.job_id for v in victims] == ["j0"]
    assert tuner.classes["j0"] == JobClass.POOR
    assert tuner.classes["j2"] in (JobClass.GOOD, JobClass.PROMISING)


def test_promising_jobs_get_reduced_parallelism(one_machine_cluster):
    app = build_app([0.55, 1.2])
    tuner = HyperDrive(
        app, target_loss=0.4, warmup_iterations=50.0, good_factor=1.2, poor_factor=50.0
    )
    drive(app, one_machine_cluster, tuner, [60, 120, 200])
    slow = app.jobs[0]
    if tuner.classes["j0"] == JobClass.PROMISING:
        assert slow.max_parallelism == 2  # halved from 4
    fast = app.jobs[1]
    assert fast.max_parallelism == 4


def test_no_kills_when_all_projections_unbounded(one_machine_cluster):
    # Loss floor above the target: every projection is inf -> no finite
    # best to compare against -> HyperDrive cannot classify, kills nobody.
    jobs = [
        Job(
            spec=JobSpec(
                job_id=f"j{i}",
                model="resnet50",
                serial_work=100.0,
                max_parallelism=4,
                total_iterations=1000,
                loss_curve=LossCurve(initial=5.0, floor=1.0, alpha=alpha),
            )
        )
        for i, alpha in enumerate([0.3, 0.32])
    ]
    app = App("hd2", 0.0, jobs, semantics=CompletionSemantics.FIRST_WINNER)
    tuner = HyperDrive(app, target_loss=0.5, warmup_iterations=50.0)
    drive(app, one_machine_cluster, tuner, [60, 120])
    assert len(app.active_jobs()) == 2


def test_at_least_one_job_survives_classification(one_machine_cluster):
    # One reachable job among unreachable ones: the unreachable jobs are
    # poor (killed), the finite-projection job always survives.
    curves = [
        LossCurve(initial=5.0, floor=1.0, alpha=0.5),  # floor above target
        LossCurve(initial=5.0, floor=0.0, alpha=1.0),  # reaches target
    ]
    jobs = [
        Job(
            spec=JobSpec(
                job_id=f"j{i}",
                model="resnet50",
                serial_work=100.0,
                max_parallelism=4,
                total_iterations=1000,
                loss_curve=curve,
            )
        )
        for i, curve in enumerate(curves)
    ]
    app = App("hd3", 0.0, jobs, semantics=CompletionSemantics.FIRST_WINNER)
    tuner = HyperDrive(app, target_loss=0.5, warmup_iterations=50.0)
    drive(app, one_machine_cluster, tuner, [60, 120, 200])
    alive = app.active_jobs()
    assert len(alive) >= 1
    assert any(job.job_id == "j1" for job in alive)
