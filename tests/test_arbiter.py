"""Unit tests for the ARBITER's scheduling rounds."""

import math

import numpy as np
import pytest

from repro.cluster.allocation import Allocation
from repro.core.agent import Agent
from repro.core.arbiter import Arbiter, ArbiterConfig
from repro.core.fairness import FairnessEstimator

from helpers import make_app


@pytest.fixture
def estimator(small_cluster):
    return FairnessEstimator(small_cluster)


def agents_for(estimator, specs):
    """Agents for (app_id, num_jobs, elapsed_minutes) specs."""
    agents = {}
    for app_id, num_jobs, arrival in specs:
        app = make_app(app_id=app_id, num_jobs=num_jobs, arrival=arrival, max_parallelism=2)
        agents[app_id] = Agent(app, estimator)
    return agents


def test_config_validation():
    with pytest.raises(ValueError):
        ArbiterConfig(fairness_knob=1.5)
    with pytest.raises(ValueError):
        ArbiterConfig(noise_theta=1.0)


def test_select_participants_worst_rho_first(small_cluster):
    arbiter = Arbiter(small_cluster, ArbiterConfig(fairness_knob=0.5))
    rhos = {"a": 1.0, "b": 5.0, "c": 3.0, "d": math.inf}
    chosen = arbiter.select_participants(rhos, ["a", "b", "c", "d"])
    # 1 - f = 0.5 of 4 apps = 2 worst: the starved app and rho=5.
    assert chosen == ["d", "b"]


def test_select_participants_at_least_one(small_cluster):
    arbiter = Arbiter(small_cluster, ArbiterConfig(fairness_knob=1.0))
    chosen = arbiter.select_participants({"a": 1.0, "b": 2.0}, ["a", "b"])
    assert chosen == ["b"]


def test_select_participants_f_zero_includes_all(small_cluster):
    arbiter = Arbiter(small_cluster, ArbiterConfig(fairness_knob=0.0))
    chosen = arbiter.select_participants({"a": 1.0, "b": 2.0}, ["a", "b"])
    assert set(chosen) == {"a", "b"}


def test_offer_resources_assigns_pool(small_cluster, estimator):
    arbiter = Arbiter(small_cluster, ArbiterConfig(fairness_knob=0.0))
    agents = agents_for(estimator, [("a", 2, 0.0), ("b", 2, 0.0)])
    grants = arbiter.offer_resources(10.0, list(small_cluster.gpus), agents)
    granted_ids = [gpu.gpu_id for gpus in grants.values() for gpu in gpus]
    assert len(granted_ids) == len(set(granted_ids))  # disjoint
    total_demand = sum(agent.app.unmet_demand() for agent in agents.values())
    assert len(granted_ids) <= min(small_cluster.num_gpus, total_demand)
    # Contended pool, all demand should be served (work conserving).
    assert len(granted_ids) == total_demand


def test_offer_resources_empty_pool(small_cluster, estimator):
    arbiter = Arbiter(small_cluster)
    agents = agents_for(estimator, [("a", 1, 0.0)])
    assert arbiter.offer_resources(0.0, [], agents) == {}


def test_offer_resources_no_demand(small_cluster, estimator):
    arbiter = Arbiter(small_cluster)
    app = make_app("full", num_jobs=1, max_parallelism=2)
    app.jobs[0].set_allocation(0.0, Allocation(small_cluster.gpus[:2]))
    agents = {"full": Agent(app, estimator)}
    grants = arbiter.offer_resources(
        0.0, list(small_cluster.gpus[4:]), agents
    )
    assert grants == {}


def test_leftovers_go_to_non_participants(small_cluster, estimator):
    # High f: only the single worst app bids; payments leave leftovers
    # that must flow to the other (non-participating) apps.
    arbiter = Arbiter(
        small_cluster,
        ArbiterConfig(fairness_knob=1.0),
        rng=np.random.default_rng(0),
    )
    agents = agents_for(estimator, [("a", 3, 50.0), ("b", 3, 40.0), ("c", 3, 30.0)])
    grants = arbiter.offer_resources(60.0, list(small_cluster.gpus), agents)
    # Only one app participates, but the whole 12-GPU pool is drained
    # (demand is 3 apps x 6 = 18 > 12).
    granted_total = sum(len(gpus) for gpus in grants.values())
    assert granted_total == small_cluster.num_gpus
    assert len(grants) >= 2  # someone beyond the single participant got GPUs


def test_leftover_allocation_disabled(small_cluster, estimator):
    arbiter = Arbiter(
        small_cluster,
        ArbiterConfig(fairness_knob=1.0, leftover_allocation=False),
    )
    agents = agents_for(estimator, [("a", 1, 50.0), ("b", 1, 40.0)])
    grants = arbiter.offer_resources(60.0, list(small_cluster.gpus), agents)
    # Only the participant can win anything.
    assert set(grants) <= {"a"}


def test_round_stats_recorded(small_cluster, estimator):
    arbiter = Arbiter(small_cluster, ArbiterConfig(fairness_knob=0.5))
    agents = agents_for(estimator, [("a", 2, 10.0), ("b", 2, 5.0)])
    arbiter.offer_resources(20.0, list(small_cluster.gpus), agents)
    assert arbiter.rounds == 1
    assert len(arbiter.history) == 1
    stats = arbiter.history[0]
    assert stats.pool_size == small_cluster.num_gpus
    assert stats.num_participants == 1


def test_agents_track_wins(small_cluster, estimator):
    arbiter = Arbiter(small_cluster, ArbiterConfig(fairness_knob=0.0))
    agents = agents_for(estimator, [("a", 2, 10.0)])
    arbiter.offer_resources(20.0, list(small_cluster.gpus), agents)
    assert agents["a"].auctions_won == 1
    assert agents["a"].bids_prepared == 1


def test_agent_report_rho_noise_bounds(small_cluster, estimator):
    app = make_app("a", num_jobs=1, max_parallelism=2)
    app.jobs[0].set_allocation(0.0, Allocation(small_cluster.gpus[:2]))
    app.jobs[0].advance_to(10.0)
    exact = Agent(app, estimator, noise_theta=0.0).report_rho(10.0, salt=3)
    noisy = Agent(app, estimator, noise_theta=0.2).report_rho(10.0, salt=3)
    assert abs(noisy - exact) / exact <= 0.2 + 1e-9


def test_agent_noise_validation(small_cluster, estimator):
    app = make_app()
    with pytest.raises(ValueError):
        Agent(app, estimator, noise_theta=1.0)
