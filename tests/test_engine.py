"""Unit tests for the discrete-event engine."""

import pytest

from repro.simulation.engine import Event, EventKind, SimulationEngine, SimulationError


def test_events_fire_in_time_order():
    engine = SimulationEngine()
    fired = []
    engine.schedule(5.0, lambda e, ev: fired.append("b"))
    engine.schedule(1.0, lambda e, ev: fired.append("a"))
    engine.schedule(9.0, lambda e, ev: fired.append("c"))
    engine.run()
    assert fired == ["a", "b", "c"]


def test_clock_advances_to_event_time():
    engine = SimulationEngine()
    seen = []
    engine.schedule(3.5, lambda e, ev: seen.append(e.now))
    engine.run()
    assert seen == [3.5]
    assert engine.now == 3.5


def test_same_time_events_fire_in_schedule_order():
    engine = SimulationEngine()
    fired = []
    for label in "abc":
        engine.schedule(2.0, lambda e, ev, l=label: fired.append(l))
    engine.run()
    assert fired == ["a", "b", "c"]


def test_kind_priority_orders_same_instant_events():
    engine = SimulationEngine()
    fired = []
    engine.schedule(1.0, lambda e, ev: fired.append("auction"), kind=EventKind.AUCTION)
    engine.schedule(1.0, lambda e, ev: fired.append("finish"), kind=EventKind.JOB_FINISH)
    engine.schedule(1.0, lambda e, ev: fired.append("lease"), kind=EventKind.LEASE_EXPIRY)
    engine.run()
    assert fired == ["finish", "lease", "auction"]


def test_cancelled_event_does_not_fire():
    engine = SimulationEngine()
    fired = []
    event = engine.schedule(1.0, lambda e, ev: fired.append("x"))
    assert engine.cancel(event) is True
    engine.run()
    assert fired == []
    assert engine.events_cancelled == 1


def test_cancel_twice_returns_false():
    engine = SimulationEngine()
    event = engine.schedule(1.0, lambda e, ev: None)
    assert engine.cancel(event) is True
    assert engine.cancel(event) is False


def test_scheduling_in_past_raises():
    engine = SimulationEngine(start_time=10.0)
    with pytest.raises(SimulationError):
        engine.schedule(5.0, lambda e, ev: None)


def test_schedule_in_negative_delay_raises():
    engine = SimulationEngine()
    with pytest.raises(SimulationError):
        engine.schedule_in(-1.0, lambda e, ev: None)


def test_schedule_at_current_instant_fires():
    engine = SimulationEngine()
    fired = []

    def first(e, ev):
        fired.append("first")
        e.schedule(e.now, lambda e2, ev2: fired.append("second"))

    engine.schedule(1.0, first)
    engine.run()
    assert fired == ["first", "second"]


def test_run_until_is_inclusive_and_stops_clock():
    engine = SimulationEngine()
    fired = []
    engine.schedule(1.0, lambda e, ev: fired.append(1.0))
    engine.schedule(2.0, lambda e, ev: fired.append(2.0))
    engine.schedule(5.0, lambda e, ev: fired.append(5.0))
    engine.run(until=2.0)
    assert fired == [1.0, 2.0]
    assert engine.now == 2.0
    assert engine.pending == 1


def test_run_max_events_bound():
    engine = SimulationEngine()
    for t in range(5):
        engine.schedule(float(t), lambda e, ev: None)
    executed = engine.run(max_events=3)
    assert executed == 3
    assert engine.pending == 2


def test_stop_during_callback():
    engine = SimulationEngine()
    fired = []

    def stopper(e, ev):
        fired.append("stop")
        e.stop()

    engine.schedule(1.0, stopper)
    engine.schedule(2.0, lambda e, ev: fired.append("late"))
    engine.run()
    assert fired == ["stop"]


def test_peek_time_skips_cancelled():
    engine = SimulationEngine()
    first = engine.schedule(1.0, lambda e, ev: None)
    engine.schedule(2.0, lambda e, ev: None)
    engine.cancel(first)
    assert engine.peek_time() == 2.0


def test_events_processed_counts():
    engine = SimulationEngine()
    for t in range(4):
        engine.schedule(float(t), lambda e, ev: None)
    engine.run()
    assert engine.events_processed == 4


def test_run_is_not_reentrant():
    engine = SimulationEngine()

    def nested(e, ev):
        with pytest.raises(SimulationError):
            e.run()

    engine.schedule(1.0, nested)
    engine.run()


def test_event_repr_mentions_state():
    event = Event(time=1.0, kind=EventKind.GENERIC, callback=lambda e, ev: None)
    assert "pending" in repr(event)
