"""Failure injection exercised under every registered scheduler.

The original failure tests only covered the Themis scheduler's happy
path; these parametrise ``mark_gpus_down`` / ``mark_gpus_up`` across
the whole registry (each baseline has its own assign() path that must
survive a shrinking/growing cluster), and add the heterogeneity case
the mixed-fleet model introduces: losing the *fast* GPUs of a mixed
cluster mid-run, forcing every job onto old silicon and back.
"""

import pytest

from repro.cluster.topology import (
    ClusterSpec,
    GpuType,
    MachineSpec,
    build_cluster,
)
from repro.schedulers.registry import SCHEDULER_NAMES, make_scheduler
from repro.simulation.failures import FailureInjector, MachineFailure
from repro.simulation.simulator import ClusterSimulator, SimulationConfig
from repro.workload.trace import Trace, TraceApp, TraceJob

V100 = GpuType("v100", 1.0)
K80 = GpuType("k80", 0.35)


def homogeneous_cluster():
    return build_cluster(
        ClusterSpec(
            machine_specs=(MachineSpec(count=2, gpus_per_machine=4),),
            num_racks=2,
            name="fail-pair",
        )
    )


def mixed_cluster():
    """Machine 0: fast v100s; machine 1: slow k80s."""
    return build_cluster(
        ClusterSpec(
            machine_specs=(
                MachineSpec(count=1, gpus_per_machine=4, gpu_type=V100),
                MachineSpec(count=1, gpus_per_machine=4, gpu_type=K80),
            ),
            num_racks=2,
            name="fail-mixed",
        )
    )


def two_app_trace(minutes=40.0):
    def app(app_id):
        return TraceApp(
            app_id,
            0.0,
            (
                TraceJob(
                    job_id=f"{app_id}-j0",
                    model="resnet50",
                    duration_minutes=minutes,
                    max_parallelism=4,
                ),
            ),
        )

    return Trace(apps=(app("a"), app("b")))


def run_with_failures(cluster, scheduler_name, failures, **config_kwargs):
    config_kwargs.setdefault("lease_minutes", 10.0)
    sim = ClusterSimulator(
        cluster=cluster,
        workload=two_app_trace(),
        scheduler=make_scheduler(scheduler_name),
        config=SimulationConfig(**config_kwargs),
    )
    injector = FailureInjector(failures)
    injector.install(sim)
    return sim, injector, sim.run()


@pytest.mark.parametrize("scheduler", SCHEDULER_NAMES)
def test_transient_failure_under_every_scheduler(scheduler):
    """A machine fails and is repaired; every policy must finish the trace."""
    sim, injector, result = run_with_failures(
        homogeneous_cluster(),
        scheduler,
        [MachineFailure(machine_id=0, at=10.0, duration=20.0)],
    )
    assert result.completed, scheduler
    assert injector.events_applied == 2
    assert sim.down_gpu_count == 0
    for stats in result.app_stats:
        assert stats.finished_at is not None


@pytest.mark.parametrize("scheduler", SCHEDULER_NAMES)
def test_permanent_failure_under_every_scheduler(scheduler):
    """Half the cluster is gone forever; the workload still drains."""
    sim, _, result = run_with_failures(
        homogeneous_cluster(),
        scheduler,
        [MachineFailure(machine_id=1, at=5.0)],
    )
    assert result.completed, scheduler
    assert sim.down_gpu_count == 4


@pytest.mark.parametrize("scheduler", SCHEDULER_NAMES)
def test_losing_the_fast_gpus_of_a_mixed_cluster(scheduler):
    """Downing the v100 machine mid-run forces jobs onto the k80s.

    The run must still complete, the k80s must absorb work during the
    outage, and the makespan must not beat the failure-free run.
    """
    baseline_sim = ClusterSimulator(
        cluster=mixed_cluster(),
        workload=two_app_trace(),
        scheduler=make_scheduler(scheduler),
        config=SimulationConfig(lease_minutes=10.0),
    )
    baseline = baseline_sim.run()
    sim, injector, result = run_with_failures(
        mixed_cluster(),
        scheduler,
        [MachineFailure(machine_id=0, at=10.0, duration=60.0)],
    )
    assert result.completed, scheduler
    assert injector.events_applied == 2
    assert result.makespan >= baseline.makespan - 1e-9, scheduler
    assert result.gpu_time_by_type.get("k80", 0.0) > 0.0, scheduler


@pytest.mark.parametrize("scheduler", SCHEDULER_NAMES)
def test_no_leases_on_downed_fast_machine(scheduler):
    """Mid-outage probe: the downed machine must hold zero leases."""
    sim = ClusterSimulator(
        cluster=mixed_cluster(),
        workload=two_app_trace(minutes=60.0),
        scheduler=make_scheduler(scheduler),
        config=SimulationConfig(lease_minutes=5.0),
    )
    injector = FailureInjector(
        [MachineFailure(machine_id=0, at=10.0, duration=100.0)]
    )
    injector.install(sim)
    probed = []

    def probe(engine, event):
        for gpu in sim.cluster.gpus_on_machine(0):
            assert sim.leases.lease_of(gpu) is None, scheduler
        probed.append(engine.now)

    sim.engine.schedule(50.0, probe, label="probe")
    result = sim.run()
    assert result.completed, scheduler
    assert probed == [50.0]
